//! Parallel Monte-Carlo job execution.
//!
//! Trials are pure functions of their trial index (every simulation is
//! fully determined by its master seed, derived from the index), so the
//! runner is embarrassingly parallel and its output is identical to a
//! sequential run regardless of thread count.
//!
//! [`run_jobs`] is the general pool: `jobs` independent evaluations of
//! `f(index)` fanned across cores. [`run_trials`] layers the seed
//! derivation convention on top — the seed for trial `i` is
//! `base_seed.wrapping_add(i)`, and campaign runners flatten
//! *(scenario, trial)* pairs into one [`run_jobs`] call so scenarios
//! parallelize as well as trials.

use parking_lot::Mutex;

/// One completed job, as seen by a [`run_jobs_observed`] observer:
/// which job, which worker ran it, and how long it took. Observations
/// arrive in completion order (concurrently, from worker threads); the
/// returned result vector stays index-ordered regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobObservation {
    /// Job index in `0..jobs`.
    pub job: usize,
    /// Worker index in `0..effective_threads(..)` (0 on the sequential
    /// fast path).
    pub worker: usize,
    /// Wall-clock nanoseconds `f(job)` took on its worker.
    pub elapsed_ns: u64,
}

/// The worker count [`run_jobs_on`] actually uses for a `threads`
/// request: available parallelism when `None`, clamped to `>= 1` and
/// to the job count. Exposed so pool telemetry can size per-worker
/// accumulators to match the real fan-out.
pub fn effective_threads(jobs: usize, threads: Option<usize>) -> usize {
    threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
        .max(1)
        .min(jobs.max(1))
}

/// Runs `jobs` independent evaluations of `f` (given the job index)
/// across available cores, returning results ordered by job index.
pub fn run_jobs<T, F>(jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_jobs_on(jobs, None, f)
}

/// Like [`run_jobs`], but with an explicit worker-thread cap. `None`
/// uses the available parallelism; `Some(1)` forces a sequential run
/// (useful for asserting thread-count independence). The result is
/// identical either way: results are slotted by index, not by
/// completion order.
pub fn run_jobs_on<T, F>(jobs: usize, threads: Option<usize>, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_jobs_observed(jobs, threads, f, |_| {})
}

/// The observed pool: like [`run_jobs_on`], additionally reporting a
/// [`JobObservation`] to `observe` as each job completes — the hook
/// campaign telemetry uses for per-trial wall-clock histograms, worker
/// utilization, and heartbeat progress. `observe` is called from
/// worker threads (unsynchronized with other observers) and must not
/// influence results: job fan-out and result order are identical to
/// [`run_jobs_on`] by construction.
pub fn run_jobs_observed<T, F, O>(jobs: usize, threads: Option<usize>, f: F, observe: O) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    O: Fn(JobObservation) + Sync,
{
    let threads = effective_threads(jobs, threads);
    if threads <= 1 || jobs <= 1 {
        return (0..jobs)
            .map(|i| {
                let start = std::time::Instant::now();
                let out = f(i);
                observe(JobObservation {
                    job: i,
                    worker: 0,
                    elapsed_ns: start.elapsed().as_nanos() as u64,
                });
                out
            })
            .collect();
    }

    let results: Mutex<Vec<Option<T>>> =
        Mutex::new((0..jobs).map(|_| None).collect());
    let next = std::sync::atomic::AtomicUsize::new(0);
    crossbeam::scope(|scope| {
        for worker in 0..threads {
            let results = &results;
            let next = &next;
            let f = &f;
            let observe = &observe;
            scope.spawn(move |_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let start = std::time::Instant::now();
                let out = f(i);
                let elapsed_ns = start.elapsed().as_nanos() as u64;
                results.lock()[i] = Some(out);
                observe(JobObservation { job: i, worker, elapsed_ns });
            });
        }
    })
    .expect("job worker panicked");
    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("all jobs completed"))
        .collect()
}

/// Runs `trials` independent evaluations of `f` (given the trial's master
/// seed) across available cores, returning results ordered by trial
/// index.
///
/// The seed for trial `i` is `base_seed.wrapping_add(i)` — wrapping, so
/// a base seed near `u64::MAX` is legal and the parallel, sequential,
/// and single-trial replay paths always agree on the derivation.
/// Disjoint experiments should use well-separated `base_seed`s.
pub fn run_trials<T, F>(trials: usize, base_seed: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    run_jobs(trials, |i| f(base_seed.wrapping_add(i as u64)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_ordered_by_trial() {
        let out = run_trials(64, 100, |seed| seed);
        let expected: Vec<u64> = (100..164).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn single_trial_runs_inline() {
        let out = run_trials(1, 7, |seed| seed * 2);
        assert_eq!(out, vec![14]);
    }

    #[test]
    fn zero_trials_is_empty() {
        let out: Vec<u64> = run_trials(0, 7, |seed| seed);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_matches_sequential() {
        let work = |seed: u64| {
            // Small deterministic computation.
            (0..100u64).fold(seed, |acc, i| acc.wrapping_mul(31).wrapping_add(i))
        };
        let par = run_trials(40, 5, work);
        let seq: Vec<u64> = (0..40).map(|i| work(5 + i as u64)).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn seed_derivation_wraps_at_u64_max() {
        // Regression: `base_seed + i` used to overflow (panic in debug)
        // for base seeds near u64::MAX; derivation must wrap instead,
        // identically on the parallel and sequential paths.
        let out = run_trials(4, u64::MAX, |seed| seed);
        assert_eq!(out, vec![u64::MAX, 0, 1, 2]);
        let out = run_trials(3, u64::MAX - 1, |seed| seed);
        assert_eq!(out, vec![u64::MAX - 1, u64::MAX, 0]);
    }

    #[test]
    fn job_results_are_thread_count_independent() {
        let work = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let one = run_jobs_on(33, Some(1), work);
        let four = run_jobs_on(33, Some(4), work);
        let auto = run_jobs(33, work);
        assert_eq!(one, four);
        assert_eq!(one, auto);
    }

    #[test]
    fn oversubscribed_thread_request_is_clamped() {
        let out = run_jobs_on(3, Some(64), |i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn effective_threads_clamps_like_the_pool() {
        assert_eq!(effective_threads(10, Some(4)), 4);
        assert_eq!(effective_threads(3, Some(64)), 3);
        assert_eq!(effective_threads(10, Some(0)), 1);
        assert_eq!(effective_threads(0, Some(4)), 1);
        assert!(effective_threads(1_000_000, None) >= 1);
    }

    #[test]
    fn observer_sees_every_job_exactly_once() {
        for threads in [Some(1), Some(4)] {
            let seen = Mutex::new(vec![0u32; 17]);
            let out = run_jobs_observed(
                17,
                threads,
                |i| i * 3,
                |obs| {
                    assert!(obs.worker < 4);
                    seen.lock()[obs.job] += 1;
                },
            );
            assert_eq!(out, (0..17).map(|i| i * 3).collect::<Vec<_>>());
            assert!(seen.into_inner().iter().all(|&c| c == 1), "threads = {threads:?}");
        }
    }

    #[test]
    fn observed_results_match_unobserved() {
        let work = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let plain = run_jobs_on(33, Some(4), work);
        let observed = run_jobs_observed(33, Some(4), work, |_| {});
        assert_eq!(plain, observed);
    }
}
