//! Parallel Monte-Carlo job execution.
//!
//! Trials are pure functions of their trial index (every simulation is
//! fully determined by its master seed, derived from the index), so the
//! runner is embarrassingly parallel and its output is identical to a
//! sequential run regardless of thread count.
//!
//! [`run_jobs`] is the general pool: `jobs` independent evaluations of
//! `f(index)` fanned across cores. [`run_trials`] layers the seed
//! derivation convention on top — the seed for trial `i` is
//! `base_seed.wrapping_add(i)`, and campaign runners flatten
//! *(scenario, trial)* pairs into one [`run_jobs`] call so scenarios
//! parallelize as well as trials.

use parking_lot::Mutex;

/// Runs `jobs` independent evaluations of `f` (given the job index)
/// across available cores, returning results ordered by job index.
pub fn run_jobs<T, F>(jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_jobs_on(jobs, None, f)
}

/// Like [`run_jobs`], but with an explicit worker-thread cap. `None`
/// uses the available parallelism; `Some(1)` forces a sequential run
/// (useful for asserting thread-count independence). The result is
/// identical either way: results are slotted by index, not by
/// completion order.
pub fn run_jobs_on<T, F>(jobs: usize, threads: Option<usize>, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
        .max(1)
        .min(jobs.max(1));
    if threads <= 1 || jobs <= 1 {
        return (0..jobs).map(f).collect();
    }

    let results: Mutex<Vec<Option<T>>> =
        Mutex::new((0..jobs).map(|_| None).collect());
    let next = std::sync::atomic::AtomicUsize::new(0);
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let out = f(i);
                results.lock()[i] = Some(out);
            });
        }
    })
    .expect("job worker panicked");
    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("all jobs completed"))
        .collect()
}

/// Runs `trials` independent evaluations of `f` (given the trial's master
/// seed) across available cores, returning results ordered by trial
/// index.
///
/// The seed for trial `i` is `base_seed.wrapping_add(i)` — wrapping, so
/// a base seed near `u64::MAX` is legal and the parallel, sequential,
/// and single-trial replay paths always agree on the derivation.
/// Disjoint experiments should use well-separated `base_seed`s.
pub fn run_trials<T, F>(trials: usize, base_seed: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    run_jobs(trials, |i| f(base_seed.wrapping_add(i as u64)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_ordered_by_trial() {
        let out = run_trials(64, 100, |seed| seed);
        let expected: Vec<u64> = (100..164).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn single_trial_runs_inline() {
        let out = run_trials(1, 7, |seed| seed * 2);
        assert_eq!(out, vec![14]);
    }

    #[test]
    fn zero_trials_is_empty() {
        let out: Vec<u64> = run_trials(0, 7, |seed| seed);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_matches_sequential() {
        let work = |seed: u64| {
            // Small deterministic computation.
            (0..100u64).fold(seed, |acc, i| acc.wrapping_mul(31).wrapping_add(i))
        };
        let par = run_trials(40, 5, work);
        let seq: Vec<u64> = (0..40).map(|i| work(5 + i as u64)).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn seed_derivation_wraps_at_u64_max() {
        // Regression: `base_seed + i` used to overflow (panic in debug)
        // for base seeds near u64::MAX; derivation must wrap instead,
        // identically on the parallel and sequential paths.
        let out = run_trials(4, u64::MAX, |seed| seed);
        assert_eq!(out, vec![u64::MAX, 0, 1, 2]);
        let out = run_trials(3, u64::MAX - 1, |seed| seed);
        assert_eq!(out, vec![u64::MAX - 1, u64::MAX, 0]);
    }

    #[test]
    fn job_results_are_thread_count_independent() {
        let work = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let one = run_jobs_on(33, Some(1), work);
        let four = run_jobs_on(33, Some(4), work);
        let auto = run_jobs(33, work);
        assert_eq!(one, four);
        assert_eq!(one, auto);
    }

    #[test]
    fn oversubscribed_thread_request_is_clamped() {
        let out = run_jobs_on(3, Some(64), |i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }
}
