//! Parallel Monte-Carlo trial execution.
//!
//! Trials are pure functions of their trial index (every simulation is
//! fully determined by its master seed, derived from the index), so the
//! runner is embarrassingly parallel and its output is identical to a
//! sequential run regardless of thread count.

use parking_lot::Mutex;

/// Runs `trials` independent evaluations of `f` (given the trial's master
/// seed) across available cores, returning results ordered by trial
/// index.
///
/// The seed for trial `i` is `base_seed + i`, so disjoint experiments
/// should use well-separated `base_seed`s.
pub fn run_trials<T, F>(trials: usize, base_seed: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(trials.max(1));
    if threads <= 1 || trials <= 1 {
        return (0..trials).map(|i| f(base_seed + i as u64)).collect();
    }

    let results: Mutex<Vec<Option<T>>> =
        Mutex::new((0..trials).map(|_| None).collect());
    let next = std::sync::atomic::AtomicUsize::new(0);
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= trials {
                    break;
                }
                let out = f(base_seed + i as u64);
                results.lock()[i] = Some(out);
            });
        }
    })
    .expect("trial worker panicked");
    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("all trials completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_ordered_by_trial() {
        let out = run_trials(64, 100, |seed| seed);
        let expected: Vec<u64> = (100..164).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn single_trial_runs_inline() {
        let out = run_trials(1, 7, |seed| seed * 2);
        assert_eq!(out, vec![14]);
    }

    #[test]
    fn zero_trials_is_empty() {
        let out: Vec<u64> = run_trials(0, 7, |seed| seed);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_matches_sequential() {
        let work = |seed: u64| {
            // Small deterministic computation.
            (0..100u64).fold(seed, |acc, i| acc.wrapping_mul(31).wrapping_add(i))
        };
        let par = run_trials(40, 5, work);
        let seq: Vec<u64> = (0..40).map(|i| work(5 + i as u64)).collect();
        assert_eq!(par, seq);
    }
}
