//! Statistics for Monte-Carlo experiment evaluation.

use serde::Serialize;

/// Five-number-style summary of a sample.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator; 0 for n ≤ 1).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (linear interpolation).
    pub median: f64,
    /// 95th percentile (linear interpolation).
    pub p95: f64,
    /// 99th percentile (linear interpolation) — the tail-latency
    /// reporting surface the telemetry/service arc standardizes on.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample, or `None` for an empty one.
    ///
    /// Prefer this at call sites where a measurement can legitimately be
    /// absent (e.g. a scenario whose fault plan suppresses every ack):
    /// render the absence (`—`) instead of panicking.
    ///
    /// # Panics
    ///
    /// Panics on non-finite values.
    pub fn try_of(values: &[f64]) -> Option<Self> {
        if values.is_empty() {
            None
        } else {
            Some(Self::of(values))
        }
    }

    /// Summarizes a sample.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample or non-finite values.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot summarize an empty sample");
        assert!(
            values.iter().all(|v| v.is_finite()),
            "sample contains non-finite values"
        );
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            median: quantile_sorted(&sorted, 0.5),
            p95: quantile_sorted(&sorted, 0.95),
            p99: quantile_sorted(&sorted, 0.99),
            max: sorted[n - 1],
        }
    }

    /// The median under its percentile alias, for symmetric
    /// p50/p95/p99 call sites.
    pub fn p50(&self) -> f64 {
        self.median
    }
}

/// Quantile `q ∈ [0,1]` of a pre-sorted sample, with linear interpolation.
///
/// # Panics
///
/// Panics on an empty sample or `q` outside `[0, 1]`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// A binomial proportion with its Wilson 95% confidence interval —
/// used for empirical error/success probabilities against the ε budgets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Proportion {
    /// Successes.
    pub successes: usize,
    /// Trials.
    pub trials: usize,
    /// Point estimate `successes / trials`.
    pub estimate: f64,
    /// Wilson interval lower bound.
    pub lo: f64,
    /// Wilson interval upper bound.
    pub hi: f64,
}

impl Proportion {
    /// Computes the proportion and its Wilson 95% interval.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0` or `successes > trials`.
    pub fn wilson(successes: usize, trials: usize) -> Self {
        assert!(trials > 0, "need at least one trial");
        assert!(successes <= trials);
        let z = 1.959_963_984_540_054f64; // 97.5th normal quantile
        let n = trials as f64;
        let p = successes as f64 / n;
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * ((p * (1.0 - p) / n) + z2 / (4.0 * n * n)).sqrt();
        Proportion {
            successes,
            trials,
            estimate: p,
            lo: (center - half).max(0.0),
            hi: (center + half).min(1.0),
        }
    }
}

/// Ordinary least squares fit `y ≈ a + b·x`, returning `(a, b, r²)`.
///
/// The experiments verify scaling *shapes* by fitting measured quantities
/// against the predictor the theorem names (e.g. rounds vs `log Δ`) and
/// checking the fit explains the data (`r²` close to 1) with a positive
/// slope.
///
/// # Panics
///
/// Panics if fewer than two points are given or all `x` are equal.
pub fn linear_fit(points: &[(f64, f64)]) -> (f64, f64, f64) {
    assert!(points.len() >= 2, "need at least two points to fit");
    let n = points.len() as f64;
    let mx = points.iter().map(|(x, _)| x).sum::<f64>() / n;
    let my = points.iter().map(|(_, y)| y).sum::<f64>() / n;
    let sxx: f64 = points.iter().map(|(x, _)| (x - mx).powi(2)).sum();
    assert!(sxx > 0.0, "all x values identical");
    let sxy: f64 = points.iter().map(|(x, y)| (x - mx) * (y - my)).sum();
    let b = sxy / sxx;
    let a = my - b * mx;
    let ss_tot: f64 = points.iter().map(|(_, y)| (y - my).powi(2)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|(x, y)| (y - (a + b * x)).powi(2))
        .sum();
    let r2 = if ss_tot == 0.0 { 1.0 } else { 1.0 - ss_res / ss_tot };
    (a, b, r2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.n, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.median - 3.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.std_dev - (2.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.p50(), s.median);
        // p99 interpolates within the top interval and never exceeds max.
        assert!(s.p95 <= s.p99 && s.p99 <= s.max);
        assert!((s.p99 - 4.96).abs() < 1e-12);
    }

    #[test]
    fn quantiles_interpolate() {
        let sorted = [0.0, 10.0];
        assert_eq!(quantile_sorted(&sorted, 0.5), 5.0);
        assert_eq!(quantile_sorted(&sorted, 0.0), 0.0);
        assert_eq!(quantile_sorted(&sorted, 1.0), 10.0);
    }

    #[test]
    fn wilson_interval_brackets_estimate() {
        let p = Proportion::wilson(90, 100);
        assert!((p.estimate - 0.9).abs() < 1e-12);
        assert!(p.lo < 0.9 && 0.9 < p.hi);
        assert!(p.lo > 0.8 && p.hi < 0.96);
    }

    #[test]
    fn wilson_handles_extremes() {
        let zero = Proportion::wilson(0, 50);
        assert_eq!(zero.estimate, 0.0);
        assert!(zero.lo == 0.0 && zero.hi > 0.0);
        let one = Proportion::wilson(50, 50);
        assert_eq!(one.estimate, 1.0);
        assert!(one.hi == 1.0 && one.lo < 1.0);
    }

    #[test]
    fn linear_fit_recovers_exact_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
        let (a, b, r2) = linear_fit(&pts);
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
        assert!((r2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_r2_degrades_with_noise() {
        let pts = [(0.0, 0.0), (1.0, 5.0), (2.0, 1.0), (3.0, 8.0)];
        let (_, _, r2) = linear_fit(&pts);
        assert!(r2 < 1.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn summary_rejects_empty() {
        let _ = Summary::of(&[]);
    }

    #[test]
    fn try_of_is_total() {
        assert_eq!(Summary::try_of(&[]), None);
        let s = Summary::try_of(&[2.0, 4.0]).expect("non-empty");
        assert!((s.mean - 3.0).abs() < 1e-12);
    }
}
