//! The experiment suite: one experiment per quantitative claim of the
//! paper.
//!
//! The paper (PODC 2015) contains **no empirical tables or figures** — it
//! is proofs only. The reproduction therefore treats each theorem, lemma,
//! and discussion-level claim as the "table" to regenerate: every
//! experiment below measures the claimed quantity by Monte-Carlo over
//! seeded deterministic trials and reports it next to the paper's
//! predicted shape. EXPERIMENTS.md records a full run.
//!
//! | ID  | Claim |
//! |-----|-------|
//! | E1  | Seed agreement δ = O(r² log(1/ε₁)), independent of Δ (Thm 3.1) |
//! | E2  | SeedAlg runs O(log Δ · log²(1/ε₁)) rounds (Thm 3.1) |
//! | E3  | Seed spec: well-formedness, consistency, independence in every execution (Spec §3.1) |
//! | E4  | Progress within t_prog w.p. ≥ 1 − ε₁; t_prog shape (Thm 4.1) |
//! | E5  | Acknowledgment within t_ack; t_ack linear in Δ (Thm 4.1, §1) |
//! | E6  | Per-round reception bounds p_u, p_{u,v} (Lemma 4.2) |
//! | E7  | Fixed schedules are thwarted by an oblivious pump; LBAlg is not (§1 Discussion) |
//! | E8  | Adaptive scheduler kills progress; oblivious does not ([11] separation) |
//! | E9  | True locality: guarantees flat as n grows at fixed density (§1) |
//! | E10 | Region goodness: good at phase 1, persists, bounded leaders (App. B) |
//! | E11 | Abstract MAC port: flood/discovery run unchanged over LBAlg (§1, §5) |
//! | E12 | Geometry: Δ' ≤ c_r Δ and f-bounded partitions (Lemmas A.2, A.3) |
//! | E13 | Ablations: seed-agreement amortization (§4.2) and agreement-vs-private seeds |

pub mod ablation;
pub mod baseline;
pub mod broadcast;
pub mod geometry;
pub mod locality;
pub mod mac;
pub mod seed;

use crate::table::Table;

/// How big an experiment run should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small sweeps and few trials: seconds, for CI and Criterion.
    Quick,
    /// The full sweeps recorded in EXPERIMENTS.md: minutes.
    Full,
}

impl Scale {
    /// Picks between the quick and full variant of a size parameter.
    pub fn pick(self, quick: usize, full: usize) -> usize {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// A registered experiment.
pub struct Experiment {
    /// Identifier (`"E1"`, …).
    pub id: &'static str,
    /// One-line title.
    pub title: &'static str,
    /// The paper claim being reproduced.
    pub claim: &'static str,
    /// Runs the experiment at the given scale.
    pub run: fn(Scale) -> Vec<Table>,
}

/// All experiments in suite order.
pub fn all() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "E1",
            title: "seed agreement δ bound",
            claim: "δ = O(r² log(1/ε₁)) distinct owners per neighborhood, independent of Δ (Theorem 3.1)",
            run: seed::e1_delta_bound,
        },
        Experiment {
            id: "E2",
            title: "seed agreement round complexity",
            claim: "SeedAlg takes O(log Δ · log²(1/ε₁)) rounds (Theorem 3.1)",
            run: seed::e2_round_complexity,
        },
        Experiment {
            id: "E3",
            title: "seed spec deterministic conditions",
            claim: "well-formedness, consistency, owner-seed fidelity in every execution; uniform independent seeds (Spec 3.1)",
            run: seed::e3_spec_conformance,
        },
        Experiment {
            id: "E4",
            title: "local broadcast progress",
            claim: "receiver with an active reliable neighbor hears something within t_prog w.p. ≥ 1 − ε₁ (Theorem 4.1)",
            run: broadcast::e4_progress,
        },
        Experiment {
            id: "E5",
            title: "local broadcast acknowledgment",
            claim: "delivery to all reliable neighbors before ack; t_ack = Θ(Δ · polylog) (Theorem 4.1, §1 lower bound)",
            run: broadcast::e5_acknowledgment,
        },
        Experiment {
            id: "E6",
            title: "per-round reception probability",
            claim: "p_u ≥ c₂/(r² log(1/ε₂) log Δ) and p_{u,v} ≥ p_u/Δ' (Lemma 4.2)",
            run: broadcast::e6_lemma42,
        },
        Experiment {
            id: "E7",
            title: "fixed schedules vs the oblivious pump",
            claim: "an oblivious contention pump defeats fixed probability schedules; LBAlg's permuted schedule survives (§1 Discussion)",
            run: baseline::e7_pump_separation,
        },
        Experiment {
            id: "E8",
            title: "oblivious vs adaptive link scheduler",
            claim: "efficient progress is impossible against an adaptive scheduler but feasible against oblivious ones ([11], §2)",
            run: baseline::e8_adaptive_separation,
        },
        Experiment {
            id: "E9",
            title: "true locality in n",
            claim: "time and error guarantees depend on local parameters only: flat as n grows at fixed density (§1)",
            run: locality::e9_locality,
        },
        Experiment {
            id: "E10",
            title: "region-of-goodness dynamics",
            claim: "every region good at phase 1; goodness persists; leaders per region bounded (Lemmas B.2, B.6, B.8)",
            run: seed::e10_goodness,
        },
        Experiment {
            id: "E11",
            title: "abstract MAC layer port",
            claim: "abstract-MAC algorithms (flood, discovery, election) run unchanged over LBAlg on dual graphs (§1, §5)",
            run: mac::e11_amac_port,
        },
        Experiment {
            id: "E12",
            title: "geographic structure lemmas",
            claim: "Δ' ≤ c_r Δ and the grid partition is f-bounded with f(h) = c₁r²h² (Lemmas A.2, A.3)",
            run: geometry::e12_geometry,
        },
        Experiment {
            id: "E13",
            title: "design ablations",
            claim: "seed-agreement amortization (§4.2 remark) cuts preamble overhead; dropping agreement loses the δ schedule bound the analysis needs",
            run: ablation::e13_ablations,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_ordered() {
        let exps = all();
        assert_eq!(exps.len(), 13);
        for (i, e) in exps.iter().enumerate() {
            assert_eq!(e.id, format!("E{}", i + 1));
            assert!(!e.title.is_empty());
            assert!(!e.claim.is_empty());
        }
    }

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Quick.pick(1, 9), 1);
        assert_eq!(Scale::Full.pick(1, 9), 9);
    }
}
