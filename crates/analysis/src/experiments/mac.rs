//! E11: the abstract MAC layer port.
//!
//! Algorithms written against the abstract MAC interface (flood
//! broadcast, neighbor discovery, leader election) run unchanged over the
//! `LBAlg`-backed layer on dual graphs — the composition the paper's
//! introduction promises. We measure flood completion time against the
//! `hops × f_ack` prediction and discovery/election success rates.

use super::Scale;
use crate::runner::run_trials;
use crate::stats::{Proportion, Summary};
use crate::table::{fnum, Table};
use amac::adapter::LbMac;
use amac::AbstractMac;
use amac::apps::{elect_leader, flood_broadcast, neighbor_discovery};
use local_broadcast::config::LbConfig;
use radio_sim::graph::NodeId;
use radio_sim::scheduler;
use radio_sim::topology;

/// E11 tables.
pub fn e11_amac_port(scale: Scale) -> Vec<Table> {
    let trials = scale.pick(4, 20);
    let cfg = LbConfig::with_constants(0.25, 1.0, 2.0, 1.0);

    // Flood along a path: completion ≈ diameter × f_ack.
    let mut t1 = Table::new(
        "E11a",
        "flood broadcast completion over LBAlg-backed MAC (paths)",
        "completion time scales with path length × f_ack (one ack per relay hop)",
        vec![
            "path length",
            "f_ack (rounds)",
            "complete",
            "mean completion",
            "completion / (hops·f_ack)",
        ],
    );
    let lengths = match scale {
        Scale::Quick => vec![3usize, 4],
        Scale::Full => vec![3, 5, 8],
    };
    for (i, &len) in lengths.iter().enumerate() {
        let topo = topology::line(len, 0.9, 1.0);
        let results = run_trials(trials, 60_000 + i as u64 * 100, |s| {
            let mut mac = LbMac::new(
                &topo,
                Box::new(scheduler::BernoulliEdges::new(0.5, s)),
                cfg.clone(),
                s,
            );
            let f_ack = mac.params().t_ack_rounds();
            let horizon = f_ack * (len as u64 + 4) * 2;
            let out = flood_broadcast(&mut mac, &[NodeId(0)], 1, horizon);
            (out.complete(1), out.completed_at, f_ack)
        });
        let complete = results.iter().filter(|(c, _, _)| *c).count();
        let f_ack = results[0].2;
        let times: Vec<f64> = results
            .iter()
            .filter_map(|(_, t, _)| t.map(|v| v as f64))
            .collect();
        let hops = (len - 1) as f64;
        let mean = if times.is_empty() {
            f64::NAN
        } else {
            Summary::of(&times).mean
        };
        t1.push_row(vec![
            len.to_string(),
            f_ack.to_string(),
            format!("{complete}/{trials}"),
            fnum(mean),
            fnum(mean / (hops * f_ack as f64)),
        ]);
    }

    // Discovery and election success rates on small meshes.
    let mut t2 = Table::new(
        "E11b",
        "neighbor discovery, leader election & consensus over the ported layer",
        "discovery supersets reliable neighborhoods w.h.p.; election converges to the max id within diameter hops; consensus reaches agreement on the max-id value",
        vec![
            "topology",
            "discovery complete",
            "election correct",
            "consensus agrees",
        ],
    );
    let cases: Vec<(&str, topology::Topology, u32)> = vec![
        ("clique-4", topology::clique(4, 1.0), 1),
        ("line-3", topology::line(3, 0.9, 1.0), 3),
        ("grid-2x3", topology::grid(2, 3, 0.9, 2.0), 4),
    ];
    for (j, (name, topo, hops)) in cases.into_iter().enumerate() {
        let results = run_trials(trials, 61_000 + j as u64 * 100, |s| {
            let mut mac = LbMac::new(
                &topo,
                Box::new(scheduler::BernoulliEdges::new(0.3, s)),
                cfg.clone(),
                s,
            );
            let heard = neighbor_discovery(&mut mac, 2);
            let discovery_ok = topo.graph.vertices().all(|u| {
                topo.graph
                    .reliable_neighbors(u)
                    .iter()
                    .all(|v| heard[u.0].contains(&(v.0 as u64)))
            });
            let mut mac2 = LbMac::new(
                &topo,
                Box::new(scheduler::BernoulliEdges::new(0.3, s ^ 0xE11)),
                cfg.clone(),
                s ^ 0xE11,
            );
            let leaders = elect_leader(&mut mac2, hops);
            let max_id = (topo.graph.len() - 1) as u64;
            let election_ok = leaders.iter().all(|&l| l == max_id);

            let mut mac3 = LbMac::new(
                &topo,
                Box::new(scheduler::BernoulliEdges::new(0.3, s ^ 0xC0)),
                cfg.clone(),
                s ^ 0xC0,
            );
            let initial: Vec<u64> =
                (0..topo.graph.len() as u64).map(|v| 100 + v).collect();
            let horizon = mac3.f_ack() * (u64::from(hops) + 3) * 4;
            let out = amac::consensus::flood_consensus(
                &mut mac3,
                &initial,
                hops + 1,
                horizon,
            );
            let consensus_ok = out.agreement()
                && out.validity(&initial)
                && out.decisions.iter().all(|d| d.is_some());
            (discovery_ok, election_ok, consensus_ok)
        });
        let disc = results.iter().filter(|(d, _, _)| *d).count();
        let elec = results.iter().filter(|(_, e, _)| *e).count();
        let cons = results.iter().filter(|(_, _, c)| *c).count();
        let dp = Proportion::wilson(disc, trials);
        let ep = Proportion::wilson(elec, trials);
        let cp = Proportion::wilson(cons, trials);
        t2.push_row(vec![
            name.into(),
            format!("{disc}/{trials} ({})", fnum(dp.estimate)),
            format!("{elec}/{trials} ({})", fnum(ep.estimate)),
            format!("{cons}/{trials} ({})", fnum(cp.estimate)),
        ]);
    }

    vec![t1, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_quick_mostly_completes() {
        let tables = e11_amac_port(Scale::Quick);
        assert_eq!(tables.len(), 2);
        for row in &tables[0].rows {
            let (ok, total) = row[2].split_once('/').expect("fraction");
            let ok: usize = ok.parse().unwrap();
            let total: usize = total.parse().unwrap();
            assert!(ok * 2 >= total, "flood mostly completes: {row:?}");
        }
    }
}
