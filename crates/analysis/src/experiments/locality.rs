//! E9: true locality — guarantees depend on local parameters, not `n`.
//!
//! The paper's programmatic point (Section 1, "True Locality"): time
//! complexity and error bounds should be functions of local quantities
//! (Δ, ε, r), never of the network size `n`. We grow a constant-density
//! deployment by an order of magnitude and verify that every measured
//! quantity — degree bound, seed agreement rounds and δ, `LBAlg` phase
//! length, and per-neighborhood progress success — stays flat.

use super::Scale;
use crate::runner::run_trials;
use crate::stats::{Proportion, Summary};
use crate::table::{fnum, Table};
use local_broadcast::config::LbConfig;
use local_broadcast::service::{build_engine, QueueWorkload};
use local_broadcast::spec;
use radio_sim::engine::Engine;
use radio_sim::environment::NullEnvironment;
use radio_sim::graph::NodeId;
use radio_sim::scheduler;
use radio_sim::topology::{self, Topology};
use radio_sim::trace::RecordingPolicy;
use seed_agreement::alg::SeedProcess;
use seed_agreement::{spec as seed_spec, SeedConfig};

/// Picks a broadcaster with at least one reliable neighbor, nearest the
/// deployment's centroid (a "typical" local node).
fn central_sender(topo: &Topology) -> Option<NodeId> {
    let n = topo.graph.len();
    if n == 0 {
        return None;
    }
    let (mut cx, mut cy) = (0.0, 0.0);
    for p in topo.embedding.iter() {
        cx += p.x;
        cy += p.y;
    }
    let (cx, cy) = (cx / n as f64, cy / n as f64);
    topo.graph
        .vertices()
        .filter(|v| !topo.graph.reliable_neighbors(*v).is_empty())
        .min_by(|a, b| {
            let da = (topo.embedding.position(a.0).x - cx).powi(2)
                + (topo.embedding.position(a.0).y - cy).powi(2);
            let db = (topo.embedding.position(b.0).x - cx).powi(2)
                + (topo.embedding.position(b.0).y - cy).powi(2);
            da.partial_cmp(&db).expect("finite")
        })
}

/// E9 measurement at one network size.
struct LocalityRow {
    n: usize,
    delta: usize,
    seed_rounds: u64,
    max_delta_observed: f64,
    phase_len: u64,
    progress: Proportion,
}

fn measure(n: usize, trials: usize, base_seed: u64) -> LocalityRow {
    let density = 8.0;
    let r = 1.5;
    let topo = topology::constant_density(n, density, r, 97);
    let seed_cfg = SeedConfig::practical(0.125, 64);
    let lb_cfg = LbConfig::practical(0.25);
    let delta = topo.graph.delta();
    let params = lb_cfg.resolve(topo.r, delta, topo.graph.delta_prime());

    // Seed agreement δ.
    let owners: Vec<f64> = run_trials(trials, base_seed, |s| {
        let procs: Vec<SeedProcess> = (0..topo.graph.len())
            .map(|_| SeedProcess::new(seed_cfg.clone()))
            .collect();
        let mut engine = Engine::new(
            topo.configuration(Box::new(scheduler::AllExtraEdges)),
            procs,
            Box::new(NullEnvironment),
            s,
        );
        engine.run(seed_cfg.total_rounds(delta));
        seed_spec::owners_per_neighborhood(engine.trace(), &topo.graph)
            .expect("well-formed")
            .into_iter()
            .max()
            .unwrap_or(0) as f64
    });

    // LBAlg progress around a central sender.
    let sender = central_sender(&topo).expect("network has a connected node");
    let phases = 3;
    let results = run_trials(trials, base_seed + 37, |s| {
        let env = QueueWorkload::uniform(topo.graph.len(), &[sender], 1_000);
        let mut engine = build_engine(
            &topo,
            Box::new(scheduler::BernoulliEdges::new(0.5, s)),
            &lb_cfg,
            Box::new(env),
            s,
            RecordingPolicy::full(),
        );
        engine.run(params.phase_len() * phases);
        let trace = engine.into_trace();
        let outcomes = spec::progress_outcomes(&trace, &topo.graph, params.phase_len())
            .expect("well-formed");
        (
            outcomes.iter().filter(|o| o.received).count(),
            outcomes.len(),
        )
    });
    let ok: usize = results.iter().map(|(o, _)| o).sum();
    let total: usize = results.iter().map(|(_, t)| t).sum();

    LocalityRow {
        n,
        delta,
        seed_rounds: seed_cfg.total_rounds(delta),
        max_delta_observed: Summary::of(&owners).mean,
        phase_len: params.phase_len(),
        progress: Proportion::wilson(ok, total.max(1)),
    }
}

/// E9: all columns flat as `n` grows 16×.
pub fn e9_locality(scale: Scale) -> Vec<Table> {
    let trials = scale.pick(3, 15);
    let sizes = match scale {
        Scale::Quick => vec![64usize, 144],
        Scale::Full => vec![64, 256, 1024],
    };
    let mut t = Table::new(
        "E9",
        "locality: guarantees vs network size at constant density",
        "every column except n stays flat: no quantity inherits a dependence on n",
        vec![
            "n",
            "Δ",
            "seed rounds",
            "mean max δ",
            "t_prog (rounds)",
            "progress rate [wilson]",
        ],
    );
    for (i, &n) in sizes.iter().enumerate() {
        let row = measure(n, trials, 40_000 + i as u64 * 500);
        t.push_row(vec![
            row.n.to_string(),
            row.delta.to_string(),
            row.seed_rounds.to_string(),
            fnum(row.max_delta_observed),
            row.phase_len.to_string(),
            format!(
                "{} [{}, {}]",
                fnum(row.progress.estimate),
                fnum(row.progress.lo),
                fnum(row.progress.hi)
            ),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn central_sender_picks_connected_node() {
        let topo = topology::constant_density(64, 8.0, 1.5, 97);
        let s = central_sender(&topo).unwrap();
        assert!(!topo.graph.reliable_neighbors(s).is_empty());
    }

    #[test]
    fn e9_quick_rows_have_flat_delta() {
        let tables = e9_locality(Scale::Quick);
        let rows = &tables[0].rows;
        assert_eq!(rows.len(), 2);
        // Δ at 2.25x size should not grow 2x.
        let d0: f64 = rows[0][1].parse().unwrap();
        let d1: f64 = rows[1][1].parse().unwrap();
        assert!(d1 < d0 * 2.0, "Δ grew with n: {d0} -> {d1}");
    }
}
