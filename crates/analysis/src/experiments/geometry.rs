//! E12: the geometric structure lemmas of Appendix A.
//!
//! * Lemma A.2 — the grid partition is `f`-bounded: at most `c₁r²h²`
//!   regions within `h` hops of any region.
//! * Lemma A.3 — for any `r`-geographic dual graph, `Δ' ≤ c_r Δ` with
//!   `c_r = c₁ r²`.

use super::Scale;
use crate::runner::run_trials;
use crate::stats::Summary;
use crate::table::{fnum, Table};
use radio_sim::geometry::{RegionId, RegionPartition};
use radio_sim::topology::{self, RggParams};

/// E12 tables.
pub fn e12_geometry(scale: Scale) -> Vec<Table> {
    let trials = scale.pick(4, 20);

    let mut t1 = Table::new(
        "E12a",
        "region graph f-boundedness (grid partition)",
        "regions within h hops ≤ c₁ r² h² with the crate's c₁ (Lemma A.2)",
        vec!["r", "h", "regions within h hops", "bound c₁r²h²", "ratio"],
    );
    for &r in &[1.0, 1.5, 2.0, 3.0] {
        let part = RegionPartition::new(r);
        for h in 1..=3u32 {
            let count = part
                .regions_within_hops(RegionId { ix: 0, iy: 0 }, h)
                .len() as f64;
            let bound = part.c1() * r * r * f64::from(h) * f64::from(h);
            t1.push_row(vec![
                fnum(r),
                h.to_string(),
                fnum(count),
                fnum(bound),
                fnum(count / bound),
            ]);
        }
    }

    let mut t2 = Table::new(
        "E12b",
        "Δ'/Δ across random geometric dual graphs",
        "Δ' ≤ c_r Δ (Lemma A.3); the observed ratio sits far below the conservative c_r",
        vec!["r", "mean Δ", "mean Δ'", "mean Δ'/Δ", "c_r bound"],
    );
    for (i, &r) in [1.0, 1.5, 2.0, 3.0].iter().enumerate() {
        let results = run_trials(trials, 50_000 + i as u64 * 100, |s| {
            let topo = topology::random_geometric(RggParams {
                n: 100,
                side: 5.0,
                r,
                grey_reliable_p: 0.0,
                grey_unreliable_p: 1.0,
                seed: s,
            });
            topo.check_geographic().expect("generator is geographic");
            (
                topo.graph.delta() as f64,
                topo.graph.delta_prime() as f64,
            )
        });
        let deltas: Vec<f64> = results.iter().map(|(d, _)| *d).collect();
        let dprimes: Vec<f64> = results.iter().map(|(_, d)| *d).collect();
        let ratios: Vec<f64> = results.iter().map(|(d, dp)| dp / d).collect();
        let part = RegionPartition::new(r);
        let ratio = Summary::of(&ratios);
        t2.push_row(vec![
            fnum(r),
            fnum(Summary::of(&deltas).mean),
            fnum(Summary::of(&dprimes).mean),
            fnum(ratio.mean),
            fnum(part.cr()),
        ]);
        assert!(
            ratio.max <= part.cr(),
            "Lemma A.3 violated: ratio {} > c_r {}",
            ratio.max,
            part.cr()
        );
    }

    vec![t1, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e12_quick_satisfies_bounds() {
        let tables = e12_geometry(Scale::Quick);
        assert_eq!(tables.len(), 2);
        // Every f-boundedness ratio is at most 1.
        for row in &tables[0].rows {
            let ratio: f64 = row[4].parse().unwrap();
            assert!(ratio <= 1.0, "f-boundedness ratio {ratio} > 1");
        }
    }
}
