//! Baseline and adversary experiments: E7 (the oblivious contention pump
//! vs fixed schedules) and E8 (oblivious vs adaptive schedulers).

use super::Scale;
use crate::runner::run_trials;
use crate::stats::Summary;
use crate::table::{fnum, Table};
use baselines::{decay_process, FixedScheduleProcess};
use local_broadcast::alg::LbProcess;
use local_broadcast::config::LbConfig;
use local_broadcast::msg::{LbInput, LbMsg, Payload};
use radio_sim::engine::Engine;
use radio_sim::environment::ScriptedEnvironment;
use radio_sim::geometry::{Embedding, Point};
use radio_sim::graph::NodeId;
use radio_sim::scheduler::{self, LinkScheduler, MaskedPump};
use radio_sim::topology::{self, GreyKind, Topology};
use radio_sim::trace::RecordingPolicy;

/// The E7 arena: a listening receiver at the origin with `reliable`
/// nearby senders; `grey` senders in the annulus connected only by
/// unreliable edges; and a remote clique of `grey.max(4)` nodes that
/// inflates the *global* degree bound Δ, stretching Decay's probability
/// ladder down to `≈ 1/grey` where the pump's starvation bites.
///
/// Layout: receiver NodeId(0); reliable senders 1..=reliable;
/// grey senders next; remote clique last.
fn pump_arena(reliable: usize, grey: usize) -> Topology {
    let r = 2.0;
    let mut pts = vec![Point::new(0.0, 0.0)];
    for i in 0..reliable {
        let a = 0.5 * (i as f64) / reliable.max(1) as f64;
        pts.push(Point::new(0.8 * a.cos(), 0.8 * a.sin()));
    }
    let ring = 1.5;
    for i in 0..grey {
        let a = 2.0 * std::f64::consts::PI * (i as f64) / grey.max(1) as f64;
        pts.push(Point::new(ring * a.cos(), ring * a.sin()));
    }
    let clique = grey.max(4);
    for i in 0..clique {
        let a = 2.0 * std::f64::consts::PI * (i as f64) / clique as f64;
        pts.push(Point::new(100.0 + 0.49 * a.cos(), 0.49 * a.sin()));
    }
    topology::from_embedding(Embedding::new(pts), r, GreyKind::Unreliable)
}

/// Rounds until the arena's receiver (node 0) first receives anything,
/// under a Decay baseline with the given scheduler. Senders are the
/// reliable and grey nodes; the remote clique stays silent. Returns the
/// latency, censored at `horizon`.
fn decay_receiver_latency(
    topo: &Topology,
    reliable: usize,
    grey: usize,
    sched: Box<dyn LinkScheduler>,
    horizon: u64,
    master_seed: u64,
) -> f64 {
    let n = topo.graph.len();
    let procs: Vec<FixedScheduleProcess> =
        (0..n).map(|_| decay_process(Some(horizon * 2))).collect();
    let script: Vec<(u64, NodeId, LbInput)> = (1..=reliable + grey)
        .map(|v| (1, NodeId(v), LbInput::Bcast(Payload::new(v as u64, 0))))
        .collect();
    let mut engine = Engine::new(
        topo.configuration(sched),
        procs,
        Box::new(ScriptedEnvironment::new(script)),
        master_seed,
    );
    let got = engine.run_until(horizon, |t| {
        t.outputs()
            .any(|(_, v, o)| v == NodeId(0) && !o.is_ack())
    });
    if got {
        engine.round() as f64
    } else {
        horizon as f64
    }
}

/// Same measurement for `LBAlg`: rounds until the receiver's first data
/// reception (raw receptions, not deduplicated outputs), censored at
/// `horizon`.
fn lbalg_receiver_latency(
    topo: &Topology,
    reliable: usize,
    grey: usize,
    sched: Box<dyn LinkScheduler>,
    cfg: &LbConfig,
    horizon: u64,
    master_seed: u64,
) -> f64 {
    let n = topo.graph.len();
    let procs: Vec<LbProcess> = (0..n).map(|_| LbProcess::new(cfg.clone())).collect();
    let script: Vec<(u64, NodeId, LbInput)> = (1..=reliable + grey)
        .map(|v| (1, NodeId(v), LbInput::Bcast(Payload::new(v as u64, 0))))
        .collect();
    let config = topo
        .configuration(sched)
        .with_recording(RecordingPolicy::full());
    let mut engine = Engine::new(
        config,
        procs,
        Box::new(ScriptedEnvironment::new(script)),
        master_seed,
    );
    let got = engine.run_until(horizon, |t| {
        t.receptions()
            .any(|(_, rx, _, m)| rx == NodeId(0) && matches!(m, LbMsg::Data(_)))
    });
    if got {
        engine.round() as f64
    } else {
        horizon as f64
    }
}

/// E7: the pump starves Decay but not LBAlg.
pub fn e7_pump_separation(scale: Scale) -> Vec<Table> {
    let trials = scale.pick(10, 40);
    let cfg = LbConfig::practical(0.25);
    // A single reliable sender maximizes the pump's leverage: any rung
    // whose probability the pump starves delivers at most p per round.
    let reliable = 1;

    let mut t = Table::new(
        "E7",
        "receiver progress latency: Decay vs LBAlg under the anti-Decay pump",
        "Decay's latency under the pump grows with grey contention G (pump/no-pump ratio climbs); LBAlg's stays near its t_prog regardless",
        vec![
            "grey G",
            "Δ̂",
            "decay+pump",
            "decay+none",
            "decay ratio",
            "lbalg+pump",
            "lbalg t_prog",
            "lbalg/t_prog",
        ],
    );

    let greys = match scale {
        Scale::Quick => vec![16usize, 64],
        Scale::Full => vec![16, 32, 64, 128],
    };
    for (i, &grey) in greys.iter().enumerate() {
        let topo = pump_arena(reliable, grey);
        let delta_hat = topo.graph.delta().max(2).next_power_of_two();
        let log_delta = delta_hat.trailing_zeros().max(1);
        // Flood every rung where the grey crowd collides (expected grey
        // transmitters ≥ 8); starve the rest, where the lone reliable
        // sender's probability is ≤ 8/G per round. Cap below 1/2 so the
        // top rung is always flooded.
        let threshold = (8.0 / grey as f64).min(0.45);
        let decay_horizon = 256 * u64::from(log_delta);

        let base = 20_000 + i as u64 * 1_000;
        let pump_lat: Vec<f64> = run_trials(trials, base, |s| {
            decay_receiver_latency(
                &topo,
                reliable,
                grey,
                Box::new(MaskedPump::against_decay_with_threshold(log_delta, threshold)),
                decay_horizon,
                s,
            )
        });
        let none_lat: Vec<f64> = run_trials(trials, base + 100, |s| {
            decay_receiver_latency(
                &topo,
                reliable,
                grey,
                Box::new(scheduler::NoExtraEdges),
                decay_horizon,
                s,
            )
        });

        let params = cfg.resolve(topo.r, topo.graph.delta(), topo.graph.delta_prime());
        let lb_horizon = params.phase_len() * 6;
        let lb_lat: Vec<f64> = run_trials(trials, base + 200, |s| {
            lbalg_receiver_latency(
                &topo,
                reliable,
                grey,
                Box::new(MaskedPump::against_decay_with_threshold(log_delta, threshold)),
                &cfg,
                lb_horizon,
                s,
            )
        });

        let pump_mean = Summary::of(&pump_lat).mean;
        let none_mean = Summary::of(&none_lat).mean;
        let lb_mean = Summary::of(&lb_lat).mean;
        t.push_row(vec![
            grey.to_string(),
            delta_hat.to_string(),
            fnum(pump_mean),
            fnum(none_mean),
            fnum(pump_mean / none_mean),
            fnum(lb_mean),
            params.phase_len().to_string(),
            fnum(lb_mean / params.phase_len() as f64),
        ]);
    }
    vec![t]
}

/// E8: the adaptive greedy jammer vs an oblivious scheduler of similar
/// edge budget.
pub fn e8_adaptive_separation(scale: Scale) -> Vec<Table> {
    let trials = scale.pick(8, 40);
    let cfg = LbConfig::practical(0.25);
    // One reliable sender: the jammer wins a round whenever any grey
    // sender transmits simultaneously.
    let reliable = 1;
    let grey = scale.pick(16, 24);
    let topo = topology::grey_sandwich(reliable, grey, 2.0);
    let params = cfg.resolve(topo.r, topo.graph.delta(), topo.graph.delta_prime());
    let horizon = params.phase_len() * 8;

    let mut t = Table::new(
        "E8",
        "LBAlg receiver latency: oblivious family vs adaptive jammer",
        "oblivious schedulers (any of them) permit fast progress; the adaptive jammer — outside the model — delays or blocks it ([11])",
        vec!["scheduler", "kind", "mean latency", "p95", "censored at horizon"],
    );

    type SchedulerCase = (&'static str, fn() -> Box<dyn LinkScheduler>);
    let oblivious: Vec<SchedulerCase> = vec![
        ("all-edges", || Box::new(scheduler::AllExtraEdges)),
        ("no-edges", || Box::new(scheduler::NoExtraEdges)),
        ("bernoulli-0.5", || Box::new(scheduler::BernoulliEdges::new(0.5, 77))),
    ];
    for (j, (name, mk)) in oblivious.iter().enumerate() {
        let lat: Vec<f64> = run_trials(trials, 30_000 + j as u64 * 100, |s| {
            lbalg_receiver_latency(&topo, reliable, grey, mk(), &cfg, horizon, s)
        });
        let sum = Summary::of(&lat);
        let censored = lat.iter().filter(|&&l| l >= horizon as f64).count();
        t.push_row(vec![
            (*name).into(),
            "oblivious".into(),
            fnum(sum.mean),
            fnum(sum.p95),
            format!("{censored}/{trials}"),
        ]);
    }

    // Adaptive jammer run (uses the adaptive engine path).
    let lat: Vec<f64> = run_trials(trials, 31_000, |s| {
        let n = topo.graph.len();
        let procs: Vec<LbProcess> = (0..n).map(|_| LbProcess::new(cfg.clone())).collect();
        let script: Vec<(u64, NodeId, LbInput)> = (1..=reliable + grey)
            .map(|v| (1, NodeId(v), LbInput::Bcast(Payload::new(v as u64, 0))))
            .collect();
        let config = topo
            .configuration(Box::new(scheduler::NoExtraEdges))
            .with_adaptive(Box::new(scheduler::GreedyJammer))
            .with_recording(RecordingPolicy::full());
        let mut engine = Engine::new(
            config,
            procs,
            Box::new(ScriptedEnvironment::new(script)),
            s,
        );
        let got = engine.run_until(horizon, |t| {
            t.receptions()
                .any(|(_, rx, _, m)| rx == NodeId(0) && matches!(m, LbMsg::Data(_)))
        });
        if got {
            engine.round() as f64
        } else {
            horizon as f64
        }
    });
    let sum = Summary::of(&lat);
    let censored = lat.iter().filter(|&&l| l >= horizon as f64).count();
    t.push_row(vec![
        "greedy-jammer".into(),
        "ADAPTIVE".into(),
        fnum(sum.mean),
        fnum(sum.p95),
        format!("{censored}/{trials}"),
    ]);

    vec![t]
}

/// Used by integration tests: arena construction is geographic.
pub fn arena_for_tests(grey: usize) -> Topology {
    pump_arena(2, grey)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_is_geographic_with_remote_clique() {
        let topo = pump_arena(2, 8);
        topo.check_geographic().unwrap();
        // Receiver: 2 reliable neighbors, 8 grey neighbors.
        assert_eq!(topo.graph.reliable_neighbors(NodeId(0)).len(), 2);
        assert_eq!(topo.graph.extra_neighbors(NodeId(0)).len(), 8);
        // The remote clique dominates Δ.
        assert!(topo.graph.delta() >= 8);
    }

    #[test]
    fn decay_latency_is_finite_without_interference() {
        let topo = pump_arena(2, 4);
        let lat = decay_receiver_latency(
            &topo,
            2,
            4,
            Box::new(scheduler::NoExtraEdges),
            512,
            5,
        );
        assert!(lat < 512.0, "decay should deliver without grey edges");
    }

    #[test]
    fn e7_quick_produces_rows() {
        let tables = e7_pump_separation(Scale::Quick);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), 2);
    }

    #[test]
    fn e8_quick_has_adaptive_row() {
        let tables = e8_adaptive_separation(Scale::Quick);
        let last = tables[0].rows.last().unwrap();
        assert_eq!(last[1], "ADAPTIVE");
    }
}
