//! E13: ablations of `LBAlg`'s design choices.
//!
//! Two knobs the paper itself identifies:
//!
//! * **Seed-agreement frequency** (Section 4.2 remark): amortizing one
//!   agreement over `k` body segments cuts the preamble overhead from
//!   `T_s/(T_s + T_prog)` to `T_s/(T_s + k·T_prog)` without changing the
//!   worst-case bounds. We sweep `k` and measure overhead and realized
//!   delivery throughput.
//!
//! * **Agreement vs private seeds**: dropping the agreement (each node
//!   draws its own schedule) removes the δ bound on distinct schedules
//!   per neighborhood — the quantity Lemma 4.2's group-partition argument
//!   needs. We compare progress under both in a contended setting. Note
//!   the honest framing: private random schedules are *also* unknown to
//!   an oblivious scheduler, so under benign/random schedulers the gap
//!   can be modest; the agreement buys the provable worst-case bound (and
//!   pays `T_s` per phase for it).

use super::Scale;
use crate::runner::run_trials;
use crate::stats::{Proportion, Summary};
use crate::table::{fnum, Table};
use local_broadcast::config::LbConfig;
use local_broadcast::msg::LbMsg;
use local_broadcast::service::{build_engine, QueueWorkload};
use radio_sim::graph::NodeId;
use radio_sim::scheduler;
use radio_sim::topology;
use radio_sim::trace::RecordingPolicy;

/// Receptions per round at a designated receiver over a fixed horizon,
/// with `senders` concurrently streaming.
fn receiver_throughput(
    topo: &radio_sim::topology::Topology,
    cfg: &LbConfig,
    senders: &[NodeId],
    receiver: NodeId,
    horizon: u64,
    master_seed: u64,
) -> f64 {
    let env = QueueWorkload::uniform(topo.graph.len(), senders, 1_000);
    let mut engine = build_engine(
        topo,
        Box::new(scheduler::BernoulliEdges::new(0.5, master_seed)),
        cfg,
        Box::new(env),
        master_seed,
        RecordingPolicy::full(),
    );
    engine.run(horizon);
    let trace = engine.into_trace();
    let receptions = trace
        .receptions()
        .filter(|(_, rx, _, m)| *rx == receiver && matches!(m, LbMsg::Data(_)))
        .count();
    receptions as f64 / horizon as f64
}

/// E13 tables.
pub fn e13_ablations(scale: Scale) -> Vec<Table> {
    let trials = scale.pick(5, 25);

    // (a) Seed-agreement frequency sweep.
    let mut t1 = Table::new(
        "E13a",
        "seed-agreement amortization (Section 4.2 variant)",
        "preamble overhead falls as k grows while delivery throughput per round holds or improves; worst-case bounds unchanged",
        vec![
            "bodies k",
            "phase len",
            "preamble overhead",
            "recv/round (mean)",
            "t_ack rounds",
        ],
    );
    let topo = topology::clique(8, 1.0);
    let sender = [NodeId(0)];
    for (i, &k) in [1u32, 2, 4, 8].iter().enumerate() {
        let cfg = LbConfig::practical(0.25).with_seed_reuse(k);
        let params = cfg.resolve(topo.r, topo.graph.delta(), topo.graph.delta_prime());
        let horizon = params.phase_len().max(400) * 3;
        let tp: Vec<f64> = run_trials(trials, 70_000 + i as u64 * 100, |s| {
            receiver_throughput(&topo, &cfg, &sender, NodeId(1), horizon, s)
        });
        t1.push_row(vec![
            k.to_string(),
            params.phase_len().to_string(),
            fnum(params.t_s as f64 / params.phase_len() as f64),
            fnum(Summary::of(&tp).mean),
            params.t_ack_rounds().to_string(),
        ]);
    }

    // (b) Agreement vs private seeds under contention.
    let mut t2 = Table::new(
        "E13b",
        "seed agreement vs private per-node schedules",
        "agreement bounds distinct schedules per neighborhood (δ); private seeds lose that bound — gap grows with sender contention, and private mode pays no T_s",
        vec![
            "senders m",
            "mode",
            "t_prog window",
            "progress rate [wilson]",
            "recv/round",
        ],
    );
    let clique = topology::clique(scale.pick(12, 24), 1.0);
    for (i, &m) in [2usize, 6, scale.pick(10, 20)].iter().enumerate() {
        let senders: Vec<NodeId> = (1..=m).map(NodeId).collect();
        let receiver = NodeId(0);
        for (mode_name, cfg) in [
            ("agreement", LbConfig::practical(0.25)),
            ("private", LbConfig::practical(0.25).with_private_seeds()),
        ] {
            let params = cfg.resolve(clique.r, clique.graph.delta(), clique.graph.delta_prime());
            let phases = 4u64;
            let results = run_trials(trials, 71_000 + i as u64 * 300, |s| {
                let env = QueueWorkload::uniform(clique.graph.len(), &senders, 1_000);
                let mut engine = build_engine(
                    &clique,
                    Box::new(scheduler::BernoulliEdges::new(0.5, s)),
                    &cfg,
                    Box::new(env),
                    s,
                    RecordingPolicy::full(),
                );
                engine.run(params.phase_len() * phases);
                let trace = engine.into_trace();
                let outcomes = local_broadcast::spec::progress_outcomes(
                    &trace,
                    &clique.graph,
                    params.phase_len(),
                )
                .expect("well-formed");
                let mine: Vec<_> = outcomes.iter().filter(|o| o.node == receiver).collect();
                let ok = mine.iter().filter(|o| o.received).count();
                let total = mine.len();
                let receptions = trace
                    .receptions()
                    .filter(|(_, rx, _, msg)| *rx == receiver && matches!(msg, LbMsg::Data(_)))
                    .count() as f64
                    / (params.phase_len() * phases) as f64;
                (ok, total, receptions)
            });
            let ok: usize = results.iter().map(|(o, _, _)| o).sum();
            let total: usize = results.iter().map(|(_, t, _)| t).sum();
            let tps: Vec<f64> = results.iter().map(|(_, _, r)| *r).collect();
            let p = Proportion::wilson(ok, total.max(1));
            t2.push_row(vec![
                m.to_string(),
                mode_name.into(),
                params.phase_len().to_string(),
                format!("{} [{}, {}]", fnum(p.estimate), fnum(p.lo), fnum(p.hi)),
                fnum(Summary::of(&tps).mean),
            ]);
        }
    }

    vec![t1, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e13_quick_produces_two_tables() {
        let tables = e13_ablations(Scale::Quick);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].rows.len(), 4);
        assert_eq!(tables[1].rows.len(), 6);
        // Overhead column is strictly decreasing in k.
        let overheads: Vec<f64> = tables[0]
            .rows
            .iter()
            .map(|r| r[2].parse().unwrap())
            .collect();
        for w in overheads.windows(2) {
            assert!(w[1] < w[0], "overhead not decreasing: {overheads:?}");
        }
    }
}
