//! Local broadcast experiments: E4 (progress), E5 (acknowledgment),
//! E6 (per-round reception probabilities, Lemma 4.2).

use super::Scale;
use crate::runner::run_trials;
use crate::stats::{Proportion, Summary};
use crate::table::{fnum, Table};
use local_broadcast::config::LbConfig;
use local_broadcast::msg::LbMsg;
use local_broadcast::service::{build_engine, run_single_broadcast, QueueWorkload};
use local_broadcast::spec;
use radio_sim::graph::NodeId;
use radio_sim::scheduler;
use radio_sim::topology::{self, Topology};
use radio_sim::trace::RecordingPolicy;

/// Runs a continuous sender (long message queue) for `phases` phases with
/// full recording and returns the trace.
fn run_stream(
    topo: &Topology,
    cfg: &LbConfig,
    sender: NodeId,
    phases: u64,
    master_seed: u64,
) -> local_broadcast::LbTrace {
    let params = cfg.resolve(topo.r, topo.graph.delta(), topo.graph.delta_prime());
    let env = QueueWorkload::uniform(topo.graph.len(), &[sender], 1_000);
    let mut engine = build_engine(
        topo,
        Box::new(scheduler::AllExtraEdges),
        cfg,
        Box::new(env),
        master_seed,
        RecordingPolicy::full(),
    );
    engine.run(params.phase_len() * phases);
    engine.into_trace()
}

/// E4: the progress guarantee and the t_prog shape.
pub fn e4_progress(scale: Scale) -> Vec<Table> {
    let trials = scale.pick(6, 40);
    let phases = scale.pick(4, 8) as u64;
    let cfg = LbConfig::practical(0.25);

    let mut t1 = Table::new(
        "E4a",
        "progress success rate and t_prog vs Δ (cliques, ε₁ = 1/4)",
        "success ≥ 1 − ε₁ = 0.75 per (node, phase); t_prog grows with log Δ only",
        vec![
            "Δ",
            "t_prog (rounds)",
            "progress ok",
            "rate [wilson 95%]",
            "mean 1st-recv latency",
        ],
    );
    for (i, &n) in [4usize, 8, 16, scale.pick(16, 32)].iter().enumerate() {
        let topo = topology::clique(n, 1.0);
        let params = cfg.resolve(topo.r, topo.graph.delta(), topo.graph.delta_prime());
        let results = run_trials(trials, 10_000 + i as u64 * 100, |s| {
            let trace = run_stream(&topo, &cfg, NodeId(0), phases, s);
            let outcomes =
                spec::progress_outcomes(&trace, &topo.graph, params.phase_len())
                    .expect("well-formed trace");
            let ok = outcomes.iter().filter(|o| o.received).count();
            // First reception latency from the start of each successful
            // phase.
            let latencies: Vec<f64> = first_reception_latencies(&trace, params.phase_len());
            (ok, outcomes.len(), latencies)
        });
        let ok: usize = results.iter().map(|(o, _, _)| o).sum();
        let total: usize = results.iter().map(|(_, t, _)| t).sum();
        let lat: Vec<f64> = results.into_iter().flat_map(|(_, _, l)| l).collect();
        let p = Proportion::wilson(ok, total.max(1));
        t1.push_row(vec![
            n.to_string(),
            params.phase_len().to_string(),
            format!("{ok}/{total}"),
            format!("{} [{}, {}]", fnum(p.estimate), fnum(p.lo), fnum(p.hi)),
            if lat.is_empty() {
                "—".into()
            } else {
                fnum(Summary::of(&lat).mean)
            },
        ]);
    }

    let mut t2 = Table::new(
        "E4b",
        "progress success rate vs ε₁ (clique Δ = 8)",
        "success rate ≥ 1 − ε₁ for every ε₁; t_prog grows as ε₁ shrinks",
        vec!["ε₁", "1 − ε₁", "t_prog (rounds)", "rate [wilson 95%]"],
    );
    let topo = topology::clique(8, 1.0);
    for (i, &eps) in [0.5, 0.25, 0.0625].iter().enumerate() {
        let cfg = LbConfig::practical(eps);
        let params = cfg.resolve(topo.r, topo.graph.delta(), topo.graph.delta_prime());
        let results = run_trials(trials, 11_000 + i as u64 * 100, |s| {
            let trace = run_stream(&topo, &cfg, NodeId(0), phases, s);
            let outcomes =
                spec::progress_outcomes(&trace, &topo.graph, params.phase_len())
                    .expect("well-formed trace");
            (
                outcomes.iter().filter(|o| o.received).count(),
                outcomes.len(),
            )
        });
        let ok: usize = results.iter().map(|(o, _)| o).sum();
        let total: usize = results.iter().map(|(_, t)| t).sum();
        let p = Proportion::wilson(ok, total.max(1));
        t2.push_row(vec![
            format!("{eps}"),
            fnum(1.0 - eps),
            params.phase_len().to_string(),
            format!("{} [{}, {}]", fnum(p.estimate), fnum(p.lo), fnum(p.hi)),
        ]);
    }

    vec![t1, t2]
}

/// For each phase and listening node, rounds from phase start to first
/// data reception (successful phases only).
fn first_reception_latencies(trace: &local_broadcast::LbTrace, phase_len: u64) -> Vec<f64> {
    use std::collections::BTreeMap;
    let mut first: BTreeMap<(u64, NodeId), u64> = BTreeMap::new();
    for (round, receiver, _, msg) in trace.receptions() {
        if matches!(msg, LbMsg::Data(_)) {
            let phase = (round - 1) / phase_len + 1;
            let start = (phase - 1) * phase_len + 1;
            first.entry((phase, receiver)).or_insert(round - start + 1);
        }
    }
    first.values().map(|&v| v as f64).collect()
}

/// E5: acknowledgment latency and reliability; t_ack linear in Δ.
pub fn e5_acknowledgment(scale: Scale) -> Vec<Table> {
    let trials = scale.pick(6, 40);
    let cfg = LbConfig::practical(0.25);

    let mut t1 = Table::new(
        "E5a",
        "single-sender ack latency and reliability vs Δ (cliques)",
        "ack within t_ack always; all reliable neighbors served before ack w.p. ≥ 1 − ε₁; t_ack = Θ(Δ · polylog)",
        vec![
            "Δ",
            "t_ack bound (rounds)",
            "mean delivery-complete",
            "reliable",
            "rate [wilson 95%]",
        ],
    );
    for (i, &n) in [4usize, 8, 16, scale.pick(16, 32)].iter().enumerate() {
        let topo = topology::clique(n, 1.0);
        let params = cfg.resolve(topo.r, topo.graph.delta(), topo.graph.delta_prime());
        let results = run_trials(trials, 12_000 + i as u64 * 100, |s| {
            let out = run_single_broadcast(
                &topo,
                Box::new(scheduler::AllExtraEdges),
                &cfg,
                NodeId(0),
                s,
            );
            let acked = out.acked_at.expect("timely acknowledgment is deterministic");
            assert!(
                acked <= 1 + params.t_ack_rounds(),
                "ack at {acked} exceeded bound"
            );
            // The interesting random quantity: the round by which every
            // reliable neighbor has received (the ack round itself is
            // deterministic).
            let complete = topo
                .graph
                .reliable_neighbors(NodeId(0))
                .iter()
                .map(|v| out.recv_rounds.get(v).copied().unwrap_or(acked + 1))
                .max()
                .unwrap_or(0);
            (complete as f64, out.reliable(&topo, NodeId(0)))
        });
        let completes: Vec<f64> = results.iter().map(|(a, _)| *a).collect();
        let ok = results.iter().filter(|(_, r)| *r).count();
        let p = Proportion::wilson(ok, trials);
        t1.push_row(vec![
            n.to_string(),
            params.t_ack_rounds().to_string(),
            fnum(Summary::of(&completes).mean),
            format!("{ok}/{trials}"),
            format!("{} [{}, {}]", fnum(p.estimate), fnum(p.lo), fnum(p.hi)),
        ]);
    }

    // The Δ-broadcasters worst case behind the t_ack ≥ Δ lower bound: all
    // nodes broadcast concurrently; measure rounds until every message is
    // delivered everywhere.
    let mut t2 = Table::new(
        "E5b",
        "all-broadcast completion time vs Δ (cliques)",
        "a receiver hears ≤ 1 message/round, so completing Δ concurrent broadcasts takes Ω(Δ) rounds: completion grows ≈ linearly in Δ",
        vec!["Δ", "mean completion (rounds)", "completion / Δ"],
    );
    for (i, &n) in [4usize, 8, scale.pick(8, 16)].iter().enumerate() {
        let topo = topology::clique(n, 1.0);
        let params = cfg.resolve(topo.r, topo.graph.delta(), topo.graph.delta_prime());
        let senders: Vec<NodeId> = (0..n).map(NodeId).collect();
        let results: Vec<f64> = run_trials(trials, 13_000 + i as u64 * 100, |s| {
            let env = QueueWorkload::uniform(n, &senders, 1);
            let mut engine = build_engine(
                &topo,
                Box::new(scheduler::AllExtraEdges),
                &cfg,
                Box::new(env),
                s,
                RecordingPolicy::outputs_only(),
            );
            let expected = n * (n - 1);
            let done = engine.run_until(params.t_ack_rounds() * 4, |t| {
                t.outputs().filter(|(_, _, o)| !o.is_ack()).count() >= expected
            });
            let round = engine.round() as f64;
            if done {
                round
            } else {
                // Censored at the horizon; report the horizon.
                round
            }
        });
        let sum = Summary::of(&results);
        t2.push_row(vec![
            n.to_string(),
            fnum(sum.mean),
            fnum(sum.mean / n as f64),
        ]);
    }

    vec![t1, t2]
}

/// E6: Lemma 4.2's per-round reception probabilities.
pub fn e6_lemma42(scale: Scale) -> Vec<Table> {
    let trials = scale.pick(6, 40);
    let phases = scale.pick(4, 8) as u64;
    let cfg = LbConfig::practical(0.25);

    let mut t = Table::new(
        "E6",
        "per-round reception probability in phase bodies (single sender)",
        "p_u ≥ c₂/(r² log(1/ε₂) log Δ) for a calibration c₂; p_{u,v} ≥ p_u/Δ'; the receiver's seed-group count stays ≤ δ (Lemma 4.2)",
        vec![
            "Δ",
            "bound c₂=1",
            "measured p_u",
            "measured p_{u,v}",
            "p_u/Δ'",
            "p_{u,v} ≥ p_u/Δ'?",
            "mean seed groups",
        ],
    );
    for (i, &n) in [4usize, 8, 16].iter().enumerate() {
        let topo = topology::clique(n, 1.0);
        let params = cfg.resolve(topo.r, topo.graph.delta(), topo.graph.delta_prime());
        let delta_prime = topo.graph.delta_prime() as f64;
        let results = run_trials(trials, 14_000 + i as u64 * 100, |s| {
            let env = QueueWorkload::uniform(topo.graph.len(), &[NodeId(0)], 1_000);
            let mut engine = build_engine(
                &topo,
                Box::new(scheduler::AllExtraEdges),
                &cfg,
                Box::new(env),
                s,
                RecordingPolicy::full(),
            );
            engine.run(params.phase_len() * phases);
            let groups = local_broadcast::instrument::seed_groups_per_phase(
                engine.processes(),
                &topo.graph,
            );
            let mean_groups = if groups.is_empty() {
                0.0
            } else {
                groups.iter().map(|g| g.mean()).sum::<f64>() / groups.len() as f64
            };
            let trace = engine.into_trace();
            let (pu, puv) = body_reception_rates(&trace, &params, NodeId(1), NodeId(0));
            (pu, puv, mean_groups)
        });
        let pu: Vec<f64> = results.iter().map(|(p, _, _)| *p).collect();
        let puv: Vec<f64> = results.iter().map(|(_, p, _)| *p).collect();
        let groups: Vec<f64> = results.iter().map(|(_, _, g)| *g).collect();
        let mean_pu = Summary::of(&pu).mean;
        let mean_puv = Summary::of(&puv).mean;
        let log_inv_e2 = (1.0 / cfg.epsilon2()).log2();
        let bound = 1.0
            / (topo.r * topo.r * log_inv_e2 * f64::from(params.log_delta));
        t.push_row(vec![
            n.to_string(),
            fnum(bound),
            fnum(mean_pu),
            fnum(mean_puv),
            fnum(mean_pu / delta_prime),
            if mean_puv + 1e-9 >= mean_pu / delta_prime {
                "yes".into()
            } else {
                "NO".into()
            },
            fnum(Summary::of(&groups).mean),
        ]);
    }
    vec![t]
}

/// Fraction of body rounds (within phases where the sender is active
/// throughout) in which `receiver` received any data, and received data
/// from `sender` specifically.
fn body_reception_rates(
    trace: &local_broadcast::LbTrace,
    params: &local_broadcast::config::LbParams,
    receiver: NodeId,
    sender: NodeId,
) -> (f64, f64) {
    let lcs = spec::lifecycles(trace).expect("well-formed trace");
    let phase_len = params.phase_len();
    let full_phases = trace.rounds / phase_len;
    let mut body_rounds = 0u64;
    let mut any = 0u64;
    let mut from_sender = 0u64;
    for phase in 1..=full_phases {
        let start = (phase - 1) * phase_len + 1;
        let end = phase * phase_len;
        let sender_active = lcs.iter().any(|lc| {
            lc.origin == sender && (start..=end).all(|t| lc.active_in(t))
        });
        if !sender_active {
            continue;
        }
        body_rounds += params.t_prog;
        for (round, rx, tx, msg) in trace.receptions() {
            if rx != receiver || !matches!(msg, LbMsg::Data(_)) {
                continue;
            }
            let pos = (round - 1) % phase_len;
            if round >= start && round <= end && pos >= params.t_s {
                any += 1;
                if tx == sender {
                    from_sender += 1;
                }
            }
        }
    }
    if body_rounds == 0 {
        (0.0, 0.0)
    } else {
        (any as f64 / body_rounds as f64, from_sender as f64 / body_rounds as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_quick_reports_progress_rates() {
        let tables = e4_progress(Scale::Quick);
        assert_eq!(tables.len(), 2);
        assert!(!tables[0].rows.is_empty());
        // Every row's success count has the form ok/total with total > 0.
        for row in &tables[0].rows {
            let (_, total) = row[2].split_once('/').expect("fraction");
            assert!(total.parse::<usize>().unwrap() > 0);
        }
    }

    #[test]
    fn e5_quick_acks_within_bound() {
        // e5 asserts internally that every ack lands within the bound.
        let tables = e5_acknowledgment(Scale::Quick);
        assert_eq!(tables.len(), 2);
    }

    #[test]
    fn e6_quick_satisfies_puv_relation() {
        let tables = e6_lemma42(Scale::Quick);
        for row in &tables[0].rows {
            assert_eq!(row[5], "yes", "p_u,v bound violated: {row:?}");
        }
    }
}
