//! Seed agreement experiments: E1 (δ bound), E2 (round complexity),
//! E3 (spec conformance), E10 (goodness dynamics).

use super::Scale;
use crate::runner::run_trials;
use crate::stats::{linear_fit, Summary};
use crate::table::{fnum, Table};
use radio_sim::engine::Engine;
use radio_sim::environment::NullEnvironment;
use radio_sim::scheduler;
use radio_sim::topology::{self, Topology};
use seed_agreement::alg::SeedProcess;
use seed_agreement::{goodness, spec, SeedConfig};

/// Runs SeedAlg to completion on `topo`, returning the engine (trace and
/// processes inside).
fn run_seed(
    topo: &Topology,
    cfg: &SeedConfig,
    sched: Box<dyn scheduler::LinkScheduler>,
    master_seed: u64,
) -> Engine<SeedProcess> {
    let n = topo.graph.len();
    let total = cfg.total_rounds(topo.graph.delta());
    let procs: Vec<SeedProcess> = (0..n).map(|_| SeedProcess::new(cfg.clone())).collect();
    let mut engine = Engine::new(
        topo.configuration(sched),
        procs,
        Box::new(NullEnvironment),
        master_seed,
    );
    engine.run(total);
    engine
}

/// Max distinct owners over all neighborhoods in one trial.
fn max_owners(topo: &Topology, cfg: &SeedConfig, master_seed: u64) -> usize {
    let engine = run_seed(topo, cfg, Box::new(scheduler::AllExtraEdges), master_seed);
    max_owners_of_trace(engine.trace(), topo)
}

fn max_owners_of_trace(trace: &seed_agreement::SeedTrace, topo: &Topology) -> usize {
    spec::owners_per_neighborhood(trace, &topo.graph)
        .expect("well-formed execution")
        .into_iter()
        .max()
        .unwrap_or(0)
}

/// E1: δ grows with log(1/ε₁) and stays flat in Δ.
pub fn e1_delta_bound(scale: Scale) -> Vec<Table> {
    let trials = scale.pick(8, 60);

    // Table 1: sweep ε₁ at fixed topology.
    let topo = topology::random_geometric(topology::RggParams {
        n: scale.pick(60, 150),
        side: 4.0,
        r: 2.0,
        grey_reliable_p: 0.1,
        grey_unreliable_p: 0.8,
        seed: 11,
    });
    let n_nodes = topo.graph.len();
    let mut t1 = Table::new(
        "E1a",
        "distinct seed owners per G'-neighborhood vs ε₁",
        "Agreement (Spec condition 3) is per-vertex probabilistic: Pr(owners > δ) ≤ ε for δ = c_δ·r²·log₂(1/ε₁); the violation rate column must stay below ε₁ (calibration c_δ = 1.5)",
        vec![
            "ε₁",
            "δ bound (c_δ=1.5, r=2)",
            "mean max δ",
            "per-vertex violation rate",
            "rate ≤ ε₁?",
        ],
    );
    for (i, &eps) in [0.25, 1.0 / 16.0, 1.0 / 64.0, 1.0 / 256.0].iter().enumerate() {
        let cfg = SeedConfig::practical(eps, 64);
        let bound = cfg.delta_bound(2.0, 1.5);
        let results = run_trials(trials, 1000 + i as u64 * 100, |s| {
            let engine = run_seed(&topo, &cfg, Box::new(scheduler::AllExtraEdges), s);
            let violations =
                spec::agreement_violations(engine.trace(), &topo.graph, bound)
                    .expect("well-formed execution");
            (max_owners_of_trace(engine.trace(), &topo), violations)
        });
        let maxes: Vec<f64> = results.iter().map(|(m, _)| *m as f64).collect();
        let violations: usize = results.iter().map(|(_, v)| v).sum();
        let rate = violations as f64 / (trials * n_nodes) as f64;
        t1.push_row(vec![
            format!("{eps}"),
            bound.to_string(),
            fnum(Summary::of(&maxes).mean),
            fnum(rate),
            if rate <= eps { "yes".into() } else { "NO".into() },
        ]);
    }

    // Table 2: sweep Δ (clique size) at fixed ε₁.
    let cfg = SeedConfig::practical(0.0625, 64);
    let mut t2 = Table::new(
        "E1b",
        "max distinct seed owners vs Δ (cliques, ε₁ = 1/16)",
        "δ is independent of Δ: the column stays flat as Δ grows",
        vec!["Δ", "mean max δ", "p95 max δ"],
    );
    for (i, &n) in [8usize, 16, 32, scale.pick(32, 64), scale.pick(32, 128)]
        .iter()
        .enumerate()
    {
        let topo = topology::clique(n, 1.0);
        let results: Vec<f64> = run_trials(trials, 2000 + i as u64 * 100, |s| {
            max_owners(&topo, &cfg, s) as f64
        });
        let sum = Summary::of(&results);
        t2.push_row(vec![n.to_string(), fnum(sum.mean), fnum(sum.p95)]);
    }

    vec![t1, t2]
}

/// E2: round complexity O(log Δ · log²(1/ε₁)) — the formula, plus the
/// empirically observed last-decision round.
pub fn e2_round_complexity(scale: Scale) -> Vec<Table> {
    let trials = scale.pick(6, 40);

    let mut t1 = Table::new(
        "E2a",
        "SeedAlg rounds vs Δ (ε₁ = 1/16)",
        "total rounds grow linearly in log₂ Δ; last decision within the bound",
        vec!["Δ", "log₂ Δ̂", "bound (rounds)", "mean last decide", "max last decide"],
    );
    let cfg = SeedConfig::practical(0.0625, 64);
    let mut pts = Vec::new();
    for (i, &n) in [4usize, 8, 16, 32, scale.pick(32, 64)].iter().enumerate() {
        let topo = topology::clique(n, 1.0);
        let bound = cfg.total_rounds(topo.graph.delta());
        let last: Vec<f64> = run_trials(trials, 3000 + i as u64 * 100, |s| {
            let engine = run_seed(&topo, &cfg, Box::new(scheduler::AllExtraEdges), s);
            engine
                .trace()
                .outputs()
                .map(|(round, _, _)| round)
                .max()
                .unwrap_or(0) as f64
        });
        let sum = Summary::of(&last);
        let lg = f64::from(cfg.phases(topo.graph.delta()));
        pts.push((lg, bound as f64));
        t1.push_row(vec![
            n.to_string(),
            fnum(lg),
            bound.to_string(),
            fnum(sum.mean),
            fnum(sum.max),
        ]);
        assert!(sum.max <= bound as f64, "decisions exceeded the bound");
    }
    let (_, slope, r2) = linear_fit(&pts);
    t1.push_row(vec![
        "fit".into(),
        "—".into(),
        format!("slope {}", fnum(slope)),
        format!("r² {}", fnum(r2)),
        "—".into(),
    ]);

    let mut t2 = Table::new(
        "E2b",
        "SeedAlg rounds vs ε₁ (Δ = 16)",
        "total rounds grow quadratically in log₂(1/ε₁): rounds / log² is flat",
        vec!["ε₁", "log₂(1/ε₁)", "bound (rounds)", "bound / log₂²(1/ε₁)"],
    );
    let topo = topology::clique(16, 1.0);
    for &eps in &[0.25, 1.0 / 16.0, 1.0 / 64.0, 1.0 / 256.0] {
        let cfg = SeedConfig::practical(eps, 64);
        let bound = cfg.total_rounds(topo.graph.delta());
        let lg = (1.0 / eps).log2();
        t2.push_row(vec![
            format!("{eps}"),
            fnum(lg),
            bound.to_string(),
            fnum(bound as f64 / (lg * lg)),
        ]);
    }

    vec![t1, t2]
}

/// E3: deterministic spec conditions hold in every execution, across the
/// whole oblivious scheduler family; committed seeds look uniform.
pub fn e3_spec_conformance(scale: Scale) -> Vec<Table> {
    let trials = scale.pick(5, 30);
    let cfg = SeedConfig::practical(0.125, 64);

    let mut t = Table::new(
        "E3",
        "Seed spec deterministic conditions across schedulers",
        "zero violations of well-formedness/consistency/fidelity in every execution; max seed-bit bias ≈ 0",
        vec![
            "scheduler",
            "trials",
            "wf violations",
            "consistency violations",
            "fidelity violations",
            "max bit bias",
        ],
    );

    let topo = topology::random_geometric(topology::RggParams {
        n: scale.pick(40, 100),
        side: 3.5,
        r: 2.0,
        grey_reliable_p: 0.1,
        grey_unreliable_p: 0.8,
        seed: 21,
    });

    let sched_names: Vec<&'static str> = scheduler::oblivious_family(0)
        .iter()
        .map(|s| s.name())
        .collect();
    for (si, name) in sched_names.iter().enumerate() {
        let mut wf = 0usize;
        let mut cons = 0usize;
        let mut fid = 0usize;
        let mut seeds_all = Vec::new();
        let results = run_trials(trials, 4000 + si as u64 * 100, |s| {
            let sched = scheduler::oblivious_family(s)
                .remove(si);
            let engine = run_seed(&topo, &cfg, sched, s);
            let trace = engine.trace();
            let wf_bad = spec::check_well_formedness(trace).is_err();
            let cons_bad = spec::check_consistency(trace).is_err();
            let fid_bad = spec::check_owner_seed_fidelity(trace).is_err();
            let seeds: Vec<seed_agreement::Seed> = engine
                .processes()
                .iter()
                .filter_map(|p| p.initial_seed().cloned())
                .collect();
            (wf_bad, cons_bad, fid_bad, seeds)
        });
        for (w, c, f, seeds) in results {
            wf += usize::from(w);
            cons += usize::from(c);
            fid += usize::from(f);
            seeds_all.extend(seeds);
        }
        let refs: Vec<&seed_agreement::Seed> = seeds_all.iter().collect();
        let bias = spec::max_bit_bias(&refs);
        t.push_row(vec![
            (*name).into(),
            trials.to_string(),
            wf.to_string(),
            cons.to_string(),
            fid.to_string(),
            fnum(bias),
        ]);
    }
    vec![t]
}

/// E10: region-of-goodness dynamics (Appendix B).
pub fn e10_goodness(scale: Scale) -> Vec<Table> {
    let trials = scale.pick(6, 40);
    let mut t = Table::new(
        "E10",
        "region goodness across SeedAlg phases",
        "phase 1 always good (Lemma B.2); goodness persists (B.8); per-phase leaders ≤ O(log 1/ε₁) (B.6)",
        vec![
            "ε₁",
            "phase-1 good",
            "mean good fraction",
            "mean max leaders/phase",
            "c₃·log₂(1/ε₁) (bound, c₃=2)",
        ],
    );
    let topo = topology::random_geometric(topology::RggParams {
        n: scale.pick(80, 200),
        side: 3.0,
        r: 2.0,
        grey_reliable_p: 0.1,
        grey_unreliable_p: 0.8,
        seed: 31,
    });
    for (i, &eps) in [0.25, 0.0625, 1.0 / 64.0].iter().enumerate() {
        let cfg = SeedConfig::practical(eps, 64);
        let results = run_trials(trials, 5000 + i as u64 * 100, |s| {
            let engine = run_seed(&topo, &cfg, Box::new(scheduler::AllExtraEdges), s);
            let report = goodness::analyze(&topo, engine.processes(), &cfg, 4.0);
            (
                report.all_good_in_phase_one(),
                report.good_fraction(),
                report.max_leaders_per_phase() as f64,
            )
        });
        let phase1 = results.iter().filter(|(g, _, _)| *g).count();
        let fractions: Vec<f64> = results.iter().map(|(_, f, _)| *f).collect();
        let leaders: Vec<f64> = results.iter().map(|(_, _, l)| *l).collect();
        t.push_row(vec![
            format!("{eps}"),
            format!("{phase1}/{trials}"),
            fnum(Summary::of(&fractions).mean),
            fnum(Summary::of(&leaders).mean),
            fnum(2.0 * (1.0 / eps).log2()),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_quick_produces_two_tables() {
        let tables = e1_delta_bound(Scale::Quick);
        assert_eq!(tables.len(), 2);
        assert!(tables[0].rows.len() >= 4);
        assert!(tables[1].rows.len() >= 4);
    }

    #[test]
    fn e2_quick_respects_bound() {
        // e2 asserts internally that decisions occur within the bound.
        let tables = e2_round_complexity(Scale::Quick);
        assert_eq!(tables.len(), 2);
    }

    #[test]
    fn e3_quick_has_zero_violations() {
        let tables = e3_spec_conformance(Scale::Quick);
        for row in &tables[0].rows {
            assert_eq!(row[2], "0", "well-formedness violated: {row:?}");
            assert_eq!(row[3], "0", "consistency violated: {row:?}");
            assert_eq!(row[4], "0", "fidelity violated: {row:?}");
        }
    }

    #[test]
    fn e10_quick_phase_one_always_good() {
        let tables = e10_goodness(Scale::Quick);
        for row in &tables[0].rows {
            let (num, den) = row[1].split_once('/').expect("fraction");
            assert_eq!(num, den, "phase-1 goodness failed: {row:?}");
        }
    }
}
