//! # analysis: Monte-Carlo harness and the experiment suite
//!
//! The paper proves its guarantees; it prints no tables or figures. The
//! reproduction therefore defines one **experiment per quantitative
//! claim** (see DESIGN.md §4 and EXPERIMENTS.md) and measures each by
//! Monte-Carlo estimation over seeded, deterministic trials.
//!
//! * [`stats`] — summaries, proportion confidence intervals, and the
//!   log-scaling fits used to verify asymptotic *shape*.
//! * [`runner`] — embarrassingly parallel trial execution.
//! * [`table`] — experiment output as aligned text / markdown / CSV.
//! * [`report`] — combined markdown reports and the tolerance-aware
//!   comparison behind golden-metric regression gates.
//! * [`experiments`] — the E1–E12 suite, each returning [`table::Table`]s
//!   that the `bench` crate's binaries print and EXPERIMENTS.md records.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;
pub mod runner;
pub mod stats;
pub mod table;
