//! Combined markdown reports and tolerance-aware metric comparison.
//!
//! A campaign aggregates many experiments' [`Table`]s into a single
//! markdown document (the EXPERIMENTS.md analog for scenario runs), and
//! a regression gate compares freshly measured means against checked-in
//! golden values with a symmetric absolute tolerance. Both live here so
//! every producer of tables — the hard-coded experiment suite and the
//! declarative scenario campaigns — shares one report format and one
//! notion of "within tolerance".

use crate::table::{fnum, Table};

/// Renders a titled markdown document from captioned sections.
///
/// Each section is `(heading, tables)`; the heading becomes an `##`
/// header and every table renders through [`Table::to_markdown`]. An
/// empty `intro` is skipped. The output is a pure function of the
/// inputs — byte-identical across runs and thread counts — so reports
/// are diffable artifacts.
pub fn markdown_report(title: &str, intro: &str, sections: &[(String, Vec<Table>)]) -> String {
    let mut out = format!("# {title}\n\n");
    if !intro.is_empty() {
        out.push_str(intro);
        out.push_str("\n\n");
    }
    for (heading, tables) in sections {
        out.push_str(&format!("## {heading}\n\n"));
        for t in tables {
            out.push_str(&t.to_markdown());
            out.push('\n');
        }
    }
    out
}

/// Whether `actual` lies within `tolerance` of `expected`.
///
/// The comparison is an absolute-difference band, `|expected − actual|
/// ≤ tolerance`, so it is **symmetric** in its two value arguments and
/// reflexive for any `tolerance ≥ 0` — a blessed value always accepts
/// itself. Any NaN among the inputs (or a negative tolerance) fails:
/// a golden gate must never pass vacuously.
pub fn within_tolerance(expected: f64, actual: f64, tolerance: f64) -> bool {
    tolerance >= 0.0 && (expected - actual).abs() <= tolerance
}

/// Formats a golden expectation as `mean ± tolerance` for report tables.
pub fn pm(mean: f64, tolerance: f64) -> String {
    format!("{} ± {}", fnum(mean), fnum(tolerance))
}

/// A run-performance footer for written campaign/sweep reports: total
/// wall-clock, aggregate trial throughput, and worker-thread count, so
/// every checked-in report doubles as a perf datapoint.
///
/// This is deliberately **not** part of [`markdown_report`] /
/// `to_markdown` output: those stay pure functions of the measured
/// metrics (byte-identical across runs), and the caller appends the
/// footer only when writing a report file.
pub fn perf_footer(trials: usize, wall_s: f64, threads: usize) -> String {
    let rate = if wall_s > 0.0 { trials as f64 / wall_s } else { 0.0 };
    format!(
        "\n---\n\n_Run: {trials} trials in {wall_s:.2} s ({rate:.0} trials/s) on {threads} worker thread{}._\n",
        if threads == 1 { "" } else { "s" }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_contains_title_sections_and_tables() {
        let mut t = Table::new("X", "demo", "flat", vec!["a"]);
        t.push_row(vec!["1".into()]);
        let md = markdown_report(
            "Campaign",
            "three scenarios",
            &[("first".to_string(), vec![t])],
        );
        assert!(md.starts_with("# Campaign\n"));
        assert!(md.contains("three scenarios"));
        assert!(md.contains("## first"));
        assert!(md.contains("### X: demo"));
        assert!(md.contains("| 1 |"));
    }

    #[test]
    fn report_skips_empty_intro() {
        let md = markdown_report("T", "", &[]);
        assert_eq!(md, "# T\n\n");
    }

    #[test]
    fn tolerance_band_is_symmetric_and_closed() {
        assert!(within_tolerance(10.0, 12.0, 2.0));
        assert!(within_tolerance(12.0, 10.0, 2.0));
        assert!(!within_tolerance(10.0, 12.1, 2.0));
        assert!(within_tolerance(5.0, 5.0, 0.0));
    }

    #[test]
    fn tolerance_rejects_nan_and_negative_band() {
        assert!(!within_tolerance(f64::NAN, 1.0, 10.0));
        assert!(!within_tolerance(1.0, f64::NAN, 10.0));
        assert!(!within_tolerance(1.0, 1.0, -0.5));
        assert!(!within_tolerance(1.0, 1.0, f64::NAN));
    }

    #[test]
    fn perf_footer_reports_rate_and_threads() {
        let f = perf_footer(448, 2.0, 8);
        assert!(f.contains("448 trials in 2.00 s"), "{f}");
        assert!(f.contains("(224 trials/s)"), "{f}");
        assert!(f.contains("8 worker threads"), "{f}");
        let one = perf_footer(1, 0.0, 1);
        assert!(one.contains("(0 trials/s) on 1 worker thread."), "{one}");
    }

    #[test]
    fn pm_uses_table_number_formatting() {
        assert_eq!(pm(12.34, 2.0), "12.3 ± 2.000");
    }

    #[test]
    fn pm_renders_non_finite_parts_as_dash() {
        // Non-finite means/tolerances never reach a blessed golden file
        // (validation rejects them), but a freshly measured NaN must
        // still render readably rather than as a `NaN` cell.
        assert_eq!(pm(f64::NAN, 2.0), "— ± 2.000");
        assert_eq!(pm(1.0, f64::INFINITY), "1.000 ± —");
    }
}
