//! Experiment output tables.
//!
//! Every experiment produces one or more [`Table`]s: a captioned grid of
//! strings with a stated paper prediction, printable as aligned text (for
//! the terminal), markdown (for EXPERIMENTS.md), or CSV (for plotting).

use serde::Serialize;
use std::fmt;

/// A captioned result table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Table {
    /// Short identifier, e.g. `"E1"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// What the paper predicts for this table's shape.
    pub prediction: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells (each row must match `headers.len()`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        prediction: impl Into<String>,
        headers: Vec<&str>,
    ) -> Self {
        Table {
            id: id.into(),
            title: title.into(),
            prediction: prediction.into(),
            headers: headers.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.chars().count());
            }
        }
        w
    }

    /// Renders as a GitHub-flavored markdown table with caption.
    pub fn to_markdown(&self) -> String {
        let mut out = format!(
            "### {}: {}\n\n*Paper prediction:* {}\n\n",
            self.id, self.title, self.prediction
        );
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Renders as CSV (headers first; fields quoted only when needed).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = self
            .headers
            .iter()
            .map(|h| esc(h))
            .collect::<Vec<_>>()
            .join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}] {}", self.id, self.title)?;
        writeln!(f, "  prediction: {}", self.prediction)?;
        let w = self.widths();
        let line = |cells: &[String], f: &mut fmt::Formatter<'_>| -> fmt::Result {
            write!(f, "  ")?;
            for (i, c) in cells.iter().enumerate() {
                write!(f, "{:<width$}  ", c, width = w[i])?;
            }
            writeln!(f)
        };
        line(&self.headers, f)?;
        let total: usize = w.iter().sum::<usize>() + 2 * w.len();
        writeln!(f, "  {}", "-".repeat(total))?;
        for row in &self.rows {
            line(row, f)?;
        }
        Ok(())
    }
}

/// Convenience: format a float with sensible precision for tables.
/// Non-finite values render as `—` (an absent measurement), never as
/// `NaN`/`inf` cells.
pub fn fnum(v: f64) -> String {
    if !v.is_finite() {
        "—".to_string()
    } else if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else if v.abs() >= 0.01 {
        format!("{v:.3}")
    } else {
        format!("{v:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("E0", "demo", "flat", vec!["x", "y"]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.push_row(vec!["10".into(), "20".into()]);
        t
    }

    #[test]
    fn display_is_aligned_and_captioned() {
        let s = sample().to_string();
        assert!(s.contains("[E0] demo"));
        assert!(s.contains("prediction: flat"));
        assert!(s.contains("x "));
    }

    #[test]
    fn markdown_has_separator_row() {
        let md = sample().to_markdown();
        assert!(md.contains("| x | y |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 10 | 20 |"));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("E0", "t", "p", vec!["a"]);
        t.push_row(vec!["x,y".into()]);
        assert!(t.to_csv().contains("\"x,y\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("E0", "t", "p", vec!["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn fnum_scales_precision() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(1234.6), "1235");
        assert_eq!(fnum(12.34), "12.3");
        assert_eq!(fnum(0.5), "0.500");
        assert_eq!(fnum(0.0001), "1.00e-4");
    }

    #[test]
    fn fnum_renders_non_finite_as_dash() {
        // Regression: NaN fell through to the `{:.2e}` branch and ±inf
        // to `{:.0}`, producing `NaN`/`inf` cells in check tables.
        assert_eq!(fnum(f64::NAN), "—");
        assert_eq!(fnum(f64::INFINITY), "—");
        assert_eq!(fnum(f64::NEG_INFINITY), "—");
    }
}
