//! Property-based tests for the statistics toolkit.

use analysis::stats::{linear_fit, quantile_sorted, Proportion, Summary};
use proptest::prelude::*;

proptest! {
    #[test]
    fn summary_orderings_hold(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let s = Summary::of(&values);
        prop_assert!(s.min <= s.median + 1e-9);
        prop_assert!(s.median <= s.p95 + 1e-9);
        prop_assert!(s.p95 <= s.max + 1e-9);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(s.std_dev >= 0.0);
        prop_assert_eq!(s.n, values.len());
    }

    #[test]
    fn summary_of_constant_sample_is_degenerate(c in -1e3f64..1e3, n in 1usize..50) {
        let s = Summary::of(&vec![c; n]);
        prop_assert!((s.mean - c).abs() < 1e-9);
        prop_assert!(s.std_dev.abs() < 1e-9);
        prop_assert!((s.median - c).abs() < 1e-9);
    }

    #[test]
    fn quantiles_are_monotone(
        mut values in proptest::collection::vec(-1e4f64..1e4, 2..100),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(quantile_sorted(&values, lo) <= quantile_sorted(&values, hi) + 1e-9);
    }

    #[test]
    fn wilson_interval_contains_estimate(successes in 0usize..500, extra in 1usize..500) {
        let trials = successes + extra;
        let p = Proportion::wilson(successes, trials);
        prop_assert!(p.lo <= p.estimate + 1e-9);
        prop_assert!(p.estimate <= p.hi + 1e-9);
        prop_assert!((0.0..=1.0).contains(&p.lo));
        prop_assert!((0.0..=1.0).contains(&p.hi));
    }

    #[test]
    fn wilson_interval_shrinks_with_more_trials(successes_rate in 0.1f64..0.9) {
        let small_n = 20usize;
        let large_n = 2000usize;
        let s_small = (successes_rate * small_n as f64) as usize;
        let s_large = (successes_rate * large_n as f64) as usize;
        let small = Proportion::wilson(s_small, small_n);
        let large = Proportion::wilson(s_large, large_n);
        prop_assert!(large.hi - large.lo < small.hi - small.lo);
    }

    #[test]
    fn linear_fit_is_exact_on_lines(
        a in -100.0f64..100.0,
        b in -100.0f64..100.0,
        n in 3usize..50,
    ) {
        let pts: Vec<(f64, f64)> = (0..n).map(|i| (i as f64, a + b * i as f64)).collect();
        let (fa, fb, r2) = linear_fit(&pts);
        prop_assert!((fa - a).abs() < 1e-6 * (1.0 + a.abs()));
        prop_assert!((fb - b).abs() < 1e-6 * (1.0 + b.abs()));
        prop_assert!(r2 > 1.0 - 1e-6);
    }

    #[test]
    fn linear_fit_r2_bounded(points in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 2..40)) {
        // Need at least two distinct x values.
        prop_assume!(points.windows(2).any(|w| (w[0].0 - w[1].0).abs() > 1e-6));
        let (_, _, r2) = linear_fit(&points);
        prop_assert!(r2 <= 1.0 + 1e-9);
    }
}
