//! Topology generators: the network families used across experiments.
//!
//! Every generator returns a [`Topology`]: a dual graph together with the
//! Euclidean embedding witnessing its `r`-geographic property (Section 2).
//! The grey zone — pairs at distance in `(1, r]` — is where the model's
//! adversarial flexibility lives: such pairs may be reliable neighbors,
//! unreliable neighbors, or non-neighbors, and the generators expose
//! parameters controlling that choice.

use crate::engine::Configuration;
use crate::geometry::{check_r_geographic, Embedding, Point};
use crate::graph::DualGraph;
use crate::rng::{derive_stream, StreamKind};
use crate::scheduler::LinkScheduler;
use rand::Rng;
use std::sync::Arc;

/// A generated network: dual graph plus its witnessing embedding.
#[derive(Debug, Clone)]
pub struct Topology {
    /// The dual graph `(G, G')`.
    pub graph: DualGraph,
    /// The embedding witnessing `r`-geography.
    pub embedding: Embedding,
    /// The geographic parameter.
    pub r: f64,
}

impl Topology {
    /// Wraps this topology and a scheduler into an engine
    /// [`Configuration`], propagating `r`.
    pub fn configuration(&self, scheduler: Box<dyn LinkScheduler>) -> Configuration {
        Configuration::new(self.graph.clone(), scheduler).with_r(self.r)
    }

    /// Verifies the two r-geographic conditions against the embedding.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violating pair.
    pub fn check_geographic(&self) -> Result<(), String> {
        let g = &self.graph;
        check_r_geographic(
            &self.embedding,
            self.r,
            |u, v| g.is_reliable_edge(crate::graph::NodeId(u), crate::graph::NodeId(v)),
            |u, v| g.is_any_edge(crate::graph::NodeId(u), crate::graph::NodeId(v)),
        )
    }
}

/// The O(n²) all-pairs construction, retained as the byte-identity oracle
/// for the bucketed path: it defines the canonical `(u, v)` lexicographic
/// order in which `grey_decision` (and hence any wiring RNG behind it) is
/// consumed.
fn build_from_embedding_reference(
    emb: Embedding,
    r: f64,
    mut grey_decision: impl FnMut(usize, usize, f64) -> GreyKind,
) -> Topology {
    let n = emb.len();
    let mut reliable = Vec::new();
    let mut extra = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            let d = emb.distance(u, v);
            if d <= 1.0 {
                reliable.push((u, v));
            } else if d <= r {
                match grey_decision(u, v, d) {
                    GreyKind::Reliable => reliable.push((u, v)),
                    GreyKind::Unreliable => extra.push((u, v)),
                    GreyKind::Absent => {}
                }
            }
        }
    }
    let graph = DualGraph::new(n, reliable, extra)
        .expect("generator produced structurally valid edges");
    Topology {
        graph,
        embedding: emb,
        r,
    }
}

/// Spatially bucketed construction: grid-hashes the embedding into cells
/// of side `max(1, r)` and examines only candidate pairs from the same or
/// neighboring cells — any pair at distance ≤ `max(1, r)` lands there, and
/// pairs further apart get no edge and consume no randomness in the
/// reference either. Per node, candidates are visited in ascending vertex
/// order, so `grey_decision` is called in the exact `(u, v)` lexicographic
/// order of [`build_from_embedding_reference`]: output and RNG consumption
/// are byte-identical while construction drops from O(n²) to
/// O(n · neighborhood).
fn build_from_embedding(
    emb: Embedding,
    r: f64,
    mut grey_decision: impl FnMut(usize, usize, f64) -> GreyKind,
) -> Topology {
    let n = emb.len();
    // Non-finite coordinates make floor-based cell hashing ill-defined;
    // such pairs compare false against every threshold, and the reference
    // handles them uniformly.
    let finite = emb.iter().all(|p| p.x.is_finite() && p.y.is_finite());
    if !finite || !r.is_finite() {
        return build_from_embedding_reference(emb, r, grey_decision);
    }
    let reach = r.max(1.0);
    let cell = |p: Point| ((p.x / reach).floor() as i64, (p.y / reach).floor() as i64);
    let mut buckets: std::collections::HashMap<(i64, i64), Vec<usize>> =
        std::collections::HashMap::new();
    for u in 0..n {
        // Vertices are inserted in ascending order, so every bucket's
        // member list is sorted.
        buckets.entry(cell(emb.position(u))).or_default().push(u);
    }
    let mut reliable = Vec::new();
    let mut extra = Vec::new();
    let mut candidates: Vec<usize> = Vec::new();
    for u in 0..n {
        let (cx, cy) = cell(emb.position(u));
        candidates.clear();
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(members) = buckets.get(&(cx + dx, cy + dy)) {
                    candidates.extend(members.iter().copied().filter(|&v| v > u));
                }
            }
        }
        // Restore global ascending order across the up-to-9 sorted runs.
        candidates.sort_unstable();
        for &v in &candidates {
            let d = emb.distance(u, v);
            if d <= 1.0 {
                reliable.push((u, v));
            } else if d <= r {
                match grey_decision(u, v, d) {
                    GreyKind::Reliable => reliable.push((u, v)),
                    GreyKind::Unreliable => extra.push((u, v)),
                    GreyKind::Absent => {}
                }
            }
        }
    }
    let graph = DualGraph::new(n, reliable, extra)
        .expect("generator produced structurally valid edges");
    Topology {
        graph,
        embedding: emb,
        r,
    }
}

/// How a grey-zone pair (distance in `(1, r]`) is wired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GreyKind {
    /// The pair gets a reliable edge (allowed by the model).
    Reliable,
    /// The pair gets an unreliable edge (scheduler-controlled).
    Unreliable,
    /// The pair gets no edge.
    Absent,
}

/// Builds a topology from an explicit embedding, wiring every grey-zone
/// pair (distance in `(1, r]`) the same way. Experiments use this to
/// construct bespoke adversarial arenas.
pub fn from_embedding(emb: Embedding, r: f64, grey: GreyKind) -> Topology {
    build_from_embedding(emb, r, |_, _, _| grey)
}

/// Errors from invalid [`RggParams`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RggError {
    /// `n` was zero: the deployment would be an empty (degenerate) graph.
    NoNodes,
    /// `side` was non-finite or non-positive.
    BadSide(f64),
    /// `r` was non-finite or below 1 (the model requires `r ≥ 1`).
    BadRadius(f64),
    /// A grey wiring probability fell outside `[0, 1]` (named field,
    /// offending value). Out-of-range values panic deep inside the RNG's
    /// `gen_bool`; NaN is rejected here too.
    BadProbability(&'static str, f64),
}

impl std::fmt::Display for RggError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RggError::NoNodes => write!(f, "rgg: n must be >= 1"),
            RggError::BadSide(s) => write!(f, "rgg: side must be finite and > 0, got {s}"),
            RggError::BadRadius(r) => write!(f, "rgg: r must be finite and >= 1, got {r}"),
            RggError::BadProbability(name, p) => {
                write!(f, "rgg: {name} must be in [0, 1], got {p}")
            }
        }
    }
}

impl std::error::Error for RggError {}

/// Parameters for [`random_geometric`].
#[derive(Debug, Clone, Copy)]
pub struct RggParams {
    /// Number of nodes.
    pub n: usize,
    /// Side length of the square deployment area.
    pub side: f64,
    /// Geographic parameter `r ≥ 1`.
    pub r: f64,
    /// Probability a grey-zone pair becomes a *reliable* edge.
    pub grey_reliable_p: f64,
    /// Probability a grey-zone pair (not made reliable) becomes an
    /// *unreliable* edge.
    pub grey_unreliable_p: f64,
    /// Seed for placement and grey-zone wiring.
    pub seed: u64,
}

impl Default for RggParams {
    fn default() -> Self {
        RggParams {
            n: 50,
            side: 4.0,
            r: 2.0,
            grey_reliable_p: 0.1,
            grey_unreliable_p: 0.8,
            seed: 0,
        }
    }
}

impl RggParams {
    /// Checks the parameters up front, instead of panicking deep inside
    /// placement/wiring (`gen_bool` aborts on probabilities outside
    /// `[0, 1]`) or silently producing a degenerate graph (`n = 0`,
    /// non-positive `side`).
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as an [`RggError`].
    pub fn validate(&self) -> Result<(), RggError> {
        if self.n == 0 {
            return Err(RggError::NoNodes);
        }
        if !self.side.is_finite() || self.side <= 0.0 {
            return Err(RggError::BadSide(self.side));
        }
        if !self.r.is_finite() || self.r < 1.0 {
            return Err(RggError::BadRadius(self.r));
        }
        for (name, p) in [
            ("grey_reliable_p", self.grey_reliable_p),
            ("grey_unreliable_p", self.grey_unreliable_p),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(RggError::BadProbability(name, p));
            }
        }
        Ok(())
    }
}

fn rgg_wiring(
    params: RggParams,
    build: impl FnOnce(Embedding, f64, &mut dyn FnMut(usize, usize, f64) -> GreyKind) -> Topology,
) -> Topology {
    let mut rng = derive_stream(params.seed, StreamKind::Topology, 0);
    let points = (0..params.n)
        .map(|_| Point::new(rng.gen::<f64>() * params.side, rng.gen::<f64>() * params.side))
        .collect();
    let mut wiring_rng = derive_stream(params.seed, StreamKind::Topology, 1);
    build(Embedding::new(points), params.r, &mut |_, _, _| {
        if wiring_rng.gen_bool(params.grey_reliable_p) {
            GreyKind::Reliable
        } else if wiring_rng.gen_bool(params.grey_unreliable_p) {
            GreyKind::Unreliable
        } else {
            GreyKind::Absent
        }
    })
}

/// A random geometric dual graph: nodes placed uniformly in a
/// `side × side` square; pairs within distance 1 are reliable; grey-zone
/// pairs are wired per the probabilities in `params`. Construction is
/// spatially bucketed (O(n · neighborhood), not O(n²)), byte-identical to
/// [`random_geometric_reference`].
///
/// # Panics
///
/// Panics when `params` fail [`RggParams::validate`]; use
/// [`try_random_geometric`] for a `Result`.
pub fn random_geometric(params: RggParams) -> Topology {
    match try_random_geometric(params) {
        Ok(t) => t,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible variant of [`random_geometric`].
///
/// # Errors
///
/// Returns an [`RggError`] when `params` fail [`RggParams::validate`].
pub fn try_random_geometric(params: RggParams) -> Result<Topology, RggError> {
    params.validate()?;
    Ok(rgg_wiring(params, |emb, r, grey| build_from_embedding(emb, r, grey)))
}

/// The O(n²) all-pairs reference construction of [`random_geometric`],
/// retained as the byte-identity test oracle for the bucketed path.
///
/// # Panics
///
/// Panics when `params` fail [`RggParams::validate`].
pub fn random_geometric_reference(params: RggParams) -> Topology {
    if let Err(e) = params.validate() {
        panic!("{e}");
    }
    rgg_wiring(params, |emb, r, grey| {
        build_from_embedding_reference(emb, r, grey)
    })
}

/// `n` nodes on a line with the given spacing; grey-zone pairs become
/// unreliable edges.
pub fn line(n: usize, spacing: f64, r: f64) -> Topology {
    let points = (0..n)
        .map(|i| Point::new(i as f64 * spacing, 0.0))
        .collect();
    build_from_embedding(Embedding::new(points), r, |_, _, _| GreyKind::Unreliable)
}

/// A `rows × cols` grid with the given spacing; grey-zone pairs become
/// unreliable edges.
pub fn grid(rows: usize, cols: usize, spacing: f64, r: f64) -> Topology {
    let mut points = Vec::with_capacity(rows * cols);
    for i in 0..rows {
        for j in 0..cols {
            points.push(Point::new(j as f64 * spacing, i as f64 * spacing));
        }
    }
    build_from_embedding(Embedding::new(points), r, |_, _, _| GreyKind::Unreliable)
}

/// `n` nodes packed in a disc of diameter ≤ 1: a reliable clique. This is
/// the worst case for acknowledgment (a receiver neighboring `Δ − 1`
/// broadcasters, the `t_ack ≥ Δ` argument of Section 1).
pub fn clique(n: usize, r: f64) -> Topology {
    // Place nodes on a circle of radius 0.49 so every pairwise distance is
    // < 1.
    let points = (0..n)
        .map(|i| {
            let angle = 2.0 * std::f64::consts::PI * (i as f64) / (n.max(1) as f64);
            Point::new(0.49 * angle.cos(), 0.49 * angle.sin())
        })
        .collect();
    build_from_embedding(Embedding::new(points), r, |_, _, _| GreyKind::Unreliable)
}

/// The grey-zone sandwich used by baseline-thwarting experiments (E7):
/// a receiver at the origin, `reliable_senders` nodes within distance 1
/// (its `G`-neighbors), and `grey_senders` nodes in the annulus
/// `(1, r]` connected to the receiver and to each other's range only by
/// *unreliable* edges.
///
/// Under a contention-pumping scheduler the unreliable senders flood the
/// receiver exactly when a fixed-probability baseline transmits
/// aggressively.
pub fn grey_sandwich(reliable_senders: usize, grey_senders: usize, r: f64) -> Topology {
    assert!(r > 1.0, "grey sandwich needs r > 1 to host grey senders");
    let mut points = vec![Point::new(0.0, 0.0)];
    // Reliable senders: tight arc near the receiver.
    for i in 0..reliable_senders {
        let angle = 0.4 * (i as f64) / (reliable_senders.max(1) as f64);
        points.push(Point::new(0.8 * angle.cos(), 0.8 * angle.sin()));
    }
    // Grey senders: ring at radius (1 + r) / 2.
    let ring = (1.0 + r) / 2.0;
    for i in 0..grey_senders {
        let angle = 2.0 * std::f64::consts::PI * (i as f64) / (grey_senders.max(1) as f64);
        points.push(Point::new(ring * angle.cos(), ring * angle.sin()));
    }
    build_from_embedding(Embedding::new(points), r, |_, _, _| GreyKind::Unreliable)
}

/// Parameters for [`clustered`].
#[derive(Debug, Clone, Copy)]
pub struct ClusterParams {
    /// Number of clusters.
    pub clusters: usize,
    /// Nodes per cluster.
    pub cluster_size: usize,
    /// Distance between adjacent cluster centers.
    pub spacing: f64,
    /// Radius of each cluster (≤ 0.5 keeps clusters internally reliable).
    pub spread: f64,
    /// Geographic parameter.
    pub r: f64,
    /// Placement seed.
    pub seed: u64,
}

impl Default for ClusterParams {
    fn default() -> Self {
        ClusterParams {
            clusters: 4,
            cluster_size: 8,
            spacing: 1.5,
            spread: 0.4,
            r: 2.0,
            seed: 0,
        }
    }
}

/// Clusters of tightly packed nodes with grey-zone links between adjacent
/// clusters: internally reliable, externally unreliable.
pub fn clustered(params: ClusterParams) -> Topology {
    let mut rng = derive_stream(params.seed, StreamKind::Topology, 2);
    let mut points = Vec::new();
    for c in 0..params.clusters {
        let cx = c as f64 * params.spacing;
        for _ in 0..params.cluster_size {
            let dx = (rng.gen::<f64>() - 0.5) * 2.0 * params.spread;
            let dy = (rng.gen::<f64>() - 0.5) * 2.0 * params.spread;
            points.push(Point::new(cx + dx, dy));
        }
    }
    build_from_embedding(Embedding::new(points), params.r, |_, _, _| {
        GreyKind::Unreliable
    })
}

/// `n` nodes on a circle of circumference `n · spacing`: a ring network.
/// With `spacing ≤ 1` adjacent nodes are reliable neighbors; grey-zone
/// chords become unreliable edges.
///
/// # Panics
///
/// Panics when `n < 3` (smaller rings degenerate to lines).
pub fn ring(n: usize, spacing: f64, r: f64) -> Topology {
    assert!(n >= 3, "a ring needs at least 3 nodes");
    let radius = (n as f64 * spacing) / (2.0 * std::f64::consts::PI);
    let points = (0..n)
        .map(|i| {
            let a = 2.0 * std::f64::consts::PI * (i as f64) / (n as f64);
            Point::new(radius * a.cos(), radius * a.sin())
        })
        .collect();
    build_from_embedding(Embedding::new(points), r, |_, _, _| GreyKind::Unreliable)
}

/// A two-tier deployment: a dense core clique (diameter < 1) surrounded
/// by `periphery` sparse nodes on a ring at distance `ring_radius ∈
/// (1, r]` from the center — core↔periphery links are grey-zone
/// (unreliable). Models an access-point cluster with marginal clients.
///
/// # Panics
///
/// Panics unless `1 < ring_radius ≤ r`.
pub fn two_tier(core: usize, periphery: usize, ring_radius: f64, r: f64) -> Topology {
    assert!(
        ring_radius > 1.0 && ring_radius <= r,
        "periphery must sit in the grey zone (1, r]"
    );
    let mut points = Vec::with_capacity(core + periphery);
    for i in 0..core {
        let a = 2.0 * std::f64::consts::PI * (i as f64) / core.max(1) as f64;
        points.push(Point::new(0.45 * a.cos(), 0.45 * a.sin()));
    }
    for i in 0..periphery {
        let a = 2.0 * std::f64::consts::PI * (i as f64) / periphery.max(1) as f64;
        points.push(Point::new(
            (ring_radius + 0.45) * a.cos(),
            (ring_radius + 0.45) * a.sin(),
        ));
    }
    build_from_embedding(Embedding::new(points), r, |_, _, _| GreyKind::Unreliable)
}

/// A constant-density deployment for the locality experiment (E9): `n`
/// nodes at fixed `density` (expected nodes per unit disc), in a square
/// whose area grows with `n`. Local quantities (Δ, per-neighborhood
/// behavior) stay flat as `n` grows.
pub fn constant_density(n: usize, density: f64, r: f64, seed: u64) -> Topology {
    let side = constant_density_side(n, density);
    random_geometric(RggParams {
        n,
        side,
        r,
        grey_reliable_p: 0.0,
        grey_unreliable_p: 1.0,
        seed,
    })
}

/// The arena side length [`constant_density`] deploys `n` nodes into at
/// the given density (expected nodes per unit disc). Exposed so mobility
/// timelines over constant-density deployments confine their waypoints
/// to the same arena the static builder used.
pub fn constant_density_side(n: usize, density: f64) -> f64 {
    (n as f64 * std::f64::consts::PI / density).sqrt()
}

// ---------------------------------------------------------------------------
// Mobility: random-waypoint timelines
// ---------------------------------------------------------------------------

/// One epoch of a random-waypoint mobility timeline: the round it takes
/// effect, the rebuilt snapshot, and what the rebuild cost.
#[derive(Debug, Clone)]
pub struct MobilityEpoch {
    /// First round this snapshot is in force (epoch `e` starts at
    /// `1 + e · epoch_rounds`).
    pub start_round: u64,
    /// The dual graph rebuilt against this epoch's node positions.
    pub graph: Arc<DualGraph>,
    /// The embedding witnessing the snapshot; fault regions given as
    /// discs resolve against this, per epoch.
    pub embedding: Arc<Embedding>,
    /// Wall-clock nanoseconds spent placing nodes and rebuilding
    /// adjacency for this epoch (0 for epochs that share a snapshot).
    pub build_ns: u64,
}

/// Errors from invalid mobility-timeline parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MobilityError {
    /// The underlying deployment parameters were invalid.
    Rgg(RggError),
    /// `speed` was non-finite or negative.
    BadSpeed(f64),
    /// `epoch_rounds` was zero.
    ZeroEpochRounds,
    /// `epochs` was zero (a timeline needs at least one epoch).
    NoEpochs,
}

impl std::fmt::Display for MobilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MobilityError::Rgg(e) => write!(f, "mobility: {e}"),
            MobilityError::BadSpeed(s) => {
                write!(f, "mobility: speed must be finite and >= 0, got {s}")
            }
            MobilityError::ZeroEpochRounds => write!(f, "mobility: epoch_rounds must be >= 1"),
            MobilityError::NoEpochs => write!(f, "mobility: need at least one epoch"),
        }
    }
}

impl std::error::Error for MobilityError {}

/// One node's random-waypoint state: current position, current target,
/// and the private stream its waypoints come from.
struct Walker {
    pos: Point,
    target: Point,
    rng: rand_chacha::ChaCha8Rng,
}

impl Walker {
    /// Moves `budget` distance units along the waypoint path: walk
    /// toward the target, and on arrival draw the next target uniformly
    /// in the `side × side` arena.
    fn advance(&mut self, mut budget: f64, side: f64) {
        while budget > 0.0 {
            let dx = self.target.x - self.pos.x;
            let dy = self.target.y - self.pos.y;
            let d = (dx * dx + dy * dy).sqrt();
            if d > budget {
                let f = budget / d;
                self.pos = Point::new(self.pos.x + dx * f, self.pos.y + dy * f);
                return;
            }
            budget -= d;
            self.pos = self.target;
            self.target = Point::new(self.rng.gen::<f64>() * side, self.rng.gen::<f64>() * side);
        }
    }
}

/// Builds a random-waypoint mobility timeline over a random geometric
/// deployment: epoch 0 is exactly [`random_geometric`]`(params)` (same
/// placement, same grey wiring, same RNG consumption), and each later
/// epoch advances every node `epoch_rounds · speed` distance units along
/// its waypoint path, then rebuilds adjacency with the bucketed
/// constructor.
///
/// Randomness discipline (`StreamKind::Mobility`):
///
/// * waypoint draws for vertex `v` come from stream index `v`;
/// * epoch `e`'s grey-zone wiring comes from stream index `2³² + e`
///   (disjoint from the per-node indices for every supported `n`);
/// * `speed = 0` or a single epoch consumes **no** mobility randomness —
///   frozen nodes share the epoch-0 snapshot `Arc`, so such timelines
///   are trace-identical to static geometry.
///
/// # Errors
///
/// Returns a [`MobilityError`] for invalid deployment parameters,
/// negative/non-finite speed, zero `epoch_rounds`, or zero `epochs`.
pub fn random_geometric_timeline(
    params: RggParams,
    speed: f64,
    epoch_rounds: u64,
    epochs: usize,
) -> Result<Vec<MobilityEpoch>, MobilityError> {
    params.validate().map_err(MobilityError::Rgg)?;
    if !speed.is_finite() || speed < 0.0 {
        return Err(MobilityError::BadSpeed(speed));
    }
    if epoch_rounds == 0 {
        return Err(MobilityError::ZeroEpochRounds);
    }
    if epochs == 0 {
        return Err(MobilityError::NoEpochs);
    }
    debug_assert!((params.n as u64) < (1 << 32), "wiring stream indices overlap waypoints");

    let t0 = std::time::Instant::now();
    let base = try_random_geometric(params).map_err(MobilityError::Rgg)?;
    let base_ns = t0.elapsed().as_nanos() as u64;
    let base_graph = Arc::new(base.graph);
    let base_emb = Arc::new(base.embedding);
    let mut out = vec![MobilityEpoch {
        start_round: 1,
        graph: Arc::clone(&base_graph),
        embedding: Arc::clone(&base_emb),
        build_ns: base_ns,
    }];
    if epochs == 1 {
        return Ok(out);
    }
    if speed == 0.0 {
        for e in 1..epochs {
            out.push(MobilityEpoch {
                start_round: 1 + e as u64 * epoch_rounds,
                graph: Arc::clone(&base_graph),
                embedding: Arc::clone(&base_emb),
                build_ns: 0,
            });
        }
        return Ok(out);
    }

    let mut walkers: Vec<Walker> = (0..params.n)
        .map(|v| {
            let mut rng = derive_stream(params.seed, StreamKind::Mobility, v as u64);
            let target =
                Point::new(rng.gen::<f64>() * params.side, rng.gen::<f64>() * params.side);
            Walker {
                pos: base_emb.position(v),
                target,
                rng,
            }
        })
        .collect();
    for e in 1..epochs {
        let t0 = std::time::Instant::now();
        for w in &mut walkers {
            w.advance(epoch_rounds as f64 * speed, params.side);
        }
        let points: Vec<Point> = walkers.iter().map(|w| w.pos).collect();
        let mut wiring = derive_stream(params.seed, StreamKind::Mobility, (1u64 << 32) + e as u64);
        let topo = build_from_embedding(Embedding::new(points), params.r, |_, _, _| {
            if wiring.gen_bool(params.grey_reliable_p) {
                GreyKind::Reliable
            } else if wiring.gen_bool(params.grey_unreliable_p) {
                GreyKind::Unreliable
            } else {
                GreyKind::Absent
            }
        });
        out.push(MobilityEpoch {
            start_round: 1 + e as u64 * epoch_rounds,
            graph: Arc::new(topo.graph),
            embedding: Arc::new(topo.embedding),
            build_ns: t0.elapsed().as_nanos() as u64,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_structure() {
        let t = line(5, 0.9, 2.0);
        assert_eq!(t.graph.len(), 5);
        // Adjacent nodes at 0.9 are reliable; distance-2 nodes at 1.8 <= r
        // are grey (unreliable).
        assert!(t
            .graph
            .is_reliable_edge(crate::graph::NodeId(0), crate::graph::NodeId(1)));
        assert!(t.graph.is_any_edge(crate::graph::NodeId(0), crate::graph::NodeId(2)));
        assert!(!t
            .graph
            .is_reliable_edge(crate::graph::NodeId(0), crate::graph::NodeId(2)));
        t.check_geographic().unwrap();
    }

    #[test]
    fn grid_is_geographic() {
        let t = grid(4, 4, 0.8, 2.0);
        assert_eq!(t.graph.len(), 16);
        t.check_geographic().unwrap();
    }

    #[test]
    fn clique_is_complete_reliable() {
        let t = clique(8, 1.0);
        for u in t.graph.vertices() {
            assert_eq!(t.graph.reliable_neighbors(u).len(), 7);
        }
        assert_eq!(t.graph.delta(), 8);
        t.check_geographic().unwrap();
    }

    #[test]
    fn rgg_is_geographic_and_deterministic() {
        let params = RggParams {
            n: 40,
            side: 3.0,
            seed: 5,
            ..Default::default()
        };
        let a = random_geometric(params);
        let b = random_geometric(params);
        a.check_geographic().unwrap();
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.embedding, b.embedding);
    }

    #[test]
    fn grey_sandwich_wiring() {
        let t = grey_sandwich(2, 6, 2.0);
        let receiver = crate::graph::NodeId(0);
        // Reliable senders connect reliably.
        assert!(t.graph.is_reliable_edge(receiver, crate::graph::NodeId(1)));
        // Grey senders connect only unreliably.
        let grey = crate::graph::NodeId(3);
        assert!(t.graph.is_any_edge(receiver, grey));
        assert!(!t.graph.is_reliable_edge(receiver, grey));
        t.check_geographic().unwrap();
    }

    #[test]
    fn clustered_is_geographic() {
        let t = clustered(ClusterParams::default());
        assert_eq!(t.graph.len(), 32);
        t.check_geographic().unwrap();
    }

    #[test]
    fn ring_structure() {
        let t = ring(8, 0.9, 2.0);
        assert_eq!(t.graph.len(), 8);
        t.check_geographic().unwrap();
        // Adjacent ring nodes are reliable neighbors.
        for i in 0..8 {
            assert!(t
                .graph
                .is_reliable_edge(crate::graph::NodeId(i), crate::graph::NodeId((i + 1) % 8)));
        }
    }

    #[test]
    fn two_tier_wiring() {
        let t = two_tier(4, 6, 1.5, 2.0);
        assert_eq!(t.graph.len(), 10);
        t.check_geographic().unwrap();
        // Core is a reliable clique.
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert!(t
                    .graph
                    .is_reliable_edge(crate::graph::NodeId(i), crate::graph::NodeId(j)));
            }
        }
        // Core-periphery links, where present, are unreliable only.
        let core = crate::graph::NodeId(0);
        for p in 4..10 {
            let p = crate::graph::NodeId(p);
            assert!(!t.graph.is_reliable_edge(core, p));
        }
        // At least one periphery node reaches the core through the grey
        // zone.
        let any_grey = (4..10).any(|p| t.graph.is_any_edge(core, crate::graph::NodeId(p)));
        assert!(any_grey);
    }

    #[test]
    #[should_panic(expected = "grey zone")]
    fn two_tier_rejects_reliable_radius() {
        let _ = two_tier(3, 3, 0.9, 2.0);
    }

    #[test]
    fn bucketed_rgg_matches_reference_oracle() {
        // Several (n, side, r, grey) shapes: dense single-cell, sparse
        // many-cell, r = 1 (no grey zone), and skewed grey probabilities.
        for (n, side, r, gr, gu, seed) in [
            (40, 3.0, 2.0, 0.1, 0.8, 5),
            (1, 1.0, 1.0, 0.5, 0.5, 0),
            (64, 1.5, 2.5, 0.0, 1.0, 11),
            (80, 12.0, 1.0, 0.3, 0.3, 23),
            (120, 9.0, 1.75, 1.0, 0.0, 7),
            (50, 40.0, 3.0, 0.5, 0.5, 99),
        ] {
            let params = RggParams {
                n,
                side,
                r,
                grey_reliable_p: gr,
                grey_unreliable_p: gu,
                seed,
            };
            let fast = random_geometric(params);
            let slow = random_geometric_reference(params);
            assert_eq!(fast.graph, slow.graph, "{params:?}");
            assert_eq!(fast.embedding, slow.embedding, "{params:?}");
            fast.check_geographic().unwrap();
        }
    }

    #[test]
    fn bucketed_build_handles_non_finite_coordinates() {
        // Floor-hashing NaN/∞ is ill-defined; the builder must fall back
        // to the reference instead of mis-bucketing.
        let emb = Embedding::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.5, 0.0),
            Point::new(f64::NAN, 1.0),
            Point::new(f64::INFINITY, 2.0),
        ]);
        let t = from_embedding(emb.clone(), 2.0, GreyKind::Unreliable);
        let r = build_from_embedding_reference(emb, 2.0, |_, _, _| GreyKind::Unreliable);
        assert_eq!(t.graph, r.graph);
        assert!(t
            .graph
            .is_reliable_edge(crate::graph::NodeId(0), crate::graph::NodeId(1)));
    }

    #[test]
    fn rgg_params_validate_rejects_bad_inputs() {
        let ok = RggParams::default();
        assert_eq!(ok.validate(), Ok(()));
        let cases = [
            (RggParams { n: 0, ..ok }, RggError::NoNodes),
            (RggParams { side: 0.0, ..ok }, RggError::BadSide(0.0)),
            (
                RggParams {
                    side: f64::NAN,
                    ..ok
                },
                RggError::BadSide(f64::NAN),
            ),
            (
                RggParams {
                    side: f64::INFINITY,
                    ..ok
                },
                RggError::BadSide(f64::INFINITY),
            ),
            (RggParams { r: 0.5, ..ok }, RggError::BadRadius(0.5)),
            (
                RggParams { r: f64::NAN, ..ok },
                RggError::BadRadius(f64::NAN),
            ),
            (
                RggParams {
                    grey_reliable_p: 1.5,
                    ..ok
                },
                RggError::BadProbability("grey_reliable_p", 1.5),
            ),
            (
                RggParams {
                    grey_unreliable_p: -0.1,
                    ..ok
                },
                RggError::BadProbability("grey_unreliable_p", -0.1),
            ),
            (
                RggParams {
                    grey_unreliable_p: f64::NAN,
                    ..ok
                },
                RggError::BadProbability("grey_unreliable_p", f64::NAN),
            ),
        ];
        for (params, want) in cases {
            let got = try_random_geometric(params).unwrap_err();
            // NaN payloads don't compare equal; match on the rendered
            // message, which is what the panic path surfaces.
            assert_eq!(got.to_string(), want.to_string(), "{params:?}");
        }
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn random_geometric_panics_with_typed_message() {
        let _ = random_geometric(RggParams {
            grey_reliable_p: 2.0,
            ..Default::default()
        });
    }

    // -- mobility timelines ------------------------------------------------

    fn mob_params() -> RggParams {
        RggParams {
            n: 30,
            side: 3.0,
            r: 2.0,
            grey_reliable_p: 0.1,
            grey_unreliable_p: 0.8,
            seed: 17,
        }
    }

    #[test]
    fn timeline_epoch_zero_is_the_static_deployment() {
        let epochs = random_geometric_timeline(mob_params(), 0.1, 16, 4).unwrap();
        let static_topo = random_geometric(mob_params());
        assert_eq!(epochs.len(), 4);
        assert_eq!(epochs[0].start_round, 1);
        assert_eq!(*epochs[0].graph, static_topo.graph);
        assert_eq!(*epochs[0].embedding, static_topo.embedding);
        for (e, ep) in epochs.iter().enumerate() {
            assert_eq!(ep.start_round, 1 + e as u64 * 16);
        }
    }

    #[test]
    fn zero_speed_timeline_shares_the_base_snapshot() {
        let epochs = random_geometric_timeline(mob_params(), 0.0, 16, 5).unwrap();
        assert_eq!(epochs.len(), 5);
        for ep in &epochs[1..] {
            assert!(Arc::ptr_eq(&ep.graph, &epochs[0].graph));
            assert!(Arc::ptr_eq(&ep.embedding, &epochs[0].embedding));
            assert_eq!(ep.build_ns, 0);
        }
    }

    #[test]
    fn moving_timeline_is_deterministic_and_stays_in_the_arena() {
        let a = random_geometric_timeline(mob_params(), 0.2, 10, 6).unwrap();
        let b = random_geometric_timeline(mob_params(), 0.2, 10, 6).unwrap();
        assert_eq!(a.len(), b.len());
        let mut moved = false;
        for (ea, eb) in a.iter().zip(&b) {
            assert_eq!(*ea.graph, *eb.graph);
            assert_eq!(*ea.embedding, *eb.embedding);
            for p in ea.embedding.iter() {
                assert!((0.0..=3.0).contains(&p.x) && (0.0..=3.0).contains(&p.y), "{p:?}");
            }
            if *ea.embedding != *a[0].embedding {
                moved = true;
            }
        }
        assert!(moved, "nodes moving 2.0 units/epoch must change the embedding");
    }

    #[test]
    fn mobility_does_not_perturb_the_static_placement() {
        // Building a moving timeline and the static topology from the
        // same seed must agree on epoch 0: mobility draws come from
        // their own stream kind, never the Topology streams.
        let moving = random_geometric_timeline(mob_params(), 0.5, 8, 3).unwrap();
        let static_topo = random_geometric(mob_params());
        assert_eq!(*moving[0].graph, static_topo.graph);
    }

    #[test]
    fn timeline_rejects_bad_parameters() {
        let p = mob_params();
        assert!(matches!(
            random_geometric_timeline(p, -0.1, 8, 2),
            Err(MobilityError::BadSpeed(_))
        ));
        assert!(matches!(
            random_geometric_timeline(p, 0.1, 0, 2),
            Err(MobilityError::ZeroEpochRounds)
        ));
        assert!(matches!(
            random_geometric_timeline(p, 0.1, 8, 0),
            Err(MobilityError::NoEpochs)
        ));
        let bad = RggParams { n: 0, ..p };
        assert!(matches!(
            random_geometric_timeline(bad, 0.1, 8, 2),
            Err(MobilityError::Rgg(RggError::NoNodes))
        ));
    }

    #[test]
    fn constant_density_keeps_delta_flat() {
        let d1 = constant_density(100, 6.0, 1.5, 3).graph.delta();
        let d2 = constant_density(400, 6.0, 1.5, 3).graph.delta();
        // Degrees fluctuate, but a 4x larger network at equal density must
        // not have a 4x larger max degree.
        assert!(
            (d2 as f64) < (d1 as f64) * 3.0,
            "delta grew with n: {d1} -> {d2}"
        );
    }
}
