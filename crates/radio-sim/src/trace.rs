//! Execution traces: the first-class record over which specifications are
//! checked.
//!
//! The paper phrases every guarantee as a property of the *distribution
//! over executions* induced by a configuration plus an algorithm. We make
//! the execution itself a value: a [`Trace`] is an ordered list of
//! [`Event`]s (inputs, transmissions, receptions, outputs), so a
//! specification like `Seed(δ, ε)` or `LB(t_ack, t_prog, ε)` becomes a
//! plain function `Trace -> Result<(), Violation>` evaluated per trial, and
//! probabilistic clauses become Monte-Carlo statistics over many traces.

use crate::graph::NodeId;
use crate::process::ProcId;
use serde::{Deserialize, Serialize};

/// One observable event in an execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event<I, O, M> {
    /// The round in which the event occurred (rounds start at 1).
    pub round: u64,
    /// The vertex at which the event occurred.
    pub node: NodeId,
    /// What happened.
    pub kind: EventKind<I, O, M>,
}

/// Classification of trace events.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind<I, O, M> {
    /// The environment delivered an input to this node.
    Input(I),
    /// The node transmitted this round (message recorded when reception
    /// logging is enabled; the marker itself is always cheap).
    Transmit,
    /// The node, while listening, received message `msg` from `from`.
    Receive {
        /// The transmitting vertex.
        from: NodeId,
        /// The received message.
        msg: M,
    },
    /// The node emitted an output consumed by the environment.
    Output(O),
    /// A fault-plan effect took hold at this node (see
    /// [`crate::fault::FaultPlan`]).
    Fault(FaultEvent),
}

/// Fault-plan effects recorded in traces. Crash/recover and jam-window
/// transitions are always recorded (they are rare); per-reception drops
/// are recorded only under a reception-recording policy (they can be as
/// frequent as receptions themselves).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// The node went down at the start of this round.
    Crash,
    /// The node came back up at the start of this round.
    Recover,
    /// A jamming window covering this node began this round.
    JamStart,
    /// The last jammed round for this node was the previous round.
    JamEnd,
    /// A reception from `from` that would have succeeded was dropped by
    /// an active drop burst.
    Dropped {
        /// The transmitter whose message was lost.
        from: NodeId,
    },
    /// An environment input addressed to this node was discarded because
    /// the node was down. Recorded so a stalled workload (e.g. a queue
    /// environment waiting on an ack that can never come) is explained
    /// by its trace.
    InputLost,
}

/// Aggregate channel activity in one round, recorded when
/// [`RecordingPolicy::channel_stats`] is set. Collisions are counted at
/// *listeners*: a listener with ≥ 2 transmitting topology-neighbors
/// experiences one collision (indistinguishable from silence to the
/// node — this is the simulator's outside view).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RoundStats {
    /// Nodes that transmitted this round.
    pub transmitters: usize,
    /// Listeners that received a message.
    pub deliveries: usize,
    /// Listeners with two or more transmitting topology-neighbors.
    pub collisions: usize,
    /// Listeners with no transmitting topology-neighbor.
    pub silent: usize,
    /// Listeners silenced by a jamming window this round.
    pub jammed: usize,
    /// Would-be deliveries suppressed by a drop burst this round.
    pub dropped: usize,
    /// Nodes down (crashed) this round; they are neither transmitters
    /// nor listeners.
    pub down: usize,
}

/// What the engine records. Spec checking needs inputs and outputs;
/// instrumentation (e.g. per-round reception probabilities for Lemma 4.2)
/// additionally needs transmissions and receptions, which cost memory on
/// long runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordingPolicy {
    /// Record `Transmit` markers.
    pub transmissions: bool,
    /// Record `Receive` events (includes a clone of each message).
    pub receptions: bool,
    /// Record per-round aggregate [`RoundStats`].
    pub channel_stats: bool,
}

impl RecordingPolicy {
    /// Inputs and outputs only — sufficient for all spec predicates.
    pub fn outputs_only() -> Self {
        RecordingPolicy {
            transmissions: false,
            receptions: false,
            channel_stats: false,
        }
    }

    /// Everything, for instrumented experiments.
    pub fn full() -> Self {
        RecordingPolicy {
            transmissions: true,
            receptions: true,
            channel_stats: true,
        }
    }

    /// Aggregate channel statistics only (cheap; no per-event records
    /// beyond inputs/outputs).
    pub fn stats_only() -> Self {
        RecordingPolicy {
            transmissions: false,
            receptions: false,
            channel_stats: true,
        }
    }
}

impl Default for RecordingPolicy {
    fn default() -> Self {
        RecordingPolicy::outputs_only()
    }
}

/// A complete execution record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trace<I, O, M> {
    /// Number of vertices in the configuration.
    pub n: usize,
    /// The id assignment used: `proc_ids[v]` is the process id at vertex
    /// `v`.
    pub proc_ids: Vec<ProcId>,
    /// Rounds executed so far.
    pub rounds: u64,
    /// Events in (round, generation) order.
    pub events: Vec<Event<I, O, M>>,
    /// Per-round aggregate channel statistics (`stats[t - 1]` for round
    /// `t`), populated only under a channel-stats recording policy.
    pub round_stats: Vec<RoundStats>,
}

impl<I, O, M> Trace<I, O, M> {
    /// Creates an empty trace for `n` vertices with the given id
    /// assignment.
    pub fn new(n: usize, proc_ids: Vec<ProcId>) -> Self {
        Trace {
            n,
            proc_ids,
            rounds: 0,
            events: Vec::new(),
            round_stats: Vec::new(),
        }
    }

    /// Sums the per-round channel statistics (empty stats give zeroes).
    pub fn total_stats(&self) -> RoundStats {
        let mut out = RoundStats::default();
        for s in &self.round_stats {
            out.transmitters += s.transmitters;
            out.deliveries += s.deliveries;
            out.collisions += s.collisions;
            out.silent += s.silent;
            out.jammed += s.jammed;
            out.dropped += s.dropped;
            out.down += s.down;
        }
        out
    }

    /// All fault events, as `(round, node, fault)` triples.
    pub fn faults(&self) -> impl Iterator<Item = (u64, NodeId, FaultEvent)> + '_ {
        self.events.iter().filter_map(|e| match &e.kind {
            EventKind::Fault(f) => Some((e.round, e.node, *f)),
            _ => None,
        })
    }

    /// All output events, as `(round, node, output)` triples.
    pub fn outputs(&self) -> impl Iterator<Item = (u64, NodeId, &O)> {
        self.events.iter().filter_map(|e| match &e.kind {
            EventKind::Output(o) => Some((e.round, e.node, o)),
            _ => None,
        })
    }

    /// All input events, as `(round, node, input)` triples.
    pub fn inputs(&self) -> impl Iterator<Item = (u64, NodeId, &I)> {
        self.events.iter().filter_map(|e| match &e.kind {
            EventKind::Input(i) => Some((e.round, e.node, i)),
            _ => None,
        })
    }

    /// All reception events, as `(round, receiver, sender, msg)`.
    pub fn receptions(&self) -> impl Iterator<Item = (u64, NodeId, NodeId, &M)> {
        self.events.iter().filter_map(|e| match &e.kind {
            EventKind::Receive { from, msg } => Some((e.round, e.node, *from, msg)),
            _ => None,
        })
    }

    /// Rounds in which `node` transmitted (requires transmission
    /// recording).
    pub fn transmissions_of(&self, node: NodeId) -> Vec<u64> {
        self.events
            .iter()
            .filter(|e| e.node == node && matches!(e.kind, EventKind::Transmit))
            .map(|e| e.round)
            .collect()
    }

    /// The process id assigned to vertex `v`.
    pub fn proc_id(&self, v: NodeId) -> ProcId {
        self.proc_ids[v.0]
    }

    /// The vertex with process id `id`, if any.
    pub fn vertex_of(&self, id: ProcId) -> Option<NodeId> {
        self.proc_ids.iter().position(|&p| p == id).map(NodeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace<u8, char, &'static str> {
        let mut t = Trace::new(2, vec![10, 11]);
        t.rounds = 3;
        t.events = vec![
            Event {
                round: 1,
                node: NodeId(0),
                kind: EventKind::Input(5),
            },
            Event {
                round: 2,
                node: NodeId(0),
                kind: EventKind::Transmit,
            },
            Event {
                round: 2,
                node: NodeId(1),
                kind: EventKind::Receive {
                    from: NodeId(0),
                    msg: "hello",
                },
            },
            Event {
                round: 3,
                node: NodeId(1),
                kind: EventKind::Output('r'),
            },
        ];
        t
    }

    #[test]
    fn iterators_filter_by_kind() {
        let t = sample_trace();
        assert_eq!(t.inputs().count(), 1);
        assert_eq!(t.outputs().count(), 1);
        assert_eq!(t.receptions().count(), 1);
        let (round, rx, tx, msg) = t.receptions().next().unwrap();
        assert_eq!((round, rx, tx, *msg), (2, NodeId(1), NodeId(0), "hello"));
    }

    #[test]
    fn transmissions_of_filters_by_node() {
        let t = sample_trace();
        assert_eq!(t.transmissions_of(NodeId(0)), vec![2]);
        assert!(t.transmissions_of(NodeId(1)).is_empty());
    }

    #[test]
    fn id_mapping_round_trips() {
        let t = sample_trace();
        assert_eq!(t.proc_id(NodeId(1)), 11);
        assert_eq!(t.vertex_of(11), Some(NodeId(1)));
        assert_eq!(t.vertex_of(99), None);
    }

    #[test]
    fn recording_policy_defaults_to_outputs_only() {
        let p = RecordingPolicy::default();
        assert!(!p.transmissions);
        assert!(!p.receptions);
        assert!(RecordingPolicy::full().receptions);
    }
}
