//! # radio-sim: the dual graph radio network model, executable
//!
//! This crate implements the *substrate* of Lynch & Newport's
//! "A (Truly) Local Broadcast Layer for Unreliable Radio Networks"
//! (MIT-CSAIL-TR-2015-016 / PODC 2015): the **dual graph model** of Section 2
//! of the paper, as a deterministic, seedable, synchronous discrete-event
//! simulator.
//!
//! The model describes a radio network with two graphs over the same vertex
//! set: a *reliable* graph `G = (V, E)` and an *unreliable* supergraph
//! `G' = (V, E')` with `E ⊆ E'`. In each synchronous round the communication
//! topology consists of all edges of `E` plus an arbitrary subset of
//! `E' \ E` chosen by a **link scheduler**. Communication follows the
//! standard radio collision rule: a node `u` receives a message from `v`
//! exactly when `u` is listening, `v` transmits, and `v` is the *only*
//! transmitter among `u`'s neighbors in the round's topology. There is no
//! collision detection: a silent round and a collided round are
//! indistinguishable (both deliver `⊥`).
//!
//! ## Crate layout
//!
//! * [`geometry`] — Euclidean embeddings, the `r`-geographic property, and
//!   the grid *region partition* of Appendix A (Lemmas A.1–A.3).
//! * [`graph`] — the [`DualGraph`](graph::DualGraph) type and its invariants.
//! * [`topology`] — generators for the network families used by the
//!   experiments (random geometric, grids, lines, stars, clustered, and
//!   adversarial grey-zone constructions).
//! * [`scheduler`] — the oblivious [`LinkScheduler`](scheduler::LinkScheduler)
//!   trait and a library of concrete adversaries, plus the *adaptive*
//!   scheduler used to reproduce the oblivious/adaptive separation.
//! * [`process`] — the [`Process`](process::Process) trait: the probabilistic
//!   automata that model wireless devices.
//! * [`environment`] — deterministic environments that feed inputs and
//!   consume outputs, per the round structure of Section 2.
//! * [`engine`] — the synchronous round loop and collision resolution.
//! * [`resolve`] — the collision rule as free functions (serial scatter
//!   and sharded gather), shared by the engine and the `net` crate's
//!   `SimTransport` so both substrates resolve receptions identically.
//! * [`timeline`] — epoch-based dynamic geometry: the
//!   [`GraphTimeline`](timeline::GraphTimeline) schedule of dual-graph
//!   snapshots that mobility and moving jammers run on; a single-epoch
//!   timeline is byte-identical to the static path.
//! * [`fault`] — declarative fault plans (node churn, jamming windows,
//!   message-drop bursts) injected deterministically by the engine.
//! * [`trace`] — execution traces: the first-class record of an execution
//!   over which specification predicates are evaluated.
//! * [`rng`] — deterministic per-node randomness (ChaCha streams).
//!
//! ## Round structure
//!
//! Following Section 2 of the paper, each round proceeds as:
//!
//! 1. every process receives inputs (if any) from the environment;
//! 2. every process decides to transmit or listen (possibly randomly);
//! 3. the link scheduler's topology for the round resolves receptions;
//! 4. every process generates outputs (if any), consumed by the environment.
//!
//! ## Example
//!
//! ```
//! use radio_sim::prelude::*;
//!
//! // Five nodes on a line, 0.9 apart: adjacent pairs are reliable
//! // neighbors, distance-2 pairs fall in the grey zone and get
//! // scheduler-controlled unreliable edges.
//! let topo = topology::line(5, 0.9, 2.0);
//! topo.check_geographic().expect("generators witness r-geography");
//! let config = topo.configuration(Box::new(scheduler::AllExtraEdges));
//! assert_eq!(config.graph.len(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod environment;
pub mod fault;
pub mod geometry;
pub mod graph;
pub mod process;
pub mod resolve;
pub mod rng;
pub mod scheduler;
pub mod timeline;
pub mod topology;
pub mod trace;

/// Commonly used items, re-exported for convenient glob import.
pub mod prelude {
    pub use crate::engine::{Configuration, Engine};
    pub use crate::environment::{Environment, NullEnvironment};
    pub use crate::fault::FaultPlan;
    pub use crate::geometry::{Embedding, Point, RegionId, RegionPartition};
    pub use crate::graph::{DualGraph, NodeId};
    pub use crate::process::{Action, Context, ProcId, Process};
    pub use crate::scheduler;
    pub use crate::scheduler::LinkScheduler;
    pub use crate::timeline::GraphTimeline;
    pub use crate::topology;
    pub use crate::trace::{Event, EventKind, Trace};
}

pub use engine::{Configuration, Engine};
pub use graph::{DualGraph, NodeId};
