//! Deterministic environments: the source of inputs and sink of outputs.
//!
//! Section 2 models the environment as a synchronous deterministic
//! automaton that consumes node outputs (e.g. `ack`) and produces node
//! inputs (e.g. `bcast`). Fixing the environment — like fixing the link
//! scheduler — resolves all non-probabilistic nondeterminism of a
//! configuration.

use crate::graph::NodeId;

/// A deterministic environment for an algorithm with inputs `I` and
/// outputs `O`.
///
/// At the start of round `t`, the engine calls
/// [`Environment::next_inputs`] with the outputs generated at the end of
/// round `t − 1` (empty for `t = 1`); the returned `(vertex, input)` pairs
/// are delivered before the transmit step.
pub trait Environment<I, O>: Send {
    /// Produces the inputs for `round`, given the previous round's outputs.
    fn next_inputs(&mut self, round: u64, prev_outputs: &[(NodeId, O)]) -> Vec<(NodeId, I)>;
}

/// The environment that never provides inputs (used by input-free
/// protocols such as seed agreement).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullEnvironment;

impl<I, O> Environment<I, O> for NullEnvironment {
    fn next_inputs(&mut self, _round: u64, _prev: &[(NodeId, O)]) -> Vec<(NodeId, I)> {
        Vec::new()
    }
}

/// An environment driven by a fixed script: input `i` is delivered to
/// vertex `v` at round `t` regardless of outputs.
#[derive(Debug, Clone)]
pub struct ScriptedEnvironment<I> {
    script: Vec<(u64, NodeId, I)>,
    cursor: usize,
}

impl<I: Clone> ScriptedEnvironment<I> {
    /// Creates an environment from `(round, vertex, input)` triples.
    /// Entries are sorted by round; rounds start at 1.
    pub fn new(mut script: Vec<(u64, NodeId, I)>) -> Self {
        script.sort_by_key(|(t, v, _)| (*t, *v));
        ScriptedEnvironment { script, cursor: 0 }
    }
}

impl<I: Clone + Send, O> Environment<I, O> for ScriptedEnvironment<I>
where
    I: Clone + Send,
{
    fn next_inputs(&mut self, round: u64, _prev: &[(NodeId, O)]) -> Vec<(NodeId, I)> {
        let mut out = Vec::new();
        while self.cursor < self.script.len() && self.script[self.cursor].0 == round {
            let (_, v, i) = &self.script[self.cursor];
            out.push((*v, i.clone()));
            self.cursor += 1;
        }
        out
    }
}

/// An environment defined by a closure, for ad-hoc reactive environments
/// in tests and experiments.
pub struct FnEnvironment<F> {
    f: F,
}

impl<F> FnEnvironment<F> {
    /// Wraps a closure `(round, prev_outputs) -> inputs`.
    pub fn new(f: F) -> Self {
        FnEnvironment { f }
    }
}

impl<I, O, F> Environment<I, O> for FnEnvironment<F>
where
    F: FnMut(u64, &[(NodeId, O)]) -> Vec<(NodeId, I)> + Send,
{
    fn next_inputs(&mut self, round: u64, prev: &[(NodeId, O)]) -> Vec<(NodeId, I)> {
        (self.f)(round, prev)
    }
}

impl<F> std::fmt::Debug for FnEnvironment<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnEnvironment").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_environment_is_silent() {
        let mut env = NullEnvironment;
        let inputs: Vec<(NodeId, u8)> =
            Environment::<u8, ()>::next_inputs(&mut env, 1, &[]);
        assert!(inputs.is_empty());
    }

    #[test]
    fn scripted_environment_delivers_in_round_order() {
        let mut env = ScriptedEnvironment::new(vec![
            (2, NodeId(1), "b"),
            (1, NodeId(0), "a"),
            (2, NodeId(2), "c"),
        ]);
        let r1: Vec<(NodeId, &str)> = Environment::<&str, ()>::next_inputs(&mut env, 1, &[]);
        assert_eq!(r1, vec![(NodeId(0), "a")]);
        let r2: Vec<(NodeId, &str)> = Environment::<&str, ()>::next_inputs(&mut env, 2, &[]);
        assert_eq!(r2, vec![(NodeId(1), "b"), (NodeId(2), "c")]);
        let r3: Vec<(NodeId, &str)> = Environment::<&str, ()>::next_inputs(&mut env, 3, &[]);
        assert!(r3.is_empty());
    }

    #[test]
    fn fn_environment_reacts_to_outputs() {
        let mut env = FnEnvironment::new(|round, prev: &[(NodeId, u32)]| {
            if prev.is_empty() && round == 1 {
                vec![(NodeId(0), 99u32)]
            } else {
                prev.iter().map(|(v, o)| (*v, o + 1)).collect()
            }
        });
        let r1 = env.next_inputs(1, &[]);
        assert_eq!(r1, vec![(NodeId(0), 99)]);
        let r2 = env.next_inputs(2, &[(NodeId(3), 10)]);
        assert_eq!(r2, vec![(NodeId(3), 11)]);
    }
}
