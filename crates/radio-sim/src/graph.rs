//! The dual graph `(G, G')`: reliable links plus an unreliable fringe.
//!
//! Following Section 2 of the paper, the network topology is described by a
//! pair of graphs over the same vertices, `G = (V, E)` (reliable links) and
//! `G' = (V, E')` with `E ⊆ E'`; the edges `E' \ E` are *unreliable* and
//! their per-round presence is decided by a link scheduler.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Index of a graph vertex. The engine assigns process ids separately (the
/// paper's `id()` mapping); `NodeId` is the *vertex*, not the process id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// An undirected edge, stored with endpoints ordered so `a <= b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Edge {
    /// Smaller endpoint.
    pub a: NodeId,
    /// Larger endpoint.
    pub b: NodeId,
}

impl Edge {
    /// Creates a normalized undirected edge.
    ///
    /// # Panics
    ///
    /// Panics on self-loops, which the model forbids.
    pub fn new(u: NodeId, v: NodeId) -> Self {
        assert_ne!(u, v, "self-loops are not allowed in the dual graph");
        if u.0 <= v.0 {
            Edge { a: u, b: v }
        } else {
            Edge { a: v, b: u }
        }
    }

    /// The endpoint opposite to `x`, or `None` when `x` is not an
    /// endpoint of this edge.
    pub fn try_other(&self, x: NodeId) -> Option<NodeId> {
        if x == self.a {
            Some(self.b)
        } else if x == self.b {
            Some(self.a)
        } else {
            None
        }
    }

    /// The endpoint opposite to `x`.
    ///
    /// Prefer [`Edge::try_other`] when `x` is not statically known to be
    /// an endpoint.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not an endpoint.
    pub fn other(&self, x: NodeId) -> NodeId {
        self.try_other(x)
            .unwrap_or_else(|| panic!("{x} is not an endpoint of {self:?}"))
    }
}

/// Errors arising when constructing a [`DualGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge referenced a vertex index `>= n`.
    VertexOutOfRange {
        /// The offending vertex.
        vertex: usize,
        /// The number of vertices in the graph.
        n: usize,
    },
    /// The same edge appeared in both the reliable set and the extra
    /// (unreliable) set, violating `E' \ E` disjointness.
    DuplicateEdge(Edge),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(f, "edge references vertex {vertex} but graph has {n} vertices")
            }
            GraphError::DuplicateEdge(e) => {
                write!(f, "edge {e:?} listed as both reliable and unreliable")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// Flat compressed-sparse-row adjacency: neighbor lists of all vertices
/// concatenated into one contiguous array, with per-vertex offsets.
/// Neighbor scans are cache-linear and return borrowed slices; each
/// per-vertex segment is sorted, so membership tests binary-search.
#[derive(Debug, Clone, PartialEq)]
struct Csr {
    /// `offsets[u]..offsets[u + 1]` indexes `u`'s segment of `targets`.
    offsets: Vec<usize>,
    /// All neighbor lists, concatenated in vertex order.
    targets: Vec<NodeId>,
}

impl Csr {
    /// Builds the CSR from an edge list over `n` vertices. Each edge
    /// contributes both directions; segments come out sorted because the
    /// counting pass fixes exact slot ranges and a per-segment sort
    /// finishes the (already mostly ordered) fill.
    fn build(n: usize, edges: &[Edge]) -> Self {
        let mut offsets = vec![0usize; n + 1];
        for e in edges {
            offsets[e.a.0 + 1] += 1;
            offsets[e.b.0 + 1] += 1;
        }
        for u in 0..n {
            offsets[u + 1] += offsets[u];
        }
        let mut targets = vec![NodeId(0); edges.len() * 2];
        let mut cursor = offsets.clone();
        for e in edges {
            targets[cursor[e.a.0]] = e.b;
            cursor[e.a.0] += 1;
            targets[cursor[e.b.0]] = e.a;
            cursor[e.b.0] += 1;
        }
        for u in 0..n {
            targets[offsets[u]..offsets[u + 1]].sort_unstable();
        }
        Csr { offsets, targets }
    }

    /// Merges two CSRs with disjoint, sorted segments into one whose
    /// segments are the sorted unions (the precomputed `G'` adjacency).
    fn merge(n: usize, a: &Csr, b: &Csr) -> Self {
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(a.targets.len() + b.targets.len());
        offsets.push(0);
        for u in 0..n {
            let (mut i, mut j) = (0, 0);
            let (sa, sb) = (a.neighbors(u), b.neighbors(u));
            while i < sa.len() && j < sb.len() {
                if sa[i] < sb[j] {
                    targets.push(sa[i]);
                    i += 1;
                } else {
                    targets.push(sb[j]);
                    j += 1;
                }
            }
            targets.extend_from_slice(&sa[i..]);
            targets.extend_from_slice(&sb[j..]);
            offsets.push(targets.len());
        }
        Csr { offsets, targets }
    }

    fn neighbors(&self, u: usize) -> &[NodeId] {
        &self.targets[self.offsets[u]..self.offsets[u + 1]]
    }

    /// `max_u |neighbors(u)| + 1`, the degree bound the model hands to
    /// processes.
    fn degree_bound(&self) -> usize {
        self.offsets
            .windows(2)
            .map(|w| w[1] - w[0] + 1)
            .max()
            .unwrap_or(1)
    }
}

/// The dual graph `(G, G')` of Section 2.
///
/// Stored as the reliable edge set `E` and the *extra* edge set `E' \ E`,
/// with flat CSR adjacency (per edge class plus the precomputed merged
/// `G'` adjacency) and precomputed degree bounds `Δ`/`Δ'` — the engine's
/// hot path scans neighbors cache-linearly and never recomputes bounds.
/// Construction validates that the two sets are disjoint and in range, so a
/// `DualGraph` value always satisfies the model's structural invariants.
#[derive(Debug, Clone, PartialEq)]
pub struct DualGraph {
    n: usize,
    reliable_csr: Csr,
    extra_csr: Csr,
    all_csr: Csr,
    reliable_edges: Vec<Edge>,
    extra_edges: Vec<Edge>,
    delta: usize,
    delta_prime: usize,
}

/// The serialized shape of a [`DualGraph`]: the logical edge lists only.
/// Adjacency and degree bounds are derived data, rebuilt on deserialize,
/// so the wire format is independent of the in-memory layout.
#[derive(Serialize, Deserialize)]
struct DualGraphWire {
    n: usize,
    reliable_edges: Vec<Edge>,
    extra_edges: Vec<Edge>,
}

impl Serialize for DualGraph {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        DualGraphWire {
            n: self.n,
            reliable_edges: self.reliable_edges.clone(),
            extra_edges: self.extra_edges.clone(),
        }
        .serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for DualGraph {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let wire = DualGraphWire::deserialize(deserializer)?;
        DualGraph::new(
            wire.n,
            wire.reliable_edges.iter().map(|e| (e.a.0, e.b.0)),
            wire.extra_edges.iter().map(|e| (e.a.0, e.b.0)),
        )
        .map_err(serde::de::Error::custom)
    }
}

impl DualGraph {
    /// Builds a dual graph from `n` vertices, reliable edges `E`, and extra
    /// unreliable edges `E' \ E`.
    ///
    /// Duplicate edges within one list are deduplicated.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if an endpoint is out of range or an edge
    /// appears in both lists.
    pub fn new(
        n: usize,
        reliable: impl IntoIterator<Item = (usize, usize)>,
        extra: impl IntoIterator<Item = (usize, usize)>,
    ) -> Result<Self, GraphError> {
        let mut rel = BTreeSet::new();
        for (u, v) in reliable {
            for &x in &[u, v] {
                if x >= n {
                    return Err(GraphError::VertexOutOfRange { vertex: x, n });
                }
            }
            rel.insert(Edge::new(NodeId(u), NodeId(v)));
        }
        let mut ext = BTreeSet::new();
        for (u, v) in extra {
            for &x in &[u, v] {
                if x >= n {
                    return Err(GraphError::VertexOutOfRange { vertex: x, n });
                }
            }
            let e = Edge::new(NodeId(u), NodeId(v));
            if rel.contains(&e) {
                return Err(GraphError::DuplicateEdge(e));
            }
            ext.insert(e);
        }

        let reliable_edges: Vec<Edge> = rel.into_iter().collect();
        let extra_edges: Vec<Edge> = ext.into_iter().collect();
        let reliable_csr = Csr::build(n, &reliable_edges);
        let extra_csr = Csr::build(n, &extra_edges);
        let all_csr = Csr::merge(n, &reliable_csr, &extra_csr);
        let delta = reliable_csr.degree_bound();
        let delta_prime = all_csr.degree_bound();
        Ok(DualGraph {
            n,
            reliable_csr,
            extra_csr,
            all_csr,
            reliable_edges,
            extra_edges,
            delta,
            delta_prime,
        })
    }

    /// A graph with only reliable edges (`E' = E`), i.e. the classical
    /// reliable radio network model as a special case.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if an endpoint is out of range.
    pub fn reliable_only(
        n: usize,
        reliable: impl IntoIterator<Item = (usize, usize)>,
    ) -> Result<Self, GraphError> {
        Self::new(n, reliable, std::iter::empty())
    }

    /// Number of vertices `|V|`. The paper calls this `n`; crucially, the
    /// *algorithms* never read it — only analysis code does.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Iterator over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = NodeId> {
        (0..self.n).map(NodeId)
    }

    /// `N_G(u)`: reliable neighbors of `u`, excluding `u` itself.
    pub fn reliable_neighbors(&self, u: NodeId) -> &[NodeId] {
        self.reliable_csr.neighbors(u.0)
    }

    /// Neighbors of `u` through *extra* (unreliable-only) edges.
    pub fn extra_neighbors(&self, u: NodeId) -> &[NodeId] {
        self.extra_csr.neighbors(u.0)
    }

    /// `N_{G'}(u)`: all neighbors of `u` in `G'`, excluding `u` — a
    /// borrowed, sorted slice of the precomputed merged adjacency.
    pub fn all_neighbors(&self, u: NodeId) -> &[NodeId] {
        self.all_csr.neighbors(u.0)
    }

    /// Whether `{u, v} ∈ E`.
    pub fn is_reliable_edge(&self, u: NodeId, v: NodeId) -> bool {
        u != v && self.reliable_csr.neighbors(u.0).binary_search(&v).is_ok()
    }

    /// Whether `{u, v} ∈ E'` (reliable or unreliable).
    pub fn is_any_edge(&self, u: NodeId, v: NodeId) -> bool {
        u != v && self.all_csr.neighbors(u.0).binary_search(&v).is_ok()
    }

    /// The reliable edge list `E`.
    pub fn reliable_edges(&self) -> &[Edge] {
        &self.reliable_edges
    }

    /// The extra edge list `E' \ E`.
    pub fn extra_edges(&self) -> &[Edge] {
        &self.extra_edges
    }

    /// `Δ`: the maximum over `u` of `|N_G(u) ∪ {u}|`.
    ///
    /// Processes are assumed to *know* this bound (Section 2), so the
    /// engine passes it to every process at start. Precomputed at
    /// construction; this accessor is free.
    pub fn delta(&self) -> usize {
        self.delta
    }

    /// `Δ'`: the maximum over `u` of `|N_{G'}(u) ∪ {u}|`. Precomputed at
    /// construction; this accessor is free.
    pub fn delta_prime(&self) -> usize {
        self.delta_prime
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> DualGraph {
        // 0-1 reliable, 1-2 reliable, 0-2 unreliable.
        DualGraph::new(3, [(0, 1), (1, 2)], [(0, 2)]).unwrap()
    }

    #[test]
    fn adjacency_queries() {
        let g = triangle();
        assert!(g.is_reliable_edge(NodeId(0), NodeId(1)));
        assert!(!g.is_reliable_edge(NodeId(0), NodeId(2)));
        assert!(g.is_any_edge(NodeId(0), NodeId(2)));
        assert!(!g.is_any_edge(NodeId(0), NodeId(0)));
        assert_eq!(g.reliable_neighbors(NodeId(1)), &[NodeId(0), NodeId(2)]);
        assert_eq!(g.extra_neighbors(NodeId(0)), &[NodeId(2)]);
        assert_eq!(g.all_neighbors(NodeId(0)), &[NodeId(1), NodeId(2)]);
    }

    /// Brute-force recomputation of `Δ`, `Δ'`, and the merged adjacency
    /// from the edge lists alone — the CSR precomputation must match it
    /// on every graph shape.
    fn brute_force_check(g: &DualGraph) {
        let mut delta = 1;
        let mut delta_prime = 1;
        for u in g.vertices() {
            let rel: BTreeSet<NodeId> = g
                .reliable_edges()
                .iter()
                .filter_map(|e| e.try_other(u))
                .collect();
            let mut all = rel.clone();
            all.extend(g.extra_edges().iter().filter_map(|e| e.try_other(u)));
            delta = delta.max(rel.len() + 1);
            delta_prime = delta_prime.max(all.len() + 1);
            assert_eq!(
                g.reliable_neighbors(u),
                rel.iter().copied().collect::<Vec<_>>(),
                "reliable adjacency of {u} diverged from the edge list"
            );
            assert_eq!(
                g.all_neighbors(u),
                all.iter().copied().collect::<Vec<_>>(),
                "merged G' adjacency of {u} diverged from the edge list"
            );
        }
        assert_eq!(g.delta(), delta, "precomputed delta diverged");
        assert_eq!(g.delta_prime(), delta_prime, "precomputed delta' diverged");
    }

    #[test]
    fn precomputed_bounds_match_brute_force() {
        brute_force_check(&triangle());
        brute_force_check(&DualGraph::new(0, [], []).unwrap());
        brute_force_check(&DualGraph::new(1, [], []).unwrap());
        // A star plus a fringe ring: uneven degrees in both classes.
        brute_force_check(
            &DualGraph::new(
                7,
                (1..7).map(|v| (0, v)),
                (1..7).map(|v| (v, v % 6 + 1)).filter(|(a, b)| a != b),
            )
            .unwrap(),
        );
        // Isolated vertices at both ends of the index range.
        brute_force_check(&DualGraph::new(6, [(2, 3)], [(3, 4)]).unwrap());
    }

    #[test]
    fn serde_roundtrip_preserves_graph_and_derived_data() {
        let g = DualGraph::new(5, [(0, 1), (1, 2), (3, 4)], [(0, 2), (2, 4)]).unwrap();
        let json = serde_json::to_string(&g).unwrap();
        // The wire format carries only the logical edge lists.
        assert!(json.contains("reliable_edges"));
        assert!(!json.contains("csr") && !json.contains("offsets"));
        let back: DualGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back);
        assert_eq!(back.delta(), g.delta());
        assert_eq!(back.delta_prime(), g.delta_prime());
    }

    #[test]
    fn serde_rejects_structurally_invalid_wire_data() {
        // An edge in both sets must fail deserialization, not produce a
        // graph that violates the `E' \ E` invariant.
        let bad = r#"{"n":2,
            "reliable_edges":[{"a":0,"b":1}],
            "extra_edges":[{"a":0,"b":1}]}"#;
        assert!(serde_json::from_str::<DualGraph>(bad).is_err());
    }

    #[test]
    fn degree_bounds() {
        let g = triangle();
        // Node 1 has two reliable neighbors: delta = 3.
        assert_eq!(g.delta(), 3);
        // Every node sees both others in G': delta' = 3.
        assert_eq!(g.delta_prime(), 3);
    }

    #[test]
    fn rejects_out_of_range() {
        let err = DualGraph::new(2, [(0, 5)], []).unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfRange { vertex: 5, n: 2 }));
    }

    #[test]
    fn rejects_edge_in_both_sets() {
        let err = DualGraph::new(2, [(0, 1)], [(1, 0)]).unwrap_err();
        assert!(matches!(err, GraphError::DuplicateEdge(_)));
    }

    #[test]
    fn deduplicates_repeated_edges() {
        let g = DualGraph::new(2, [(0, 1), (1, 0)], []).unwrap();
        assert_eq!(g.reliable_edges().len(), 1);
    }

    #[test]
    fn edge_normalization_and_other() {
        let e = Edge::new(NodeId(5), NodeId(2));
        assert_eq!(e.a, NodeId(2));
        assert_eq!(e.try_other(NodeId(2)), Some(NodeId(5)));
        assert_eq!(e.try_other(NodeId(5)), Some(NodeId(2)));
        assert_eq!(e.try_other(NodeId(7)), None);
        // The panicking wrapper still works for known endpoints.
        assert_eq!(e.other(NodeId(2)), NodeId(5));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn edge_rejects_self_loop() {
        let _ = Edge::new(NodeId(1), NodeId(1));
    }

    #[test]
    fn empty_graph() {
        let g = DualGraph::new(0, [], []).unwrap();
        assert!(g.is_empty());
        assert_eq!(g.delta(), 1);
    }
}
