//! The dual graph `(G, G')`: reliable links plus an unreliable fringe.
//!
//! Following Section 2 of the paper, the network topology is described by a
//! pair of graphs over the same vertices, `G = (V, E)` (reliable links) and
//! `G' = (V, E')` with `E ⊆ E'`; the edges `E' \ E` are *unreliable* and
//! their per-round presence is decided by a link scheduler.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Index of a graph vertex. The engine assigns process ids separately (the
/// paper's `id()` mapping); `NodeId` is the *vertex*, not the process id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// An undirected edge, stored with endpoints ordered so `a <= b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Edge {
    /// Smaller endpoint.
    pub a: NodeId,
    /// Larger endpoint.
    pub b: NodeId,
}

impl Edge {
    /// Creates a normalized undirected edge.
    ///
    /// # Panics
    ///
    /// Panics on self-loops, which the model forbids.
    pub fn new(u: NodeId, v: NodeId) -> Self {
        assert_ne!(u, v, "self-loops are not allowed in the dual graph");
        if u.0 <= v.0 {
            Edge { a: u, b: v }
        } else {
            Edge { a: v, b: u }
        }
    }

    /// The endpoint opposite to `x`, or `None` when `x` is not an
    /// endpoint of this edge.
    pub fn try_other(&self, x: NodeId) -> Option<NodeId> {
        if x == self.a {
            Some(self.b)
        } else if x == self.b {
            Some(self.a)
        } else {
            None
        }
    }

    /// The endpoint opposite to `x`.
    ///
    /// Prefer [`Edge::try_other`] when `x` is not statically known to be
    /// an endpoint.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not an endpoint.
    pub fn other(&self, x: NodeId) -> NodeId {
        self.try_other(x)
            .unwrap_or_else(|| panic!("{x} is not an endpoint of {self:?}"))
    }
}

/// Errors arising when constructing a [`DualGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge referenced a vertex index `>= n`.
    VertexOutOfRange {
        /// The offending vertex.
        vertex: usize,
        /// The number of vertices in the graph.
        n: usize,
    },
    /// The same edge appeared in both the reliable set and the extra
    /// (unreliable) set, violating `E' \ E` disjointness.
    DuplicateEdge(Edge),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(f, "edge references vertex {vertex} but graph has {n} vertices")
            }
            GraphError::DuplicateEdge(e) => {
                write!(f, "edge {e:?} listed as both reliable and unreliable")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// The dual graph `(G, G')` of Section 2.
///
/// Stored as the reliable edge set `E` and the *extra* edge set `E' \ E`.
/// Construction validates that the two sets are disjoint and in range, so a
/// `DualGraph` value always satisfies the model's structural invariants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DualGraph {
    n: usize,
    reliable_adj: Vec<Vec<NodeId>>,
    extra_adj: Vec<Vec<NodeId>>,
    reliable_edges: Vec<Edge>,
    extra_edges: Vec<Edge>,
}

impl DualGraph {
    /// Builds a dual graph from `n` vertices, reliable edges `E`, and extra
    /// unreliable edges `E' \ E`.
    ///
    /// Duplicate edges within one list are deduplicated.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if an endpoint is out of range or an edge
    /// appears in both lists.
    pub fn new(
        n: usize,
        reliable: impl IntoIterator<Item = (usize, usize)>,
        extra: impl IntoIterator<Item = (usize, usize)>,
    ) -> Result<Self, GraphError> {
        let mut rel = BTreeSet::new();
        for (u, v) in reliable {
            for &x in &[u, v] {
                if x >= n {
                    return Err(GraphError::VertexOutOfRange { vertex: x, n });
                }
            }
            rel.insert(Edge::new(NodeId(u), NodeId(v)));
        }
        let mut ext = BTreeSet::new();
        for (u, v) in extra {
            for &x in &[u, v] {
                if x >= n {
                    return Err(GraphError::VertexOutOfRange { vertex: x, n });
                }
            }
            let e = Edge::new(NodeId(u), NodeId(v));
            if rel.contains(&e) {
                return Err(GraphError::DuplicateEdge(e));
            }
            ext.insert(e);
        }

        let mut reliable_adj = vec![Vec::new(); n];
        for e in &rel {
            reliable_adj[e.a.0].push(e.b);
            reliable_adj[e.b.0].push(e.a);
        }
        let mut extra_adj = vec![Vec::new(); n];
        for e in &ext {
            extra_adj[e.a.0].push(e.b);
            extra_adj[e.b.0].push(e.a);
        }
        for adj in reliable_adj.iter_mut().chain(extra_adj.iter_mut()) {
            adj.sort();
        }
        Ok(DualGraph {
            n,
            reliable_adj,
            extra_adj,
            reliable_edges: rel.into_iter().collect(),
            extra_edges: ext.into_iter().collect(),
        })
    }

    /// A graph with only reliable edges (`E' = E`), i.e. the classical
    /// reliable radio network model as a special case.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if an endpoint is out of range.
    pub fn reliable_only(
        n: usize,
        reliable: impl IntoIterator<Item = (usize, usize)>,
    ) -> Result<Self, GraphError> {
        Self::new(n, reliable, std::iter::empty())
    }

    /// Number of vertices `|V|`. The paper calls this `n`; crucially, the
    /// *algorithms* never read it — only analysis code does.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Iterator over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = NodeId> {
        (0..self.n).map(NodeId)
    }

    /// `N_G(u)`: reliable neighbors of `u`, excluding `u` itself.
    pub fn reliable_neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.reliable_adj[u.0]
    }

    /// Neighbors of `u` through *extra* (unreliable-only) edges.
    pub fn extra_neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.extra_adj[u.0]
    }

    /// `N_{G'}(u)`: all neighbors of `u` in `G'`, excluding `u`.
    pub fn all_neighbors(&self, u: NodeId) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self.reliable_adj[u.0]
            .iter()
            .chain(self.extra_adj[u.0].iter())
            .copied()
            .collect();
        out.sort();
        out
    }

    /// Whether `{u, v} ∈ E`.
    pub fn is_reliable_edge(&self, u: NodeId, v: NodeId) -> bool {
        u != v && self.reliable_adj[u.0].binary_search(&v).is_ok()
    }

    /// Whether `{u, v} ∈ E'` (reliable or unreliable).
    pub fn is_any_edge(&self, u: NodeId, v: NodeId) -> bool {
        u != v
            && (self.reliable_adj[u.0].binary_search(&v).is_ok()
                || self.extra_adj[u.0].binary_search(&v).is_ok())
    }

    /// The reliable edge list `E`.
    pub fn reliable_edges(&self) -> &[Edge] {
        &self.reliable_edges
    }

    /// The extra edge list `E' \ E`.
    pub fn extra_edges(&self) -> &[Edge] {
        &self.extra_edges
    }

    /// `Δ`: the maximum over `u` of `|N_G(u) ∪ {u}|`.
    ///
    /// Processes are assumed to *know* this bound (Section 2), so the
    /// engine passes it to every process at start.
    pub fn delta(&self) -> usize {
        self.reliable_adj
            .iter()
            .map(|a| a.len() + 1)
            .max()
            .unwrap_or(1)
    }

    /// `Δ'`: the maximum over `u` of `|N_{G'}(u) ∪ {u}|`.
    pub fn delta_prime(&self) -> usize {
        (0..self.n)
            .map(|u| {
                let mut set: BTreeSet<NodeId> = self.reliable_adj[u].iter().copied().collect();
                set.extend(self.extra_adj[u].iter().copied());
                set.len() + 1
            })
            .max()
            .unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> DualGraph {
        // 0-1 reliable, 1-2 reliable, 0-2 unreliable.
        DualGraph::new(3, [(0, 1), (1, 2)], [(0, 2)]).unwrap()
    }

    #[test]
    fn adjacency_queries() {
        let g = triangle();
        assert!(g.is_reliable_edge(NodeId(0), NodeId(1)));
        assert!(!g.is_reliable_edge(NodeId(0), NodeId(2)));
        assert!(g.is_any_edge(NodeId(0), NodeId(2)));
        assert!(!g.is_any_edge(NodeId(0), NodeId(0)));
        assert_eq!(g.reliable_neighbors(NodeId(1)), &[NodeId(0), NodeId(2)]);
        assert_eq!(g.extra_neighbors(NodeId(0)), &[NodeId(2)]);
        assert_eq!(g.all_neighbors(NodeId(0)), vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn degree_bounds() {
        let g = triangle();
        // Node 1 has two reliable neighbors: delta = 3.
        assert_eq!(g.delta(), 3);
        // Every node sees both others in G': delta' = 3.
        assert_eq!(g.delta_prime(), 3);
    }

    #[test]
    fn rejects_out_of_range() {
        let err = DualGraph::new(2, [(0, 5)], []).unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfRange { vertex: 5, n: 2 }));
    }

    #[test]
    fn rejects_edge_in_both_sets() {
        let err = DualGraph::new(2, [(0, 1)], [(1, 0)]).unwrap_err();
        assert!(matches!(err, GraphError::DuplicateEdge(_)));
    }

    #[test]
    fn deduplicates_repeated_edges() {
        let g = DualGraph::new(2, [(0, 1), (1, 0)], []).unwrap();
        assert_eq!(g.reliable_edges().len(), 1);
    }

    #[test]
    fn edge_normalization_and_other() {
        let e = Edge::new(NodeId(5), NodeId(2));
        assert_eq!(e.a, NodeId(2));
        assert_eq!(e.try_other(NodeId(2)), Some(NodeId(5)));
        assert_eq!(e.try_other(NodeId(5)), Some(NodeId(2)));
        assert_eq!(e.try_other(NodeId(7)), None);
        // The panicking wrapper still works for known endpoints.
        assert_eq!(e.other(NodeId(2)), NodeId(5));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn edge_rejects_self_loop() {
        let _ = Edge::new(NodeId(1), NodeId(1));
    }

    #[test]
    fn empty_graph() {
        let g = DualGraph::new(0, [], []).unwrap();
        assert!(g.is_empty());
        assert_eq!(g.delta(), 1);
    }
}
