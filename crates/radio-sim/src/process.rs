//! The [`Process`] trait: probabilistic automata assigned to graph vertices.
//!
//! Section 2 of the paper models wireless devices as "probabilistic timed
//! automata"; each knows its own id and the degree bounds `Δ` and `Δ'`, but
//! **not** the network size `n` nor the id assignment. The [`Context`]
//! passed to every callback exposes exactly that knowledge plus the node's
//! private random stream — nothing global.

use rand_chacha::ChaCha8Rng;

/// A process identifier from the id space `I` (the paper's `proc(i)`).
///
/// Distinct from [`crate::graph::NodeId`]: the engine's id assignment maps
/// vertices to process ids injectively, and algorithms must only ever see
/// the `ProcId`.
pub type ProcId = u64;

/// What a process does in the transmit step of a round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action<M> {
    /// Transmit the given message.
    Transmit(M),
    /// Listen (the default).
    Receive,
}

/// Per-round, per-process knowledge: everything a *truly local* algorithm
/// is allowed to depend on.
#[derive(Debug)]
pub struct Context<'a> {
    /// The current round, starting from 1 as in the paper.
    pub round: u64,
    /// This process's id (the paper's `i` in `proc(i)`).
    pub id: ProcId,
    /// Upper bound on `|N_G(u) ∪ {u}|`, known to all processes.
    pub delta: usize,
    /// Upper bound on `|N_G'(u) ∪ {u}|`, known to all processes.
    pub delta_prime: usize,
    /// The geographic parameter `r` of the model (fixed per Section 2).
    pub r: f64,
    /// The process's private source of randomness.
    pub rng: &'a mut ChaCha8Rng,
}

/// A process: the algorithm running at one graph vertex.
///
/// The engine drives each round through the Section 2 step order:
/// [`Process::on_input`] for environment inputs, then [`Process::transmit`]
/// for the transmit/listen decision, then [`Process::on_receive`] with the
/// collision-resolved reception, and finally [`Process::take_outputs`] to
/// drain outputs for the environment.
pub trait Process: Send {
    /// Message type carried on the channel.
    type Msg: Clone + Send;
    /// Inputs delivered by the environment (e.g. `bcast(m)`).
    type Input: Clone + Send;
    /// Outputs consumed by the environment (e.g. `ack(m)`, `recv(m)`).
    type Output: Clone + Send;

    /// Handles an environment input at the start of a round.
    fn on_input(&mut self, input: Self::Input, ctx: &mut Context<'_>);

    /// Decides whether to transmit or listen this round.
    fn transmit(&mut self, ctx: &mut Context<'_>) -> Action<Self::Msg>;

    /// Handles the round's reception: `Some(m)` when exactly one
    /// topology-neighbor transmitted `m` and this process was listening;
    /// `None` (the paper's `⊥`) on silence, collision, or when this
    /// process itself transmitted. No collision detection.
    fn on_receive(&mut self, msg: Option<Self::Msg>, ctx: &mut Context<'_>);

    /// Drains outputs generated this round (end-of-round step).
    fn take_outputs(&mut self) -> Vec<Self::Output>;

    /// Whether [`Process::take_outputs`] would currently return anything.
    /// The engine consults this before draining so the (overwhelmingly
    /// common) no-output round costs one branch per node. The default is
    /// conservatively `true`; implementations with an internal output
    /// buffer should report its emptiness.
    fn has_outputs(&self) -> bool {
        true
    }

    /// Called when the node comes back up after a power-save fault-plan
    /// crash (see [`crate::fault::FaultPlan`]), before any other
    /// callback of the recovery round. The default keeps all state — a
    /// duty-cycle / power-save churn model.
    fn on_restart(&mut self, _ctx: &mut Context<'_>) {}

    /// Called instead of [`Process::on_restart`] when the node comes
    /// back up from a **crash-restart** — a crash whose
    /// [`restart`](crate::fault::Crash::restart) flag is set. Algorithms
    /// that model volatile memory override this to reset themselves to
    /// their just-booted state (keeping only what would survive a power
    /// cycle: code and configuration). The default delegates to
    /// [`Process::on_restart`], so processes without a volatile-memory
    /// model behave identically under both recovery semantics.
    fn on_crash_restart(&mut self, ctx: &mut Context<'_>) {
        self.on_restart(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_equality() {
        let a: Action<u32> = Action::Transmit(7);
        assert_eq!(a, Action::Transmit(7));
        assert_ne!(a, Action::Receive);
    }
}
