//! Epoch-based dynamic geometry: the [`GraphTimeline`].
//!
//! Every execution so far ran on frozen geometry — one immutable
//! [`DualGraph`] per trial. Mobile settings (moving jammers, node
//! mobility) need the communication graph to *change over time* while
//! keeping the stack's determinism and byte-identity contracts intact.
//! A `GraphTimeline` is the minimal refactor that unlocks this: a
//! deterministic sequence of `(epoch_start_round, Arc<DualGraph>)`
//! snapshots, built **once** per trial before the first round, that the
//! engine (and the `net` crate's cluster/transport) consult at the top
//! of every round.
//!
//! Contracts:
//!
//! * Epochs are half-open round intervals: epoch `i` covers rounds
//!   `[start_i, start_{i+1})`, the last epoch extends forever. The first
//!   epoch starts at round 1 (rounds are 1-based everywhere).
//! * All snapshots share one vertex set — mobility moves nodes, it does
//!   not add or remove them — so engine scratch buffers and process
//!   vectors stay valid across every boundary.
//! * [`GraphTimeline::single`] over a graph `g` is the static model:
//!   an engine driven by it is **byte-identical** to one configured with
//!   `g` directly (pinned by proptest and the golden gate).
//! * Degree bounds reported to processes ([`GraphTimeline::delta`],
//!   [`GraphTimeline::delta_prime`]) are the maxima over all epochs, so
//!   the `Δ`/`Δ'` a process sees in its [`Context`](crate::process::Context)
//!   stay constant for the whole execution — exactly the per-epoch
//!   values for a single epoch.

use crate::graph::DualGraph;
use std::sync::Arc;

/// An error constructing a [`GraphTimeline`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimelineError {
    /// The epoch list was empty.
    Empty,
    /// The first epoch did not start at round 1.
    FirstEpochStart(u64),
    /// Epoch starts were not strictly increasing.
    NonIncreasing {
        /// Index of the offending epoch.
        index: usize,
        /// Its start round.
        start: u64,
    },
    /// Two snapshots disagreed on the vertex count.
    VertexMismatch {
        /// Index of the offending epoch.
        index: usize,
        /// Its vertex count.
        n: usize,
        /// The first epoch's vertex count.
        expected: usize,
    },
}

impl std::fmt::Display for TimelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimelineError::Empty => write!(f, "a timeline needs at least one epoch"),
            TimelineError::FirstEpochStart(s) => {
                write!(f, "the first epoch must start at round 1, got {s}")
            }
            TimelineError::NonIncreasing { index, start } => write!(
                f,
                "epoch starts must be strictly increasing; epoch {index} starts at {start}"
            ),
            TimelineError::VertexMismatch { index, n, expected } => write!(
                f,
                "all epochs must share one vertex set; epoch {index} has {n} vertices, \
                 expected {expected}"
            ),
        }
    }
}

impl std::error::Error for TimelineError {}

/// A deterministic schedule of dual-graph snapshots over the rounds of
/// one execution. Cheap to clone (snapshots are `Arc`-shared).
#[derive(Debug, Clone)]
pub struct GraphTimeline {
    /// `(first_round, snapshot)` pairs, strictly increasing starts,
    /// first start = 1.
    epochs: Vec<(u64, Arc<DualGraph>)>,
    /// Max reliable degree bound over all epochs.
    delta: usize,
    /// Max G' degree bound over all epochs.
    delta_prime: usize,
}

impl GraphTimeline {
    /// The static timeline: one epoch covering every round. This is the
    /// identity refactor — an engine over `single(g)` is byte-identical
    /// to one over `g`.
    pub fn single(graph: impl Into<Arc<DualGraph>>) -> Self {
        let graph = graph.into();
        let delta = graph.delta();
        let delta_prime = graph.delta_prime();
        GraphTimeline {
            epochs: vec![(1, graph)],
            delta,
            delta_prime,
        }
    }

    /// Builds a timeline from explicit `(epoch_start_round, snapshot)`
    /// pairs.
    ///
    /// # Errors
    ///
    /// Rejects an empty list, a first epoch not starting at round 1,
    /// non-increasing starts, or snapshots with differing vertex counts.
    pub fn new(
        epochs: impl IntoIterator<Item = (u64, Arc<DualGraph>)>,
    ) -> Result<Self, TimelineError> {
        let epochs: Vec<(u64, Arc<DualGraph>)> = epochs.into_iter().collect();
        let Some((first_start, first)) = epochs.first() else {
            return Err(TimelineError::Empty);
        };
        if *first_start != 1 {
            return Err(TimelineError::FirstEpochStart(*first_start));
        }
        let n = first.len();
        let mut prev = 0u64;
        let mut delta = 0usize;
        let mut delta_prime = 0usize;
        for (index, (start, graph)) in epochs.iter().enumerate() {
            if *start <= prev {
                return Err(TimelineError::NonIncreasing {
                    index,
                    start: *start,
                });
            }
            prev = *start;
            if graph.len() != n {
                return Err(TimelineError::VertexMismatch {
                    index,
                    n: graph.len(),
                    expected: n,
                });
            }
            delta = delta.max(graph.delta());
            delta_prime = delta_prime.max(graph.delta_prime());
        }
        Ok(GraphTimeline {
            epochs,
            delta,
            delta_prime,
        })
    }

    /// The number of epochs.
    pub fn num_epochs(&self) -> usize {
        self.epochs.len()
    }

    /// Whether this is the static (one-epoch) timeline.
    pub fn is_single(&self) -> bool {
        self.epochs.len() == 1
    }

    /// The shared vertex count of every snapshot.
    pub fn len(&self) -> usize {
        self.epochs[0].1.len()
    }

    /// Whether the vertex set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The epochs, in order: `(first_round, snapshot)` pairs.
    pub fn epochs(&self) -> &[(u64, Arc<DualGraph>)] {
        &self.epochs
    }

    /// The first round of epoch `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn epoch_start(&self, index: usize) -> u64 {
        self.epochs[index].0
    }

    /// The snapshot of epoch `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn epoch_graph(&self, index: usize) -> &Arc<DualGraph> {
        &self.epochs[index].1
    }

    /// The index of the epoch covering `round` (rounds are 1-based;
    /// rounds before the first epoch — there are none for a valid
    /// timeline — and after the last start map to the covering epoch).
    pub fn epoch_index(&self, round: u64) -> usize {
        // partition_point: first epoch whose start exceeds `round`.
        self.epochs.partition_point(|(start, _)| *start <= round).saturating_sub(1)
    }

    /// The snapshot in force at `round`.
    pub fn graph_at(&self, round: u64) -> &Arc<DualGraph> {
        &self.epochs[self.epoch_index(round)].1
    }

    /// Maximum reliable degree bound over all epochs (+1, as reported by
    /// [`DualGraph::delta`]); the constant `Δ` processes see.
    pub fn delta(&self) -> usize {
        self.delta
    }

    /// Maximum `G'` degree bound over all epochs; the constant `Δ'`
    /// processes see.
    pub fn delta_prime(&self) -> usize {
        self.delta_prime
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(n: usize, reliable: &[(usize, usize)], extra: &[(usize, usize)]) -> Arc<DualGraph> {
        Arc::new(DualGraph::new(n, reliable.iter().copied(), extra.iter().copied()).unwrap())
    }

    #[test]
    fn single_matches_the_graph() {
        let graph = g(3, &[(0, 1), (1, 2)], &[(0, 2)]);
        let t = GraphTimeline::single(Arc::clone(&graph));
        assert!(t.is_single());
        assert_eq!(t.num_epochs(), 1);
        assert_eq!(t.len(), 3);
        assert_eq!(t.delta(), graph.delta());
        assert_eq!(t.delta_prime(), graph.delta_prime());
        for round in [1, 2, 100, u64::MAX] {
            assert!(Arc::ptr_eq(t.graph_at(round), &graph), "round {round}");
        }
    }

    #[test]
    fn epoch_lookup_is_half_open() {
        let a = g(3, &[(0, 1)], &[]);
        let b = g(3, &[(1, 2)], &[]);
        let c = g(3, &[(0, 2)], &[]);
        let t = GraphTimeline::new([
            (1, Arc::clone(&a)),
            (5, Arc::clone(&b)),
            (9, Arc::clone(&c)),
        ])
        .unwrap();
        assert_eq!(t.num_epochs(), 3);
        assert!(!t.is_single());
        for (round, want) in [(1, &a), (4, &a), (5, &b), (8, &b), (9, &c), (1000, &c)] {
            assert!(Arc::ptr_eq(t.graph_at(round), want), "round {round}");
        }
        assert_eq!(t.epoch_index(1), 0);
        assert_eq!(t.epoch_index(5), 1);
        assert_eq!(t.epoch_index(9), 2);
        assert_eq!(t.epoch_start(1), 5);
    }

    #[test]
    fn degree_bounds_are_maxima_over_epochs() {
        // Epoch 0: a line (delta = 3); epoch 1: a star around 0
        // (delta = 4) with an extra edge (delta_prime = 5).
        let line = g(4, &[(0, 1), (1, 2), (2, 3)], &[]);
        let star = g(4, &[(0, 1), (0, 2), (0, 3)], &[(1, 2)]);
        let t = GraphTimeline::new([(1, Arc::clone(&line)), (10, Arc::clone(&star))]).unwrap();
        assert_eq!(t.delta(), line.delta().max(star.delta()));
        assert_eq!(t.delta_prime(), line.delta_prime().max(star.delta_prime()));
    }

    #[test]
    fn rejects_malformed_timelines() {
        let a = g(2, &[(0, 1)], &[]);
        assert_eq!(GraphTimeline::new([]).unwrap_err(), TimelineError::Empty);
        assert_eq!(
            GraphTimeline::new([(2, Arc::clone(&a))]).unwrap_err(),
            TimelineError::FirstEpochStart(2)
        );
        assert!(matches!(
            GraphTimeline::new([(1, Arc::clone(&a)), (1, Arc::clone(&a))]).unwrap_err(),
            TimelineError::NonIncreasing { index: 1, .. }
        ));
        let b = g(3, &[(0, 1)], &[]);
        assert!(matches!(
            GraphTimeline::new([(1, a), (4, b)]).unwrap_err(),
            TimelineError::VertexMismatch { index: 1, n: 3, expected: 2 }
        ));
    }
}
