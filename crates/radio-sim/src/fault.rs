//! Fault injection: node churn, jamming windows, and message-drop bursts.
//!
//! The paper's model already contains one adversary — the link scheduler
//! choosing which unreliable edges exist each round. Real deployments add
//! failure modes *outside* that model: devices power-cycling (churn),
//! localized interference floors (jamming), and transient loss bursts.
//! A [`FaultPlan`] describes those faults declaratively, fixed at the
//! start of the execution like the link schedule, so a faulted execution
//! remains a pure function of `(configuration, plan, master seed)` and is
//! replayable bit-for-bit.
//!
//! Semantics, applied by the engine each round:
//!
//! * **Crash** — a node is *down* in rounds `[down_from, up_at)` (or
//!   forever when `up_at` is `None`). While down it takes no steps at
//!   all: no inputs, no transmit/listen, no outputs; its edges carry
//!   nothing. Environment inputs addressed to it are discarded (and
//!   recorded as `InputLost` fault events) — a reactive environment
//!   that waits for the node's outputs before sending more, like an
//!   ack-gated broadcast queue, will therefore stall for that node, just
//!   as a real client whose request died with the device. On recovery
//!   the engine fires a hook whose choice depends on the crash's
//!   [`restart`](Crash::restart) mode: power-save churn (the default)
//!   calls [`Process::on_restart`](crate::process::Process::on_restart)
//!   (state intact by default — a duty-cycle model), while crash-restart
//!   calls
//!   [`Process::on_crash_restart`](crate::process::Process::on_crash_restart),
//!   which algorithms with volatile memory override to reset themselves.
//! * **Jam** — during rounds `[from, to]` every *listed* node hears noise:
//!   while listening it receives `⊥` regardless of how many neighbors
//!   transmit. Its own transmissions are unaffected (receivers outside
//!   the jammed set still hear them).
//! * **Drop burst** — during rounds `[from, to]` every reception that
//!   would otherwise succeed is independently suppressed with probability
//!   `p`, using a dedicated random stream derived from the master seed
//!   ([`StreamKind::Fault`](crate::rng::StreamKind::Fault)), so drops
//!   never perturb process or scheduler randomness.
//!
//! Crash/recover and jam-window transitions are recorded in the trace as
//! [`EventKind::Fault`](crate::trace::EventKind::Fault) events; individual
//! drops are recorded when reception recording is enabled.

use crate::graph::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One node going down and (optionally) coming back.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Crash {
    /// The affected vertex.
    pub node: NodeId,
    /// First round (1-based, inclusive) the node is down.
    pub down_from: u64,
    /// First round the node is back up; `None` means it never recovers.
    pub up_at: Option<u64>,
    /// Recovery semantics: `false` (the default, and the value assumed
    /// by plans serialized before this field existed) models power-save
    /// churn — the process keeps its state across the outage. `true`
    /// models a true crash-restart: on recovery the engine calls
    /// [`Process::on_crash_restart`](crate::process::Process::on_crash_restart)
    /// instead of
    /// [`Process::on_restart`](crate::process::Process::on_restart), and
    /// the process loses its volatile memory.
    #[serde(default)]
    pub restart: bool,
}

impl Crash {
    /// Whether the node is down in `round`.
    pub fn is_down(&self, round: u64) -> bool {
        round >= self.down_from && self.up_at.is_none_or(|up| round < up)
    }
}

/// A jamming window: the listed nodes hear only noise during the window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Jam {
    /// The jammed vertices (e.g. all nodes inside an interference disc).
    pub nodes: Vec<NodeId>,
    /// First jammed round (1-based, inclusive).
    pub from: u64,
    /// Last jammed round (inclusive).
    pub to: u64,
}

impl Jam {
    /// Whether the window covers `round`.
    pub fn covers(&self, round: u64) -> bool {
        round >= self.from && round <= self.to
    }
}

/// A loss burst: successful receptions are dropped with probability `p`
/// during the window, decided by the dedicated fault random stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DropBurst {
    /// First affected round (1-based, inclusive).
    pub from: u64,
    /// Last affected round (inclusive).
    pub to: u64,
    /// Per-reception drop probability.
    pub p: f64,
}

impl DropBurst {
    /// Whether the burst covers `round`.
    pub fn covers(&self, round: u64) -> bool {
        round >= self.from && round <= self.to
    }
}

/// Errors from [`FaultPlan::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum FaultError {
    /// A fault referenced a vertex index `>= n`.
    NodeOutOfRange {
        /// The offending vertex.
        node: NodeId,
        /// The configuration's vertex count.
        n: usize,
    },
    /// A window or crash interval is empty or starts before round 1.
    BadWindow {
        /// Description of the offending entry.
        what: String,
    },
    /// A drop probability was outside `[0, 1]`.
    BadProbability(f64),
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::NodeOutOfRange { node, n } => {
                write!(f, "fault references vertex {node} but the graph has {n} vertices")
            }
            FaultError::BadWindow { what } => write!(f, "malformed fault window: {what}"),
            FaultError::BadProbability(p) => {
                write!(f, "drop probability must be in [0, 1], got {p}")
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// A complete fault schedule, fixed at the start of the execution.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Node crash/recover events.
    pub crashes: Vec<Crash>,
    /// Jamming windows.
    pub jams: Vec<Jam>,
    /// Message-drop bursts.
    pub drops: Vec<DropBurst>,
}

impl FaultPlan {
    /// The empty plan (no faults): engine behavior is identical to a
    /// plan-free execution.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan contains no faults at all.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty() && self.jams.is_empty() && self.drops.is_empty()
    }

    /// Adds a power-save crash (builder style): the process keeps its
    /// state across the outage.
    pub fn with_crash(mut self, node: NodeId, down_from: u64, up_at: Option<u64>) -> Self {
        self.crashes.push(Crash {
            node,
            down_from,
            up_at,
            restart: false,
        });
        self
    }

    /// Adds a crash-restart (builder style): on recovery the process
    /// loses its volatile memory (see [`Crash::restart`]).
    pub fn with_crash_restart(mut self, node: NodeId, down_from: u64, up_at: Option<u64>) -> Self {
        self.crashes.push(Crash {
            node,
            down_from,
            up_at,
            restart: true,
        });
        self
    }

    /// Adds a jamming window (builder style).
    pub fn with_jam(mut self, nodes: Vec<NodeId>, from: u64, to: u64) -> Self {
        self.jams.push(Jam { nodes, from, to });
        self
    }

    /// Adds a drop burst (builder style).
    pub fn with_drop_burst(mut self, from: u64, to: u64, p: f64) -> Self {
        self.drops.push(DropBurst { from, to, p });
        self
    }

    /// Checks structural validity against a graph of `n` vertices.
    ///
    /// # Errors
    ///
    /// Returns the first [`FaultError`] found: an out-of-range vertex, an
    /// empty or 0-based window, or a drop probability outside `[0, 1]`.
    pub fn validate(&self, n: usize) -> Result<(), FaultError> {
        for c in &self.crashes {
            if c.node.0 >= n {
                return Err(FaultError::NodeOutOfRange { node: c.node, n });
            }
            if c.down_from == 0 {
                return Err(FaultError::BadWindow {
                    what: format!("crash of {} starts at round 0 (rounds are 1-based)", c.node),
                });
            }
            if let Some(up) = c.up_at {
                if up <= c.down_from {
                    return Err(FaultError::BadWindow {
                        what: format!(
                            "crash of {} recovers at {up} before going down at {}",
                            c.node, c.down_from
                        ),
                    });
                }
            }
        }
        for j in &self.jams {
            for v in &j.nodes {
                if v.0 >= n {
                    return Err(FaultError::NodeOutOfRange { node: *v, n });
                }
            }
            if j.from == 0 || j.to < j.from {
                return Err(FaultError::BadWindow {
                    what: format!("jam window [{}, {}]", j.from, j.to),
                });
            }
        }
        for d in &self.drops {
            if d.from == 0 || d.to < d.from {
                return Err(FaultError::BadWindow {
                    what: format!("drop burst [{}, {}]", d.from, d.to),
                });
            }
            if !(0.0..=1.0).contains(&d.p) {
                return Err(FaultError::BadProbability(d.p));
            }
        }
        Ok(())
    }

    /// Fills `down[v] = true` for every vertex down in `round`.
    pub fn fill_down(&self, round: u64, down: &mut [bool]) {
        down.fill(false);
        for c in &self.crashes {
            if c.is_down(round) {
                down[c.node.0] = true;
            }
        }
    }

    /// Fills `jammed[v] = true` for every vertex jammed in `round`.
    pub fn fill_jammed(&self, round: u64, jammed: &mut [bool]) {
        jammed.fill(false);
        for j in &self.jams {
            if j.covers(round) {
                for v in &j.nodes {
                    jammed[v.0] = true;
                }
            }
        }
    }

    /// The drop bursts active in `round`, in declaration order.
    pub fn active_drops(&self, round: u64) -> impl Iterator<Item = &DropBurst> {
        self.drops.iter().filter(move |d| d.covers(round))
    }

    /// Whether a recovery of `node` in `round` has crash-restart
    /// semantics: true iff any restart-mode crash of that node covered
    /// any round of the contiguous outage ending at `round - 1`. When
    /// power-save and restart windows overlap in one outage, a single
    /// restart window suffices — the volatile memory was lost at some
    /// point while down, so the recovered process cannot have kept it.
    /// Only called at down→up transitions, so the outage walk costs
    /// O(outage length × crashes) per recovery event, not per round.
    pub fn restart_recovery(&self, node: NodeId, round: u64) -> bool {
        let down_at =
            |r: u64| self.crashes.iter().any(|c| c.node == node && c.is_down(r));
        let restart_at = |r: u64| {
            self.crashes
                .iter()
                .any(|c| c.restart && c.node == node && c.is_down(r))
        };
        let mut r = round;
        while r > 0 && down_at(r - 1) {
            if restart_at(r - 1) {
                return true;
            }
            r -= 1;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::none().is_empty());
        assert!(FaultPlan::none().validate(0).is_ok());
    }

    #[test]
    fn crash_interval_is_half_open() {
        let c = Crash {
            node: NodeId(1),
            down_from: 3,
            up_at: Some(6),
            restart: false,
        };
        assert!(!c.is_down(2));
        assert!(c.is_down(3));
        assert!(c.is_down(5));
        assert!(!c.is_down(6));
    }

    #[test]
    fn permanent_crash_never_recovers() {
        let c = Crash {
            node: NodeId(0),
            down_from: 2,
            up_at: None,
            restart: false,
        };
        assert!(c.is_down(1_000_000));
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let plan = FaultPlan::none().with_crash(NodeId(9), 1, None);
        assert!(matches!(
            plan.validate(3),
            Err(FaultError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn validate_rejects_inverted_windows() {
        let plan = FaultPlan::none().with_jam(vec![NodeId(0)], 5, 2);
        assert!(matches!(plan.validate(1), Err(FaultError::BadWindow { .. })));
        let plan = FaultPlan::none().with_crash(NodeId(0), 4, Some(4));
        assert!(matches!(plan.validate(1), Err(FaultError::BadWindow { .. })));
        let plan = FaultPlan::none().with_drop_burst(0, 3, 0.5);
        assert!(matches!(plan.validate(1), Err(FaultError::BadWindow { .. })));
    }

    #[test]
    fn validate_rejects_bad_probability() {
        let plan = FaultPlan::none().with_drop_burst(1, 3, 1.5);
        assert!(matches!(
            plan.validate(1),
            Err(FaultError::BadProbability(_))
        ));
    }

    #[test]
    fn fill_masks_reflect_windows() {
        let plan = FaultPlan::none()
            .with_crash(NodeId(0), 2, Some(4))
            .with_jam(vec![NodeId(1), NodeId(2)], 3, 5);
        let mut down = vec![false; 3];
        let mut jammed = vec![false; 3];
        plan.fill_down(2, &mut down);
        assert_eq!(down, vec![true, false, false]);
        plan.fill_down(4, &mut down);
        assert_eq!(down, vec![false, false, false]);
        plan.fill_jammed(3, &mut jammed);
        assert_eq!(jammed, vec![false, true, true]);
        plan.fill_jammed(6, &mut jammed);
        assert_eq!(jammed, vec![false, false, false]);
    }

    #[test]
    fn serde_roundtrip() {
        let plan = FaultPlan::none()
            .with_crash(NodeId(2), 5, Some(9))
            .with_crash_restart(NodeId(1), 2, Some(4))
            .with_jam(vec![NodeId(0)], 1, 4)
            .with_drop_burst(3, 7, 0.25);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn crash_without_restart_field_parses_as_power_save() {
        // Plans serialized before the restart mode existed must keep
        // their power-save semantics.
        let c: Crash =
            serde_json::from_str(r#"{"node":2,"down_from":5,"up_at":9}"#).unwrap();
        assert!(!c.restart);
        assert_eq!(c.node, NodeId(2));
    }

    #[test]
    fn restart_recovery_reflects_crash_mode() {
        let plan = FaultPlan::none()
            .with_crash(NodeId(0), 2, Some(4))
            .with_crash_restart(NodeId(1), 2, Some(4));
        // Node 0's outage is power-save, node 1's is a crash-restart.
        assert!(!plan.restart_recovery(NodeId(0), 4));
        assert!(plan.restart_recovery(NodeId(1), 4));
        // Rounds where the node was not down just before don't count.
        assert!(!plan.restart_recovery(NodeId(1), 2));
        assert!(!plan.restart_recovery(NodeId(1), 6));
    }

    #[test]
    fn overlapping_restart_window_makes_recovery_a_restart() {
        // One outage covered by a power-save window and a restart
        // window: the recovered process cannot have kept its memory.
        let plan = FaultPlan::none()
            .with_crash(NodeId(0), 2, Some(8))
            .with_crash_restart(NodeId(0), 3, Some(5));
        assert!(plan.restart_recovery(NodeId(0), 8));
    }
}
