//! The synchronous round engine: executes an algorithm in a configuration.
//!
//! A [`Configuration`] bundles the dual graph, the link scheduler, the id
//! assignment, and recording options; combined with a process vector, an
//! environment, and a master seed it determines an execution completely
//! (the paper's "configuration + algorithm ⇒ execution tree", with the
//! master seed selecting one branch).
//!
//! Each round follows the Section 2 step order exactly:
//! environment inputs → transmit decisions → collision-resolved reception →
//! outputs. The collision rule: `u` receives `m` from `v` iff `u`
//! listens, `v` transmits `m`, and `v` is the **only** transmitter among
//! `u`'s neighbors in the round's topology; otherwise `u` gets `⊥`
//! (no collision detection).

use crate::environment::Environment;
use crate::fault::FaultPlan;
use crate::graph::{DualGraph, NodeId};
use crate::process::{Action, Context, ProcId, Process};
use crate::rng::{derive_stream, StreamKind};
use crate::scheduler::{LinkScheduler, SchedulerBox};
use crate::timeline::GraphTimeline;
use crate::trace::{Event, EventKind, FaultEvent, RecordingPolicy, Trace};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Everything that resolves model nondeterminism, minus the algorithm's
/// coins: dual graph, link scheduler, id assignment, geographic parameter.
#[derive(Debug)]
pub struct Configuration {
    /// The dual graph `(G, G')`, shareable across engines: Monte-Carlo
    /// fan-out hands every trial the same `Arc` instead of cloning the
    /// adjacency per trial.
    pub graph: Arc<DualGraph>,
    /// The link scheduler (oblivious, or adaptive for separation
    /// experiments).
    pub scheduler: SchedulerBox,
    /// Id assignment: `proc_ids[v]` is the process id at vertex `v`.
    /// Must be injective.
    pub proc_ids: Vec<ProcId>,
    /// The geographic parameter `r ≥ 1` the dual graph satisfies.
    pub r: f64,
    /// Dynamic geometry: the epoch schedule of dual-graph snapshots.
    /// `None` (the default) and a single-epoch timeline over `graph` are
    /// byte-identical to the static path; a multi-epoch timeline makes
    /// the engine swap `graph` at each epoch boundary before the round's
    /// fault step. Degree bounds reported to processes are the timeline
    /// maxima, so `Δ`/`Δ'` stay constant across epochs.
    pub timeline: Option<GraphTimeline>,
    /// What the engine records into the trace.
    pub recording: RecordingPolicy,
    /// The fault schedule (churn, jamming, drop bursts); empty by
    /// default, in which case execution is identical to the fault-free
    /// engine.
    pub faults: FaultPlan,
    /// How many parallel shards reception resolution fans out over
    /// (1 = serial). Executions are byte-identical for every value; the
    /// knob trades thread overhead for intra-trial parallelism on large
    /// graphs.
    pub shards: usize,
    /// Whether the engine accumulates [`telemetry::EngineMetrics`]
    /// (per-phase round timing, per-shard busy time, channel counters).
    /// Telemetry observes only: enabling it leaves the execution —
    /// traces, outputs, RNG streams — byte-identical, and recording
    /// stays allocation-free in the steady state.
    pub telemetry: bool,
}

impl Configuration {
    /// A configuration with the identity id assignment, `r = 2`, and
    /// output-only recording. Accepts an owned graph or an existing
    /// `Arc` (shared across trials without cloning the adjacency).
    pub fn new(graph: impl Into<Arc<DualGraph>>, scheduler: Box<dyn LinkScheduler>) -> Self {
        let graph = graph.into();
        let n = graph.len();
        Configuration {
            graph,
            scheduler: SchedulerBox::Oblivious(scheduler),
            proc_ids: (0..n as u64).collect(),
            r: 2.0,
            timeline: None,
            recording: RecordingPolicy::outputs_only(),
            faults: FaultPlan::none(),
            shards: 1,
            telemetry: false,
        }
    }

    /// Shards reception resolution across `shards` worker threads
    /// (clamped to ≥ 1; 1 keeps the serial path). The CSR adjacency is
    /// read-only in the hot loop and each shard writes a disjoint vertex
    /// range of the receive scratch, so every shard count produces a
    /// byte-identical execution.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Enables (or disables) engine telemetry. A disabled handle is a
    /// no-op: the hot path pays one branch per phase and nothing else.
    pub fn with_telemetry(mut self, enabled: bool) -> Self {
        self.telemetry = enabled;
        self
    }

    /// Replaces the scheduler with an adaptive one (E8 separation runs).
    pub fn with_adaptive(
        mut self,
        scheduler: Box<dyn crate::scheduler::AdaptiveScheduler>,
    ) -> Self {
        self.scheduler = SchedulerBox::Adaptive(scheduler);
        self
    }

    /// Installs a dynamic-geometry timeline. The configuration's `graph`
    /// becomes the timeline's first snapshot so every consumer (fault
    /// validation, process count, `net`'s caches) sees the epoch-0
    /// geometry before the first round.
    ///
    /// # Panics
    ///
    /// Panics if the timeline's vertex count differs from the graph's.
    pub fn with_timeline(mut self, timeline: GraphTimeline) -> Self {
        assert_eq!(
            timeline.len(),
            self.graph.len(),
            "timeline must cover the same vertex set as the graph"
        );
        self.graph = Arc::clone(timeline.epoch_graph(0));
        self.timeline = Some(timeline);
        self
    }

    /// Sets the geographic parameter `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r < 1` (the model requires `r ≥ 1`).
    pub fn with_r(mut self, r: f64) -> Self {
        assert!(r >= 1.0, "the model requires r >= 1, got {r}");
        self.r = r;
        self
    }

    /// Sets an explicit id assignment.
    ///
    /// # Panics
    ///
    /// Panics if the assignment length differs from the vertex count or is
    /// not injective.
    pub fn with_proc_ids(mut self, ids: Vec<ProcId>) -> Self {
        assert_eq!(ids.len(), self.graph.len(), "one id per vertex required");
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "id assignment must be injective");
        self.proc_ids = ids;
        self
    }

    /// Sets the trace recording policy.
    pub fn with_recording(mut self, recording: RecordingPolicy) -> Self {
        self.recording = recording;
        self
    }

    /// Installs a fault plan (churn, jamming windows, drop bursts).
    ///
    /// # Panics
    ///
    /// Panics if the plan references a vertex outside the graph or
    /// contains a malformed window/probability (see
    /// [`FaultPlan::validate`]).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        faults
            .validate(self.graph.len())
            .unwrap_or_else(|e| panic!("invalid fault plan: {e}"));
        self.faults = faults;
        self
    }
}

/// The synchronous executor for processes of type `P`.
pub struct Engine<P: Process> {
    graph: Arc<DualGraph>,
    /// The epoch schedule `graph` is swapped from, if geometry is
    /// dynamic; `epoch` is the index of the epoch `graph` came from.
    timeline: Option<GraphTimeline>,
    epoch: usize,
    scheduler: SchedulerBox,
    r: f64,
    recording: RecordingPolicy,
    faults: FaultPlan,
    shards: usize,
    master_seed: u64,
    delta: usize,
    delta_prime: usize,
    procs: Vec<P>,
    rngs: Vec<ChaCha8Rng>,
    env: Box<dyn Environment<P::Input, P::Output>>,
    pending_outputs: Vec<(NodeId, P::Output)>,
    /// Last round's outputs, swapped with `pending_outputs` each round so
    /// neither buffer is reallocated in the steady state.
    outputs_prev: Vec<(NodeId, P::Output)>,
    round: u64,
    /// Fault masks for the round being executed and the previous round
    /// (the engine records Crash/Recover and JamStart/JamEnd transitions
    /// by comparing them).
    down: Vec<bool>,
    down_prev: Vec<bool>,
    jammed: Vec<bool>,
    jam_prev: Vec<bool>,
    // Per-round scratch, owned by the engine so `step` performs no heap
    // allocation in the steady state (the hot-path contract the
    // zero-alloc test pins; see docs/perf.md).
    transmitting: Vec<bool>,
    /// `messages[v]` is `Some` iff `v ∈ tx_list` — message slots are
    /// cleared by walking `tx_list`, so per-round message traffic costs
    /// O(transmitters), not O(n) (large message enums carry drop glue).
    messages: Vec<Option<P::Msg>>,
    /// This round's transmitters, in vertex order.
    tx_list: Vec<usize>,
    tx_neighbors: Vec<u32>,
    last_sender: Vec<NodeId>,
    trace: Trace<P::Input, P::Output, P::Msg>,
    /// Metrics sink, present iff the configuration enabled telemetry.
    /// Boxed so the disabled engine doesn't carry the 16 KiB histogram;
    /// all slots are fixed at construction, so recording into it never
    /// allocates (preserving the zero-alloc steady-state contract).
    telemetry: Option<Box<telemetry::EngineMetrics>>,
}

impl<P: Process> Engine<P> {
    /// Builds an engine from a configuration, one process per vertex, an
    /// environment, and the master seed from which all per-node random
    /// streams derive.
    ///
    /// # Panics
    ///
    /// Panics if `procs.len()` differs from the graph's vertex count.
    pub fn new(
        config: Configuration,
        procs: Vec<P>,
        env: Box<dyn Environment<P::Input, P::Output>>,
        master_seed: u64,
    ) -> Self {
        let n = config.graph.len();
        assert_eq!(procs.len(), n, "need exactly one process per vertex");
        let rngs = (0..n)
            .map(|v| derive_stream(master_seed, StreamKind::Process, v as u64))
            .collect();
        // Degree bounds are timeline maxima when geometry is dynamic, so
        // the Δ/Δ' a process sees stay constant across epoch boundaries;
        // for static geometry these are exactly the graph's bounds.
        let (delta, delta_prime) = match &config.timeline {
            Some(t) => (t.delta(), t.delta_prime()),
            None => (config.graph.delta(), config.graph.delta_prime()),
        };
        let trace = Trace::new(n, config.proc_ids.clone());
        let telemetry = config
            .telemetry
            .then(|| Box::new(telemetry::EngineMetrics::new(config.shards.max(1))));
        Engine {
            graph: config.graph,
            timeline: config.timeline,
            epoch: 0,
            scheduler: config.scheduler,
            r: config.r,
            recording: config.recording,
            faults: config.faults,
            shards: config.shards.max(1),
            master_seed,
            delta,
            delta_prime,
            procs,
            rngs,
            env,
            pending_outputs: Vec::new(),
            outputs_prev: Vec::new(),
            round: 0,
            down: vec![false; n],
            down_prev: vec![false; n],
            jammed: vec![false; n],
            jam_prev: vec![false; n],
            transmitting: vec![false; n],
            messages: (0..n).map(|_| None).collect(),
            tx_list: Vec::with_capacity(n),
            tx_neighbors: vec![0; n],
            last_sender: vec![NodeId(0); n],
            trace,
            telemetry,
        }
    }

    /// The number of completed rounds.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The execution trace accumulated so far.
    pub fn trace(&self) -> &Trace<P::Input, P::Output, P::Msg> {
        &self.trace
    }

    /// Consumes the engine, yielding the trace.
    pub fn into_trace(self) -> Trace<P::Input, P::Output, P::Msg> {
        self.trace
    }

    /// Read access to the processes (for instrumentation in experiments).
    pub fn processes(&self) -> &[P] {
        &self.procs
    }

    /// The telemetry accumulated so far (None when disabled).
    pub fn telemetry(&self) -> Option<&telemetry::EngineMetrics> {
        self.telemetry.as_deref()
    }

    /// Consumes the engine's telemetry sink (None when disabled),
    /// leaving telemetry disabled for any further rounds.
    pub fn take_telemetry(&mut self) -> Option<telemetry::EngineMetrics> {
        self.telemetry.take().map(|b| *b)
    }

    /// The dual graph being simulated (the snapshot of the current
    /// epoch when geometry is dynamic).
    pub fn graph(&self) -> &DualGraph {
        &self.graph
    }

    /// The index of the epoch whose snapshot is currently in force
    /// (always 0 for static geometry).
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// Reserves trace capacity for `rounds` further rounds of aggregate
    /// channel stats, so the steady state appends without reallocating
    /// (the zero-allocation contract measured in docs/perf.md).
    pub fn reserve_rounds(&mut self, rounds: u64) {
        if self.recording.channel_stats {
            self.trace.round_stats.reserve(rounds as usize);
        }
    }

    /// Executes one synchronous round.
    pub fn step(&mut self) {
        let n = self.graph.len();
        let round = self.round + 1;
        let have_faults = !self.faults.is_empty();

        // Telemetry is taken out of `self` for the round so phase laps
        // and the sharded resolver can borrow it while the engine's own
        // fields stay independently borrowable; it is put back at the
        // end. A disabled handle costs one `None` branch per phase.
        let mut telem = self.telemetry.take();

        // Dynamic geometry: swap in the snapshot covering this round
        // before anything reads adjacency. A single-epoch timeline never
        // enters the loop, keeping the static path byte-identical.
        if let Some(tl) = &self.timeline {
            while self.epoch + 1 < tl.num_epochs() && tl.epoch_start(self.epoch + 1) <= round {
                self.epoch += 1;
                self.graph = Arc::clone(tl.epoch_graph(self.epoch));
                if let Some(t) = telem.as_deref_mut() {
                    t.epoch_switches += 1;
                }
            }
        }

        let mut span = telemetry::Stopwatch::armed(telem.is_some());

        // Step 0: fault masks for this round; record Crash/Recover and
        // JamStart/JamEnd transitions and fire recovery hooks.
        if have_faults {
            self.faults.fill_down(round, &mut self.down);
            self.faults.fill_jammed(round, &mut self.jammed);
            for v in 0..n {
                if self.down[v] != self.down_prev[v] {
                    let kind = if self.down[v] {
                        FaultEvent::Crash
                    } else {
                        FaultEvent::Recover
                    };
                    self.trace.events.push(Event {
                        round,
                        node: NodeId(v),
                        kind: EventKind::Fault(kind),
                    });
                    if !self.down[v] {
                        let ctx = &mut Context {
                            round,
                            id: self.trace.proc_ids[v],
                            delta: self.delta,
                            delta_prime: self.delta_prime,
                            r: self.r,
                            rng: &mut self.rngs[v],
                        };
                        if self.faults.restart_recovery(NodeId(v), round) {
                            self.procs[v].on_crash_restart(ctx);
                        } else {
                            self.procs[v].on_restart(ctx);
                        }
                    }
                }
                if self.jammed[v] != self.jam_prev[v] {
                    let kind = if self.jammed[v] {
                        FaultEvent::JamStart
                    } else {
                        FaultEvent::JamEnd
                    };
                    self.trace.events.push(Event {
                        round,
                        node: NodeId(v),
                        kind: EventKind::Fault(kind),
                    });
                }
            }
            self.down_prev.copy_from_slice(&self.down);
            self.jam_prev.copy_from_slice(&self.jammed);
        }
        let faults_ns = span.lap();

        // Step 1: environment inputs (receives last round's outputs).
        // The two output buffers swap roles each round instead of being
        // reallocated.
        std::mem::swap(&mut self.pending_outputs, &mut self.outputs_prev);
        self.pending_outputs.clear();
        let inputs = self.env.next_inputs(round, &self.outputs_prev);
        for (v, input) in inputs {
            assert!(v.0 < n, "environment addressed nonexistent vertex {v}");
            if have_faults && self.down[v.0] {
                // A down node misses its inputs entirely; record the
                // loss so the trace explains any stalled workload.
                self.trace.events.push(Event {
                    round,
                    node: v,
                    kind: EventKind::Fault(FaultEvent::InputLost),
                });
                continue;
            }
            self.trace.events.push(Event {
                round,
                node: v,
                kind: EventKind::Input(input.clone()),
            });
            let ctx = &mut Context {
                round,
                id: self.trace.proc_ids[v.0],
                delta: self.delta,
                delta_prime: self.delta_prime,
                r: self.r,
                rng: &mut self.rngs[v.0],
            };
            self.procs[v.0].on_input(input, ctx);
        }
        let inputs_ns = span.lap();

        // Step 2: transmit decisions, into the engine-owned scratch
        // buffers (no per-round allocation). Only last round's
        // transmitter slots hold messages, so clearing walks `tx_list`
        // instead of all n slots.
        self.transmitting.fill(false);
        for &v in &self.tx_list {
            self.messages[v] = None;
        }
        self.tx_list.clear();
        for (v, proc) in self.procs.iter_mut().enumerate() {
            if have_faults && self.down[v] {
                // Down nodes take no transmit step.
                continue;
            }
            let ctx = &mut Context {
                round,
                id: self.trace.proc_ids[v],
                delta: self.delta,
                delta_prime: self.delta_prime,
                r: self.r,
                rng: &mut self.rngs[v],
            };
            match proc.transmit(ctx) {
                Action::Transmit(m) => {
                    self.transmitting[v] = true;
                    self.messages[v] = Some(m);
                    self.tx_list.push(v);
                    if self.recording.transmissions {
                        self.trace.events.push(Event {
                            round,
                            node: NodeId(v),
                            kind: EventKind::Transmit,
                        });
                    }
                }
                Action::Receive => {}
            }
        }
        let transmit_ns = span.lap();

        // Step 3: the scheduler fixes the round topology; resolve
        // receptions under the collision rule.
        let selection = match &mut self.scheduler {
            SchedulerBox::Oblivious(s) => s.extra_edges(round, &self.graph),
            SchedulerBox::Adaptive(s) => s.extra_edges(round, &self.graph, &self.transmitting),
        };

        if self.shards > 1 {
            let shard_busy = telem.as_deref_mut().map(|t| t.shard_busy_ns.as_mut_slice());
            crate::resolve::resolve_receptions_sharded(
                &self.graph,
                &selection,
                &self.transmitting,
                self.shards,
                &mut self.tx_neighbors,
                &mut self.last_sender,
                shard_busy,
            );
        } else {
            crate::resolve::resolve_receptions_serial(
                &self.graph,
                &selection,
                &self.transmitting,
                &self.tx_list,
                &mut self.tx_neighbors,
                &mut self.last_sender,
            );
        }
        let resolve_ns = span.lap();

        // Channel stats feed the trace (under the recording policy)
        // and/or the telemetry counters; both read the same RoundStats,
        // so telemetry cannot diverge from what the trace would record.
        let mut stats = (self.recording.channel_stats || telem.is_some()).then(|| {
            crate::trace::RoundStats {
                transmitters: self.tx_list.len(),
                ..Default::default()
            }
        });

        // The drop-burst stream for this round, derived lazily: fault
        // coins never touch process or scheduler randomness.
        let mut fault_rng: Option<ChaCha8Rng> = None;
        for u in 0..n {
            if have_faults && self.down[u] {
                // Down nodes take no receive step either.
                if let Some(s) = stats.as_mut() {
                    s.down += 1;
                }
                continue;
            }
            let received: Option<P::Msg> = if self.transmitting[u] {
                // Transmitters are not receiving this round.
                None
            } else if have_faults && self.jammed[u] {
                // Jammed listeners hear only noise (⊥), whatever the
                // channel carries.
                if let Some(s) = stats.as_mut() {
                    s.jammed += 1;
                }
                None
            } else if self.tx_neighbors[u] == 1 {
                let from = self.last_sender[u];
                // An otherwise-successful reception may still be lost to
                // an active drop burst (one coin per burst, in vertex
                // order, from the dedicated fault stream).
                let mut suppressed = false;
                if have_faults {
                    for burst in self.faults.active_drops(round) {
                        let rng = fault_rng.get_or_insert_with(|| {
                            derive_stream(self.master_seed, StreamKind::Fault, round)
                        });
                        if rng.gen_bool(burst.p) {
                            suppressed = true;
                        }
                    }
                }
                if suppressed {
                    if self.recording.receptions {
                        self.trace.events.push(Event {
                            round,
                            node: NodeId(u),
                            kind: EventKind::Fault(FaultEvent::Dropped { from }),
                        });
                    }
                    if let Some(s) = stats.as_mut() {
                        s.dropped += 1;
                    }
                    None
                } else {
                    let msg = self.messages[from.0]
                        .clone()
                        .expect("sender marked transmitting must carry a message");
                    if self.recording.receptions {
                        self.trace.events.push(Event {
                            round,
                            node: NodeId(u),
                            kind: EventKind::Receive {
                                from,
                                msg: msg.clone(),
                            },
                        });
                    }
                    if let Some(s) = stats.as_mut() {
                        s.deliveries += 1;
                    }
                    Some(msg)
                }
            } else {
                if let Some(s) = stats.as_mut() {
                    if self.tx_neighbors[u] == 0 {
                        s.silent += 1;
                    } else {
                        s.collisions += 1;
                    }
                }
                None
            };
            let ctx = &mut Context {
                round,
                id: self.trace.proc_ids[u],
                delta: self.delta,
                delta_prime: self.delta_prime,
                r: self.r,
                rng: &mut self.rngs[u],
            };
            self.procs[u].on_receive(received, ctx);
        }

        let deliver_ns = span.lap();

        if let Some(s) = stats {
            if let Some(t) = telem.as_deref_mut() {
                t.transmissions += s.transmitters as u64;
                t.deliveries += s.deliveries as u64;
                t.collisions += s.collisions as u64;
                t.silent += s.silent as u64;
                t.jammed += s.jammed as u64;
                t.dropped += s.dropped as u64;
                t.down_node_rounds += s.down as u64;
            }
            if self.recording.channel_stats {
                self.trace.round_stats.push(s);
            }
        }

        // Step 4: outputs, consumed by the environment at the start of the
        // next round.
        for v in 0..n {
            if have_faults && self.down[v] {
                continue;
            }
            if !self.procs[v].has_outputs() {
                continue;
            }
            for out in self.procs[v].take_outputs() {
                self.trace.events.push(Event {
                    round,
                    node: NodeId(v),
                    kind: EventKind::Output(out.clone()),
                });
                self.pending_outputs.push((NodeId(v), out));
            }
        }

        if let Some(t) = telem.as_deref_mut() {
            let outputs_ns = span.lap();
            if self.shards <= 1 {
                // The serial resolver is "shard 0"; sharded resolution
                // timed its chunks inside the workers.
                t.shard_busy_ns[0] += resolve_ns;
            }
            t.record_round([faults_ns, inputs_ns, transmit_ns, resolve_ns, deliver_ns, outputs_ns]);
        }
        self.telemetry = telem;

        self.round = round;
        self.trace.rounds = round;
    }

    /// Executes `rounds` additional rounds.
    pub fn run(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Steps until `pred(trace)` holds or `max_rounds` total rounds have
    /// run; returns whether the predicate held.
    pub fn run_until(
        &mut self,
        max_rounds: u64,
        mut pred: impl FnMut(&Trace<P::Input, P::Output, P::Msg>) -> bool,
    ) -> bool {
        while self.round < max_rounds {
            self.step();
            if pred(&self.trace) {
                return true;
            }
        }
        false
    }
}

impl<P: Process> std::fmt::Debug for Engine<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("n", &self.graph.len())
            .field("round", &self.round)
            .field("scheduler", &self.scheduler)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::environment::NullEnvironment;
    use crate::scheduler::{AllExtraEdges, NoExtraEdges};

    /// A test process: transmits its fixed message on configured rounds,
    /// listens otherwise, and outputs every message it hears.
    struct Beacon {
        msg: u32,
        tx_rounds: Vec<u64>,
        heard: Vec<u32>,
    }

    impl Beacon {
        fn new(msg: u32, tx_rounds: Vec<u64>) -> Self {
            Beacon {
                msg,
                tx_rounds,
                heard: Vec::new(),
            }
        }
    }

    impl Process for Beacon {
        type Msg = u32;
        type Input = ();
        type Output = u32;

        fn on_input(&mut self, _input: (), _ctx: &mut Context<'_>) {}

        fn transmit(&mut self, ctx: &mut Context<'_>) -> Action<u32> {
            if self.tx_rounds.contains(&ctx.round) {
                Action::Transmit(self.msg)
            } else {
                Action::Receive
            }
        }

        fn on_receive(&mut self, msg: Option<u32>, _ctx: &mut Context<'_>) {
            if let Some(m) = msg {
                self.heard.push(m);
            }
        }

        fn take_outputs(&mut self) -> Vec<u32> {
            std::mem::take(&mut self.heard)
        }
    }

    fn run_beacons(
        graph: DualGraph,
        scheduler: Box<dyn LinkScheduler>,
        specs: Vec<(u32, Vec<u64>)>,
        rounds: u64,
    ) -> Trace<(), u32, u32> {
        let procs = specs
            .into_iter()
            .map(|(m, r)| Beacon::new(m, r))
            .collect();
        let mut engine = Engine::new(
            Configuration::new(graph, scheduler),
            procs,
            Box::new(NullEnvironment),
            1,
        );
        engine.run(rounds);
        engine.into_trace()
    }

    #[test]
    fn sole_transmitter_is_received() {
        let g = DualGraph::reliable_only(2, [(0, 1)]).unwrap();
        let trace = run_beacons(
            g,
            Box::new(NoExtraEdges),
            vec![(7, vec![1]), (9, vec![])],
            1,
        );
        let outs: Vec<_> = trace.outputs().collect();
        assert_eq!(outs.len(), 1);
        assert_eq!(*outs[0].2, 7);
        assert_eq!(outs[0].1, NodeId(1));
    }

    #[test]
    fn two_transmitters_collide() {
        // 0 and 2 both transmit to 1 in round 1: collision, 1 hears nothing.
        let g = DualGraph::reliable_only(3, [(0, 1), (1, 2)]).unwrap();
        let trace = run_beacons(
            g,
            Box::new(NoExtraEdges),
            vec![(7, vec![1]), (0, vec![]), (8, vec![1])],
            1,
        );
        assert_eq!(trace.outputs().count(), 0);
    }

    #[test]
    fn transmitter_does_not_receive() {
        // Both nodes transmit: neither receives despite being neighbors.
        let g = DualGraph::reliable_only(2, [(0, 1)]).unwrap();
        let trace = run_beacons(
            g,
            Box::new(NoExtraEdges),
            vec![(7, vec![1]), (9, vec![1])],
            1,
        );
        assert_eq!(trace.outputs().count(), 0);
    }

    #[test]
    fn unreliable_edge_delivers_when_scheduled() {
        // 0-1 is an extra edge only. With AllExtraEdges the message flows;
        // with NoExtraEdges it does not.
        let g = DualGraph::new(2, [], [(0, 1)]).unwrap();
        let with = run_beacons(
            g.clone(),
            Box::new(AllExtraEdges),
            vec![(7, vec![1]), (9, vec![])],
            1,
        );
        assert_eq!(with.outputs().count(), 1);
        let without = run_beacons(
            g,
            Box::new(NoExtraEdges),
            vec![(7, vec![1]), (9, vec![])],
            1,
        );
        assert_eq!(without.outputs().count(), 0);
    }

    #[test]
    fn unreliable_edge_can_cause_collision() {
        // 1 hears 0 reliably; extra edge 1-2 brings a second transmitter
        // into range, colliding the reception.
        let g = DualGraph::new(3, [(0, 1)], [(1, 2)]).unwrap();
        let trace = run_beacons(
            g,
            Box::new(AllExtraEdges),
            vec![(7, vec![1]), (0, vec![]), (8, vec![1])],
            1,
        );
        assert_eq!(trace.outputs().count(), 0);
    }

    #[test]
    fn non_neighbors_do_not_hear() {
        let g = DualGraph::reliable_only(3, [(0, 1)]).unwrap();
        let trace = run_beacons(
            g,
            Box::new(NoExtraEdges),
            vec![(7, vec![1]), (0, vec![]), (8, vec![])],
            1,
        );
        // Only node 1 hears node 0; node 2 is isolated.
        let outs: Vec<_> = trace.outputs().collect();
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].1, NodeId(1));
    }

    #[test]
    fn channel_stats_classify_listeners() {
        // Path 0-1-2-3: nodes 0 and 2 transmit. Node 1 has two
        // transmitting neighbors (collision); node 3 has one (delivery);
        // transmitters are not counted as listeners.
        let g = DualGraph::reliable_only(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let procs = vec![
            Beacon::new(1, vec![1]),
            Beacon::new(2, vec![]),
            Beacon::new(3, vec![1]),
            Beacon::new(4, vec![]),
        ];
        let config = Configuration::new(g, Box::new(NoExtraEdges))
            .with_recording(crate::trace::RecordingPolicy::stats_only());
        let mut engine = Engine::new(config, procs, Box::new(NullEnvironment), 1);
        engine.step();
        let stats = engine.trace().round_stats[0];
        assert_eq!(stats.transmitters, 2);
        assert_eq!(stats.deliveries, 1);
        assert_eq!(stats.collisions, 1);
        assert_eq!(stats.silent, 0);
        let total = engine.trace().total_stats();
        assert_eq!(total.deliveries, 1);
    }

    #[test]
    fn stats_absent_without_policy() {
        let g = DualGraph::reliable_only(2, [(0, 1)]).unwrap();
        let procs = vec![Beacon::new(1, vec![1]), Beacon::new(2, vec![])];
        let mut engine = Engine::new(
            Configuration::new(g, Box::new(NoExtraEdges)),
            procs,
            Box::new(NullEnvironment),
            1,
        );
        engine.run(3);
        assert!(engine.trace().round_stats.is_empty());
    }

    #[test]
    fn executions_are_deterministic() {
        let g = DualGraph::new(4, [(0, 1), (1, 2), (2, 3)], [(0, 2), (1, 3)]).unwrap();
        let mk = || {
            run_beacons(
                g.clone(),
                Box::new(crate::scheduler::BernoulliEdges::new(0.5, 11)),
                vec![
                    (1, vec![1, 3, 5]),
                    (2, vec![2, 4]),
                    (3, vec![1, 2, 3]),
                    (4, vec![5]),
                ],
                6,
            )
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn run_until_stops_at_predicate() {
        let g = DualGraph::reliable_only(2, [(0, 1)]).unwrap();
        let procs = vec![Beacon::new(5, vec![3]), Beacon::new(6, vec![])];
        let mut engine = Engine::new(
            Configuration::new(g, Box::new(NoExtraEdges)),
            procs,
            Box::new(NullEnvironment),
            1,
        );
        let hit = engine.run_until(10, |t| t.outputs().count() > 0);
        assert!(hit);
        assert_eq!(engine.round(), 3);
    }

    #[test]
    #[should_panic(expected = "one process per vertex")]
    fn engine_rejects_wrong_process_count() {
        let g = DualGraph::reliable_only(2, [(0, 1)]).unwrap();
        let _ = Engine::new(
            Configuration::new(g, Box::new(NoExtraEdges)),
            vec![Beacon::new(1, vec![])],
            Box::new(NullEnvironment),
            1,
        );
    }

    #[test]
    #[should_panic(expected = "injective")]
    fn configuration_rejects_duplicate_ids() {
        let g = DualGraph::reliable_only(2, [(0, 1)]).unwrap();
        let _ = Configuration::new(g, Box::new(NoExtraEdges)).with_proc_ids(vec![3, 3]);
    }

    // -- fault injection ---------------------------------------------------

    use crate::fault::FaultPlan;
    use crate::trace::FaultEvent;

    fn run_beacons_with_faults(
        graph: DualGraph,
        faults: FaultPlan,
        specs: Vec<(u32, Vec<u64>)>,
        rounds: u64,
    ) -> Trace<(), u32, u32> {
        let procs = specs
            .into_iter()
            .map(|(m, r)| Beacon::new(m, r))
            .collect();
        let config = Configuration::new(graph, Box::new(NoExtraEdges))
            .with_recording(crate::trace::RecordingPolicy::full())
            .with_faults(faults);
        let mut engine = Engine::new(config, procs, Box::new(NullEnvironment), 1);
        engine.run(rounds);
        engine.into_trace()
    }

    #[test]
    fn crashed_node_is_silent_until_recovery() {
        // 0 transmits every round; 1 listens. 1 is down in rounds [2, 4).
        let g = DualGraph::reliable_only(2, [(0, 1)]).unwrap();
        let faults = FaultPlan::none().with_crash(NodeId(1), 2, Some(4));
        let trace = run_beacons_with_faults(
            g,
            faults,
            vec![(7, vec![1, 2, 3, 4, 5]), (9, vec![])],
            5,
        );
        let recv_rounds: Vec<u64> = trace.receptions().map(|(t, _, _, _)| t).collect();
        assert_eq!(recv_rounds, vec![1, 4, 5], "deaf while down in rounds 2-3");
        let faults_seen: Vec<_> = trace.faults().collect();
        assert_eq!(
            faults_seen,
            vec![
                (2, NodeId(1), FaultEvent::Crash),
                (4, NodeId(1), FaultEvent::Recover),
            ]
        );
    }

    #[test]
    fn crashed_transmitter_does_not_deliver() {
        let g = DualGraph::reliable_only(2, [(0, 1)]).unwrap();
        let faults = FaultPlan::none().with_crash(NodeId(0), 1, Some(3));
        let trace = run_beacons_with_faults(
            g,
            faults,
            vec![(7, vec![1, 2, 3]), (9, vec![])],
            3,
        );
        // Only the round-3 transmission (after recovery) lands.
        let recv_rounds: Vec<u64> = trace.receptions().map(|(t, _, _, _)| t).collect();
        assert_eq!(recv_rounds, vec![3]);
    }

    #[test]
    fn jammed_listener_hears_noise_only_inside_window() {
        let g = DualGraph::reliable_only(2, [(0, 1)]).unwrap();
        let faults = FaultPlan::none().with_jam(vec![NodeId(1)], 2, 3);
        let trace = run_beacons_with_faults(
            g,
            faults,
            vec![(7, vec![1, 2, 3, 4]), (9, vec![])],
            4,
        );
        let recv_rounds: Vec<u64> = trace.receptions().map(|(t, _, _, _)| t).collect();
        assert_eq!(recv_rounds, vec![1, 4]);
        let marks: Vec<_> = trace.faults().collect();
        assert_eq!(
            marks,
            vec![
                (2, NodeId(1), FaultEvent::JamStart),
                (4, NodeId(1), FaultEvent::JamEnd),
            ]
        );
        // Jammed listens are counted separately in channel stats.
        let totals = trace.total_stats();
        assert_eq!(totals.jammed, 2);
        assert_eq!(totals.deliveries, 2);
    }

    #[test]
    fn drop_burst_extremes() {
        let g = DualGraph::reliable_only(2, [(0, 1)]).unwrap();
        // p = 1: every would-be delivery inside [2, 3] is lost.
        let all = FaultPlan::none().with_drop_burst(2, 3, 1.0);
        let trace = run_beacons_with_faults(
            g.clone(),
            all,
            vec![(7, vec![1, 2, 3, 4]), (9, vec![])],
            4,
        );
        let recv_rounds: Vec<u64> = trace.receptions().map(|(t, _, _, _)| t).collect();
        assert_eq!(recv_rounds, vec![1, 4]);
        let dropped: Vec<_> = trace
            .faults()
            .filter(|(_, _, f)| matches!(f, FaultEvent::Dropped { .. }))
            .map(|(t, v, _)| (t, v))
            .collect();
        assert_eq!(dropped, vec![(2, NodeId(1)), (3, NodeId(1))]);
        assert_eq!(trace.total_stats().dropped, 2);

        // p = 0: the burst is inert.
        let none = FaultPlan::none().with_drop_burst(2, 3, 0.0);
        let trace = run_beacons_with_faults(
            g,
            none,
            vec![(7, vec![1, 2, 3, 4]), (9, vec![])],
            4,
        );
        assert_eq!(trace.receptions().count(), 4);
        assert_eq!(trace.total_stats().dropped, 0);
    }

    #[test]
    fn empty_fault_plan_changes_nothing() {
        let g = DualGraph::new(4, [(0, 1), (1, 2), (2, 3)], [(0, 2), (1, 3)]).unwrap();
        let specs = vec![
            (1, vec![1, 3, 5]),
            (2, vec![2, 4]),
            (3, vec![1, 2, 3]),
            (4, vec![5]),
        ];
        let plain = run_beacons(
            g.clone(),
            Box::new(NoExtraEdges),
            specs.clone(),
            6,
        );
        let faulted = run_beacons_with_faults(g, FaultPlan::none(), specs, 6);
        // Recording policies differ (full vs outputs-only), so compare
        // outputs and round count, which full recording supersets.
        assert_eq!(
            plain.outputs().collect::<Vec<_>>(),
            faulted.outputs().collect::<Vec<_>>()
        );
        assert_eq!(plain.rounds, faulted.rounds);
        assert_eq!(faulted.faults().count(), 0);
    }

    #[test]
    fn faulted_executions_are_deterministic() {
        let g = DualGraph::new(4, [(0, 1), (1, 2), (2, 3)], [(0, 2), (1, 3)]).unwrap();
        let faults = FaultPlan::none()
            .with_crash(NodeId(2), 2, Some(4))
            .with_jam(vec![NodeId(0), NodeId(3)], 3, 5)
            .with_drop_burst(1, 6, 0.5);
        let mk = || {
            run_beacons_with_faults(
                g.clone(),
                faults.clone(),
                vec![
                    (1, vec![1, 3, 5]),
                    (2, vec![2, 4]),
                    (3, vec![1, 2, 3]),
                    (4, vec![5, 6]),
                ],
                6,
            )
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.events, b.events);
        assert_eq!(a.round_stats, b.round_stats);
    }

    #[test]
    fn down_nodes_counted_in_stats() {
        let g = DualGraph::reliable_only(3, [(0, 1), (1, 2)]).unwrap();
        let faults = FaultPlan::none().with_crash(NodeId(2), 1, None);
        let trace = run_beacons_with_faults(
            g,
            faults,
            vec![(7, vec![1]), (9, vec![]), (5, vec![])],
            1,
        );
        let stats = trace.round_stats[0];
        assert_eq!(stats.down, 1);
        assert_eq!(stats.deliveries, 1);
        assert_eq!(stats.transmitters, 1);
    }

    // -- sharded reception resolution --------------------------------------

    /// One trace of a contention-heavy random topology under the given
    /// scheduler, faults, and shard count (full recording, so events and
    /// per-round stats pin the whole execution).
    fn shard_trace(
        scheduler: Box<dyn LinkScheduler>,
        faults: FaultPlan,
        shards: usize,
    ) -> Trace<(), u32, u32> {
        let topo = crate::topology::random_geometric(crate::topology::RggParams {
            n: 60,
            side: 3.0,
            r: 2.0,
            grey_reliable_p: 0.1,
            grey_unreliable_p: 0.8,
            seed: 13,
        });
        let procs = (0..60)
            .map(|v| Beacon::new(v as u32, vec![1 + v as u64 % 5, 3, 7 + v as u64 % 3]))
            .collect();
        let config = Configuration::new(topo.graph, scheduler)
            .with_recording(crate::trace::RecordingPolicy::full())
            .with_faults(faults)
            .with_shards(shards);
        let mut engine = Engine::new(config, procs, Box::new(NullEnvironment), 9);
        engine.run(12);
        engine.into_trace()
    }

    #[test]
    fn shard_counts_produce_byte_identical_traces() {
        let some_faults = || {
            FaultPlan::none()
                .with_crash(NodeId(4), 3, Some(8))
                .with_jam(vec![NodeId(1), NodeId(9)], 2, 6)
                .with_drop_burst(1, 10, 0.5)
        };
        type MkScheduler = Box<dyn Fn() -> Box<dyn LinkScheduler>>;
        let cases: Vec<(MkScheduler, FaultPlan)> = vec![
            // All-edges: the sharded gather covers the extra adjacency.
            (Box::new(|| Box::new(AllExtraEdges)), FaultPlan::none()),
            // No-edges: reliable gather only.
            (Box::new(|| Box::new(NoExtraEdges)), FaultPlan::none()),
            // Bernoulli: per-round Subset selections, applied serially on
            // top of the sharded gather.
            (
                Box::new(|| Box::new(crate::scheduler::BernoulliEdges::new(0.5, 3))),
                FaultPlan::none(),
            ),
            // Faults interleave crash/jam/drop with the sharded path.
            (Box::new(|| Box::new(AllExtraEdges)), some_faults()),
            (
                Box::new(|| Box::new(crate::scheduler::BernoulliEdges::new(0.7, 5))),
                some_faults(),
            ),
        ];
        for (mk_sched, faults) in cases {
            let serial = shard_trace(mk_sched(), faults.clone(), 1);
            for shards in [2, 8, 64] {
                let sharded = shard_trace(mk_sched(), faults.clone(), shards);
                assert_eq!(serial.events, sharded.events, "shards = {shards}");
                assert_eq!(serial.round_stats, sharded.round_stats, "shards = {shards}");
            }
        }
    }

    // -- dynamic geometry ---------------------------------------------------

    use crate::timeline::GraphTimeline;

    #[test]
    fn single_epoch_timeline_is_byte_identical_to_static() {
        // The identity refactor, pinned at the engine level: the same
        // contention-heavy faulted execution with and without a
        // single-epoch timeline must produce identical events and stats.
        let topo = crate::topology::random_geometric(crate::topology::RggParams {
            n: 50,
            side: 3.0,
            r: 2.0,
            grey_reliable_p: 0.1,
            grey_unreliable_p: 0.8,
            seed: 31,
        });
        let graph = Arc::new(topo.graph);
        let faults = FaultPlan::none()
            .with_crash(NodeId(2), 3, Some(7))
            .with_jam(vec![NodeId(5), NodeId(11)], 2, 6)
            .with_drop_burst(1, 9, 0.4);
        let run = |timeline: bool| {
            let procs = (0..50)
                .map(|v| Beacon::new(v as u32, vec![1 + v as u64 % 4, 5, 6 + v as u64 % 3]))
                .collect();
            let mut config = Configuration::new(
                Arc::clone(&graph),
                Box::new(crate::scheduler::BernoulliEdges::new(0.5, 7)) as Box<dyn LinkScheduler>,
            )
            .with_recording(crate::trace::RecordingPolicy::full())
            .with_faults(faults.clone());
            if timeline {
                config = config.with_timeline(GraphTimeline::single(Arc::clone(&graph)));
            }
            let mut engine = Engine::new(config, procs, Box::new(NullEnvironment), 23);
            engine.run(10);
            engine.into_trace()
        };
        let static_trace = run(false);
        let timeline_trace = run(true);
        assert_eq!(static_trace.events, timeline_trace.events);
        assert_eq!(static_trace.round_stats, timeline_trace.round_stats);
    }

    #[test]
    fn engine_swaps_graphs_at_epoch_boundaries() {
        // Epoch 1 (rounds 1-2): 0-1 connected. Epoch 2 (rounds 3+):
        // 0-2 connected instead. Node 0 transmits every round; who
        // hears it tracks the epoch schedule exactly.
        let a = Arc::new(DualGraph::reliable_only(3, [(0, 1)]).unwrap());
        let b = Arc::new(DualGraph::reliable_only(3, [(0, 2)]).unwrap());
        let timeline =
            GraphTimeline::new([(1, Arc::clone(&a)), (3, Arc::clone(&b))]).unwrap();
        let procs = vec![
            Beacon::new(7, vec![1, 2, 3, 4]),
            Beacon::new(8, vec![]),
            Beacon::new(9, vec![]),
        ];
        let config = Configuration::new(a, Box::new(NoExtraEdges))
            .with_recording(crate::trace::RecordingPolicy::full())
            .with_timeline(timeline);
        let mut engine = Engine::new(config, procs, Box::new(NullEnvironment), 1);
        assert_eq!(engine.epoch(), 0);
        engine.run(4);
        assert_eq!(engine.epoch(), 1);
        let recvs: Vec<(u64, NodeId)> = engine
            .trace()
            .receptions()
            .map(|(t, v, _, _)| (t, v))
            .collect();
        assert_eq!(
            recvs,
            vec![
                (1, NodeId(1)),
                (2, NodeId(1)),
                (3, NodeId(2)),
                (4, NodeId(2)),
            ]
        );
    }

    #[test]
    fn epoch_switches_are_counted_in_telemetry() {
        let a = Arc::new(DualGraph::reliable_only(2, [(0, 1)]).unwrap());
        let timeline = GraphTimeline::new([
            (1, Arc::clone(&a)),
            (3, Arc::clone(&a)),
            (5, Arc::clone(&a)),
        ])
        .unwrap();
        let procs = vec![Beacon::new(1, vec![1]), Beacon::new(2, vec![])];
        let config = Configuration::new(a, Box::new(NoExtraEdges))
            .with_timeline(timeline)
            .with_telemetry(true);
        let mut engine = Engine::new(config, procs, Box::new(NullEnvironment), 1);
        engine.run(6);
        assert_eq!(engine.telemetry().unwrap().epoch_switches, 2);
    }

    // -- engine telemetry ---------------------------------------------------

    /// One contention-heavy faulted trace, with or without telemetry,
    /// at the given shard count; returns the trace and the metrics.
    fn telemetry_trace(
        enabled: bool,
        shards: usize,
    ) -> (Trace<(), u32, u32>, Option<telemetry::EngineMetrics>) {
        let topo = crate::topology::random_geometric(crate::topology::RggParams {
            n: 40,
            side: 2.5,
            r: 2.0,
            grey_reliable_p: 0.1,
            grey_unreliable_p: 0.8,
            seed: 21,
        });
        let faults = FaultPlan::none()
            .with_crash(NodeId(3), 2, Some(6))
            .with_jam(vec![NodeId(0), NodeId(7)], 3, 5)
            .with_drop_burst(1, 8, 0.4);
        let procs = (0..40)
            .map(|v| Beacon::new(v as u32, vec![1 + v as u64 % 4, 5, 6 + v as u64 % 3]))
            .collect();
        let config = Configuration::new(
            topo.graph,
            Box::new(crate::scheduler::BernoulliEdges::new(0.5, 7)) as Box<dyn LinkScheduler>,
        )
        .with_recording(crate::trace::RecordingPolicy::full())
        .with_faults(faults)
        .with_shards(shards)
        .with_telemetry(enabled);
        let mut engine = Engine::new(config, procs, Box::new(NullEnvironment), 17);
        engine.run(10);
        let telem = engine.take_telemetry();
        (engine.into_trace(), telem)
    }

    #[test]
    fn telemetry_leaves_traces_byte_identical() {
        let (plain, none) = telemetry_trace(false, 1);
        assert!(none.is_none());
        for shards in [1, 4] {
            let (instrumented, telem) = telemetry_trace(true, shards);
            assert_eq!(plain.events, instrumented.events, "shards = {shards}");
            assert_eq!(plain.round_stats, instrumented.round_stats, "shards = {shards}");
            assert!(telem.is_some());
        }
    }

    #[test]
    fn telemetry_counters_match_trace_stats() {
        for shards in [1, 3] {
            let (trace, telem) = telemetry_trace(true, shards);
            let telem = telem.unwrap();
            let totals = trace.total_stats();
            assert_eq!(telem.rounds, trace.rounds);
            assert_eq!(telem.transmissions, totals.transmitters as u64);
            assert_eq!(telem.deliveries, totals.deliveries as u64);
            assert_eq!(telem.collisions, totals.collisions as u64);
            assert_eq!(telem.silent, totals.silent as u64);
            assert_eq!(telem.jammed, totals.jammed as u64);
            assert_eq!(telem.dropped, totals.dropped as u64);
            assert_eq!(telem.down_node_rounds, totals.down as u64);
            // Counters are deterministic across shard counts; timings
            // are wall-clock and need only be present.
            assert_eq!(telem.round_ns.count(), trace.rounds);
            assert!(telem.busy_ns() > 0);
            assert_eq!(telem.shard_busy_ns.len(), shards);
        }
    }

    #[test]
    fn telemetry_counts_without_stats_recording() {
        // Telemetry counters must not depend on the trace's recording
        // policy carrying channel stats.
        let g = DualGraph::reliable_only(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let procs = vec![
            Beacon::new(1, vec![1]),
            Beacon::new(2, vec![]),
            Beacon::new(3, vec![1]),
            Beacon::new(4, vec![]),
        ];
        let config = Configuration::new(g, Box::new(NoExtraEdges)).with_telemetry(true);
        let mut engine = Engine::new(config, procs, Box::new(NullEnvironment), 1);
        engine.step();
        assert!(engine.trace().round_stats.is_empty(), "stats recording stays off");
        let telem = engine.telemetry().unwrap();
        assert_eq!(telem.transmissions, 2);
        assert_eq!(telem.deliveries, 1);
        assert_eq!(telem.collisions, 1);
        assert_eq!(telem.shard_busy_ns.len(), 1);
    }

    #[test]
    fn with_shards_clamps_to_serial() {
        let g = DualGraph::reliable_only(2, [(0, 1)]).unwrap();
        let config = Configuration::new(g, Box::new(NoExtraEdges)).with_shards(0);
        assert_eq!(config.shards, 1);
    }

    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn configuration_rejects_out_of_range_fault() {
        let g = DualGraph::reliable_only(2, [(0, 1)]).unwrap();
        let _ = Configuration::new(g, Box::new(NoExtraEdges))
            .with_faults(FaultPlan::none().with_crash(NodeId(5), 1, None));
    }
}
