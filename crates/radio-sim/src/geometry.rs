//! Euclidean embeddings, the `r`-geographic property, and region partitions.
//!
//! Appendix A of the paper replaces the usual union-bound-over-vertices
//! arguments with a partition of the *plane* into convex regions. We
//! implement the concrete partition of Lemma A.1: a uniform grid of
//! axis-aligned squares of side 1/2, each square owning its upper-left
//! corner, its upper edge (excluding endpoints), and its left edge
//! (excluding endpoints), so that the squares tile the plane exactly.
//!
//! Key facts reproduced here and checked by tests:
//!
//! * every region has diameter ≤ 1 (so all nodes embedded in one region are
//!   reliable `G`-neighbors);
//! * for every region `R` and hop radius `h` in the region graph
//!   `G_{R,r}`, at most `f(h) = c₁ r² h²` regions lie within `h` hops
//!   (Lemma A.2, `f`-boundedness);
//! * `Δ' ≤ c_r Δ` for `r`-geographic dual graphs (Lemma A.3).

use serde::{Deserialize, Serialize};

/// A point in the Euclidean plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// An embedding of graph vertices in the plane: vertex `i` sits at
/// `points[i]`.
///
/// An embedding witnesses the *r-geographic* property of a dual graph
/// (Section 2): nodes within distance 1 must be reliable neighbors, and
/// nodes farther than `r` apart must not even be unreliable neighbors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Embedding {
    points: Vec<Point>,
}

impl Embedding {
    /// Creates an embedding from per-vertex coordinates.
    pub fn new(points: Vec<Point>) -> Self {
        Embedding { points }
    }

    /// The number of embedded vertices.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the embedding contains no vertices.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The position of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn position(&self, v: usize) -> Point {
        self.points[v]
    }

    /// Euclidean distance between two embedded vertices.
    ///
    /// # Panics
    ///
    /// Panics if either vertex is out of range.
    pub fn distance(&self, u: usize, v: usize) -> f64 {
        self.points[u].distance(&self.points[v])
    }

    /// Iterates over the embedded points in vertex order.
    pub fn iter(&self) -> impl Iterator<Item = &Point> {
        self.points.iter()
    }
}

/// Identifier of a grid region: the square with corners
/// `(ix/2, iy/2)`–`((ix+1)/2, (iy+1)/2)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RegionId {
    /// Horizontal grid index (point `p` has `ix = floor(2 p.x)`).
    pub ix: i64,
    /// Vertical grid index.
    pub iy: i64,
}

/// The fixed partition of the plane from Lemma A.1: half-open squares of
/// side 1/2.
///
/// The partition is parametrized by `r ≥ 1`, which determines region
/// adjacency: two distinct regions are neighbors in the *region graph*
/// `G_{R,r}` exactly when some pair of their points lies within distance
/// `r`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegionPartition {
    r: f64,
}

/// Side length of each grid square in the region partition.
pub const REGION_SIDE: f64 = 0.5;

impl RegionPartition {
    /// Creates the partition for geographic parameter `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r < 1`, which the model forbids (Section 2 fixes
    /// `r ≥ 1`).
    pub fn new(r: f64) -> Self {
        assert!(r >= 1.0, "the dual graph model requires r >= 1, got {r}");
        RegionPartition { r }
    }

    /// The geographic parameter `r` this partition was built for.
    pub fn r(&self) -> f64 {
        self.r
    }

    /// The region containing point `p`.
    ///
    /// The half-open square convention of Lemma A.1 means a point on a
    /// square's left or top edge belongs to that square; `floor` on the
    /// scaled coordinates implements exactly this tiling.
    pub fn region_of(&self, p: Point) -> RegionId {
        RegionId {
            ix: (p.x / REGION_SIDE).floor() as i64,
            iy: (p.y / REGION_SIDE).floor() as i64,
        }
    }

    /// Minimum Euclidean distance between the closed squares of two regions.
    ///
    /// Used to decide region-graph adjacency: regions `a != b` are
    /// adjacent iff this distance is ≤ `r`. (The distance between a region
    /// and itself is 0.)
    pub fn region_distance(&self, a: RegionId, b: RegionId) -> f64 {
        let gap = |da: i64| -> f64 {
            // Number of whole squares strictly between the two intervals.
            let d = (da.abs() - 1).max(0) as f64;
            d * REGION_SIDE
        };
        let gx = gap(a.ix - b.ix);
        let gy = gap(a.iy - b.iy);
        (gx * gx + gy * gy).sqrt()
    }

    /// Whether regions `a` and `b` are adjacent in the region graph
    /// `G_{R,r}` (distinct regions within distance `r`).
    pub fn adjacent(&self, a: RegionId, b: RegionId) -> bool {
        a != b && self.region_distance(a, b) <= self.r
    }

    /// All regions within hop distance `h` of `a` in the region graph,
    /// including `a` itself.
    ///
    /// Because adjacency is determined by index offsets alone, a breadth
    /// bound of `ceil(2r) + 1` index steps per hop is exact; we enumerate
    /// the bounding box and filter by hop distance computed via BFS over
    /// indices.
    pub fn regions_within_hops(&self, a: RegionId, h: u32) -> Vec<RegionId> {
        use std::collections::{HashMap, VecDeque};
        let mut dist: HashMap<RegionId, u32> = HashMap::new();
        let mut queue = VecDeque::new();
        dist.insert(a, 0);
        queue.push_back(a);
        // One region hop can move at most `step` grid indices per axis.
        let step = (2.0 * self.r).ceil() as i64 + 1;
        while let Some(cur) = queue.pop_front() {
            let d = dist[&cur];
            if d == h {
                continue;
            }
            for dx in -step..=step {
                for dy in -step..=step {
                    let nb = RegionId {
                        ix: cur.ix + dx,
                        iy: cur.iy + dy,
                    };
                    if nb != cur && self.adjacent(cur, nb) && !dist.contains_key(&nb) {
                        dist.insert(nb, d + 1);
                        queue.push_back(nb);
                    }
                }
            }
        }
        let mut out: Vec<RegionId> = dist.into_keys().collect();
        out.sort();
        out
    }

    /// The `f`-boundedness constant of Lemma A.2: with the grid partition,
    /// at most `c₁ r² h²` regions lie within `h` hops of any region. This
    /// returns a valid `c₁` for the grid construction.
    ///
    /// One hop in `G_{R,r}` spans at most `2r + √2/2 ≤ 2r + 1` in the
    /// plane diagonally, i.e. at most `⌈2(2r+1)⌉` grid indices per axis, so
    /// within `h` hops the regions fit in a square of side
    /// `(2h(4r+2)+1)` indices; `c₁ = 121` dominates for all `r ≥ 1, h ≥ 1`.
    pub fn c1(&self) -> f64 {
        121.0
    }

    /// `c_r = c₁ r²`, the per-hop region-count scale (Appendix B.1).
    pub fn cr(&self) -> f64 {
        self.c1() * self.r * self.r
    }

    /// Groups embedded vertices by region, returning `(region, members)`
    /// pairs sorted by region id.
    pub fn group_vertices(&self, emb: &Embedding) -> Vec<(RegionId, Vec<usize>)> {
        use std::collections::BTreeMap;
        let mut map: BTreeMap<RegionId, Vec<usize>> = BTreeMap::new();
        for (v, p) in emb.iter().enumerate() {
            map.entry(self.region_of(*p)).or_default().push(v);
        }
        map.into_iter().collect()
    }
}

/// Verifies the two r-geographic conditions of Section 2 for a dual graph
/// described by its reliable adjacency test and unreliable adjacency test.
///
/// Returns `Ok(())` when for all pairs `u != v`:
/// 1. `d(u,v) ≤ 1` implies `{u,v} ∈ E`, and
/// 2. `d(u,v) > r` implies `{u,v} ∉ E'`.
///
/// # Errors
///
/// Returns the first violating pair with a description.
pub fn check_r_geographic(
    emb: &Embedding,
    r: f64,
    is_reliable_edge: impl Fn(usize, usize) -> bool,
    is_any_edge: impl Fn(usize, usize) -> bool,
) -> Result<(), String> {
    let n = emb.len();
    for u in 0..n {
        for v in (u + 1)..n {
            let d = emb.distance(u, v);
            if d <= 1.0 && !is_reliable_edge(u, v) {
                return Err(format!(
                    "vertices {u},{v} at distance {d:.4} <= 1 lack a reliable edge"
                ));
            }
            if d > r && is_any_edge(u, v) {
                return Err(format!(
                    "vertices {u},{v} at distance {d:.4} > r={r} share an edge in G'"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn region_of_respects_half_open_tiling() {
        let part = RegionPartition::new(1.0);
        // Origin belongs to the square [0, 0.5) x [0, 0.5).
        assert_eq!(part.region_of(Point::new(0.0, 0.0)), RegionId { ix: 0, iy: 0 });
        // The point exactly at 0.5 belongs to the next square.
        assert_eq!(part.region_of(Point::new(0.5, 0.0)), RegionId { ix: 1, iy: 0 });
        assert_eq!(
            part.region_of(Point::new(-0.0001, 0.2)),
            RegionId { ix: -1, iy: 0 }
        );
    }

    #[test]
    fn region_diameter_at_most_one() {
        // Any two points in one side-1/2 square are within sqrt(2)/2 < 1.
        let part = RegionPartition::new(1.0);
        let p = Point::new(0.01, 0.01);
        let q = Point::new(0.49, 0.49);
        assert_eq!(part.region_of(p), part.region_of(q));
        assert!(p.distance(&q) <= 1.0);
    }

    #[test]
    fn region_distance_zero_for_touching_squares() {
        let part = RegionPartition::new(1.0);
        let a = RegionId { ix: 0, iy: 0 };
        let b = RegionId { ix: 1, iy: 0 };
        assert_eq!(part.region_distance(a, b), 0.0);
        let c = RegionId { ix: 3, iy: 0 };
        // Two whole squares between: gap 2 * 0.5 = 1.0.
        assert!((part.region_distance(a, c) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn adjacency_is_symmetric_and_irreflexive() {
        let part = RegionPartition::new(2.0);
        let a = RegionId { ix: 0, iy: 0 };
        let b = RegionId { ix: 4, iy: 1 };
        assert_eq!(part.adjacent(a, b), part.adjacent(b, a));
        assert!(!part.adjacent(a, a));
    }

    #[test]
    fn regions_within_zero_hops_is_self() {
        let part = RegionPartition::new(1.5);
        let a = RegionId { ix: 2, iy: -3 };
        assert_eq!(part.regions_within_hops(a, 0), vec![a]);
    }

    #[test]
    fn f_boundedness_holds_for_small_h() {
        for r in [1.0, 1.5, 2.0, 3.0] {
            let part = RegionPartition::new(r);
            let a = RegionId { ix: 0, iy: 0 };
            for h in 1..=3u32 {
                let count = part.regions_within_hops(a, h).len() as f64;
                let bound = part.c1() * r * r * (h as f64) * (h as f64);
                assert!(
                    count <= bound,
                    "r={r} h={h}: {count} regions exceeds c1*r^2*h^2 = {bound}"
                );
            }
        }
    }

    #[test]
    fn one_hop_neighbor_count_below_cr() {
        // Lemma A.2: any region has at most c_r - 1 neighbors.
        for r in [1.0, 2.0, 4.0] {
            let part = RegionPartition::new(r);
            let a = RegionId { ix: 0, iy: 0 };
            let neighbors = part.regions_within_hops(a, 1).len() - 1;
            assert!((neighbors as f64) < part.cr());
        }
    }

    #[test]
    fn check_r_geographic_accepts_valid_and_rejects_invalid() {
        let emb = Embedding::new(vec![Point::new(0.0, 0.0), Point::new(0.8, 0.0)]);
        // distance 0.8 <= 1: must be a reliable edge.
        assert!(check_r_geographic(&emb, 2.0, |_, _| true, |_, _| true).is_ok());
        let err = check_r_geographic(&emb, 2.0, |_, _| false, |_, _| false);
        assert!(err.is_err());

        let far = Embedding::new(vec![Point::new(0.0, 0.0), Point::new(5.0, 0.0)]);
        // distance 5 > r=2: must not be any edge.
        assert!(check_r_geographic(&far, 2.0, |_, _| false, |_, _| true).is_err());
        assert!(check_r_geographic(&far, 2.0, |_, _| false, |_, _| false).is_ok());
    }

    #[test]
    fn group_vertices_partitions_all() {
        let emb = Embedding::new(vec![
            Point::new(0.1, 0.1),
            Point::new(0.2, 0.2),
            Point::new(3.0, 3.0),
        ]);
        let part = RegionPartition::new(1.0);
        let groups = part.group_vertices(&emb);
        let total: usize = groups.iter().map(|(_, m)| m.len()).sum();
        assert_eq!(total, 3);
        assert_eq!(groups.len(), 2);
    }
}
