//! Link schedulers: the adversary that picks which unreliable edges exist.
//!
//! Section 2 defines a link scheduler as a sequence `G₁, G₂, …` fixed at
//! the start of the execution, where each `Gₜ` contains all reliable edges
//! plus some subset of `E' \ E`. That sequence is *oblivious*: it cannot
//! react to coin flips. The [`LinkScheduler`] trait enforces this
//! structurally — an implementation sees only the round number and the
//! static graph, so it is necessarily equivalent to a pre-committed
//! sequence.
//!
//! The paper's guarantees are quantified over **all** oblivious schedulers;
//! we cannot iterate over all of them, so this module provides the
//! adversaries the paper's discussion singles out (notably the
//! contention-pumping schedule "constructed with the intent of thwarting"
//! fixed probability schedules, Section 1), plus a family of structural and
//! randomized schedules for coverage.
//!
//! The [`AdaptiveScheduler`] trait models the *stronger* adversary of the
//! authors' earlier work ([11]): it observes the current round's transmit
//! decisions before choosing edges. The paper proves efficient local
//! broadcast progress is **impossible** against such a scheduler; we
//! include a greedy jammer to reproduce that separation empirically
//! (experiment E8).

use crate::graph::{DualGraph, Edge};
use crate::rng::{derive_stream, StreamKind};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// The subset of `E' \ E` present in one round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EdgeSelection {
    /// Every unreliable edge is present (`Gₜ = G'`).
    All,
    /// No unreliable edge is present (`Gₜ = G`).
    None,
    /// Exactly the listed extra edges are present. The list must be
    /// sorted ascending and duplicate-free — membership tests
    /// binary-search it. Schedulers that filter the graph's (sorted)
    /// extra-edge list inherit the order for free; anything else should
    /// go through [`EdgeSelection::subset`].
    Subset(Vec<Edge>),
}

impl EdgeSelection {
    /// Builds a `Subset` selection from an arbitrarily ordered edge
    /// list, sorting and deduplicating it to establish the invariant
    /// [`EdgeSelection::contains`] relies on.
    pub fn subset(mut edges: Vec<Edge>) -> Self {
        edges.sort_unstable();
        edges.dedup();
        EdgeSelection::Subset(edges)
    }

    /// Whether the given extra edge is included by this selection
    /// (binary search on the sorted `Subset` list).
    pub fn contains(&self, e: &Edge) -> bool {
        match self {
            EdgeSelection::All => true,
            EdgeSelection::None => false,
            EdgeSelection::Subset(v) => {
                debug_assert!(
                    v.windows(2).all(|w| w[0] < w[1]),
                    "Subset edges must be sorted and deduplicated"
                );
                v.binary_search(e).is_ok()
            }
        }
    }
}

/// An *oblivious* link scheduler: a function of the round number and the
/// static dual graph only.
///
/// Implementations may keep internal state (e.g. a lazily advanced RNG)
/// but must behave as a function of `(round, graph)`; the provided
/// implementations all do, and the engine's determinism tests rely on it.
pub trait LinkScheduler: Send {
    /// The extra edges present in round `round` (rounds start at 1).
    fn extra_edges(&mut self, round: u64, graph: &DualGraph) -> EdgeSelection;

    /// A short human-readable name for experiment tables.
    fn name(&self) -> &'static str {
        "scheduler"
    }
}

/// An *adaptive* scheduler: sees this round's transmit decisions before
/// picking edges. Strictly stronger than the model's oblivious adversary;
/// used only to reproduce the separation of [11] (experiment E8).
pub trait AdaptiveScheduler: Send {
    /// The extra edges for `round`, given which vertices transmit.
    fn extra_edges(
        &mut self,
        round: u64,
        graph: &DualGraph,
        transmitting: &[bool],
    ) -> EdgeSelection;

    /// A short human-readable name for experiment tables.
    fn name(&self) -> &'static str {
        "adaptive"
    }
}

/// Either flavor of scheduler, as the engine consumes it.
pub enum SchedulerBox {
    /// The model's standard oblivious adversary.
    Oblivious(Box<dyn LinkScheduler>),
    /// The stronger adaptive adversary (outside the model; for E8 only).
    Adaptive(Box<dyn AdaptiveScheduler>),
}

impl std::fmt::Debug for SchedulerBox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedulerBox::Oblivious(s) => write!(f, "Oblivious({})", s.name()),
            SchedulerBox::Adaptive(s) => write!(f, "Adaptive({})", s.name()),
        }
    }
}

// ---------------------------------------------------------------------------
// Oblivious schedulers
// ---------------------------------------------------------------------------

/// Includes every unreliable edge in every round; `Gₜ = G'` always.
#[derive(Debug, Clone, Copy, Default)]
pub struct AllExtraEdges;

impl LinkScheduler for AllExtraEdges {
    fn extra_edges(&mut self, _round: u64, _graph: &DualGraph) -> EdgeSelection {
        EdgeSelection::All
    }
    fn name(&self) -> &'static str {
        "all-edges"
    }
}

/// Excludes every unreliable edge in every round; `Gₜ = G` always
/// (the classical reliable radio model).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoExtraEdges;

impl LinkScheduler for NoExtraEdges {
    fn extra_edges(&mut self, _round: u64, _graph: &DualGraph) -> EdgeSelection {
        EdgeSelection::None
    }
    fn name(&self) -> &'static str {
        "no-edges"
    }
}

/// Each unreliable edge is present independently with probability `p`,
/// re-drawn per round from a stream keyed by `(seed, round, edge index)` —
/// a randomized but still oblivious schedule.
#[derive(Debug, Clone)]
pub struct BernoulliEdges {
    /// Per-round inclusion probability of each extra edge.
    pub p: f64,
    /// Seed fixing the schedule at "the beginning of the execution".
    pub seed: u64,
}

impl BernoulliEdges {
    /// Creates the scheduler with inclusion probability `p` and seed.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn new(p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
        BernoulliEdges { p, seed }
    }

    fn round_rng(&self, round: u64) -> ChaCha8Rng {
        derive_stream(self.seed, StreamKind::Scheduler, round)
    }
}

impl LinkScheduler for BernoulliEdges {
    fn extra_edges(&mut self, round: u64, graph: &DualGraph) -> EdgeSelection {
        let mut rng = self.round_rng(round);
        let subset: Vec<Edge> = graph
            .extra_edges()
            .iter()
            .filter(|_| rng.gen_bool(self.p))
            .copied()
            .collect();
        EdgeSelection::Subset(subset)
    }
    fn name(&self) -> &'static str {
        "bernoulli"
    }
}

/// Alternates between `G'` and `G` with a fixed period: all extra edges
/// for `high` rounds, then none for `low` rounds, repeating.
#[derive(Debug, Clone, Copy)]
pub struct AlternatingEdges {
    /// Rounds per cycle with all extra edges present.
    pub high: u64,
    /// Rounds per cycle with no extra edges present.
    pub low: u64,
}

impl AlternatingEdges {
    /// Creates the alternating scheduler.
    ///
    /// # Panics
    ///
    /// Panics if both `high` and `low` are zero.
    pub fn new(high: u64, low: u64) -> Self {
        assert!(high + low > 0, "cycle must be non-empty");
        AlternatingEdges { high, low }
    }
}

impl LinkScheduler for AlternatingEdges {
    fn extra_edges(&mut self, round: u64, _graph: &DualGraph) -> EdgeSelection {
        let pos = (round - 1) % (self.high + self.low);
        if pos < self.high {
            EdgeSelection::All
        } else {
            EdgeSelection::None
        }
    }
    fn name(&self) -> &'static str {
        "alternating"
    }
}

/// The contention pump of Section 1's discussion: an oblivious schedule
/// built to defeat *fixed* geometrically decreasing probability schedules
/// (Decay-style baselines).
///
/// Such baselines cycle deterministically through broadcast probabilities
/// `1/2, 1/4, …, 1/Δ` as a function of the round number alone — so an
/// oblivious scheduler, knowing the cycle, can include **many** unreliable
/// edges exactly when the broadcast probability is high (flooding each
/// receiver with colliding grey-zone senders) and **exclude** them when
/// the probability is low (leaving so few potential senders that silence
/// dominates). The "right" probability for the realized contention never
/// coincides with the schedule.
#[derive(Debug, Clone, Copy)]
pub struct ContentionPump {
    /// Length of the baseline's probability cycle (`log₂ Δ` for Decay).
    pub cycle: u64,
    /// Positions `< knee` in the cycle (high-probability rounds) get all
    /// extra edges; the rest get none.
    pub knee: u64,
    /// Offset aligning the pump with the baseline's cycle start.
    pub phase: u64,
}

impl ContentionPump {
    /// Builds a pump against a Decay baseline with `log₂ Δ = cycle`
    /// probability steps: contention is pumped during the first half of
    /// each cycle (probabilities ≥ `1/2^{cycle/2}`).
    pub fn against_decay(cycle: u64) -> Self {
        assert!(cycle > 0, "cycle must be positive");
        ContentionPump {
            cycle,
            knee: cycle.div_ceil(2),
            phase: 0,
        }
    }
}

impl LinkScheduler for ContentionPump {
    fn extra_edges(&mut self, round: u64, _graph: &DualGraph) -> EdgeSelection {
        let pos = (round - 1 + self.phase) % self.cycle;
        if pos < self.knee {
            EdgeSelection::All
        } else {
            EdgeSelection::None
        }
    }
    fn name(&self) -> &'static str {
        "contention-pump"
    }
}

/// A pump with an explicit per-cycle-position mask: position `i` of each
/// cycle includes all extra edges iff `mask[i]`. This is the fully
/// general fixed-cycle oblivious pump; [`ContentionPump`] is the
/// half-cycle special case. Experiment E7 builds the mask from a Decay
/// baseline's probability ladder and a contention threshold.
#[derive(Debug, Clone)]
pub struct MaskedPump {
    mask: Vec<bool>,
}

impl MaskedPump {
    /// Creates a pump from its per-position inclusion mask.
    ///
    /// # Panics
    ///
    /// Panics on an empty mask.
    pub fn new(mask: Vec<bool>) -> Self {
        assert!(!mask.is_empty(), "pump cycle must be non-empty");
        MaskedPump { mask }
    }

    /// Builds the anti-Decay pump: for a Decay cycle of `log₂ Δ̂` rungs
    /// with probabilities `2^{-1}, …, 2^{-log Δ̂}`, include all extra
    /// edges exactly on the rungs whose probability exceeds
    /// `threshold` — flooding the receiver with grey-zone colliders when
    /// the baseline transmits aggressively, and starving it when the
    /// baseline's probability is too small for its reliable senders to
    /// break through.
    pub fn against_decay_with_threshold(log_delta: u32, threshold: f64) -> Self {
        let mask = (1..=log_delta.max(1))
            .map(|i| 2f64.powi(-(i as i32)) > threshold)
            .collect();
        MaskedPump::new(mask)
    }

    /// The inclusion mask (cycle positions in order).
    pub fn mask(&self) -> &[bool] {
        &self.mask
    }
}

impl LinkScheduler for MaskedPump {
    fn extra_edges(&mut self, round: u64, _graph: &DualGraph) -> EdgeSelection {
        let pos = ((round - 1) % self.mask.len() as u64) as usize;
        if self.mask[pos] {
            EdgeSelection::All
        } else {
            EdgeSelection::None
        }
    }
    fn name(&self) -> &'static str {
        "masked-pump"
    }
}

/// A striped schedule: extra edge with index `j` is present in round `t`
/// iff `(t + j) mod k == 0`. Exercises schedules where different edges
/// flicker out of phase with each other.
#[derive(Debug, Clone, Copy)]
pub struct StripedEdges {
    /// Stripe modulus; each edge is present once every `k` rounds.
    pub k: u64,
}

impl StripedEdges {
    /// Creates a striped scheduler with modulus `k ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics when `k == 0`.
    pub fn new(k: u64) -> Self {
        assert!(k >= 1, "stripe modulus must be at least 1");
        StripedEdges { k }
    }
}

impl LinkScheduler for StripedEdges {
    fn extra_edges(&mut self, round: u64, graph: &DualGraph) -> EdgeSelection {
        let subset = graph
            .extra_edges()
            .iter()
            .enumerate()
            .filter(|(j, _)| (round + *j as u64).is_multiple_of(self.k))
            .map(|(_, e)| *e)
            .collect();
        EdgeSelection::Subset(subset)
    }
    fn name(&self) -> &'static str {
        "striped"
    }
}

/// Round-robin edges: in round `t`, exactly the extra edges with index
/// `≡ t (mod k)` are present, rotating through the unreliable fringe one
/// slice at a time — a nod to Clementi et al.'s result that round-robin
/// scheduling is optimal for fault-tolerant broadcast.
#[derive(Debug, Clone, Copy)]
pub struct RoundRobinEdges {
    /// Number of slices the extra edge set is divided into.
    pub k: u64,
}

impl RoundRobinEdges {
    /// Creates a round-robin scheduler with `k ≥ 1` slices.
    ///
    /// # Panics
    ///
    /// Panics when `k == 0`.
    pub fn new(k: u64) -> Self {
        assert!(k >= 1, "need at least one slice");
        RoundRobinEdges { k }
    }
}

impl LinkScheduler for RoundRobinEdges {
    fn extra_edges(&mut self, round: u64, graph: &DualGraph) -> EdgeSelection {
        let slice = round % self.k;
        let subset = graph
            .extra_edges()
            .iter()
            .enumerate()
            .filter(|(j, _)| (*j as u64) % self.k == slice)
            .map(|(_, e)| *e)
            .collect();
        EdgeSelection::Subset(subset)
    }
    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Epoch-random edges: a fresh random subset is drawn once per
/// `epoch`-round block and held constant within the block — slowly
/// flapping links, as opposed to [`BernoulliEdges`]' per-round churn.
#[derive(Debug, Clone)]
pub struct EpochRandomEdges {
    /// Rounds per epoch.
    pub epoch: u64,
    /// Per-epoch inclusion probability of each extra edge.
    pub p: f64,
    /// Seed fixing the whole schedule up front.
    pub seed: u64,
}

impl EpochRandomEdges {
    /// Creates the scheduler.
    ///
    /// # Panics
    ///
    /// Panics unless `epoch ≥ 1` and `0 ≤ p ≤ 1`.
    pub fn new(epoch: u64, p: f64, seed: u64) -> Self {
        assert!(epoch >= 1, "epoch must be at least one round");
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        EpochRandomEdges { epoch, p, seed }
    }
}

impl LinkScheduler for EpochRandomEdges {
    fn extra_edges(&mut self, round: u64, graph: &DualGraph) -> EdgeSelection {
        let epoch_index = (round - 1) / self.epoch;
        let mut rng = derive_stream(self.seed, StreamKind::Scheduler, epoch_index);
        let subset = graph
            .extra_edges()
            .iter()
            .filter(|_| rng.gen_bool(self.p))
            .copied()
            .collect();
        EdgeSelection::Subset(subset)
    }
    fn name(&self) -> &'static str {
        "epoch-random"
    }
}

/// The standard library of oblivious adversaries, used by tests and
/// experiments that sweep "∀ scheduler" claims over a concrete family.
pub fn oblivious_family(seed: u64) -> Vec<Box<dyn LinkScheduler>> {
    vec![
        Box::new(AllExtraEdges),
        Box::new(NoExtraEdges),
        Box::new(BernoulliEdges::new(0.5, seed)),
        Box::new(BernoulliEdges::new(0.1, seed ^ 0xD1CE)),
        Box::new(AlternatingEdges::new(3, 5)),
        Box::new(ContentionPump::against_decay(8)),
        Box::new(StripedEdges::new(4)),
        Box::new(RoundRobinEdges::new(3)),
        Box::new(EpochRandomEdges::new(16, 0.5, seed ^ 0xEB0C)),
    ]
}

// ---------------------------------------------------------------------------
// Adaptive scheduler (outside the model; for the E8 separation)
// ---------------------------------------------------------------------------

/// A greedy adaptive jammer. For each listening vertex `u` that would
/// otherwise receive a message (exactly one reliable transmitting
/// neighbor), it includes an extra edge from `u` to some other transmitter
/// when one exists, manufacturing a collision. It never includes an edge
/// that would *create* a sole transmitter at a silent listener.
///
/// This reproduces the adversary style under which [11] proves efficient
/// progress impossible.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyJammer;

impl AdaptiveScheduler for GreedyJammer {
    fn extra_edges(
        &mut self,
        _round: u64,
        graph: &DualGraph,
        transmitting: &[bool],
    ) -> EdgeSelection {
        let mut chosen = Vec::new();
        for u in graph.vertices() {
            if transmitting[u.0] {
                continue;
            }
            let reliable_tx = graph
                .reliable_neighbors(u)
                .iter()
                .filter(|v| transmitting[v.0])
                .count();
            if reliable_tx == 1 {
                // Find any extra-edge neighbor that transmits; one edge
                // suffices to collide u's reception.
                if let Some(v) = graph
                    .extra_neighbors(u)
                    .iter()
                    .find(|v| transmitting[v.0])
                {
                    chosen.push(Edge::new(u, *v));
                }
            } else if reliable_tx == 0 {
                // Adding >= 2 transmitting extra neighbors keeps u deaf
                // while burning the senders' rounds.
                let txs: Vec<_> = graph
                    .extra_neighbors(u)
                    .iter()
                    .filter(|v| transmitting[v.0])
                    .take(2)
                    .collect();
                if txs.len() == 2 {
                    for v in txs {
                        chosen.push(Edge::new(u, *v));
                    }
                }
            }
        }
        EdgeSelection::subset(chosen)
    }
    fn name(&self) -> &'static str {
        "greedy-jammer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeId;

    fn grey_triangle() -> DualGraph {
        DualGraph::new(3, [(0, 1)], [(0, 2), (1, 2)]).unwrap()
    }

    #[test]
    fn all_and_none_are_constant() {
        let g = grey_triangle();
        assert_eq!(AllExtraEdges.extra_edges(1, &g), EdgeSelection::All);
        assert_eq!(NoExtraEdges.extra_edges(9, &g), EdgeSelection::None);
    }

    #[test]
    fn bernoulli_is_deterministic_per_round() {
        let g = grey_triangle();
        let mut s1 = BernoulliEdges::new(0.5, 7);
        let mut s2 = BernoulliEdges::new(0.5, 7);
        for t in 1..=20 {
            assert_eq!(s1.extra_edges(t, &g), s2.extra_edges(t, &g));
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let g = grey_triangle();
        let mut zero = BernoulliEdges::new(0.0, 1);
        let mut one = BernoulliEdges::new(1.0, 1);
        match zero.extra_edges(1, &g) {
            EdgeSelection::Subset(v) => assert!(v.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
        match one.extra_edges(1, &g) {
            EdgeSelection::Subset(v) => assert_eq!(v.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn alternating_cycles() {
        let g = grey_triangle();
        let mut s = AlternatingEdges::new(2, 1);
        assert_eq!(s.extra_edges(1, &g), EdgeSelection::All);
        assert_eq!(s.extra_edges(2, &g), EdgeSelection::All);
        assert_eq!(s.extra_edges(3, &g), EdgeSelection::None);
        assert_eq!(s.extra_edges(4, &g), EdgeSelection::All);
    }

    #[test]
    fn pump_tracks_decay_cycle() {
        let g = grey_triangle();
        let mut s = ContentionPump::against_decay(4);
        // knee = 2: rounds 1,2 high; 3,4 low; then repeat.
        assert_eq!(s.extra_edges(1, &g), EdgeSelection::All);
        assert_eq!(s.extra_edges(2, &g), EdgeSelection::All);
        assert_eq!(s.extra_edges(3, &g), EdgeSelection::None);
        assert_eq!(s.extra_edges(4, &g), EdgeSelection::None);
        assert_eq!(s.extra_edges(5, &g), EdgeSelection::All);
    }

    #[test]
    fn masked_pump_follows_mask() {
        let g = grey_triangle();
        let mut s = MaskedPump::new(vec![true, false, false]);
        assert_eq!(s.extra_edges(1, &g), EdgeSelection::All);
        assert_eq!(s.extra_edges(2, &g), EdgeSelection::None);
        assert_eq!(s.extra_edges(3, &g), EdgeSelection::None);
        assert_eq!(s.extra_edges(4, &g), EdgeSelection::All);
    }

    #[test]
    fn anti_decay_mask_tracks_threshold() {
        // log_delta = 4: probs 1/2, 1/4, 1/8, 1/16; threshold 1/8 keeps
        // the first two rungs pumped.
        let s = MaskedPump::against_decay_with_threshold(4, 0.125);
        assert_eq!(s.mask(), &[true, true, false, false]);
    }

    #[test]
    fn striped_spreads_edges() {
        let g = grey_triangle();
        let mut s = StripedEdges::new(2);
        let sel1 = s.extra_edges(1, &g);
        let sel2 = s.extra_edges(2, &g);
        // The two extra edges appear in different rounds.
        assert_ne!(sel1, sel2);
    }

    #[test]
    fn round_robin_covers_all_edges_over_k_rounds() {
        let g = grey_triangle(); // two extra edges
        let mut s = RoundRobinEdges::new(2);
        let mut seen = std::collections::BTreeSet::new();
        for t in 1..=2 {
            if let EdgeSelection::Subset(edges) = s.extra_edges(t, &g) {
                seen.extend(edges);
            }
        }
        assert_eq!(seen.len(), 2, "every edge appears within one rotation");
    }

    #[test]
    fn epoch_random_is_constant_within_epoch() {
        let g = grey_triangle();
        let mut s = EpochRandomEdges::new(5, 0.5, 3);
        let first = s.extra_edges(1, &g);
        for t in 2..=5 {
            assert_eq!(s.extra_edges(t, &g), first);
        }
        // A later epoch eventually differs (probabilistic, but with two
        // edges and many epochs a change is practically certain).
        let changed = (6..=200).any(|t| s.extra_edges(t, &g) != first);
        assert!(changed);
    }

    #[test]
    fn jammer_collides_sole_reliable_sender() {
        // 0-1 reliable; 1-2 extra. If 0 and 2 transmit, 1 would receive
        // from 0; jammer must include edge (1,2) to collide.
        let g = DualGraph::new(3, [(0, 1)], [(1, 2)]).unwrap();
        let mut j = GreedyJammer;
        let sel = j.extra_edges(1, &g, &[true, false, true]);
        assert!(sel.contains(&Edge::new(NodeId(1), NodeId(2))));
    }

    #[test]
    fn jammer_never_creates_sole_sender() {
        // 1 has no reliable transmitting neighbor and exactly one
        // transmitting extra neighbor: including the edge would deliver a
        // message, so the jammer must not include it.
        let g = DualGraph::new(3, [], [(1, 2)]).unwrap();
        let mut j = GreedyJammer;
        let sel = j.extra_edges(1, &g, &[false, false, true]);
        assert!(!sel.contains(&Edge::new(NodeId(1), NodeId(2))));
    }

    #[test]
    fn subset_constructor_sorts_and_dedups() {
        let e01 = Edge::new(NodeId(0), NodeId(1));
        let e12 = Edge::new(NodeId(1), NodeId(2));
        let e23 = Edge::new(NodeId(2), NodeId(3));
        let sel = EdgeSelection::subset(vec![e23, e01, e23, e12]);
        assert_eq!(sel, EdgeSelection::Subset(vec![e01, e12, e23]));
        assert!(sel.contains(&e01) && sel.contains(&e12) && sel.contains(&e23));
        assert!(!sel.contains(&Edge::new(NodeId(0), NodeId(3))));
    }

    #[test]
    fn contains_binary_search_matches_linear_scan() {
        // Every per-round Subset a scheduler emits stays sorted, so
        // `contains` may binary-search; cross-check against a linear
        // scan over a bigger fringe.
        let n = 40;
        let extra: Vec<(usize, usize)> = (0..n - 2).map(|i| (i, i + 2)).collect();
        let g = DualGraph::new(n, (0..n - 1).map(|i| (i, i + 1)), extra).unwrap();
        let mut sched = BernoulliEdges::new(0.5, 77);
        for round in 1..=8 {
            let sel = sched.extra_edges(round, &g);
            let EdgeSelection::Subset(chosen) = &sel else {
                panic!("bernoulli always returns a subset");
            };
            for e in g.extra_edges() {
                assert_eq!(sel.contains(e), chosen.iter().any(|c| c == e));
            }
        }
    }

    #[test]
    fn family_is_nonempty_and_named() {
        for s in oblivious_family(3) {
            assert!(!s.name().is_empty());
        }
    }
}
