//! Deterministic randomness plumbing.
//!
//! Every random choice in a simulation flows through a per-node ChaCha8
//! stream derived from a single master seed, so a
//! (configuration, master-seed) pair fully determines an execution — the
//! paper's "execution tree" becomes replayable, and Monte-Carlo trials are
//! independent by construction (distinct trial indices give distinct master
//! seeds).

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Labels separating independent random streams derived from one master
/// seed. Adding a stream kind never perturbs existing streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamKind {
    /// A process's private coin flips (stream index = vertex index).
    Process,
    /// The link scheduler's own randomness.
    Scheduler,
    /// Randomness used by topology generators.
    Topology,
    /// The fault plan's drop-burst coin flips (stream index = round), kept
    /// separate so injected faults never perturb process or scheduler
    /// randomness.
    Fault,
    /// Transport-layer randomness (mock-network loss coins, stream index =
    /// round), so a lossy transport never perturbs process, scheduler, or
    /// fault streams.
    Transport,
    /// Mobility randomness: random-waypoint draws (stream index = vertex
    /// index) and per-epoch grey-zone rewiring of a dynamic geometry
    /// timeline. A dedicated kind keeps moving scenarios from perturbing
    /// the static topology, process, scheduler, fault, or transport
    /// streams — a single-epoch timeline consumes no mobility randomness
    /// at all.
    Mobility,
}

impl StreamKind {
    fn tag(self) -> u64 {
        match self {
            StreamKind::Process => 0x50524f43, // "PROC"
            StreamKind::Scheduler => 0x53434845,
            StreamKind::Topology => 0x544f504f,
            StreamKind::Fault => 0x46415554,     // "FAUT"
            StreamKind::Transport => 0x58505254, // "XPRT"
            StreamKind::Mobility => 0x4d4f4249,  // "MOBI"
        }
    }
}

/// SplitMix64 finalizer: a fast, well-mixed 64-bit hash used only for seed
/// derivation (never as the generator itself).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Derives the ChaCha stream for `(master_seed, kind, index)`.
///
/// The 256-bit ChaCha key is filled with four successive SplitMix64 outputs
/// of the mixed triple, which is more than enough separation for
/// simulation purposes.
pub fn derive_stream(master_seed: u64, kind: StreamKind, index: u64) -> ChaCha8Rng {
    let base = splitmix64(master_seed ^ splitmix64(kind.tag()) ^ splitmix64(index.wrapping_mul(0xA24BAED4963EE407)));
    let mut key = [0u8; 32];
    for (i, chunk) in key.chunks_exact_mut(8).enumerate() {
        chunk.copy_from_slice(&splitmix64(base.wrapping_add(i as u64 + 1)).to_le_bytes());
    }
    ChaCha8Rng::from_seed(key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn same_inputs_same_stream() {
        let mut a = derive_stream(42, StreamKind::Process, 3);
        let mut b = derive_stream(42, StreamKind::Process, 3);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_indices_differ() {
        let mut a = derive_stream(42, StreamKind::Process, 3);
        let mut b = derive_stream(42, StreamKind::Process, 4);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn different_kinds_differ() {
        let mut a = derive_stream(42, StreamKind::Process, 3);
        let mut b = derive_stream(42, StreamKind::Scheduler, 3);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn different_master_seeds_differ() {
        let mut a = derive_stream(1, StreamKind::Topology, 0);
        let mut b = derive_stream(2, StreamKind::Topology, 0);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn mobility_stream_is_distinct_from_all_prior_kinds() {
        // Adding Mobility must not collide with (and so can never
        // perturb) any pre-existing stream: the tags are all distinct,
        // and the derived streams differ pairwise on a shared index.
        let kinds = [
            StreamKind::Process,
            StreamKind::Scheduler,
            StreamKind::Topology,
            StreamKind::Fault,
            StreamKind::Transport,
            StreamKind::Mobility,
        ];
        for (i, a) in kinds.iter().enumerate() {
            for b in &kinds[i + 1..] {
                let mut sa = derive_stream(99, *a, 5);
                let mut sb = derive_stream(99, *b, 5);
                assert_ne!(sa.next_u64(), sb.next_u64(), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn splitmix_is_not_identity() {
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
