//! Collision-resolved reception, factored out of the engine.
//!
//! These free functions turn one round's transmit decisions into the
//! per-listener reception state the collision rule dictates: after a
//! call, `tx_neighbors[u]` counts `u`'s transmitting neighbors in the
//! round topology (reliable edges plus the scheduler's selection of
//! extra edges) and `last_sender[u]` names the unique sender whenever
//! that count is exactly 1. A listener `u` then receives iff
//! `tx_neighbors[u] == 1` — the Section 2 rule with no collision
//! detection.
//!
//! [`Engine::step`](crate::engine::Engine::step) calls these directly,
//! and transport implementations (the `net` crate's `SimTransport`)
//! wrap the *same* functions behind a trait, so an execution routed
//! through the transport abstraction is byte-identical to the engine's
//! by construction.
//!
//! `last_sender` needs no reset between rounds: it is only read where
//! `tx_neighbors` is nonzero, which implies a write in the same call.

use crate::graph::{DualGraph, NodeId};
use crate::scheduler::EdgeSelection;

/// The scatter-form resolution: walk each transmitter's neighborhood,
/// accumulating into `tx_neighbors`/`last_sender`.
/// O(Σ deg(transmitter)); allocation-free — the zero-alloc steady-state
/// path of the serial engine.
///
/// `tx_list` must list exactly the vertices `v` with `transmitting[v]`,
/// in ascending order (the engine builds it that way); `tx_neighbors`
/// and `last_sender` must have one slot per vertex.
pub fn resolve_receptions_serial(
    graph: &DualGraph,
    selection: &EdgeSelection,
    transmitting: &[bool],
    tx_list: &[usize],
    tx_neighbors: &mut [u32],
    last_sender: &mut [NodeId],
) {
    tx_neighbors.fill(0);
    for &v in tx_list {
        for &u in graph.reliable_neighbors(NodeId(v)) {
            tx_neighbors[u.0] += 1;
            last_sender[u.0] = NodeId(v);
        }
    }
    let mut apply_edge = |a: NodeId, b: NodeId| {
        if transmitting[a.0] {
            tx_neighbors[b.0] += 1;
            last_sender[b.0] = a;
        }
        if transmitting[b.0] {
            tx_neighbors[a.0] += 1;
            last_sender[a.0] = b;
        }
    };
    match selection {
        EdgeSelection::All => {
            for e in graph.extra_edges() {
                apply_edge(e.a, e.b);
            }
        }
        EdgeSelection::None => {}
        EdgeSelection::Subset(edges) => {
            for e in edges {
                debug_assert!(
                    graph.extra_edges().binary_search(e).is_ok(),
                    "scheduler returned edge {e:?} outside E' \\ E"
                );
                apply_edge(e.a, e.b);
            }
        }
    }
}

/// The gather-form resolution, fanned out over `shards` disjoint vertex
/// ranges: each shard counts the transmitting neighbors of its own
/// vertices against the read-only CSR adjacency and writes only its own
/// slice of `tx_neighbors`/`last_sender`, so the result is
/// byte-identical to the serial scatter by construction — when exactly
/// one neighbor transmits, both forms record that unique sender, and
/// `last_sender` is never read otherwise. Per-round `Subset` selections
/// are applied serially on top (they are sparse; the O(n + m) gather is
/// the scalable part).
///
/// `shard_busy` (when telemetry is on) receives each worker chunk's
/// busy nanoseconds, one pre-allocated slot per shard — timing is
/// taken inside the worker, so the slots measure compute skew, not
/// spawn/join overhead.
pub fn resolve_receptions_sharded(
    graph: &DualGraph,
    selection: &EdgeSelection,
    transmitting: &[bool],
    shards: usize,
    tx_neighbors: &mut [u32],
    last_sender: &mut [NodeId],
    shard_busy: Option<&mut [u64]>,
) {
    let n = graph.len();
    let shards = shards.min(n.max(1));
    let chunk = n.div_ceil(shards);
    let gather_extra = matches!(selection, EdgeSelection::All);
    crossbeam::scope(|s| {
        let mut tx_rest: &mut [u32] = tx_neighbors;
        let mut ls_rest: &mut [NodeId] = last_sender;
        let mut busy_rest: &mut [u64] = shard_busy.unwrap_or(&mut []);
        let mut base = 0usize;
        while !tx_rest.is_empty() {
            let take = chunk.min(tx_rest.len());
            let (tx_chunk, tx_tail) = tx_rest.split_at_mut(take);
            let (ls_chunk, ls_tail) = ls_rest.split_at_mut(take);
            tx_rest = tx_tail;
            ls_rest = ls_tail;
            let busy_slot = if busy_rest.is_empty() {
                None
            } else {
                let (head, tail) = std::mem::take(&mut busy_rest).split_at_mut(1);
                busy_rest = tail;
                Some(&mut head[0])
            };
            let lo = base;
            base += take;
            s.spawn(move |_| {
                let span = telemetry::Stopwatch::armed(busy_slot.is_some());
                for (i, (count, sender)) in
                    tx_chunk.iter_mut().zip(ls_chunk.iter_mut()).enumerate()
                {
                    let u = NodeId(lo + i);
                    let mut c = 0u32;
                    let mut from = NodeId(0);
                    for &v in graph.reliable_neighbors(u) {
                        if transmitting[v.0] {
                            c += 1;
                            from = v;
                        }
                    }
                    if gather_extra {
                        for &v in graph.extra_neighbors(u) {
                            if transmitting[v.0] {
                                c += 1;
                                from = v;
                            }
                        }
                    }
                    *count = c;
                    *sender = from;
                }
                if let Some(slot) = busy_slot {
                    *slot += span.peek();
                }
            });
        }
    })
    .expect("reception shard panicked");
    if let EdgeSelection::Subset(edges) = selection {
        for e in edges {
            debug_assert!(
                graph.extra_edges().binary_search(e).is_ok(),
                "scheduler returned edge {e:?} outside E' \\ E"
            );
            if transmitting[e.a.0] {
                tx_neighbors[e.b.0] += 1;
                last_sender[e.b.0] = e.a;
            }
            if transmitting[e.b.0] {
                tx_neighbors[e.a.0] += 1;
                last_sender[e.a.0] = e.b;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena() -> (DualGraph, Vec<bool>, Vec<usize>) {
        // Path 0-1-2-3 with extra edges (0,2) and (1,3); 0 and 2 transmit.
        let g = DualGraph::new(4, [(0, 1), (1, 2), (2, 3)], [(0, 2), (1, 3)]).unwrap();
        let transmitting = vec![true, false, true, false];
        let tx_list = vec![0, 2];
        (g, transmitting, tx_list)
    }

    #[test]
    fn serial_counts_follow_the_collision_rule() {
        let (g, transmitting, tx_list) = arena();
        let mut counts = vec![0u32; 4];
        let mut senders = vec![NodeId(0); 4];
        resolve_receptions_serial(
            &g,
            &EdgeSelection::None,
            &transmitting,
            &tx_list,
            &mut counts,
            &mut senders,
        );
        // 1 hears both 0 and 2 (collision); 3 hears only 2 (delivery).
        assert_eq!(counts, vec![0, 2, 0, 1]);
        assert_eq!(senders[3], NodeId(2));

        resolve_receptions_serial(
            &g,
            &EdgeSelection::All,
            &transmitting,
            &tx_list,
            &mut counts,
            &mut senders,
        );
        // Extra edge (0,2) adds nothing for listeners (both transmit);
        // extra edge (1,3) is listener-listener. But 1 also hears 0 and 2
        // reliably, and 0 hears 2 over the extra edge — though 0 is a
        // transmitter, the count is still maintained.
        assert_eq!(counts[1], 2);
        assert_eq!(counts[3], 1);
    }

    #[test]
    fn sharded_matches_serial_for_every_shard_count() {
        let (g, transmitting, tx_list) = arena();
        for selection in [
            EdgeSelection::None,
            EdgeSelection::All,
            EdgeSelection::subset(g.extra_edges().to_vec()),
        ] {
            let mut counts = vec![0u32; 4];
            let mut senders = vec![NodeId(0); 4];
            resolve_receptions_serial(
                &g,
                &selection,
                &transmitting,
                &tx_list,
                &mut counts,
                &mut senders,
            );
            for shards in [1, 2, 3, 7] {
                let mut c2 = vec![0u32; 4];
                let mut s2 = vec![NodeId(0); 4];
                resolve_receptions_sharded(
                    &g,
                    &selection,
                    &transmitting,
                    shards,
                    &mut c2,
                    &mut s2,
                    None,
                );
                assert_eq!(counts, c2, "shards = {shards}");
                // Senders only need to agree where the count is 1.
                for u in 0..4 {
                    if counts[u] == 1 {
                        assert_eq!(senders[u], s2[u], "u = {u}, shards = {shards}");
                    }
                }
            }
        }
    }
}
