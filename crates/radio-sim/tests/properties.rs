//! Property-based tests for the model substrate: geometry invariants,
//! dual graph structure, topology generators, and engine determinism.

use proptest::prelude::*;
use radio_sim::geometry::{Point, RegionPartition};
use radio_sim::graph::{DualGraph, Edge, NodeId};
use radio_sim::topology::{self, RggParams};

fn point_strategy() -> impl Strategy<Value = Point> {
    (-50.0f64..50.0, -50.0f64..50.0).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #[test]
    fn distance_is_symmetric_and_nonnegative(a in point_strategy(), b in point_strategy()) {
        let d1 = a.distance(&b);
        let d2 = b.distance(&a);
        prop_assert!((d1 - d2).abs() < 1e-9);
        prop_assert!(d1 >= 0.0);
        prop_assert!((a.distance(&a)).abs() < 1e-12);
    }

    #[test]
    fn triangle_inequality(a in point_strategy(), b in point_strategy(), c in point_strategy()) {
        prop_assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c) + 1e-9);
    }

    #[test]
    fn every_point_has_exactly_one_region(p in point_strategy(), r in 1.0f64..4.0) {
        let part = RegionPartition::new(r);
        let region = part.region_of(p);
        // The region's square actually contains the point.
        let side = radio_sim::geometry::REGION_SIDE;
        let x0 = region.ix as f64 * side;
        let y0 = region.iy as f64 * side;
        prop_assert!(p.x >= x0 - 1e-9 && p.x < x0 + side + 1e-9);
        prop_assert!(p.y >= y0 - 1e-9 && p.y < y0 + side + 1e-9);
    }

    #[test]
    fn same_region_implies_distance_at_most_one(
        p in point_strategy(),
        dx in 0.0f64..0.4999,
        dy in 0.0f64..0.4999,
        r in 1.0f64..4.0,
    ) {
        // q is in the same grid square as the square-aligned base of p.
        let part = RegionPartition::new(r);
        let side = radio_sim::geometry::REGION_SIDE;
        let base = part.region_of(p);
        let q = Point::new(base.ix as f64 * side + dx, base.iy as f64 * side + dy);
        prop_assert_eq!(part.region_of(q), base);
        // Region diameter property (Lemma A.1 condition 1).
        let corner = Point::new(base.ix as f64 * side, base.iy as f64 * side);
        prop_assert!(q.distance(&corner) <= 1.0);
    }

    #[test]
    fn region_distance_symmetric(
        ax in -20i64..20, ay in -20i64..20,
        bx in -20i64..20, by in -20i64..20,
        r in 1.0f64..4.0,
    ) {
        use radio_sim::geometry::RegionId;
        let part = RegionPartition::new(r);
        let a = RegionId { ix: ax, iy: ay };
        let b = RegionId { ix: bx, iy: by };
        let d1 = part.region_distance(a, b);
        let d2 = part.region_distance(b, a);
        prop_assert!((d1 - d2).abs() < 1e-9);
        prop_assert_eq!(part.adjacent(a, b), part.adjacent(b, a));
    }

    #[test]
    fn edge_normalization_orders_endpoints(u in 0usize..100, v in 0usize..100) {
        prop_assume!(u != v);
        let e = Edge::new(NodeId(u), NodeId(v));
        prop_assert!(e.a.0 <= e.b.0);
        prop_assert_eq!(e.try_other(e.a), Some(e.b));
        prop_assert_eq!(e.try_other(e.b), Some(e.a));
        prop_assert_eq!(e.try_other(NodeId(u + v + 1)), None);
    }

    #[test]
    fn dual_graph_adjacency_is_symmetric(
        n in 2usize..20,
        edges in proptest::collection::vec((0usize..20, 0usize..20), 0..40),
    ) {
        let reliable: Vec<(usize, usize)> = edges
            .iter()
            .filter(|(u, v)| u != v && *u < n && *v < n)
            .take(15)
            .copied()
            .collect();
        let g = DualGraph::reliable_only(n, reliable).unwrap();
        for u in g.vertices() {
            for v in g.vertices() {
                prop_assert_eq!(g.is_reliable_edge(u, v), g.is_reliable_edge(v, u));
                prop_assert_eq!(g.is_any_edge(u, v), g.is_any_edge(v, u));
            }
            // Δ covers every node's closed reliable neighborhood.
            prop_assert!(g.reliable_neighbors(u).len() < g.delta());
        }
        prop_assert!(g.delta_prime() >= g.delta());
    }

    #[test]
    fn rgg_generator_is_geographic(
        n in 5usize..40,
        seed in 0u64..1000,
        r in 1.0f64..3.0,
        grey_rel in 0.0f64..0.5,
        grey_unrel in 0.0f64..1.0,
    ) {
        let topo = topology::random_geometric(RggParams {
            n,
            side: 4.0,
            r,
            grey_reliable_p: grey_rel,
            grey_unreliable_p: grey_unrel,
            seed,
        });
        prop_assert!(topo.check_geographic().is_ok());
        // Lemma A.3 on the concrete instance.
        let part = RegionPartition::new(r);
        prop_assert!((topo.graph.delta_prime() as f64) <= part.cr() * topo.graph.delta() as f64);
    }

    #[test]
    fn bucketed_rgg_is_byte_identical_to_reference(
        n in 1usize..60,
        side in 0.5f64..12.0,
        seed in 0u64..1000,
        r in 1.0f64..3.5,
        grey_rel in 0.0f64..1.0,
        grey_unrel in 0.0f64..1.0,
    ) {
        let params = RggParams {
            n,
            side,
            r,
            grey_reliable_p: grey_rel,
            grey_unreliable_p: grey_unrel,
            seed,
        };
        // The bucketed construction must consume the wiring RNG in the
        // same (u, v) lexicographic order as the all-pairs reference, so
        // graph and embedding come out identical — not merely isomorphic.
        let fast = topology::random_geometric(params);
        let slow = topology::random_geometric_reference(params);
        prop_assert_eq!(fast.graph, slow.graph);
        prop_assert_eq!(fast.embedding, slow.embedding);
    }

    #[test]
    fn line_topology_reliable_edges_match_spacing(
        n in 2usize..15,
        spacing in 0.3f64..1.4,
    ) {
        let topo = topology::line(n, spacing, 2.0);
        for i in 0..n.saturating_sub(1) {
            let adjacent_reliable = topo
                .graph
                .is_reliable_edge(NodeId(i), NodeId(i + 1));
            prop_assert_eq!(adjacent_reliable, spacing <= 1.0);
        }
    }

    #[test]
    fn grouped_vertices_cover_everything(
        n in 1usize..30,
        seed in 0u64..100,
    ) {
        let topo = topology::random_geometric(RggParams {
            n,
            side: 3.0,
            r: 2.0,
            grey_reliable_p: 0.0,
            grey_unreliable_p: 1.0,
            seed,
        });
        let part = RegionPartition::new(topo.r);
        let groups = part.group_vertices(&topo.embedding);
        let total: usize = groups.iter().map(|(_, m)| m.len()).sum();
        prop_assert_eq!(total, n);
        // No vertex appears twice.
        let mut seen = std::collections::HashSet::new();
        for (_, members) in &groups {
            for &v in members {
                prop_assert!(seen.insert(v));
            }
        }
    }
}
