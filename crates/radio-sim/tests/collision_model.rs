//! Model-based testing of the engine's collision resolution: a naive,
//! independently written reference implementation of the Section 2
//! reception rule is compared against the engine on randomized
//! topologies, transmit patterns, and link schedules.

use proptest::prelude::*;
use radio_sim::engine::{Configuration, Engine};
use radio_sim::environment::NullEnvironment;
use radio_sim::graph::{DualGraph, NodeId};
use radio_sim::process::{Action, Context, Process};
use radio_sim::scheduler::{BernoulliEdges, EdgeSelection, LinkScheduler};
use radio_sim::trace::RecordingPolicy;

/// A process with a fully scripted transmit pattern that records its
/// receptions.
struct Scripted {
    /// `pattern[t - 1]` = message to send in round `t` (None = listen).
    pattern: Vec<Option<u64>>,
}

impl Process for Scripted {
    type Msg = u64;
    type Input = ();
    type Output = ();

    fn on_input(&mut self, _i: (), _ctx: &mut Context<'_>) {}

    fn transmit(&mut self, ctx: &mut Context<'_>) -> Action<u64> {
        match self.pattern.get(ctx.round as usize - 1).copied().flatten() {
            Some(m) => Action::Transmit(m),
            None => Action::Receive,
        }
    }

    fn on_receive(&mut self, _m: Option<u64>, _ctx: &mut Context<'_>) {}

    fn take_outputs(&mut self) -> Vec<()> {
        Vec::new()
    }
}

/// Naive reference: who receives what in one round, computed directly
/// from the Section 2 definition. `u` receives from `v` iff `u` listens,
/// `v` transmits, `{u,v}` is in the round topology, and no *other*
/// topology-neighbor of `u` transmits.
fn reference_receptions(
    graph: &DualGraph,
    selection: &EdgeSelection,
    transmitting: &[Option<u64>],
) -> Vec<Option<(NodeId, u64)>> {
    let n = graph.len();
    let in_topology = |u: NodeId, v: NodeId| -> bool {
        if graph.is_reliable_edge(u, v) {
            return true;
        }
        if !graph.is_any_edge(u, v) {
            return false;
        }
        let e = radio_sim::graph::Edge::new(u, v);
        selection.contains(&e)
    };
    (0..n)
        .map(|u| {
            let u = NodeId(u);
            if transmitting[u.0].is_some() {
                return None; // transmitters do not receive
            }
            let tx_neighbors: Vec<NodeId> = graph
                .vertices()
                .filter(|v| *v != u && transmitting[v.0].is_some() && in_topology(u, *v))
                .collect();
            match tx_neighbors.as_slice() {
                [v] => Some((*v, transmitting[v.0].expect("transmitter has msg"))),
                _ => None,
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn engine_matches_reference_model(
        n in 2usize..12,
        edge_bits in proptest::collection::vec(any::<bool>(), 66),
        extra_bits in proptest::collection::vec(any::<bool>(), 66),
        tx_bits in proptest::collection::vec(any::<bool>(), 0..96),
        sched_seed in 0u64..500,
        rounds in 1u64..8,
    ) {
        // Random dual graph on n vertices.
        let mut reliable = Vec::new();
        let mut extra = Vec::new();
        let mut idx = 0;
        for u in 0..n {
            for v in (u + 1)..n {
                let bit = edge_bits[idx % edge_bits.len()];
                let ebit = extra_bits[idx % extra_bits.len()];
                idx += 1;
                if bit {
                    reliable.push((u, v));
                } else if ebit {
                    extra.push((u, v));
                }
            }
        }
        let graph = DualGraph::new(n, reliable, extra).unwrap();

        // Random transmit patterns: node v transmits message (v*100 + t)
        // in round t when its bit is set.
        let pattern_for = |v: usize| -> Vec<Option<u64>> {
            (0..rounds as usize)
                .map(|t| {
                    let bit = tx_bits
                        .get((v * rounds as usize + t) % tx_bits.len().max(1))
                        .copied()
                        .unwrap_or(false);
                    bit.then_some((v * 100 + t) as u64)
                })
                .collect()
        };

        let procs: Vec<Scripted> = (0..n)
            .map(|v| Scripted { pattern: pattern_for(v) })
            .collect();
        let config = Configuration::new(
            graph.clone(),
            Box::new(BernoulliEdges::new(0.5, sched_seed)),
        )
        .with_recording(RecordingPolicy::full());
        let mut engine = Engine::new(config, procs, Box::new(NullEnvironment), 1);
        engine.run(rounds);
        let trace = engine.into_trace();

        // Replay the schedule independently and compare per round.
        let mut sched = BernoulliEdges::new(0.5, sched_seed);
        for t in 1..=rounds {
            let selection = sched.extra_edges(t, &graph);
            let transmitting: Vec<Option<u64>> =
                (0..n).map(|v| pattern_for(v)[t as usize - 1]).collect();
            let expected = reference_receptions(&graph, &selection, &transmitting);
            for (u, exp) in expected.iter().enumerate() {
                let engine_recv = trace
                    .receptions()
                    .find(|(round, rx, _, _)| *round == t && rx.0 == u)
                    .map(|(_, _, from, msg)| (from, *msg));
                prop_assert_eq!(
                    engine_recv,
                    *exp,
                    "round {} node {}: engine vs reference mismatch",
                    t,
                    u
                );
            }
        }
    }
}
