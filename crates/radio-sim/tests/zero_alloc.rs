//! The hot-path allocation contract: in the stats-only steady state,
//! `Engine::step` performs **zero** heap allocations per round.
//!
//! A counting global allocator wraps the system allocator; after a
//! warmup (which sizes the engine's reusable scratch buffers) and an
//! explicit stats-capacity reservation, a long run of rounds must not
//! allocate at all. See docs/perf.md for the methodology.

use radio_sim::engine::{Configuration, Engine};
use radio_sim::environment::NullEnvironment;
use radio_sim::process::{Action, Context, Process};
use radio_sim::scheduler::AllExtraEdges;
use radio_sim::topology::{random_geometric, RggParams};
use radio_sim::trace::RecordingPolicy;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation that grows the heap (alloc, alloc_zeroed,
/// realloc) — but only on the thread that armed the counter, so
/// concurrent libtest-harness threads (timers, monitors) cannot
/// pollute the measured window. Deallocation is free and uncounted.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Whether allocations on this thread count. Const-initialized so
    /// reading it never itself allocates (no lazy TLS registration for
    /// droppable state).
    static ARMED: Cell<bool> = const { Cell::new(false) };
}

fn record() {
    if ARMED.try_with(Cell::get).unwrap_or(false) {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        record();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        record();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        record();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// A contention-heavy process with a `Copy` message: transmits its round
/// number with probability 1/4.
struct Chatter;

impl Process for Chatter {
    type Msg = u64;
    type Input = ();
    type Output = ();

    fn on_input(&mut self, _i: (), _ctx: &mut Context<'_>) {}

    fn transmit(&mut self, ctx: &mut Context<'_>) -> Action<u64> {
        use rand::Rng;
        if ctx.rng.gen_bool(0.25) {
            Action::Transmit(ctx.round)
        } else {
            Action::Receive
        }
    }

    fn on_receive(&mut self, _m: Option<u64>, _ctx: &mut Context<'_>) {}

    fn take_outputs(&mut self) -> Vec<()> {
        Vec::new()
    }
}

#[test]
fn stats_only_steady_state_allocates_nothing() {
    const MEASURED_ROUNDS: u64 = 1_000;
    let topo = random_geometric(RggParams {
        n: 64,
        side: 3.0,
        r: 2.0,
        grey_reliable_p: 0.1,
        grey_unreliable_p: 0.8,
        seed: 5,
    });
    let procs: Vec<Chatter> = (0..topo.graph.len()).map(|_| Chatter).collect();
    let config = Configuration::new(topo.graph.clone(), Box::new(AllExtraEdges))
        .with_recording(RecordingPolicy::stats_only());
    let mut engine = Engine::new(config, procs, Box::new(NullEnvironment), 42);

    // Warmup: scratch buffers reach their steady sizes.
    engine.run(16);
    // The only per-round append is the aggregate RoundStats record;
    // reserve its capacity so amortized Vec growth cannot fire inside
    // the measured window.
    engine.reserve_rounds(MEASURED_ROUNDS);

    ARMED.with(|a| a.set(true));
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    engine.run(MEASURED_ROUNDS);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    ARMED.with(|a| a.set(false));
    assert_eq!(
        after - before,
        0,
        "Engine::step allocated {} time(s) over {MEASURED_ROUNDS} rounds",
        after - before
    );
    // The run did real work: stats were recorded every round.
    assert_eq!(engine.trace().round_stats.len() as u64, 16 + MEASURED_ROUNDS);
    let totals = engine.trace().total_stats();
    assert!(totals.transmitters > 0 && totals.deliveries > 0);
}

#[test]
fn instrumented_steady_state_allocates_nothing() {
    // Same contract with telemetry enabled: the metrics core is all
    // fixed slots (counters, the 2048-bucket histogram, per-shard busy
    // slots sized at construction), so phase timing and counter
    // recording must add zero allocations per round.
    const MEASURED_ROUNDS: u64 = 1_000;
    let topo = random_geometric(RggParams {
        n: 64,
        side: 3.0,
        r: 2.0,
        grey_reliable_p: 0.1,
        grey_unreliable_p: 0.8,
        seed: 5,
    });
    let procs: Vec<Chatter> = (0..topo.graph.len()).map(|_| Chatter).collect();
    let config = Configuration::new(topo.graph.clone(), Box::new(AllExtraEdges))
        .with_recording(RecordingPolicy::stats_only())
        .with_telemetry(true);
    let mut engine = Engine::new(config, procs, Box::new(NullEnvironment), 42);

    engine.run(16);
    engine.reserve_rounds(MEASURED_ROUNDS);

    ARMED.with(|a| a.set(true));
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    engine.run(MEASURED_ROUNDS);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    ARMED.with(|a| a.set(false));
    assert_eq!(
        after - before,
        0,
        "instrumented Engine::step allocated {} time(s) over {MEASURED_ROUNDS} rounds",
        after - before
    );
    let telem = engine.telemetry().expect("telemetry enabled");
    assert_eq!(telem.rounds, 16 + MEASURED_ROUNDS);
    assert_eq!(telem.round_ns.count(), telem.rounds);
    assert!(telem.busy_ns() > 0 && telem.deliveries > 0);
    // Telemetry observed the same execution the trace recorded.
    let totals = engine.trace().total_stats();
    assert_eq!(telem.deliveries, totals.deliveries as u64);
    assert_eq!(telem.transmissions, totals.transmitters as u64);
}
