//! # seed-agreement: the `Seed(δ, ε)` specification and `SeedAlg`
//!
//! Section 3 of Lynch & Newport's local broadcast paper introduces *seed
//! agreement*: a loose coordination primitive in which every node
//! generates a random seed and eventually **commits** to a seed proposed
//! by some nearby node (possibly its own), such that not too many distinct
//! seeds are committed in any neighborhood. Shared seeds later let nodes
//! permute broadcast probability schedules in lockstep, regaining
//! independence from the oblivious link scheduler — the paper's key idea
//! for taming unreliable links.
//!
//! This crate provides:
//!
//! * [`seed`] — the seed domain `S = {0,1}^κ`: bit strings with an
//!   explicit consumption cursor (the paper's "consumes new bits from its
//!   seed").
//! * [`config`] — the algorithm's parameters and the constants ladder of
//!   Appendix B.1, with practical calibrations (see DESIGN.md §3 on why
//!   the paper's literal constants are unusable).
//! * [`alg`] — [`SeedProcess`](alg::SeedProcess), the `SeedAlg(ε₁)`
//!   algorithm as a [`radio_sim::process::Process`].
//! * [`spec`] — the four conditions of the `Seed(δ, ε)` specification as
//!   checkable predicates over execution traces: well-formedness and
//!   consistency (deterministic, must hold in *every* execution),
//!   agreement (probabilistic, per-vertex), and independence (statistical
//!   helpers; guaranteed by construction in this implementation).
//! * [`goodness`] — instrumentation for the Appendix B analysis: tracks
//!   per-region cumulative leader-election probability `P_{x,h}` and the
//!   "region of goodness" whose controlled contraction replaces the
//!   union bound the paper's locality goal forbids.
//!
//! ## Example
//!
//! ```
//! use radio_sim::prelude::*;
//! use seed_agreement::{alg::SeedProcess, config::SeedConfig, spec};
//!
//! let topo = topology::line(6, 0.9, 2.0);
//! let cfg = SeedConfig::practical(0.125, 64);
//! let total = cfg.total_rounds(topo.graph.delta());
//! let procs: Vec<SeedProcess> = (0..6).map(|_| SeedProcess::new(cfg.clone())).collect();
//! let mut engine = Engine::new(
//!     topo.configuration(Box::new(scheduler::AllExtraEdges)),
//!     procs,
//!     Box::new(NullEnvironment),
//!     42,
//! );
//! engine.run(total);
//! let trace = engine.into_trace();
//! spec::check_well_formedness(&trace).unwrap();
//! spec::check_consistency(&trace).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alg;
pub mod config;
pub mod goodness;
pub mod seed;
pub mod spec;

pub use alg::{SeedMsg, SeedProcess};
pub use config::SeedConfig;
pub use seed::{Seed, SeedCursor};
pub use spec::Decide;

/// Trace type produced by running `SeedAlg` under the engine.
pub type SeedTrace = radio_sim::trace::Trace<(), spec::Decide, alg::SeedMsg>;
