//! The `Seed(δ, ε)` specification (Section 3.1) as checkable predicates.
//!
//! The specification has four conditions over the `decide(j, s)ᵤ` outputs:
//!
//! 1. **Well-formedness** — every vertex decides exactly once
//!    (deterministic: must hold in *every* execution).
//! 2. **Consistency** — decisions naming the same owner carry the same
//!    seed (deterministic).
//! 3. **Agreement** — for each vertex `u`, with probability ≥ 1 − ε at
//!    most δ distinct owners appear among the decisions in
//!    `N_{G'}(u) ∪ {u}` (probabilistic, stated *per vertex* — the paper's
//!    locality move).
//! 4. **Independence** — conditioned on the owner mapping, the seed
//!    mapping is distributed as if every owner drew uniformly from `S`
//!    (probabilistic; guaranteed by construction here, and checkable
//!    statistically across trials).
//!
//! Deterministic conditions return `Result`; probabilistic ones return
//! counts/indicators that Monte-Carlo harnesses aggregate across trials.

use crate::alg::SeedMsg;
use crate::seed::Seed;
use radio_sim::graph::{DualGraph, NodeId};
use radio_sim::process::ProcId;
use radio_sim::trace::Trace;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A `decide(owner, seed)` output: the node commits to `seed` proposed by
/// the node with id `owner`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Decide {
    /// The seed owner's process id.
    pub owner: ProcId,
    /// The committed seed.
    pub seed: Seed,
}

/// Violations of the deterministic `Seed` conditions.
#[derive(Debug, Clone, PartialEq)]
pub enum SeedViolation {
    /// A vertex never decided.
    MissingDecision(NodeId),
    /// A vertex decided more than once.
    MultipleDecisions {
        /// The offending vertex.
        node: NodeId,
        /// How many decide outputs it generated.
        count: usize,
    },
    /// Two decisions named the same owner with different seeds.
    InconsistentSeeds {
        /// The owner appearing with two different seeds.
        owner: ProcId,
    },
}

impl fmt::Display for SeedViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeedViolation::MissingDecision(v) => write!(f, "vertex {v} never decided"),
            SeedViolation::MultipleDecisions { node, count } => {
                write!(f, "vertex {node} decided {count} times")
            }
            SeedViolation::InconsistentSeeds { owner } => {
                write!(f, "owner {owner} appears with inconsistent seeds")
            }
        }
    }
}

impl std::error::Error for SeedViolation {}

/// Trace alias used by this module.
pub type SeedTrace = Trace<(), Decide, SeedMsg>;

/// Collects the (unique) decision of every vertex.
///
/// # Errors
///
/// Returns a well-formedness violation if any vertex decided zero or
/// multiple times.
pub fn decisions(trace: &SeedTrace) -> Result<Vec<Decide>, SeedViolation> {
    let mut per_vertex: Vec<Option<Decide>> = vec![None; trace.n];
    for (_, v, d) in trace.outputs() {
        if per_vertex[v.0].is_some() {
            return Err(SeedViolation::MultipleDecisions { node: v, count: 2 });
        }
        per_vertex[v.0] = Some(d.clone());
    }
    per_vertex
        .into_iter()
        .enumerate()
        .map(|(v, d)| d.ok_or(SeedViolation::MissingDecision(NodeId(v))))
        .collect()
}

/// Condition 1 (Well-formedness): exactly one `decide` per vertex.
///
/// # Errors
///
/// Returns the first violation found.
pub fn check_well_formedness(trace: &SeedTrace) -> Result<(), SeedViolation> {
    let mut counts = vec![0usize; trace.n];
    for (_, v, _) in trace.outputs() {
        counts[v.0] += 1;
    }
    for (v, &c) in counts.iter().enumerate() {
        match c {
            1 => {}
            0 => return Err(SeedViolation::MissingDecision(NodeId(v))),
            _ => {
                return Err(SeedViolation::MultipleDecisions {
                    node: NodeId(v),
                    count: c,
                })
            }
        }
    }
    Ok(())
}

/// Condition 2 (Consistency): equal owners imply equal seeds.
///
/// # Errors
///
/// Returns the first owner observed with two distinct seeds.
pub fn check_consistency(trace: &SeedTrace) -> Result<(), SeedViolation> {
    let mut seen: BTreeMap<ProcId, &Seed> = BTreeMap::new();
    for (_, _, d) in trace.outputs() {
        match seen.get(&d.owner) {
            Some(s) if **s != d.seed => {
                return Err(SeedViolation::InconsistentSeeds { owner: d.owner })
            }
            Some(_) => {}
            None => {
                seen.insert(d.owner, &d.seed);
            }
        }
    }
    Ok(())
}

/// For each vertex `u`, the number of distinct owners appearing in
/// decisions within `N_{G'}(u) ∪ {u}` — the quantity Condition 3 bounds
/// by δ.
///
/// # Errors
///
/// Propagates well-formedness violations (a vertex without a decision).
pub fn owners_per_neighborhood(
    trace: &SeedTrace,
    graph: &DualGraph,
) -> Result<Vec<usize>, SeedViolation> {
    let decided = decisions(trace)?;
    let mut out = Vec::with_capacity(trace.n);
    for u in graph.vertices() {
        let mut owners: BTreeSet<ProcId> = BTreeSet::new();
        owners.insert(decided[u.0].owner);
        for v in graph.all_neighbors(u) {
            owners.insert(decided[v.0].owner);
        }
        out.push(owners.len());
    }
    Ok(out)
}

/// Condition 3 (Agreement) indicator: the number of vertices `u` whose
/// neighborhood carries more than `delta_bound` distinct owners. A
/// Monte-Carlo harness divides by trials to estimate the per-vertex error
/// probability ε.
///
/// # Errors
///
/// Propagates well-formedness violations.
pub fn agreement_violations(
    trace: &SeedTrace,
    graph: &DualGraph,
    delta_bound: usize,
) -> Result<usize, SeedViolation> {
    Ok(owners_per_neighborhood(trace, graph)?
        .into_iter()
        .filter(|&k| k > delta_bound)
        .count())
}

/// Condition 4 (Independence) statistical helper: per-bit-position
/// frequency of ones among the given seeds. For uniform independent
/// seeds each frequency concentrates around 1/2.
pub fn bit_balance(seeds: &[&Seed]) -> Vec<f64> {
    if seeds.is_empty() {
        return Vec::new();
    }
    let len = seeds.iter().map(|s| s.len()).min().unwrap_or(0);
    (0..len)
        .map(|i| {
            let ones = seeds.iter().filter(|s| s.bit(i)).count();
            ones as f64 / seeds.len() as f64
        })
        .collect()
}

/// The largest deviation of [`bit_balance`] from 1/2 — a scalar summary
/// for uniformity assertions.
pub fn max_bit_bias(seeds: &[&Seed]) -> f64 {
    bit_balance(seeds)
        .into_iter()
        .map(|f| (f - 0.5).abs())
        .fold(0.0, f64::max)
}

/// Checks that each decision's seed matches its owner's decision when the
/// owner decided for itself in this trace — a cross-check tying
/// Consistency to the algorithm's "adopt the owner's initial seed"
/// behavior.
///
/// # Errors
///
/// Propagates well-formedness violations; reports inconsistency as
/// [`SeedViolation::InconsistentSeeds`].
pub fn check_owner_seed_fidelity(trace: &SeedTrace) -> Result<(), SeedViolation> {
    let decided = decisions(trace)?;
    // Map each owner id to the seed that owner committed for itself.
    let mut own: BTreeMap<ProcId, &Seed> = BTreeMap::new();
    for (v, d) in decided.iter().enumerate() {
        if d.owner == trace.proc_id(NodeId(v)) {
            own.insert(d.owner, &d.seed);
        }
    }
    for d in &decided {
        if let Some(owner_seed) = own.get(&d.owner) {
            if **owner_seed != d.seed {
                return Err(SeedViolation::InconsistentSeeds { owner: d.owner });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_sim::trace::{Event, EventKind};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn seed_of(word: u64) -> Seed {
        Seed::from_words(vec![word], 16)
    }

    fn trace_with(decides: Vec<(usize, Decide)>, n: usize) -> SeedTrace {
        let mut t = Trace::new(n, (0..n as u64).collect());
        t.rounds = 10;
        for (v, d) in decides {
            t.events.push(Event {
                round: 1,
                node: NodeId(v),
                kind: EventKind::Output(d),
            });
        }
        t
    }

    #[test]
    fn well_formedness_accepts_one_decide_each() {
        let t = trace_with(
            vec![
                (0, Decide { owner: 0, seed: seed_of(1) }),
                (1, Decide { owner: 0, seed: seed_of(1) }),
            ],
            2,
        );
        check_well_formedness(&t).unwrap();
    }

    #[test]
    fn well_formedness_rejects_missing() {
        let t = trace_with(vec![(0, Decide { owner: 0, seed: seed_of(1) })], 2);
        assert_eq!(
            check_well_formedness(&t),
            Err(SeedViolation::MissingDecision(NodeId(1)))
        );
    }

    #[test]
    fn well_formedness_rejects_double() {
        let t = trace_with(
            vec![
                (0, Decide { owner: 0, seed: seed_of(1) }),
                (0, Decide { owner: 0, seed: seed_of(1) }),
                (1, Decide { owner: 0, seed: seed_of(1) }),
            ],
            2,
        );
        assert!(matches!(
            check_well_formedness(&t),
            Err(SeedViolation::MultipleDecisions { .. })
        ));
    }

    #[test]
    fn consistency_rejects_owner_with_two_seeds() {
        let t = trace_with(
            vec![
                (0, Decide { owner: 7, seed: seed_of(1) }),
                (1, Decide { owner: 7, seed: seed_of(2) }),
            ],
            2,
        );
        assert_eq!(
            check_consistency(&t),
            Err(SeedViolation::InconsistentSeeds { owner: 7 })
        );
    }

    #[test]
    fn owners_per_neighborhood_counts_distinct() {
        // Path 0-1-2; 0 and 1 share owner 9, 2 has owner 2.
        let g = DualGraph::reliable_only(3, [(0, 1), (1, 2)]).unwrap();
        let t = trace_with(
            vec![
                (0, Decide { owner: 9, seed: seed_of(3) }),
                (1, Decide { owner: 9, seed: seed_of(3) }),
                (2, Decide { owner: 2, seed: seed_of(4) }),
            ],
            3,
        );
        let counts = owners_per_neighborhood(&t, &g).unwrap();
        assert_eq!(counts, vec![1, 2, 2]);
        assert_eq!(agreement_violations(&t, &g, 1).unwrap(), 2);
        assert_eq!(agreement_violations(&t, &g, 2).unwrap(), 0);
    }

    #[test]
    fn bit_balance_of_uniform_seeds_is_near_half() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let seeds: Vec<Seed> = (0..2000).map(|_| Seed::random(&mut rng, 32)).collect();
        let refs: Vec<&Seed> = seeds.iter().collect();
        assert!(max_bit_bias(&refs) < 0.05);
    }

    #[test]
    fn bit_balance_detects_constant_seeds() {
        let seeds: Vec<Seed> = (0..100).map(|_| seed_of(0)).collect();
        let refs: Vec<&Seed> = seeds.iter().collect();
        assert!((max_bit_bias(&refs) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn owner_seed_fidelity_catches_forgery() {
        // Vertex 0 (id 0) decided own seed A; vertex 1 claims owner 0 with
        // seed B.
        let t = trace_with(
            vec![
                (0, Decide { owner: 0, seed: seed_of(10) }),
                (1, Decide { owner: 0, seed: seed_of(11) }),
            ],
            2,
        );
        assert!(check_owner_seed_fidelity(&t).is_err());
        let ok = trace_with(
            vec![
                (0, Decide { owner: 0, seed: seed_of(10) }),
                (1, Decide { owner: 0, seed: seed_of(10) }),
            ],
            2,
        );
        check_owner_seed_fidelity(&ok).unwrap();
    }
}
