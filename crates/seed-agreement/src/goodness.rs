//! Instrumentation for the Appendix B "region of goodness" analysis.
//!
//! The paper's locality goal forbids union-bounding over all `n` vertices,
//! so the SeedAlg proof instead tracks, per plane region `x` and phase
//! `h`, the *cumulative leader-election probability*
//! `P_{x,h} = a_{x,h} · p_h` (active nodes in the region times the phase's
//! election probability), and calls the region **good** when
//! `P_{x,h} ≤ c₂ log(1/ε₁)`. Goodness starts everywhere (Lemma B.2:
//! `P_{x,1} ≤ 1`), persists per phase with probability `1 − ε₄`
//! (Lemma B.8), and the *radius* of the guaranteed-good region around a
//! target contracts by one region-graph hop per phase (Lemma B.10) — slow
//! enough for the target to finish.
//!
//! This module recomputes those quantities from per-process
//! [`PhaseRecord`](crate::alg::PhaseRecord) histories and the embedding,
//! making the proof's central objects measurable (experiment E10).

use crate::alg::SeedProcess;
use crate::config::SeedConfig;
use radio_sim::geometry::{RegionId, RegionPartition};
use radio_sim::topology::Topology;
use serde::Serialize;
use std::collections::BTreeMap;

/// Per-region, per-phase measurements.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RegionPhase {
    /// The phase (1-based).
    pub phase: u32,
    /// Active nodes in the region at the start of the phase (`a_{x,h}`).
    pub active: usize,
    /// The cumulative election probability `P_{x,h} = a_{x,h} · p_h`.
    pub p_sum: f64,
    /// Whether the region is *good*: `P_{x,h} ≤ c₂ log₂(1/ε₁)`.
    pub good: bool,
    /// Leaders elected in the region this phase (`ℓ_{x,h}`).
    pub leaders: usize,
}

/// The full goodness table of one execution.
#[derive(Debug, Clone, Serialize)]
pub struct GoodnessReport {
    /// Number of phases the algorithm ran.
    pub phases: u32,
    /// The goodness threshold `c₂ log₂(1/ε₁)`.
    pub threshold: f64,
    /// Per-region tables, keyed by region id, each with one entry per
    /// phase.
    pub regions: BTreeMap<RegionId, Vec<RegionPhase>>,
}

impl GoodnessReport {
    /// Lemma B.2's assertion: every (occupied) region is good in phase 1.
    pub fn all_good_in_phase_one(&self) -> bool {
        self.regions
            .values()
            .all(|rows| rows.first().is_none_or(|r| r.good))
    }

    /// Fraction of (region, phase) cells that are good — the empirical
    /// persistence of goodness (Lemmas B.8/B.10 predict it stays near 1).
    pub fn good_fraction(&self) -> f64 {
        let mut total = 0usize;
        let mut good = 0usize;
        for rows in self.regions.values() {
            for r in rows {
                total += 1;
                good += usize::from(r.good);
            }
        }
        if total == 0 {
            1.0
        } else {
            good as f64 / total as f64
        }
    }

    /// The maximum number of leaders elected in any single region over the
    /// whole execution (`Σ_h ℓ_{x,h}` maximized over `x`); Lemma B.4 and
    /// Theorem B.16 bound the analogous quantity by `O(log(1/ε₁))` per
    /// region when transmissions succeed.
    pub fn max_total_leaders_per_region(&self) -> usize {
        self.regions
            .values()
            .map(|rows| rows.iter().map(|r| r.leaders).sum())
            .max()
            .unwrap_or(0)
    }

    /// The maximum `ℓ_{x,h}` over all regions and phases (Lemma B.6's
    /// per-phase bound).
    pub fn max_leaders_per_phase(&self) -> usize {
        self.regions
            .values()
            .flat_map(|rows| rows.iter().map(|r| r.leaders))
            .max()
            .unwrap_or(0)
    }

    /// Whether the (occupied) region `x` is good at (1-based) `phase`.
    /// Unoccupied regions are vacuously good (`P_{x,h} = 0`).
    pub fn is_good(&self, x: RegionId, phase: u32) -> bool {
        self.regions
            .get(&x)
            .and_then(|rows| rows.get((phase - 1) as usize))
            .is_none_or(|r| r.good)
    }

    /// Lemma B.10's central object, measured: for each phase, the largest
    /// hop radius `h ≤ max_h` such that **every** occupied region within
    /// `h` hops of `center` (in the region graph `G_{R,r}`) is good, or
    /// `None` if `center` itself is bad.
    ///
    /// The proof guarantees (w.h.p.) that this radius contracts by at
    /// most **one hop per phase** — slow enough for the center to finish
    /// its `log Δ` phases inside the good region. The returned series
    /// makes that contraction rate observable.
    pub fn good_radius_per_phase(
        &self,
        partition: &RegionPartition,
        center: RegionId,
        max_h: u32,
    ) -> Vec<Option<u32>> {
        (1..=self.phases)
            .map(|phase| {
                if !self.is_good(center, phase) {
                    return None;
                }
                let mut radius = 0;
                for h in 1..=max_h {
                    let all_good = partition
                        .regions_within_hops(center, h)
                        .into_iter()
                        .all(|x| self.is_good(x, phase));
                    if all_good {
                        radius = h;
                    } else {
                        break;
                    }
                }
                Some(radius)
            })
            .collect()
    }
}

/// Builds the goodness table for one completed SeedAlg execution.
///
/// `c2` is the goodness constant (the paper requires `c₂ ≥ 4`; the
/// practical calibration keeps that).
///
/// # Panics
///
/// Panics if `procs` does not match the topology's vertex count.
pub fn analyze(
    topo: &Topology,
    procs: &[SeedProcess],
    cfg: &SeedConfig,
    c2: f64,
) -> GoodnessReport {
    assert_eq!(procs.len(), topo.graph.len(), "one process per vertex");
    let partition = RegionPartition::new(topo.r);
    let threshold = c2 * cfg.log_inv_eps();
    let phases = procs
        .iter()
        .map(|p| p.history().len() as u32)
        .max()
        .unwrap_or(0);

    // Vertex -> region.
    let vertex_region: Vec<RegionId> = (0..topo.graph.len())
        .map(|v| partition.region_of(topo.embedding.position(v)))
        .collect();

    let mut regions: BTreeMap<RegionId, Vec<RegionPhase>> = BTreeMap::new();
    for region in vertex_region.iter().copied() {
        regions.entry(region).or_insert_with(|| {
            (1..=phases)
                .map(|phase| RegionPhase {
                    phase,
                    active: 0,
                    p_sum: 0.0,
                    good: true,
                    leaders: 0,
                })
                .collect()
        });
    }

    for (v, proc) in procs.iter().enumerate() {
        let region = vertex_region[v];
        let rows = regions.get_mut(&region).expect("region pre-inserted");
        for rec in proc.history() {
            let row = &mut rows[(rec.phase - 1) as usize];
            if rec.active_at_start {
                row.active += 1;
            }
            if rec.became_leader {
                row.leaders += 1;
            }
        }
    }

    let total_phases = phases.max(1);
    for rows in regions.values_mut() {
        for row in rows.iter_mut() {
            let p_h = cfg.leader_prob(row.phase, total_phases);
            row.p_sum = row.active as f64 * p_h;
            row.good = row.p_sum <= threshold;
        }
    }

    GoodnessReport {
        phases,
        threshold,
        regions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_sim::environment::NullEnvironment;
    use radio_sim::prelude::*;
    use radio_sim::scheduler::AllExtraEdges;

    fn run_and_analyze(topo: &Topology, cfg: &SeedConfig, seed: u64) -> GoodnessReport {
        let n = topo.graph.len();
        let total = cfg.total_rounds(topo.graph.delta());
        let procs: Vec<SeedProcess> = (0..n).map(|_| SeedProcess::new(cfg.clone())).collect();
        let mut engine = Engine::new(
            topo.configuration(Box::new(AllExtraEdges)),
            procs,
            Box::new(NullEnvironment),
            seed,
        );
        engine.run(total);
        // Engine has no process extraction by value; analyze through the
        // reference accessor.
        analyze(topo, engine.processes(), cfg, 4.0)
    }

    #[test]
    fn phase_one_is_always_good() {
        // Lemma B.2: P_{x,1} = a_{x,1}/Δ ≤ 1 ≤ threshold.
        let topo = radio_sim::topology::clique(16, 1.0);
        let cfg = SeedConfig::practical(0.25, 32);
        for seed in 0..5 {
            let report = run_and_analyze(&topo, &cfg, seed);
            assert!(report.all_good_in_phase_one());
        }
    }

    #[test]
    fn report_covers_all_occupied_regions() {
        let topo = radio_sim::topology::grid(3, 3, 1.0, 2.0);
        let cfg = SeedConfig::practical(0.25, 32);
        let report = run_and_analyze(&topo, &cfg, 7);
        let partition = RegionPartition::new(topo.r);
        let occupied: std::collections::BTreeSet<RegionId> = (0..topo.graph.len())
            .map(|v| partition.region_of(topo.embedding.position(v)))
            .collect();
        assert_eq!(
            report.regions.keys().copied().collect::<Vec<_>>(),
            occupied.into_iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn leader_counts_are_bounded_by_region_population() {
        let topo = radio_sim::topology::clique(8, 1.0);
        let cfg = SeedConfig::practical(0.25, 32);
        let report = run_and_analyze(&topo, &cfg, 3);
        assert!(report.max_leaders_per_phase() <= 8);
        assert!(report.max_total_leaders_per_region() <= 8);
    }

    #[test]
    fn good_radius_is_maximal_when_everything_is_good() {
        let topo = radio_sim::topology::grid(4, 4, 0.9, 2.0);
        let cfg = SeedConfig::practical(0.25, 32);
        let report = run_and_analyze(&topo, &cfg, 9);
        if report.good_fraction() == 1.0 {
            let partition = RegionPartition::new(topo.r);
            let center = partition.region_of(topo.embedding.position(5));
            let radii = report.good_radius_per_phase(&partition, center, 3);
            assert_eq!(radii.len() as u32, report.phases);
            assert!(radii.iter().all(|r| *r == Some(3)));
        }
    }

    #[test]
    fn good_radius_contracts_around_bad_regions() {
        // Synthetic report: center good, a region two hops away bad in
        // phase 2.
        use radio_sim::geometry::RegionId;
        let partition = RegionPartition::new(1.0);
        let center = RegionId { ix: 0, iy: 0 };
        let far = RegionId { ix: 6, iy: 0 }; // two hops for r = 1
        let mk_rows = |goods: Vec<bool>| {
            goods
                .into_iter()
                .enumerate()
                .map(|(i, good)| RegionPhase {
                    phase: i as u32 + 1,
                    active: 0,
                    p_sum: 0.0,
                    good,
                    leaders: 0,
                })
                .collect::<Vec<_>>()
        };
        let mut regions = std::collections::BTreeMap::new();
        regions.insert(center, mk_rows(vec![true, true]));
        regions.insert(far, mk_rows(vec![true, false]));
        let report = GoodnessReport {
            phases: 2,
            threshold: 1.0,
            regions,
        };
        assert_eq!(partition.region_distance(center, far), 2.5);
        let radii = report.good_radius_per_phase(&partition, center, 4);
        // Phase 1: everything good -> full radius. Phase 2: the bad
        // region caps the radius below its hop distance.
        assert_eq!(radii[0], Some(4));
        let phase2 = radii[1].expect("center still good");
        assert!(phase2 < 4, "radius must contract, got {phase2}");
    }

    #[test]
    fn good_fraction_is_high_on_small_networks() {
        let topo = radio_sim::topology::grid(4, 4, 0.9, 2.0);
        let cfg = SeedConfig::practical(0.25, 32);
        let report = run_and_analyze(&topo, &cfg, 5);
        assert!(report.good_fraction() > 0.9, "{}", report.good_fraction());
    }
}
