//! `SeedAlg` parameters and the Appendix B.1 constants ladder.
//!
//! The algorithm takes a single error parameter `ε₁ ∈ (0, 1/4]` and runs
//! `log Δ` phases of `c₄ log²(1/ε₁)` rounds each, with leaders
//! broadcasting at probability `1/log(1/ε₁)`.
//!
//! ## On the constants
//!
//! The paper's sufficient constants are astronomically conservative —
//! e.g. `c₄ ≥ 2·4^{c_r c₃}` with `c_r = c₁ r² ≥ 121`, which exceeds
//! `10^{70}` already at `r = 1`. They exist to make the Chernoff ladder in
//! Appendix B close for **every** configuration; no simulation could run
//! them. We therefore expose the constants as data: the
//! [`SeedConfig::practical`] calibration keeps the *functional form* of
//! every quantity (phases = `log Δ`, phase length ∝ `log²(1/ε₁)`,
//! transmit probability = `1/log(1/ε₁)`, leader probabilities
//! `2^{-(log Δ − h + 1)}`) while choosing constants small enough to
//! execute; EXPERIMENTS.md records the calibration and verifies the
//! *scaling shape* the theorem asserts, which does not depend on the
//! constant.

use serde::{Deserialize, Serialize};

/// Parameters of `SeedAlg(ε₁)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeedConfig {
    /// The error parameter `ε₁ ∈ (0, 1/4]`.
    pub epsilon1: f64,
    /// Seed length `κ` in bits (the seed domain is `S = {0,1}^κ`).
    pub seed_bits: usize,
    /// Phase length constant: a phase lasts
    /// `ceil(c4 · log₂²(1/ε₁))` rounds.
    pub c4: f64,
}

impl SeedConfig {
    /// A practically executable calibration (`c₄ = 4`), keeping the
    /// paper's functional forms.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < ε₁ ≤ 1/4` and `seed_bits > 0`.
    pub fn practical(epsilon1: f64, seed_bits: usize) -> Self {
        Self::with_c4(epsilon1, seed_bits, 4.0)
    }

    /// Full control over the phase-length constant.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < ε₁ ≤ 1/4`, `seed_bits > 0`, and `c4 > 0`.
    pub fn with_c4(epsilon1: f64, seed_bits: usize, c4: f64) -> Self {
        assert!(
            epsilon1 > 0.0 && epsilon1 <= 0.25,
            "SeedAlg requires 0 < ε₁ ≤ 1/4, got {epsilon1}"
        );
        assert!(seed_bits > 0, "seed domain must be non-trivial");
        assert!(c4 > 0.0, "phase length constant must be positive");
        SeedConfig {
            epsilon1,
            seed_bits,
            c4,
        }
    }

    /// `log₂(1/ε₁)`, the recurring size parameter (≥ 2 by the ε₁ bound).
    pub fn log_inv_eps(&self) -> f64 {
        (1.0 / self.epsilon1).log2()
    }

    /// Number of phases: `log₂ Δ̂` where `Δ̂` is `Δ` rounded up to a power
    /// of two (the paper assumes Δ is a power of two "for simplicity"),
    /// and at least 1 so degenerate graphs still run one election.
    pub fn phases(&self, delta: usize) -> u32 {
        let d = delta.max(2).next_power_of_two();
        d.trailing_zeros().max(1)
    }

    /// Rounds per phase: `ceil(c₄ · log₂²(1/ε₁))`.
    pub fn phase_len(&self) -> u64 {
        let l = self.log_inv_eps();
        (self.c4 * l * l).ceil() as u64
    }

    /// Total running time of the algorithm:
    /// `phases(Δ) · phase_len()` rounds — the `O(log Δ · log²(1/ε₁))` of
    /// Theorem 3.1.
    pub fn total_rounds(&self, delta: usize) -> u64 {
        u64::from(self.phases(delta)) * self.phase_len()
    }

    /// Leader-election probability at (1-based) phase `h` of
    /// `log Δ` total: `2^{-(log Δ − h + 1)}`, i.e. `1/Δ, 2/Δ, …, 1/2`.
    pub fn leader_prob(&self, phase: u32, phases: u32) -> f64 {
        debug_assert!(phase >= 1 && phase <= phases);
        2f64.powi(-((phases - phase + 1) as i32))
    }

    /// A leader's per-round broadcast probability, `1/log₂(1/ε₁) ≤ 1/2`.
    pub fn tx_prob(&self) -> f64 {
        1.0 / self.log_inv_eps()
    }

    /// The δ bound to check the Agreement condition against:
    /// `ceil(c_δ · r² · log₂(1/ε₁))`, the concrete form of Theorem 3.1's
    /// `O(r² log(1/ε₁))`. `c_δ` is a calibration constant recorded in
    /// EXPERIMENTS.md (the paper's own sufficient value is
    /// `6 c_r c₃ = O(r²)` with enormous constants).
    pub fn delta_bound(&self, r: f64, c_delta: f64) -> usize {
        (c_delta * r * r * self.log_inv_eps()).ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_round_up_to_power_of_two() {
        let cfg = SeedConfig::practical(0.25, 32);
        assert_eq!(cfg.phases(2), 1);
        assert_eq!(cfg.phases(4), 2);
        assert_eq!(cfg.phases(5), 3); // 5 -> 8 -> 3 phases
        assert_eq!(cfg.phases(8), 3);
        assert_eq!(cfg.phases(1), 1); // degenerate graphs still elect
    }

    #[test]
    fn phase_len_scales_with_log_sq() {
        let a = SeedConfig::practical(0.25, 32); // log = 2 -> 16 rounds
        let b = SeedConfig::practical(1.0 / 16.0, 32); // log = 4 -> 64
        assert_eq!(a.phase_len(), 16);
        assert_eq!(b.phase_len(), 64);
    }

    #[test]
    fn leader_probs_double_per_phase() {
        let cfg = SeedConfig::practical(0.25, 32);
        let phases = 3;
        assert!((cfg.leader_prob(1, phases) - 0.125).abs() < 1e-12);
        assert!((cfg.leader_prob(2, phases) - 0.25).abs() < 1e-12);
        assert!((cfg.leader_prob(3, phases) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tx_prob_at_most_half() {
        for eps in [0.25, 0.1, 0.01, 1e-4] {
            let cfg = SeedConfig::practical(eps, 32);
            assert!(cfg.tx_prob() <= 0.5 + 1e-12);
            assert!(cfg.tx_prob() > 0.0);
        }
    }

    #[test]
    fn total_rounds_formula() {
        let cfg = SeedConfig::practical(0.25, 32);
        assert_eq!(cfg.total_rounds(8), 3 * 16);
    }

    #[test]
    fn delta_bound_grows_with_r_and_eps() {
        let cfg = SeedConfig::practical(0.25, 32);
        assert!(cfg.delta_bound(2.0, 1.0) > cfg.delta_bound(1.0, 1.0));
        let tighter = SeedConfig::practical(0.01, 32);
        assert!(tighter.delta_bound(1.0, 1.0) > cfg.delta_bound(1.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "0 < ε₁ ≤ 1/4")]
    fn rejects_large_epsilon() {
        let _ = SeedConfig::practical(0.3, 32);
    }
}
