//! `SeedAlg(ε₁)`: aggressive local leader election with bounded damage.
//!
//! The algorithm (Section 3.2) runs `log Δ` phases of
//! `c₄ log²(1/ε₁)` rounds. An *active* node elects itself leader at the
//! start of phase `h` with probability `2^{-(log Δ − h + 1)}` — the
//! geometric ramp `1/Δ, 2/Δ, …, 1/2`. A leader immediately **decides** on
//! its own `(id, seed)` pair, broadcasts it at probability `1/log(1/ε₁)`
//! for the rest of the phase, and goes inactive. An active non-leader
//! listens; on first reception of some `(j, s)` it decides on that pair
//! and goes inactive. A node still active after the last phase decides on
//! its own pair by default.
//!
//! The `SeedProcess` counts rounds *locally* (not via `ctx.round`) so the
//! local broadcast layer can embed a fresh instance in each phase
//! preamble at arbitrary global offsets.

use crate::config::SeedConfig;
use crate::seed::Seed;
use crate::spec::Decide;
use radio_sim::process::{Action, Context, ProcId, Process};
use rand::Rng;

/// The message leaders broadcast: their id and initial seed.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SeedMsg {
    /// The seed owner's process id (`j` in `decide(j, s)`).
    pub owner: ProcId,
    /// The owner's initial seed.
    pub seed: Seed,
}

/// The node's protocol status (Section 3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Still contending: may become a leader or adopt a received seed.
    Active,
    /// Elected leader this phase: decided on own seed, broadcasting it.
    Leader,
    /// Done: decided (as leader, adopter, or by default).
    Inactive,
}

/// Record of one phase, kept for the Appendix B goodness instrumentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseRecord {
    /// 1-based phase number.
    pub phase: u32,
    /// Whether the node was active at the start of the phase.
    pub active_at_start: bool,
    /// Whether the node elected itself leader this phase.
    pub became_leader: bool,
}

/// The `SeedAlg(ε₁)` process.
#[derive(Debug)]
pub struct SeedProcess {
    cfg: SeedConfig,
    status: Status,
    /// Local round counter (1-based after the first transmit call).
    local_round: u64,
    phases: u32,
    phase_len: u64,
    my_id: ProcId,
    initial_seed: Option<Seed>,
    committed: Option<Decide>,
    outputs: Vec<Decide>,
    history: Vec<PhaseRecord>,
    initialized: bool,
    /// `phase_of(local_round)` computed by this round's `transmit` call;
    /// `on_receive` runs with the same `local_round` (the engine calls
    /// them in lockstep), so it reuses the cached value instead of
    /// re-dividing on the hot path.
    located: Option<(u32, u64)>,
}

impl SeedProcess {
    /// Creates a process ready to start at its first engine round.
    pub fn new(cfg: SeedConfig) -> Self {
        SeedProcess {
            cfg,
            status: Status::Active,
            local_round: 0,
            phases: 0,
            phase_len: 0,
            my_id: 0,
            initial_seed: None,
            committed: None,
            outputs: Vec::new(),
            history: Vec::new(),
            initialized: false,
            located: None,
        }
    }

    /// The algorithm's total running time for the degree bound it will
    /// learn from the engine context.
    pub fn total_rounds(cfg: &SeedConfig, delta: usize) -> u64 {
        cfg.total_rounds(delta)
    }

    /// The pair this node has committed to, if it has decided.
    pub fn committed(&self) -> Option<&Decide> {
        self.committed.as_ref()
    }

    /// Whether the protocol has completed all phases.
    pub fn is_done(&self) -> bool {
        self.initialized && self.local_round >= u64::from(self.phases) * self.phase_len
    }

    /// Whether this node's run is *settled*: decided and inactive, so
    /// every remaining round is a guaranteed no-op — it draws no
    /// randomness, never transmits, and ignores every reception. Hosts
    /// embedding the protocol (the `LBAlg` preamble) may skip driving a
    /// settled instance without changing the execution.
    pub fn is_settled(&self) -> bool {
        self.status == Status::Inactive
    }

    /// Per-phase activity records, for goodness instrumentation.
    pub fn history(&self) -> &[PhaseRecord] {
        &self.history
    }

    /// This node's initial seed (drawn at its first round).
    pub fn initial_seed(&self) -> Option<&Seed> {
        self.initial_seed.as_ref()
    }

    fn init(&mut self, ctx: &mut Context<'_>) {
        self.phases = self.cfg.phases(ctx.delta);
        self.phase_len = self.cfg.phase_len();
        self.my_id = ctx.id;
        self.initial_seed = Some(Seed::random(ctx.rng, self.cfg.seed_bits));
        self.initialized = true;
    }

    fn decide(&mut self, owner: ProcId, seed: Seed) {
        debug_assert!(self.committed.is_none(), "decide must fire exactly once");
        let d = Decide { owner, seed };
        self.committed = Some(d.clone());
        self.outputs.push(d);
    }

    fn decide_own(&mut self) {
        let seed = self
            .initial_seed
            .clone()
            .expect("initialized before deciding");
        let id = self.my_id;
        self.decide(id, seed);
    }

    /// 1-based phase of the local round, or `None` after completion.
    fn phase_of(&self, local_round: u64) -> Option<(u32, u64)> {
        if local_round == 0 || local_round > u64::from(self.phases) * self.phase_len {
            return None;
        }
        let idx = local_round - 1;
        let phase = (idx / self.phase_len) as u32 + 1;
        let pos = idx % self.phase_len;
        Some((phase, pos))
    }
}

impl Process for SeedProcess {
    type Msg = SeedMsg;
    type Input = ();
    type Output = Decide;

    fn on_input(&mut self, _input: (), _ctx: &mut Context<'_>) {}

    #[inline]
    fn transmit(&mut self, ctx: &mut Context<'_>) -> Action<SeedMsg> {
        if !self.initialized {
            self.init(ctx);
        }
        self.local_round += 1;
        // Advance the cached phase position incrementally — the local
        // round counter moves by exactly one per transmit call, so the
        // division in `phase_of` never needs to run on the hot path.
        self.located = match self.located {
            Some((ph, pos)) => {
                if pos + 1 < self.phase_len {
                    Some((ph, pos + 1))
                } else if ph < self.phases {
                    Some((ph + 1, 0))
                } else {
                    None
                }
            }
            None if self.local_round == 1 => Some((1, 0)),
            None => None,
        };
        debug_assert_eq!(self.located, self.phase_of(self.local_round));
        let Some((phase, pos)) = self.located else {
            return Action::Receive;
        };

        if pos == 0 {
            // Start of phase: leader election step.
            let active = self.status == Status::Active;
            let mut became_leader = false;
            if active {
                let p = self.cfg.leader_prob(phase, self.phases);
                if ctx.rng.gen_bool(p) {
                    self.status = Status::Leader;
                    self.decide_own();
                    became_leader = true;
                }
            }
            self.history.push(PhaseRecord {
                phase,
                active_at_start: active,
                became_leader,
            });
        }

        if self.status == Status::Leader
            && ctx.rng.gen_bool(self.cfg.tx_prob()) {
                let seed = self
                    .initial_seed
                    .clone()
                    .expect("leaders have drawn a seed");
                return Action::Transmit(SeedMsg {
                    owner: self.my_id,
                    seed,
                });
            }
        Action::Receive
    }

    #[inline]
    fn on_receive(&mut self, msg: Option<SeedMsg>, _ctx: &mut Context<'_>) {
        let Some((_phase, pos)) = self.located else {
            return;
        };
        if self.status == Status::Active {
            if let Some(m) = msg {
                self.decide(m.owner, m.seed);
                self.status = Status::Inactive;
            }
        }
        let last_round_of_phase = pos == self.phase_len - 1;
        if last_round_of_phase && self.status == Status::Leader {
            self.status = Status::Inactive;
        }
        let last_round_overall =
            self.local_round == u64::from(self.phases) * self.phase_len;
        if last_round_overall && self.status == Status::Active {
            // Completed all phases while active: default decision.
            self.decide_own();
            self.status = Status::Inactive;
        }
    }

    #[inline]
    fn has_outputs(&self) -> bool {
        !self.outputs.is_empty()
    }

    #[inline]
    fn take_outputs(&mut self) -> Vec<Decide> {
        std::mem::take(&mut self.outputs)
    }

    fn on_crash_restart(&mut self, _ctx: &mut Context<'_>) {
        // Volatile memory is lost: status, local round counter, the
        // drawn initial seed, any committed decision, and the phase
        // history. Only the static configuration survives; the process
        // re-initializes (drawing a fresh seed from its stream) at its
        // next callback, exactly as on first boot. A node that already
        // emitted `decide` may therefore decide again after the
        // restart — the well-formedness spec treats that as the
        // violation it is, which is precisely what makes crash-restart
        // a strictly harsher fault model than power-save churn.
        *self = SeedProcess::new(self.cfg.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_sim::environment::NullEnvironment;
    use radio_sim::prelude::*;
    use radio_sim::scheduler::AllExtraEdges;

    fn run_seed_alg(
        topo: &radio_sim::topology::Topology,
        cfg: &SeedConfig,
        master_seed: u64,
    ) -> crate::SeedTrace {
        let n = topo.graph.len();
        let total = cfg.total_rounds(topo.graph.delta());
        let procs: Vec<SeedProcess> = (0..n).map(|_| SeedProcess::new(cfg.clone())).collect();
        let mut engine = Engine::new(
            topo.configuration(Box::new(AllExtraEdges)),
            procs,
            Box::new(NullEnvironment),
            master_seed,
        );
        engine.run(total);
        engine.into_trace()
    }

    #[test]
    fn every_node_decides_exactly_once() {
        let topo = radio_sim::topology::line(8, 0.9, 2.0);
        let cfg = SeedConfig::practical(0.25, 32);
        for seed in 0..5 {
            let trace = run_seed_alg(&topo, &cfg, seed);
            let mut counts = vec![0usize; 8];
            for (_, v, _) in trace.outputs() {
                counts[v.0] += 1;
            }
            assert!(counts.iter().all(|&c| c == 1), "counts = {counts:?}");
        }
    }

    #[test]
    fn decisions_happen_within_time_bound() {
        let topo = radio_sim::topology::clique(8, 1.0);
        let cfg = SeedConfig::practical(0.25, 32);
        let total = cfg.total_rounds(topo.graph.delta());
        let trace = run_seed_alg(&topo, &cfg, 3);
        for (round, _, _) in trace.outputs() {
            assert!(round <= total);
        }
    }

    #[test]
    fn isolated_node_decides_own_seed() {
        // A single node can never hear anyone: it must default to itself.
        let topo = radio_sim::topology::line(1, 1.0, 1.0);
        let cfg = SeedConfig::practical(0.25, 32);
        let trace = run_seed_alg(&topo, &cfg, 1);
        let outs: Vec<_> = trace.outputs().collect();
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].2.owner, trace.proc_id(NodeId(0)));
    }

    #[test]
    fn committed_matches_output() {
        let topo = radio_sim::topology::clique(4, 1.0);
        let cfg = SeedConfig::practical(0.25, 32);
        let total = cfg.total_rounds(topo.graph.delta());
        let procs: Vec<SeedProcess> = (0..4).map(|_| SeedProcess::new(cfg.clone())).collect();
        let mut engine = Engine::new(
            topo.configuration(Box::new(AllExtraEdges)),
            procs,
            Box::new(NullEnvironment),
            9,
        );
        engine.run(total);
        for (v, p) in engine.processes().iter().enumerate() {
            assert!(p.is_done());
            let committed = p.committed().expect("all nodes decided");
            let in_trace = engine
                .trace()
                .outputs()
                .find(|(_, node, _)| node.0 == v)
                .map(|(_, _, d)| d.clone())
                .expect("decide in trace");
            assert_eq!(*committed, in_trace);
        }
    }

    #[test]
    fn history_covers_phases_until_inactive() {
        let topo = radio_sim::topology::clique(8, 1.0);
        let cfg = SeedConfig::practical(0.25, 32);
        let total = cfg.total_rounds(topo.graph.delta());
        let procs: Vec<SeedProcess> = (0..8).map(|_| SeedProcess::new(cfg.clone())).collect();
        let mut engine = Engine::new(
            topo.configuration(Box::new(AllExtraEdges)),
            procs,
            Box::new(NullEnvironment),
            11,
        );
        engine.run(total);
        let phases = cfg.phases(topo.graph.delta());
        for p in engine.processes() {
            assert_eq!(p.history().len() as u32, phases);
            // Phase numbers are 1..=phases in order.
            for (i, rec) in p.history().iter().enumerate() {
                assert_eq!(rec.phase, i as u32 + 1);
            }
        }
    }

    #[test]
    fn leaders_decide_on_their_own_id() {
        let topo = radio_sim::topology::clique(8, 1.0);
        let cfg = SeedConfig::practical(0.25, 32);
        let total = cfg.total_rounds(topo.graph.delta());
        let procs: Vec<SeedProcess> = (0..8).map(|_| SeedProcess::new(cfg.clone())).collect();
        let mut engine = Engine::new(
            topo.configuration(Box::new(AllExtraEdges)),
            procs,
            Box::new(NullEnvironment),
            13,
        );
        engine.run(total);
        for (v, p) in engine.processes().iter().enumerate() {
            let was_leader = p.history().iter().any(|r| r.became_leader);
            if was_leader {
                let d = p.committed().unwrap();
                assert_eq!(d.owner, engine.trace().proc_id(NodeId(v)));
            }
        }
    }
}
