//! The seed domain `S = {0,1}^κ` and ordered bit consumption.
//!
//! A seed is a fixed-length bit string chosen uniformly at random. The
//! independence property of the `Seed` specification (Condition 4) and the
//! per-bit uniformity lemmas (B.17, B.18) are properties of *fresh* bits:
//! consumers must take each bit at most once, in order, which
//! [`SeedCursor`] enforces by panicking on exhaustion rather than
//! recycling bits.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A seed: an immutable bit string of fixed length `κ`.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Seed {
    words: Vec<u64>,
    len_bits: usize,
}

impl Seed {
    /// Draws a seed uniformly at random from `{0,1}^κ`.
    ///
    /// # Panics
    ///
    /// Panics if `len_bits` is zero.
    pub fn random(rng: &mut impl Rng, len_bits: usize) -> Self {
        assert!(len_bits > 0, "seed must have at least one bit");
        let words = (0..len_bits.div_ceil(64)).map(|_| rng.gen::<u64>()).collect();
        Seed { words, len_bits }
    }

    /// Builds a seed from explicit words (for tests); bits beyond
    /// `len_bits` are masked out on read.
    pub fn from_words(words: Vec<u64>, len_bits: usize) -> Self {
        assert!(len_bits > 0 && len_bits <= words.len() * 64);
        Seed { words, len_bits }
    }

    /// The seed length `κ` in bits.
    pub fn len(&self) -> usize {
        self.len_bits
    }

    /// Whether the seed has zero bits (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.len_bits == 0
    }

    /// The `i`-th bit (0-indexed).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < self.len_bits, "bit index {i} out of range {}", self.len_bits);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Begins ordered consumption of this seed's bits.
    pub fn cursor(&self) -> SeedCursor<'_> {
        SeedCursor { seed: self, pos: 0 }
    }
}

impl fmt::Debug for Seed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Print at most the first 16 bits plus length, to keep traces
        // readable.
        let shown = self.len_bits.min(16);
        write!(f, "Seed[{}b ", self.len_bits)?;
        for i in 0..shown {
            write!(f, "{}", u8::from(self.bit(i)))?;
        }
        if shown < self.len_bits {
            write!(f, "…")?;
        }
        write!(f, "]")
    }
}

/// An ordered, single-pass reader of a seed's bits.
///
/// The algorithms "consume new bits" from their committed seed each round;
/// reusing a bit would correlate rounds and void the uniformity arguments
/// (Lemma B.17), so the cursor panics when asked for more bits than
/// remain — a configuration bug, since `κ` is sized to cover the maximum
/// consumption (Appendix C.1).
#[derive(Debug, Clone)]
pub struct SeedCursor<'a> {
    seed: &'a Seed,
    pos: usize,
}

impl<'a> SeedCursor<'a> {
    /// Bits not yet consumed.
    pub fn remaining(&self) -> usize {
        self.seed.len() - self.pos
    }

    /// Consumes `k ≤ 64` fresh bits, returning them as the low bits of a
    /// `u64` (first consumed bit is the least significant).
    ///
    /// # Panics
    ///
    /// Panics if `k > 64` or fewer than `k` bits remain.
    pub fn take_bits(&mut self, k: usize) -> u64 {
        assert!(k <= 64, "at most 64 bits per call, asked for {k}");
        assert!(
            self.remaining() >= k,
            "seed exhausted: asked for {k} bits, {} remain (κ too small for this configuration)",
            self.remaining()
        );
        let mut out = 0u64;
        for j in 0..k {
            out |= u64::from(self.seed.bit(self.pos + j)) << j;
        }
        self.pos += k;
        out
    }

    /// Consumes `k` bits and reports whether they are all zero — the
    /// paper's participant test ("if all of these bits are 0").
    pub fn all_zero(&mut self, k: usize) -> bool {
        self.take_bits(k) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn random_seed_has_requested_length() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let s = Seed::random(&mut rng, 100);
        assert_eq!(s.len(), 100);
        assert!(!s.is_empty());
    }

    #[test]
    fn bits_round_trip_from_words() {
        let s = Seed::from_words(vec![0b1011], 4);
        assert!(s.bit(0));
        assert!(s.bit(1));
        assert!(!s.bit(2));
        assert!(s.bit(3));
    }

    #[test]
    fn cursor_consumes_in_order_lsb_first() {
        let s = Seed::from_words(vec![0b1101_0110], 8);
        let mut c = s.cursor();
        assert_eq!(c.take_bits(3), 0b110);
        assert_eq!(c.take_bits(5), 0b11010);
        assert_eq!(c.remaining(), 0);
    }

    #[test]
    fn all_zero_detects_zero_runs() {
        let s = Seed::from_words(vec![0b11_0000], 6);
        let mut c = s.cursor();
        assert!(c.all_zero(4));
        assert!(!c.all_zero(2));
    }

    #[test]
    #[should_panic(expected = "seed exhausted")]
    fn cursor_panics_on_exhaustion() {
        let s = Seed::from_words(vec![0], 4);
        let mut c = s.cursor();
        let _ = c.take_bits(5);
    }

    #[test]
    fn random_seeds_differ_across_draws() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let a = Seed::random(&mut rng, 128);
        let b = Seed::random(&mut rng, 128);
        assert_ne!(a, b);
    }

    #[test]
    fn debug_format_is_nonempty_and_truncated() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let s = Seed::random(&mut rng, 128);
        let dbg = format!("{s:?}");
        assert!(dbg.contains("128b"));
        assert!(dbg.contains('…'));
    }

    #[test]
    fn bit_uniformity_sanity() {
        // Not a spec test, just a sanity check that ~half the bits are set.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let s = Seed::random(&mut rng, 4096);
        let ones = (0..s.len()).filter(|&i| s.bit(i)).count();
        assert!((1700..=2400).contains(&ones), "ones = {ones}");
    }
}
