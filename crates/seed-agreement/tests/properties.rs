//! Property-based tests for seeds, configuration arithmetic, and the
//! `Seed(δ, ε)` specification predicates.

use proptest::prelude::*;
use radio_sim::graph::{DualGraph, NodeId};
use radio_sim::trace::{Event, EventKind, Trace};
use seed_agreement::spec::{self, Decide};
use seed_agreement::{Seed, SeedConfig};

proptest! {
    #[test]
    fn cursor_reassembles_the_bit_string(
        words in proptest::collection::vec(any::<u64>(), 1..4),
        chunks in proptest::collection::vec(1usize..17, 1..8),
    ) {
        let len = words.len() * 64;
        let seed = Seed::from_words(words, len);
        let mut cursor = seed.cursor();
        let mut pos = 0usize;
        for k in chunks {
            if cursor.remaining() < k {
                break;
            }
            let got = cursor.take_bits(k);
            for j in 0..k {
                let expect = u64::from(seed.bit(pos + j));
                prop_assert_eq!((got >> j) & 1, expect);
            }
            pos += k;
        }
    }

    #[test]
    fn all_zero_equals_take_bits_zero_check(
        word in any::<u64>(),
        k in 1usize..16,
    ) {
        let seed = Seed::from_words(vec![word, word], 128);
        let mut c1 = seed.cursor();
        let mut c2 = seed.cursor();
        prop_assert_eq!(c1.all_zero(k), c2.take_bits(k) == 0);
    }

    #[test]
    fn config_phase_len_is_monotone_in_inverse_epsilon(
        e1 in 0.001f64..0.25,
        e2 in 0.001f64..0.25,
    ) {
        let (lo, hi) = if e1 <= e2 { (e1, e2) } else { (e2, e1) };
        let cfg_tight = SeedConfig::practical(lo, 32);
        let cfg_loose = SeedConfig::practical(hi, 32);
        prop_assert!(cfg_tight.phase_len() >= cfg_loose.phase_len());
    }

    #[test]
    fn config_phases_grow_with_delta(d1 in 1usize..500, d2 in 1usize..500) {
        let cfg = SeedConfig::practical(0.125, 32);
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(cfg.phases(lo) <= cfg.phases(hi));
        prop_assert_eq!(cfg.total_rounds(lo), u64::from(cfg.phases(lo)) * cfg.phase_len());
    }

    #[test]
    fn leader_probs_are_geometric_and_capped(delta in 2usize..1024) {
        let cfg = SeedConfig::practical(0.25, 32);
        let phases = cfg.phases(delta);
        let mut prev = 0.0;
        for h in 1..=phases {
            let p = cfg.leader_prob(h, phases);
            prop_assert!(p > prev);
            prop_assert!(p <= 0.5 + 1e-12);
            if h > 1 {
                prop_assert!((p / prev - 2.0).abs() < 1e-9);
            }
            prev = p;
        }
    }

    #[test]
    fn wellformed_synthetic_traces_pass_spec(
        n in 1usize..12,
        owner_choice in proptest::collection::vec(0usize..12, 1..12),
        seed_word in any::<u64>(),
    ) {
        // Build a trace where node v decides on owner owner_choice[v] % n
        // and all decisions for the same owner share one seed.
        let mut trace: Trace<(), Decide, seed_agreement::SeedMsg> =
            Trace::new(n, (0..n as u64).collect());
        trace.rounds = 5;
        for v in 0..n {
            let owner = (owner_choice[v % owner_choice.len()] % n) as u64;
            let seed = Seed::from_words(vec![seed_word ^ owner], 32);
            trace.events.push(Event {
                round: 1,
                node: NodeId(v),
                kind: EventKind::Output(Decide { owner, seed }),
            });
        }
        prop_assert!(spec::check_well_formedness(&trace).is_ok());
        prop_assert!(spec::check_consistency(&trace).is_ok());
        // Owner counts are between 1 and n.
        let g = DualGraph::reliable_only(n, (0..n.saturating_sub(1)).map(|i| (i, i + 1))).unwrap();
        let counts = spec::owners_per_neighborhood(&trace, &g).unwrap();
        for c in counts {
            prop_assert!(c >= 1 && c <= n);
        }
    }

    #[test]
    fn corrupted_traces_fail_consistency(
        n in 2usize..10,
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        prop_assume!(seed_a != seed_b);
        // Two nodes claim the same owner with different seeds.
        let mut trace: Trace<(), Decide, seed_agreement::SeedMsg> =
            Trace::new(n, (0..n as u64).collect());
        trace.rounds = 5;
        for v in 0..n {
            let seed_word = if v == 0 { seed_a } else { seed_b };
            trace.events.push(Event {
                round: 1,
                node: NodeId(v),
                kind: EventKind::Output(Decide {
                    owner: 0,
                    seed: Seed::from_words(vec![seed_word], 32),
                }),
            });
        }
        prop_assert!(spec::check_consistency(&trace).is_err());
    }

    #[test]
    fn missing_decisions_fail_well_formedness(n in 2usize..10, skip in 0usize..10) {
        let skip = skip % n;
        let mut trace: Trace<(), Decide, seed_agreement::SeedMsg> =
            Trace::new(n, (0..n as u64).collect());
        trace.rounds = 5;
        for v in 0..n {
            if v == skip {
                continue;
            }
            trace.events.push(Event {
                round: 1,
                node: NodeId(v),
                kind: EventKind::Output(Decide {
                    owner: v as u64,
                    seed: Seed::from_words(vec![1], 32),
                }),
            });
        }
        prop_assert_eq!(
            spec::check_well_formedness(&trace),
            Err(spec::SeedViolation::MissingDecision(NodeId(skip)))
        );
    }

    #[test]
    fn delta_bound_monotone_in_r_and_epsilon(
        r1 in 1.0f64..4.0,
        r2 in 1.0f64..4.0,
        eps in 0.001f64..0.25,
    ) {
        let cfg = SeedConfig::practical(eps, 32);
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        prop_assert!(cfg.delta_bound(lo, 1.0) <= cfg.delta_bound(hi, 1.0));
    }
}
