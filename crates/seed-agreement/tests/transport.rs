//! `SeedAlg` over both substrates: the unmodified `SeedProcess` runs as
//! a cluster of node runtimes over the `net` crate's transports, and the
//! deterministic `Seed(δ, ε)` conditions hold on the resulting traces.

use net::{Cluster, ClusterConfig, MockNetConfig, MockNetTransport, SimTransport};
use radio_sim::engine::Engine;
use radio_sim::environment::NullEnvironment;
use radio_sim::scheduler::AllExtraEdges;
use radio_sim::topology;
use radio_sim::trace::RecordingPolicy;
use seed_agreement::{spec, SeedConfig, SeedProcess};

/// The sim transport reproduces the engine exactly for seed agreement —
/// the refactor did not move a single coin flip.
#[test]
fn seed_over_the_sim_transport_is_the_engine() {
    let topo = topology::clique(5, 1.0);
    let cfg = SeedConfig::practical(0.125, 64);
    let total = cfg.total_rounds(topo.graph.delta());
    let seed = 11;

    let procs: Vec<SeedProcess> = (0..5).map(|_| SeedProcess::new(cfg.clone())).collect();
    let config = topo
        .configuration(Box::new(AllExtraEdges))
        .with_recording(RecordingPolicy::full());
    let mut engine = Engine::new(config, procs, Box::new(NullEnvironment), seed);
    engine.run(total);
    let reference = engine.into_trace();

    let procs: Vec<SeedProcess> = (0..5).map(|_| SeedProcess::new(cfg.clone())).collect();
    let transport = SimTransport::new(topo.graph.clone(), Box::new(AllExtraEdges));
    let config = ClusterConfig::new(topo.graph.clone())
        .with_r(topo.r)
        .with_recording(RecordingPolicy::full());
    let mut cluster = Cluster::new(config, transport, procs, Box::new(NullEnvironment), seed);
    cluster.run(total);
    let trace = cluster.into_trace();

    assert_eq!(reference.events, trace.events);
    assert_eq!(reference.round_stats, trace.round_stats);
    assert_eq!(reference.rounds, trace.rounds);
}

/// Seed agreement's safety conditions are channel-independent: even over
/// a delayed, lossy mock network the execution stays well-formed and
/// consistent (decisions may thin out, but never conflict).
#[test]
fn seed_safety_holds_over_a_degraded_mock_network() {
    let topo = topology::line(6, 0.9, 2.0);
    let cfg = SeedConfig::practical(0.125, 64);
    let total = cfg.total_rounds(topo.graph.delta());

    let procs: Vec<SeedProcess> = (0..6).map(|_| SeedProcess::new(cfg.clone())).collect();
    let transport = MockNetTransport::new(
        topo.graph.clone(),
        MockNetConfig {
            delay_rounds: 1,
            loss_p: 0.2,
            ..MockNetConfig::default()
        },
        53,
    );
    let config = ClusterConfig::new(topo.graph.clone())
        .with_r(topo.r)
        .with_recording(RecordingPolicy::full());
    let mut cluster = Cluster::new(config, transport, procs, Box::new(NullEnvironment), 53);
    cluster.run(total);
    let trace = cluster.into_trace();

    spec::check_well_formedness(&trace).expect("well-formed over the mock network");
    spec::check_consistency(&trace).expect("consistent over the mock network");
}
