//! The `LB(t_ack, t_prog, ε)` specification (Section 4.1) as trace
//! predicates.
//!
//! Deterministic conditions — must hold in **every** execution:
//!
//! 1. **Timely acknowledgment**: each `bcast(m)ᵤ` at round `ρ` is answered
//!    by exactly one `ack(m)ᵤ` within `[ρ, ρ + t_ack]`, and there are no
//!    other acks.
//! 2. **Validity**: every `recv(m)ᵤ` happens while some `G'`-neighbor of
//!    `u` is actively broadcasting `m`.
//!
//! Probabilistic conditions — evaluated as per-event indicators that a
//! Monte-Carlo harness averages over trials:
//!
//! 3. **Reliability**: for each `bcast(m)ᵤ`, every `v ∈ N_G(u)` outputs
//!    `recv(m)ᵥ` no later than `u`'s `ack(m)ᵤ` (target probability
//!    ≥ 1 − ε).
//! 4. **Progress**: for each node `u` and `t_prog`-aligned phase
//!    throughout which some `G`-neighbor of `u` is actively broadcasting,
//!    `u` receives at least one actively-broadcast message during the
//!    phase (target probability ≥ 1 − ε). Progress is about *receptions*
//!    (not deduplicated `recv` outputs), so traces must be recorded with
//!    [`radio_sim::trace::RecordingPolicy::full`].

use crate::msg::{LbInput, LbMsg, LbOutput, Payload};
use crate::LbTrace;
use radio_sim::graph::{DualGraph, NodeId};
use radio_sim::process::ProcId;
use std::collections::BTreeMap;
use std::fmt;

/// Violations of the deterministic `LB` conditions (or of environment
/// well-formedness).
#[derive(Debug, Clone, PartialEq)]
pub enum LbViolation {
    /// The environment broadcast the same payload twice.
    DuplicatePayload {
        /// The repeated `(origin, tag)` key.
        key: (ProcId, u64),
    },
    /// The environment issued a new `bcast` before the previous `ack`.
    BcastWhileActive {
        /// The node receiving the premature input.
        node: NodeId,
        /// The round of the premature input.
        round: u64,
    },
    /// A broadcast never acked within the trace.
    MissingAck {
        /// The unacked `(origin, tag)` key.
        key: (ProcId, u64),
    },
    /// An ack arrived after the `t_ack` deadline.
    LateAck {
        /// The offending key.
        key: (ProcId, u64),
        /// `bcast` round plus `t_ack`.
        deadline: u64,
        /// The actual ack round.
        actual: u64,
    },
    /// An ack without a matching earlier `bcast`, a duplicate ack, or an
    /// ack from the wrong node.
    UnexpectedAck {
        /// The node producing the ack.
        node: NodeId,
        /// The round of the ack.
        round: u64,
    },
    /// A `recv(m)ᵤ` with no `G'`-neighbor actively broadcasting `m`.
    InvalidRecv {
        /// The receiving node.
        node: NodeId,
        /// The received key.
        key: (ProcId, u64),
        /// The round of the recv output.
        round: u64,
        /// Human-readable reason.
        reason: &'static str,
    },
}

impl fmt::Display for LbViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LbViolation::DuplicatePayload { key } => {
                write!(f, "payload {key:?} broadcast more than once")
            }
            LbViolation::BcastWhileActive { node, round } => {
                write!(f, "bcast at {node} round {round} before previous ack")
            }
            LbViolation::MissingAck { key } => write!(f, "broadcast {key:?} never acked"),
            LbViolation::LateAck {
                key,
                deadline,
                actual,
            } => write!(f, "ack for {key:?} at round {actual} after deadline {deadline}"),
            LbViolation::UnexpectedAck { node, round } => {
                write!(f, "unexpected ack at {node} round {round}")
            }
            LbViolation::InvalidRecv {
                node,
                key,
                round,
                reason,
            } => write!(f, "invalid recv of {key:?} at {node} round {round}: {reason}"),
        }
    }
}

impl std::error::Error for LbViolation {}

/// The lifecycle of one broadcast: input round, origin, and ack round.
#[derive(Debug, Clone, PartialEq)]
pub struct BroadcastLifecycle {
    /// `(origin id, tag)` of the payload.
    pub key: (ProcId, u64),
    /// The payload itself.
    pub payload: Payload,
    /// The vertex that received the `bcast` input.
    pub origin: NodeId,
    /// Round of the `bcast` input.
    pub bcast_round: u64,
    /// Round of the matching `ack`, if it occurred within the trace.
    pub ack_round: Option<u64>,
}

impl BroadcastLifecycle {
    /// Whether the origin is *actively broadcasting* this payload in
    /// round `t` (Section 4.1: input received at `r' ≤ t` and no ack
    /// generated through `t`; outputs occur at round end, so the ack
    /// round itself still counts as active).
    pub fn active_in(&self, t: u64) -> bool {
        self.bcast_round <= t && self.ack_round.is_none_or(|a| a >= t)
    }
}

/// Reconstructs all broadcast lifecycles, checking environment
/// well-formedness (unique payloads, one outstanding broadcast per node)
/// and ack sanity (acks match broadcasts, at most one each).
///
/// # Errors
///
/// Returns the first well-formedness violation encountered.
pub fn lifecycles(trace: &LbTrace) -> Result<Vec<BroadcastLifecycle>, LbViolation> {
    let mut map: BTreeMap<(ProcId, u64), BroadcastLifecycle> = BTreeMap::new();
    // Outstanding broadcast per node.
    let mut outstanding: BTreeMap<NodeId, (ProcId, u64)> = BTreeMap::new();

    // Events are stored in round order; walk them merged.
    for e in &trace.events {
        match &e.kind {
            radio_sim::trace::EventKind::Input(LbInput::Bcast(p)) => {
                if map.contains_key(&p.key()) {
                    return Err(LbViolation::DuplicatePayload { key: p.key() });
                }
                if outstanding.contains_key(&e.node) {
                    return Err(LbViolation::BcastWhileActive {
                        node: e.node,
                        round: e.round,
                    });
                }
                outstanding.insert(e.node, p.key());
                map.insert(
                    p.key(),
                    BroadcastLifecycle {
                        key: p.key(),
                        payload: p.clone(),
                        origin: e.node,
                        bcast_round: e.round,
                        ack_round: None,
                    },
                );
            }
            radio_sim::trace::EventKind::Output(LbOutput::Ack(p)) => {
                let Some(lc) = map.get_mut(&p.key()) else {
                    return Err(LbViolation::UnexpectedAck {
                        node: e.node,
                        round: e.round,
                    });
                };
                if lc.origin != e.node || lc.ack_round.is_some() {
                    return Err(LbViolation::UnexpectedAck {
                        node: e.node,
                        round: e.round,
                    });
                }
                lc.ack_round = Some(e.round);
                outstanding.remove(&e.node);
            }
            _ => {}
        }
    }
    Ok(map.into_values().collect())
}

/// Condition 1 (Timely acknowledgment): every broadcast acks within
/// `t_ack_rounds` of its input. Broadcasts issued too close to the end of
/// the trace for the deadline to have elapsed are skipped.
///
/// # Errors
///
/// Returns the first missing or late ack.
pub fn check_timely_ack(trace: &LbTrace, t_ack_rounds: u64) -> Result<(), LbViolation> {
    for lc in lifecycles(trace)? {
        let deadline = lc.bcast_round + t_ack_rounds;
        match lc.ack_round {
            Some(a) if a <= deadline => {}
            Some(a) => {
                return Err(LbViolation::LateAck {
                    key: lc.key,
                    deadline,
                    actual: a,
                })
            }
            None if deadline > trace.rounds => {} // deadline beyond trace
            None => return Err(LbViolation::MissingAck { key: lc.key }),
        }
    }
    Ok(())
}

/// Condition 2 (Validity): every `recv(m)ᵤ` occurs in a round where some
/// `G'`-neighbor of `u` is actively broadcasting `m`.
///
/// # Errors
///
/// Returns the first invalid recv (or a well-formedness violation).
pub fn check_validity(trace: &LbTrace, graph: &DualGraph) -> Result<(), LbViolation> {
    let lcs = lifecycles(trace)?;
    let by_key: BTreeMap<(ProcId, u64), &BroadcastLifecycle> =
        lcs.iter().map(|lc| (lc.key, lc)).collect();
    for (round, node, out) in trace.outputs() {
        let LbOutput::Recv(p) = out else { continue };
        let Some(lc) = by_key.get(&p.key()) else {
            return Err(LbViolation::InvalidRecv {
                node,
                key: p.key(),
                round,
                reason: "payload was never broadcast",
            });
        };
        if !graph.is_any_edge(node, lc.origin) {
            return Err(LbViolation::InvalidRecv {
                node,
                key: p.key(),
                round,
                reason: "origin is not a G' neighbor",
            });
        }
        if !lc.active_in(round) {
            return Err(LbViolation::InvalidRecv {
                node,
                key: p.key(),
                round,
                reason: "origin not actively broadcasting in this round",
            });
        }
    }
    Ok(())
}

/// Outcome of Condition 3 (Reliability) for one broadcast.
#[derive(Debug, Clone, PartialEq)]
pub struct ReliabilityOutcome {
    /// The broadcast's key.
    pub key: (ProcId, u64),
    /// The broadcasting vertex.
    pub origin: NodeId,
    /// Reliable neighbors that did **not** recv before the ack.
    pub missed: Vec<NodeId>,
}

impl ReliabilityOutcome {
    /// Whether every reliable neighbor got the message in time.
    pub fn success(&self) -> bool {
        self.missed.is_empty()
    }
}

/// Evaluates Condition 3 for every acked broadcast in the trace:
/// did each `v ∈ N_G(origin)` output `recv(m)` no later than the ack?
/// Unacked broadcasts (still running at trace end) are skipped.
///
/// # Errors
///
/// Propagates well-formedness violations.
pub fn reliability_outcomes(
    trace: &LbTrace,
    graph: &DualGraph,
) -> Result<Vec<ReliabilityOutcome>, LbViolation> {
    let lcs = lifecycles(trace)?;
    // recv rounds per (node, key).
    let mut recv_round: BTreeMap<(NodeId, (ProcId, u64)), u64> = BTreeMap::new();
    for (round, node, out) in trace.outputs() {
        if let LbOutput::Recv(p) = out {
            recv_round.entry((node, p.key())).or_insert(round);
        }
    }
    Ok(lcs
        .into_iter()
        .filter(|lc| lc.ack_round.is_some())
        .map(|lc| {
            let ack = lc.ack_round.expect("filtered to acked");
            let missed = graph
                .reliable_neighbors(lc.origin)
                .iter()
                .copied()
                .filter(|v| {
                    recv_round
                        .get(&(*v, lc.key))
                        .is_none_or(|&r| r > ack)
                })
                .collect();
            ReliabilityOutcome {
                key: lc.key,
                origin: lc.origin,
                missed,
            }
        })
        .collect())
}

/// Outcome of Condition 4 (Progress) for one `(node, phase)` pair whose
/// hypothesis held (some `G`-neighbor active throughout the phase).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgressOutcome {
    /// The listening node `u`.
    pub node: NodeId,
    /// The 1-based `t_prog` phase index.
    pub phase: u64,
    /// Whether `u` received at least one actively-broadcast message
    /// during the phase.
    pub received: bool,
}

/// Evaluates Condition 4 over all complete `t_prog`-aligned phases of the
/// trace. Requires the trace to contain reception events
/// ([`radio_sim::trace::RecordingPolicy::full`]); without them every
/// outcome would report failure.
///
/// # Errors
///
/// Propagates well-formedness violations.
pub fn progress_outcomes(
    trace: &LbTrace,
    graph: &DualGraph,
    t_prog: u64,
) -> Result<Vec<ProgressOutcome>, LbViolation> {
    assert!(t_prog >= 1, "t_prog must be positive");
    let lcs = lifecycles(trace)?;
    let full_phases = trace.rounds / t_prog;
    let mut outcomes = Vec::new();

    // Receptions of actively-broadcast data, indexed per (receiver,
    // round).
    let by_key: BTreeMap<(ProcId, u64), &BroadcastLifecycle> =
        lcs.iter().map(|lc| (lc.key, lc)).collect();
    let mut good_receptions: BTreeMap<NodeId, Vec<u64>> = BTreeMap::new();
    for (round, receiver, sender, msg) in trace.receptions() {
        let LbMsg::Data(p) = msg else { continue };
        let Some(lc) = by_key.get(&p.key()) else { continue };
        if lc.origin == sender && lc.active_in(round) {
            good_receptions.entry(receiver).or_default().push(round);
        }
    }

    for phase in 1..=full_phases {
        let start = (phase - 1) * t_prog + 1;
        let end = phase * t_prog;
        for u in graph.vertices() {
            let hypothesis = graph.reliable_neighbors(u).iter().any(|v| {
                lcs.iter().any(|lc| {
                    lc.origin == *v && (start..=end).all(|t| lc.active_in(t))
                })
            });
            if !hypothesis {
                continue;
            }
            let received = good_receptions
                .get(&u)
                .is_some_and(|rounds| rounds.iter().any(|&t| start <= t && t <= end));
            outcomes.push(ProgressOutcome {
                node: u,
                phase,
                received,
            });
        }
    }
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_sim::trace::{Event, EventKind, Trace};

    fn mk_trace(n: usize, rounds: u64) -> LbTrace {
        let mut t = Trace::new(n, (0..n as u64).collect());
        t.rounds = rounds;
        t
    }

    fn input(t: &mut LbTrace, round: u64, node: usize, payload: Payload) {
        t.events.push(Event {
            round,
            node: NodeId(node),
            kind: EventKind::Input(LbInput::Bcast(payload)),
        });
    }

    fn output(t: &mut LbTrace, round: u64, node: usize, out: LbOutput) {
        t.events.push(Event {
            round,
            node: NodeId(node),
            kind: EventKind::Output(out),
        });
    }

    fn reception(t: &mut LbTrace, round: u64, node: usize, from: usize, p: Payload) {
        t.events.push(Event {
            round,
            node: NodeId(node),
            kind: EventKind::Receive {
                from: NodeId(from),
                msg: LbMsg::Data(p),
            },
        });
    }

    fn path3() -> DualGraph {
        DualGraph::reliable_only(3, [(0, 1), (1, 2)]).unwrap()
    }

    #[test]
    fn lifecycle_reconstruction() {
        let mut t = mk_trace(2, 20);
        let p = Payload::new(0, 1);
        input(&mut t, 2, 0, p.clone());
        output(&mut t, 10, 0, LbOutput::Ack(p.clone()));
        let lcs = lifecycles(&t).unwrap();
        assert_eq!(lcs.len(), 1);
        assert_eq!(lcs[0].bcast_round, 2);
        assert_eq!(lcs[0].ack_round, Some(10));
        assert!(lcs[0].active_in(2));
        assert!(lcs[0].active_in(10));
        assert!(!lcs[0].active_in(1));
        assert!(!lcs[0].active_in(11));
    }

    #[test]
    fn duplicate_payload_rejected() {
        let mut t = mk_trace(2, 20);
        let p = Payload::new(0, 1);
        input(&mut t, 1, 0, p.clone());
        output(&mut t, 5, 0, LbOutput::Ack(p.clone()));
        input(&mut t, 6, 0, p.clone());
        assert!(matches!(
            lifecycles(&t),
            Err(LbViolation::DuplicatePayload { .. })
        ));
    }

    #[test]
    fn premature_bcast_rejected() {
        let mut t = mk_trace(2, 20);
        input(&mut t, 1, 0, Payload::new(0, 1));
        input(&mut t, 2, 0, Payload::new(0, 2));
        assert!(matches!(
            lifecycles(&t),
            Err(LbViolation::BcastWhileActive { .. })
        ));
    }

    #[test]
    fn unexpected_ack_rejected() {
        let mut t = mk_trace(2, 20);
        output(&mut t, 5, 0, LbOutput::Ack(Payload::new(0, 1)));
        assert!(matches!(
            lifecycles(&t),
            Err(LbViolation::UnexpectedAck { .. })
        ));
    }

    #[test]
    fn timely_ack_accepts_and_rejects() {
        let mut t = mk_trace(2, 30);
        let p = Payload::new(0, 1);
        input(&mut t, 2, 0, p.clone());
        output(&mut t, 12, 0, LbOutput::Ack(p.clone()));
        check_timely_ack(&t, 10).unwrap();
        assert!(matches!(
            check_timely_ack(&t, 9),
            Err(LbViolation::LateAck { .. })
        ));
    }

    #[test]
    fn missing_ack_within_deadline_rejected() {
        let mut t = mk_trace(2, 30);
        input(&mut t, 2, 0, Payload::new(0, 1));
        // deadline 12 < rounds 30, no ack recorded.
        assert!(matches!(
            check_timely_ack(&t, 10),
            Err(LbViolation::MissingAck { .. })
        ));
        // With a deadline beyond the trace the check abstains.
        check_timely_ack(&t, 40).unwrap();
    }

    #[test]
    fn validity_accepts_active_neighbor() {
        let g = path3();
        let mut t = mk_trace(3, 30);
        let p = Payload::new(1, 1);
        input(&mut t, 1, 1, p.clone());
        output(&mut t, 5, 0, LbOutput::Recv(p.clone()));
        output(&mut t, 20, 1, LbOutput::Ack(p.clone()));
        check_validity(&t, &g).unwrap();
    }

    #[test]
    fn validity_rejects_non_neighbor_and_inactive() {
        let g = path3();
        // Node 2 is not a neighbor of node 0.
        let mut t = mk_trace(3, 30);
        let p = Payload::new(0, 1);
        input(&mut t, 1, 0, p.clone());
        output(&mut t, 5, 2, LbOutput::Recv(p.clone()));
        assert!(matches!(
            check_validity(&t, &g),
            Err(LbViolation::InvalidRecv { reason: "origin is not a G' neighbor", .. })
        ));

        // Recv after the ack: origin no longer active.
        let mut t2 = mk_trace(3, 30);
        input(&mut t2, 1, 0, p.clone());
        output(&mut t2, 4, 0, LbOutput::Ack(p.clone()));
        output(&mut t2, 6, 1, LbOutput::Recv(p.clone()));
        assert!(matches!(
            check_validity(&t2, &g),
            Err(LbViolation::InvalidRecv { .. })
        ));
    }

    #[test]
    fn reliability_outcome_detects_missed_neighbor() {
        let g = path3();
        let mut t = mk_trace(3, 30);
        let p = Payload::new(1, 1);
        input(&mut t, 1, 1, p.clone());
        // Only node 0 receives; node 2 misses.
        output(&mut t, 5, 0, LbOutput::Recv(p.clone()));
        output(&mut t, 20, 1, LbOutput::Ack(p.clone()));
        let outcomes = reliability_outcomes(&t, &g).unwrap();
        assert_eq!(outcomes.len(), 1);
        assert!(!outcomes[0].success());
        assert_eq!(outcomes[0].missed, vec![NodeId(2)]);
    }

    #[test]
    fn reliability_success_when_all_receive_in_time() {
        let g = path3();
        let mut t = mk_trace(3, 30);
        let p = Payload::new(1, 1);
        input(&mut t, 1, 1, p.clone());
        output(&mut t, 5, 0, LbOutput::Recv(p.clone()));
        output(&mut t, 6, 2, LbOutput::Recv(p.clone()));
        output(&mut t, 20, 1, LbOutput::Ack(p.clone()));
        let outcomes = reliability_outcomes(&t, &g).unwrap();
        assert!(outcomes[0].success());
    }

    #[test]
    fn progress_requires_reception_during_phase() {
        let g = path3();
        let mut t = mk_trace(3, 20);
        let p = Payload::new(1, 1);
        // Node 1 active rounds 1..=20 (no ack).
        input(&mut t, 1, 1, p.clone());
        // Node 0 hears it in round 3 (phase 1 under t_prog = 10); node 2
        // never hears.
        reception(&mut t, 3, 0, 1, p.clone());
        let outcomes = progress_outcomes(&t, &g, 10).unwrap();
        // Nodes 0 and 2 have the active neighbor; two phases each.
        assert_eq!(outcomes.len(), 4);
        let ok = |n: usize, ph: u64| {
            outcomes
                .iter()
                .find(|o| o.node == NodeId(n) && o.phase == ph)
                .unwrap()
                .received
        };
        assert!(ok(0, 1));
        assert!(!ok(0, 2));
        assert!(!ok(2, 1));
        assert!(!ok(2, 2));
    }

    #[test]
    fn progress_hypothesis_requires_full_phase_activity() {
        let g = path3();
        let mut t = mk_trace(3, 10);
        let p = Payload::new(1, 1);
        // Active only rounds 3..=10: not throughout phase 1 (t_prog=10).
        input(&mut t, 3, 1, p.clone());
        let outcomes = progress_outcomes(&t, &g, 10).unwrap();
        assert!(outcomes.is_empty());
    }
}
