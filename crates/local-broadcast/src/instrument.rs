//! Instrumentation: the seed-group partition of Lemma 4.2, measured.
//!
//! The lemma's argument partitions the senders in a receiver's
//! `G'`-neighborhood into groups sharing a committed seed; the agreement
//! property bounds the number of groups by δ, and with probability
//! `Θ(1/δ)` exactly one group participates in a round. This module
//! recomputes that partition per phase from the processes'
//! [`commit histories`](crate::alg::LbProcess::commit_history), so
//! experiments can report the realized group counts next to the δ
//! budget.

use crate::alg::LbProcess;
use radio_sim::graph::{DualGraph, NodeId};
use radio_sim::process::ProcId;
use std::collections::BTreeSet;

/// Group counts for one phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseGroups {
    /// The phase index (1-based).
    pub phase: usize,
    /// For each vertex `u`, the number of distinct seed owners among
    /// `N_{G'}(u) ∪ {u}` in this phase — the `k ≤ δ` of Lemma 4.2's
    /// partition.
    pub groups_per_node: Vec<usize>,
}

impl PhaseGroups {
    /// The worst (largest) neighborhood group count this phase.
    pub fn max(&self) -> usize {
        self.groups_per_node.iter().copied().max().unwrap_or(0)
    }

    /// The mean neighborhood group count this phase.
    pub fn mean(&self) -> f64 {
        if self.groups_per_node.is_empty() {
            return 0.0;
        }
        self.groups_per_node.iter().sum::<usize>() as f64 / self.groups_per_node.len() as f64
    }
}

/// Computes the per-phase seed-group partition from completed processes.
///
/// Phases where some process has no commitment recorded (e.g. the run
/// stopped mid-preamble) are omitted.
///
/// # Panics
///
/// Panics if `procs` does not match the graph's vertex count.
pub fn seed_groups_per_phase(procs: &[LbProcess], graph: &DualGraph) -> Vec<PhaseGroups> {
    assert_eq!(procs.len(), graph.len(), "one process per vertex");
    let phases = procs
        .iter()
        .map(|p| p.commit_history().len())
        .min()
        .unwrap_or(0);
    (0..phases)
        .map(|ph| {
            let owner_of = |v: NodeId| -> ProcId { procs[v.0].commit_history()[ph].owner };
            let groups_per_node = graph
                .vertices()
                .map(|u| {
                    let mut owners: BTreeSet<ProcId> = BTreeSet::new();
                    owners.insert(owner_of(u));
                    for &v in graph.all_neighbors(u) {
                        owners.insert(owner_of(v));
                    }
                    owners.len()
                })
                .collect();
            PhaseGroups {
                phase: ph + 1,
                groups_per_node,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LbConfig;
    use radio_sim::environment::NullEnvironment;
    use radio_sim::prelude::*;
    use radio_sim::scheduler::AllExtraEdges;

    fn run_engine(
        topo: &radio_sim::topology::Topology,
        cfg: &LbConfig,
        phases: u64,
        seed: u64,
    ) -> Engine<LbProcess> {
        let n = topo.graph.len();
        let params = cfg.resolve(topo.r, topo.graph.delta(), topo.graph.delta_prime());
        let procs: Vec<LbProcess> = (0..n).map(|_| LbProcess::new(cfg.clone())).collect();
        let mut engine = Engine::new(
            topo.configuration(Box::new(AllExtraEdges)),
            procs,
            Box::new(NullEnvironment),
            seed,
        );
        engine.run(params.phase_len() * phases);
        engine
    }

    #[test]
    fn group_counts_are_bounded_by_neighborhood_size() {
        let topo = radio_sim::topology::clique(6, 1.0);
        let engine = run_engine(&topo, &LbConfig::fast(0.25), 2, 7);
        let groups = seed_groups_per_phase(engine.processes(), &topo.graph);
        assert_eq!(groups.len(), 2);
        for pg in &groups {
            assert_eq!(pg.groups_per_node.len(), 6);
            for (v, &k) in pg.groups_per_node.iter().enumerate() {
                let nbhd = topo
                    .graph
                    .all_neighbors(radio_sim::graph::NodeId(v))
                    .len()
                    + 1;
                assert!(k >= 1 && k <= nbhd, "node {v}: {k} groups of {nbhd}");
            }
            assert!(pg.max() >= 1);
            assert!(pg.mean() >= 1.0);
        }
    }

    #[test]
    fn private_mode_groups_equal_neighborhood_size() {
        // With private seeds every node owns its own seed: group count =
        // closed neighborhood size, the degenerate partition the
        // agreement exists to avoid.
        let topo = radio_sim::topology::clique(4, 1.0);
        let cfg = LbConfig::fast(0.25).with_private_seeds();
        let params = cfg.resolve(topo.r, topo.graph.delta(), topo.graph.delta_prime());
        let procs: Vec<LbProcess> = (0..4).map(|_| LbProcess::new(cfg.clone())).collect();
        let mut engine = Engine::new(
            topo.configuration(Box::new(AllExtraEdges)),
            procs,
            Box::new(NullEnvironment),
            3,
        );
        engine.run(params.phase_len() * 2);
        let groups = seed_groups_per_phase(engine.processes(), &topo.graph);
        assert_eq!(groups.len(), 2);
        for pg in groups {
            assert_eq!(pg.groups_per_node, vec![4, 4, 4, 4]);
        }
    }
}
