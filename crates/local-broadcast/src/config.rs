//! The `LBAlg` constants of Appendix C.1, resolved per configuration.
//!
//! The paper defines, for error parameter `ε₁`:
//!
//! * `ε₂ = min{ε′, ε₁}` — the error handed to the seed agreement
//!   subroutine, with `ε′` small enough that `SeedAlg(ε′)` meets the
//!   `Seed(δ, ε)` spec at error ≤ `ε₁/2`;
//! * `T_s = O(log Δ log²(1/ε₂))` — the preamble length (one `SeedAlg`
//!   run);
//! * `T_prog = O(r² log(1/ε₁) log(1/ε₂) log Δ)` — body rounds per phase;
//! * `κ = T_prog · ⌈log(r² log(1/ε₂))⌉ · log log Δ` — seed bits consumed
//!   per phase (we size seeds to the exact worst-case consumption);
//! * `T_ack = O(Δ log(Δ/ε₁) / (1 − ε₁))` — sending phases per message.
//!
//! As with the seed constants (see `seed_agreement::config`), the paper's
//! sufficient multiplicative constants are far too large to execute; the
//! [`LbConfig`] calibrations keep every *functional form* while making the
//! constants data. EXPERIMENTS.md records the calibration used for each
//! experiment.

use seed_agreement::SeedConfig;
use serde::{Deserialize, Serialize};

/// Where the per-phase shared randomness comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeedMode {
    /// The paper's algorithm: run `SeedAlg` in every phase preamble and
    /// adopt the committed group seed, bounding the number of distinct
    /// schedules per neighborhood by δ.
    Agreement,
    /// Ablation: skip the preamble entirely (`T_s = 0`); every node draws
    /// a private seed per phase. The permuted schedules remain unknown to
    /// the oblivious scheduler, but nothing bounds the number of distinct
    /// schedules per neighborhood — the quantity the paper's analysis
    /// (Lemma 4.2's δ-partition) depends on.
    Private,
}

/// Tunable constants of `LBAlg(ε₁)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LbConfig {
    /// The service's error parameter `ε₁ ∈ (0, 1/2]`.
    pub epsilon1: f64,
    /// Multiplier in `T_prog` (the paper's `c₁`).
    pub c_prog: f64,
    /// Multiplier in `T_ack`.
    pub c_ack: f64,
    /// Phase-length constant forwarded to the seed agreement subroutine.
    pub seed_c4: f64,
    /// Body segments per seed agreement — the Section 4.2 remark: "it
    /// might make sense to run the agreement protocol less frequently,
    /// and generate seeds of sufficient length to satisfy the demands of
    /// multiple phases." Each phase carries this many `T_prog`-round
    /// bodies after one preamble, with `κ` scaled to match.
    pub phases_per_agreement: u32,
    /// Source of shared randomness (see [`SeedMode`]).
    pub seed_mode: SeedMode,
}

impl LbConfig {
    /// The default executable calibration.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < ε₁ ≤ 1/2`.
    pub fn practical(epsilon1: f64) -> Self {
        Self::with_constants(epsilon1, 1.0, 1.0, 2.0)
    }

    /// A faster calibration for unit tests (shorter phases, fewer sending
    /// phases; weaker empirical guarantees).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < ε₁ ≤ 1/2`.
    pub fn fast(epsilon1: f64) -> Self {
        Self::with_constants(epsilon1, 0.5, 0.25, 1.0)
    }

    /// Full control over the calibration constants.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < ε₁ ≤ 1/2` and all constants are positive.
    pub fn with_constants(epsilon1: f64, c_prog: f64, c_ack: f64, seed_c4: f64) -> Self {
        assert!(
            epsilon1 > 0.0 && epsilon1 <= 0.5,
            "LBAlg requires 0 < ε₁ ≤ 1/2, got {epsilon1}"
        );
        assert!(c_prog > 0.0 && c_ack > 0.0 && seed_c4 > 0.0);
        LbConfig {
            epsilon1,
            c_prog,
            c_ack,
            seed_c4,
            phases_per_agreement: 1,
            seed_mode: SeedMode::Agreement,
        }
    }

    /// Amortizes one seed agreement over `k` body segments (Section 4.2's
    /// lower-frequency variant). Worst-case bounds are unchanged; the
    /// preamble overhead per body drops by `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn with_seed_reuse(mut self, k: u32) -> Self {
        assert!(k >= 1, "need at least one body per agreement");
        self.phases_per_agreement = k;
        self
    }

    /// Switches to the private-seeds ablation (no agreement, `T_s = 0`).
    pub fn with_private_seeds(mut self) -> Self {
        self.seed_mode = SeedMode::Private;
        self
    }

    /// `ε₂`: the seed agreement error parameter. The paper takes
    /// `min{ε′, ε₁}`; operationally we use `min{ε₁/2, 1/4}`, which keeps
    /// `ε₂ ≤ ε₁` and satisfies `SeedAlg`'s own `ε ≤ 1/4` requirement.
    pub fn epsilon2(&self) -> f64 {
        (self.epsilon1 / 2.0).min(0.25)
    }

    /// Resolves all round counts for a concrete `(r, Δ, Δ')`.
    pub fn resolve(&self, r: f64, delta: usize, delta_prime: usize) -> LbParams {
        let log_inv_e1 = (1.0 / self.epsilon1).log2();
        let log_inv_e2 = (1.0 / self.epsilon2()).log2();
        // log Δ, with Δ rounded up to a power of two (≥ 2).
        let log_delta = (delta.max(2).next_power_of_two().trailing_zeros()).max(1);

        // Bits consumed per body round by the participant test. The
        // paper wants participation probability a / (r² log(1/ε₂)) with
        // a ∈ [1, 2) — i.e. at LEAST the target — so the bit count is
        // ⌊log₂(r² log(1/ε₂))⌋ (flooring the exponent keeps
        // 2^{-k} ∈ [1/x, 2/x)).
        let participant_bits = ((r * r * log_inv_e2).log2().floor() as usize).max(1);

        // Bits selecting b ∈ [log Δ]: round log Δ up to a power of two so
        // the selection stays uniform; extra values extend the probability
        // ladder below 1/Δ, which only strengthens symmetry breaking.
        let ladder = (log_delta as usize).next_power_of_two();
        let b_bits = ladder.trailing_zeros() as usize;

        let t_prog = ((self.c_prog * r * r * log_inv_e1 * log_inv_e2 * f64::from(log_delta))
            .ceil() as u64)
            .max(1);

        let bodies = self.phases_per_agreement;
        let kappa =
            (t_prog as usize) * (participant_bits + b_bits).max(1) * bodies as usize;
        let seed_cfg = SeedConfig::with_c4(self.epsilon2(), kappa, self.seed_c4);
        let t_s = match self.seed_mode {
            SeedMode::Agreement => seed_cfg.total_rounds(delta),
            SeedMode::Private => 0,
        };

        // Sending phases per message: the Appendix C.1 form
        // 12 ln(2Δ/ε₁) Δ' / (c₂ c₁ log(1/ε₁) (1 − ε₁/2)), with the
        // leading constants folded into c_ack.
        let t_ack = ((self.c_ack * delta_prime as f64 * (2.0 * delta as f64 / self.epsilon1).ln()
            / (log_inv_e1 * (1.0 - self.epsilon1 / 2.0)))
            .ceil() as u64)
            .max(1);

        LbParams {
            log_delta,
            participant_bits,
            b_bits,
            ladder: ladder as u32,
            kappa,
            seed_cfg,
            seed_mode: self.seed_mode,
            bodies,
            t_s,
            t_prog,
            t_ack,
        }
    }
}

/// All round counts of one `LBAlg` deployment, resolved from an
/// [`LbConfig`] and the local parameters `(r, Δ, Δ')` every process knows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LbParams {
    /// `log₂ Δ̂` (Δ rounded up to a power of two).
    pub log_delta: u32,
    /// Seed bits consumed per body round by the participant test.
    pub participant_bits: usize,
    /// Seed bits consumed by a participant to select `b`.
    pub b_bits: usize,
    /// The probability ladder size `2^{b_bits} ≥ log Δ`.
    pub ladder: u32,
    /// Seed length `κ` — exactly one phase's worst-case consumption.
    pub kappa: usize,
    /// Configuration of the per-phase `SeedAlg` preamble.
    pub seed_cfg: SeedConfig,
    /// Where the shared randomness comes from.
    pub seed_mode: SeedMode,
    /// `T_prog`-round body segments per phase (Section 4.2's
    /// amortization; 1 in the paper's base algorithm).
    pub bodies: u32,
    /// Preamble length `T_s` in rounds (0 in the private-seeds ablation).
    pub t_s: u64,
    /// Body segment length `T_prog` in rounds.
    pub t_prog: u64,
    /// Sending body segments per message `T_ack`.
    pub t_ack: u64,
}

impl LbParams {
    /// Full phase length `T_s + bodies · T_prog`; with `bodies = 1` this
    /// is the problem's `t_prog` bound `T_s + T_prog`.
    pub fn phase_len(&self) -> u64 {
        self.t_s + u64::from(self.bodies) * self.t_prog
    }

    /// The problem's `t_ack` bound: enough whole phases to accumulate
    /// `T_ack` sending body segments, plus one phase of boundary slack.
    /// With `bodies = 1` this is the paper's `(T_ack + 1)(T_s + T_prog)`.
    pub fn t_ack_rounds(&self) -> u64 {
        (self.t_ack.div_ceil(u64::from(self.bodies)) + 1) * self.phase_len()
    }

    /// Phase index (1-based) and position within the phase (0-based) of a
    /// global round (1-based).
    pub fn locate(&self, round: u64) -> (u64, u64) {
        let idx = round - 1;
        (idx / self.phase_len() + 1, idx % self.phase_len())
    }

    /// Whether the position is in the preamble.
    pub fn in_preamble(&self, pos: u64) -> bool {
        pos < self.t_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> LbParams {
        LbConfig::practical(0.25).resolve(2.0, 8, 8)
    }

    #[test]
    fn epsilon2_is_half_epsilon1_capped() {
        assert!((LbConfig::practical(0.25).epsilon2() - 0.125).abs() < 1e-12);
        assert!((LbConfig::practical(0.5).epsilon2() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn phase_structure_is_consistent() {
        let p = params();
        assert_eq!(p.phase_len(), p.t_s + p.t_prog);
        assert_eq!(p.t_ack_rounds(), (p.t_ack + 1) * p.phase_len());
        assert!(p.t_s > 0 && p.t_prog > 0 && p.t_ack > 0);
    }

    #[test]
    fn locate_round_trips() {
        let p = params();
        assert_eq!(p.locate(1), (1, 0));
        assert_eq!(p.locate(p.phase_len()), (1, p.phase_len() - 1));
        assert_eq!(p.locate(p.phase_len() + 1), (2, 0));
        assert!(p.in_preamble(0));
        assert!(!p.in_preamble(p.t_s));
    }

    #[test]
    fn kappa_covers_one_phase_consumption() {
        let p = params();
        assert_eq!(p.kappa, (p.t_prog as usize) * (p.participant_bits + p.b_bits));
        assert_eq!(p.seed_cfg.seed_bits, p.kappa);
    }

    #[test]
    fn t_prog_scales_with_log_delta() {
        let cfg = LbConfig::practical(0.25);
        let small = cfg.resolve(2.0, 8, 8);
        let large = cfg.resolve(2.0, 64, 64);
        // log Δ: 3 -> 6, so T_prog should double.
        assert_eq!(small.log_delta, 3);
        assert_eq!(large.log_delta, 6);
        assert!(large.t_prog > small.t_prog);
        let ratio = large.t_prog as f64 / small.t_prog as f64;
        assert!((1.5..=2.5).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn t_ack_scales_linearly_with_delta_prime() {
        let cfg = LbConfig::practical(0.25);
        let a = cfg.resolve(2.0, 16, 16);
        let b = cfg.resolve(2.0, 16, 64);
        let ratio = b.t_ack as f64 / a.t_ack as f64;
        assert!((3.0..=5.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn ladder_covers_log_delta() {
        let p = LbConfig::practical(0.25).resolve(2.0, 32, 32);
        assert!(p.ladder >= p.log_delta);
        assert_eq!(p.ladder, 1 << p.b_bits);
    }

    #[test]
    #[should_panic(expected = "0 < ε₁ ≤ 1/2")]
    fn rejects_epsilon_above_half() {
        let _ = LbConfig::practical(0.75);
    }

    #[test]
    fn seed_reuse_scales_kappa_and_amortizes_preamble() {
        let base = LbConfig::practical(0.25).resolve(2.0, 8, 8);
        let reused = LbConfig::practical(0.25)
            .with_seed_reuse(4)
            .resolve(2.0, 8, 8);
        assert_eq!(reused.bodies, 4);
        assert_eq!(reused.kappa, base.kappa * 4);
        assert_eq!(reused.t_s, base.t_s);
        assert_eq!(reused.phase_len(), base.t_s + 4 * base.t_prog);
        // Preamble overhead per body segment drops 4x.
        let base_overhead = base.t_s as f64 / base.phase_len() as f64;
        let reused_overhead = reused.t_s as f64 / reused.phase_len() as f64;
        assert!(reused_overhead < base_overhead / 2.0);
        // t_ack (in body segments) is unchanged; the round bound adapts.
        assert_eq!(reused.t_ack, base.t_ack);
        assert_eq!(
            reused.t_ack_rounds(),
            (reused.t_ack.div_ceil(4) + 1) * reused.phase_len()
        );
    }

    #[test]
    fn private_mode_eliminates_preamble() {
        let p = LbConfig::practical(0.25)
            .with_private_seeds()
            .resolve(2.0, 8, 8);
        assert_eq!(p.t_s, 0);
        assert_eq!(p.seed_mode, SeedMode::Private);
        assert_eq!(p.phase_len(), p.t_prog);
        assert!(!p.in_preamble(0));
    }
}
