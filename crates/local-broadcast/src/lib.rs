//! # local-broadcast: the `LB(t_ack, t_prog, ε)` service and `LBAlg`
//!
//! This crate implements the primary contribution of Lynch & Newport's
//! *A (Truly) Local Broadcast Layer for Unreliable Radio Networks*
//! (Section 4, Appendix C): an ongoing local broadcast service for the
//! dual graph model with two probabilistic latency guarantees —
//!
//! * **Progress**: a receiver with at least one reliable neighbor actively
//!   broadcasting throughout a `t_prog`-round phase receives *some*
//!   message during the phase with probability ≥ 1 − ε.
//! * **Reliability / acknowledgment**: a sender delivers its message to
//!   *all* reliable neighbors before its `ack`, with probability ≥ 1 − ε,
//!   and always acks within `t_ack` rounds.
//!
//! The algorithm, `LBAlg(ε₁)`, partitions rounds into phases of
//! `T_s + T_prog` rounds. Each phase opens with a **preamble** running the
//! seed agreement protocol [`seed_agreement::SeedProcess`] from scratch,
//! giving every node a committed seed shared by a bounded number of
//! nearby groups (Theorem 3.1). The **body** rounds then use those shared
//! seed bits to make *group-correlated* participation and
//! probability-selection choices — the permuted broadcast schedule that
//! defeats the oblivious link scheduler — plus fresh private randomness
//! for the final *within-group* symmetry breaking.
//!
//! Modules:
//!
//! * [`config`] — the Appendix C.1 constants (`T_s`, `T_prog`, `T_ack`,
//!   `κ`, `ε₂`), with practical calibrations.
//! * [`msg`] — payloads and the wire message type.
//! * [`alg`] — [`LbProcess`](alg::LbProcess): the `LBAlg` automaton.
//! * [`spec`] — the four `LB` conditions as trace predicates: timely
//!   acknowledgment and validity (deterministic), reliability and
//!   progress (probabilistic indicators for Monte-Carlo estimation).
//! * [`service`] — workload environments and convenience runners that
//!   drive the service the way a higher layer would.
//! * [`instrument`] — measurement of Lemma 4.2's per-phase seed-group
//!   partition, for the experiment suite.
//!
//! ## Example
//!
//! ```
//! use local_broadcast::{config::LbConfig, service};
//! use radio_sim::prelude::*;
//!
//! let topo = topology::clique(4, 1.0);
//! let cfg = LbConfig::practical(0.25);
//! // Node 0 broadcasts one message; run until it acks.
//! let outcome = service::run_single_broadcast(
//!     &topo,
//!     Box::new(scheduler::AllExtraEdges),
//!     &cfg,
//!     NodeId(0),
//!     7,
//! );
//! assert!(outcome.acked_at.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alg;
pub mod config;
pub mod instrument;
pub mod msg;
pub mod service;
pub mod spec;

pub use alg::LbProcess;
pub use config::LbConfig;
pub use msg::{LbInput, LbMsg, LbOutput, Payload};

/// Trace type produced by running `LBAlg` under the engine.
pub type LbTrace = radio_sim::trace::Trace<msg::LbInput, msg::LbOutput, msg::LbMsg>;
