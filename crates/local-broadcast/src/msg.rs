//! Payloads, inputs, outputs, and the wire message of `LBAlg`.
//!
//! The problem definition (Section 4.1) fixes pairwise-disjoint message
//! sets `M_u` per node; we realize that by tagging every payload with its
//! origin's process id, so `M_u = {Payload { origin: id(u), .. }}` and
//! distinct nodes can never broadcast equal payloads. Environments must
//! additionally keep tags unique per origin (each message is broadcast at
//! most once), which the spec checker verifies.

use bytes::Bytes;
use radio_sim::process::ProcId;
use seed_agreement::alg::SeedMsg;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An application message: an element of `M_origin`.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Payload {
    /// Process id of the only node allowed to broadcast this payload.
    pub origin: ProcId,
    /// Distinguishes this node's messages from each other.
    pub tag: u64,
    /// Opaque application bytes (not interpreted by the layer).
    #[serde(with = "serde_bytes_compat")]
    pub body: Bytes,
}

mod serde_bytes_compat {
    use bytes::Bytes;
    use serde::{Deserialize, Deserializer, Serializer};

    pub fn serialize<S: Serializer>(b: &Bytes, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_bytes(b)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Bytes, D::Error> {
        let v = Vec::<u8>::deserialize(d)?;
        Ok(Bytes::from(v))
    }
}

impl Payload {
    /// A payload with an empty body.
    pub fn new(origin: ProcId, tag: u64) -> Self {
        Payload {
            origin,
            tag,
            body: Bytes::new(),
        }
    }

    /// A payload carrying application bytes.
    pub fn with_body(origin: ProcId, tag: u64, body: impl Into<Bytes>) -> Self {
        Payload {
            origin,
            tag,
            body: body.into(),
        }
    }

    /// The `(origin, tag)` pair identifying this message.
    pub fn key(&self) -> (ProcId, u64) {
        (self.origin, self.tag)
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m({}#{}", self.origin, self.tag)?;
        if !self.body.is_empty() {
            write!(f, ", {}B", self.body.len())?;
        }
        write!(f, ")")
    }
}

/// Environment inputs to the service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LbInput {
    /// `bcast(m)ᵤ`: start broadcasting `m` to all reliable neighbors.
    Bcast(Payload),
}

/// Service outputs to the environment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LbOutput {
    /// `ack(m)ᵤ`: the layer is done broadcasting `m`.
    Ack(Payload),
    /// `recv(m)ᵤ`: first delivery of `m` at this node.
    Recv(Payload),
}

impl LbOutput {
    /// The payload this output concerns.
    pub fn payload(&self) -> &Payload {
        match self {
            LbOutput::Ack(p) | LbOutput::Recv(p) => p,
        }
    }

    /// Whether this is an `ack`.
    pub fn is_ack(&self) -> bool {
        matches!(self, LbOutput::Ack(_))
    }
}

/// The wire message: seed agreement traffic during preambles, data during
/// bodies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LbMsg {
    /// A `SeedAlg` leader announcement (preamble rounds).
    Seed(SeedMsg),
    /// An application payload (body rounds).
    Data(Payload),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_identity_is_origin_and_tag() {
        let a = Payload::new(1, 2);
        let b = Payload::with_body(1, 2, Bytes::new());
        assert_eq!(a, b);
        assert_eq!(a.key(), (1, 2));
        assert_ne!(Payload::new(1, 2), Payload::new(2, 2));
    }

    #[test]
    fn payload_debug_is_compact() {
        let p = Payload::with_body(3, 7, vec![0u8; 5]);
        assert_eq!(format!("{p:?}"), "m(3#7, 5B)");
        assert_eq!(format!("{:?}", Payload::new(3, 7)), "m(3#7)");
    }

    #[test]
    fn output_accessors() {
        let p = Payload::new(4, 0);
        assert!(LbOutput::Ack(p.clone()).is_ack());
        assert!(!LbOutput::Recv(p.clone()).is_ack());
        assert_eq!(LbOutput::Recv(p.clone()).payload(), &p);
    }

    #[test]
    fn payload_serde_round_trip() {
        let p = Payload::with_body(9, 1, vec![1, 2, 3]);
        let json = serde_json::to_string(&p).unwrap();
        let q: Payload = serde_json::from_str(&json).unwrap();
        assert_eq!(p, q);
    }
}
