//! Driving the service: workload environments and convenience runners.
//!
//! The `LB` problem is an *ongoing* service — the deliverable a higher
//! layer (e.g. the abstract MAC adapter) consumes. This module provides
//! the environments that drive it the way the paper's problem statement
//! allows: each node broadcasts a queue of unique messages, injecting the
//! next only after the previous `ack` (the well-formedness constraint of
//! Section 4.1).

use crate::alg::LbProcess;
use crate::config::LbConfig;
use crate::msg::{LbInput, LbOutput, Payload};
use crate::LbTrace;
use radio_sim::engine::Engine;
use radio_sim::environment::Environment;
use radio_sim::graph::NodeId;
use radio_sim::scheduler::LinkScheduler;
use radio_sim::topology::Topology;
use radio_sim::trace::RecordingPolicy;
use std::collections::{BTreeMap, VecDeque};

/// An environment that feeds each node a queue of payloads, respecting
/// the one-outstanding-broadcast rule: the first payload is injected at
/// `start_round`, and each subsequent payload right after the previous
/// ack.
#[derive(Debug, Clone)]
pub struct QueueWorkload {
    queues: Vec<VecDeque<Payload>>,
    start_round: u64,
}

impl QueueWorkload {
    /// Creates the workload; `queues[v]` holds vertex `v`'s payloads in
    /// broadcast order.
    pub fn new(queues: Vec<VecDeque<Payload>>, start_round: u64) -> Self {
        assert!(start_round >= 1, "rounds are 1-based");
        QueueWorkload {
            queues,
            start_round,
        }
    }

    /// A workload where each listed vertex broadcasts `count` payloads
    /// tagged `0..count` (vertex ids double as process ids under the
    /// default identity assignment).
    pub fn uniform(n: usize, senders: &[NodeId], count: u64) -> Self {
        let mut queues = vec![VecDeque::new(); n];
        for v in senders {
            for tag in 0..count {
                queues[v.0].push_back(Payload::new(v.0 as u64, tag));
            }
        }
        QueueWorkload::new(queues, 1)
    }
}

impl Environment<LbInput, LbOutput> for QueueWorkload {
    fn next_inputs(
        &mut self,
        round: u64,
        prev_outputs: &[(NodeId, LbOutput)],
    ) -> Vec<(NodeId, LbInput)> {
        let mut inputs = Vec::new();
        if round == self.start_round {
            for (v, q) in self.queues.iter_mut().enumerate() {
                if let Some(p) = q.pop_front() {
                    inputs.push((NodeId(v), LbInput::Bcast(p)));
                }
            }
        } else if round > self.start_round {
            for (v, out) in prev_outputs {
                if out.is_ack() {
                    if let Some(p) = self.queues[v.0].pop_front() {
                        inputs.push((*v, LbInput::Bcast(p)));
                    }
                }
            }
        }
        inputs
    }
}

/// Builds a ready-to-run engine for `LBAlg` over the given topology.
pub fn build_engine(
    topo: &Topology,
    scheduler: Box<dyn LinkScheduler>,
    cfg: &LbConfig,
    env: Box<dyn Environment<LbInput, LbOutput>>,
    master_seed: u64,
    recording: RecordingPolicy,
) -> Engine<LbProcess> {
    let n = topo.graph.len();
    let procs: Vec<LbProcess> = (0..n).map(|_| LbProcess::new(cfg.clone())).collect();
    let config = topo.configuration(scheduler).with_recording(recording);
    Engine::new(config, procs, env, master_seed)
}

/// Result of [`run_single_broadcast`].
#[derive(Debug, Clone)]
pub struct SingleBroadcastOutcome {
    /// Round of the sender's ack, if it occurred.
    pub acked_at: Option<u64>,
    /// First `recv` round per vertex.
    pub recv_rounds: BTreeMap<NodeId, u64>,
    /// The full execution trace.
    pub trace: LbTrace,
}

impl SingleBroadcastOutcome {
    /// Whether every reliable neighbor of `sender` received before the
    /// ack — the reliability event for this broadcast.
    pub fn reliable(&self, topo: &Topology, sender: NodeId) -> bool {
        let Some(ack) = self.acked_at else {
            return false;
        };
        topo.graph
            .reliable_neighbors(sender)
            .iter()
            .all(|v| self.recv_rounds.get(v).is_some_and(|&r| r <= ack))
    }
}

/// Runs one broadcast from `sender` to completion (or to the `t_ack`
/// bound), returning delivery statistics. Used by the quickstart example
/// and by the acknowledgment experiments.
pub fn run_single_broadcast(
    topo: &Topology,
    scheduler: Box<dyn LinkScheduler>,
    cfg: &LbConfig,
    sender: NodeId,
    master_seed: u64,
) -> SingleBroadcastOutcome {
    let n = topo.graph.len();
    let params = cfg.resolve(topo.r, topo.graph.delta(), topo.graph.delta_prime());
    let mut queues = vec![VecDeque::new(); n];
    queues[sender.0].push_back(Payload::new(sender.0 as u64, 0));
    let env = QueueWorkload::new(queues, 1);
    let mut engine = build_engine(
        topo,
        scheduler,
        cfg,
        Box::new(env),
        master_seed,
        RecordingPolicy::outputs_only(),
    );
    // t_ack plus one slack phase.
    let horizon = params.t_ack_rounds() + params.phase_len();
    engine.run_until(horizon, |t| {
        t.outputs().any(|(_, v, o)| v == sender && o.is_ack())
    });
    let trace = engine.into_trace();

    let mut recv_rounds = BTreeMap::new();
    let mut acked_at = None;
    for (round, v, out) in trace.outputs() {
        match out {
            LbOutput::Ack(_) if v == sender => acked_at = Some(round),
            LbOutput::Recv(_) => {
                recv_rounds.entry(v).or_insert(round);
            }
            _ => {}
        }
    }
    SingleBroadcastOutcome {
        acked_at,
        recv_rounds,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;
    use radio_sim::scheduler::AllExtraEdges;

    #[test]
    fn queue_workload_injects_after_ack() {
        let mut w = QueueWorkload::uniform(2, &[NodeId(0)], 2);
        let r1 = w.next_inputs(1, &[]);
        assert_eq!(r1.len(), 1);
        // No ack yet: nothing.
        assert!(w.next_inputs(2, &[]).is_empty());
        // Ack arrives: next payload.
        let ack = (NodeId(0), LbOutput::Ack(Payload::new(0, 0)));
        let r3 = w.next_inputs(3, std::slice::from_ref(&ack));
        assert_eq!(r3.len(), 1);
        // Queue exhausted.
        assert!(w.next_inputs(4, std::slice::from_ref(&ack)).is_empty());
    }

    #[test]
    fn single_broadcast_completes_and_satisfies_deterministic_spec() {
        let topo = radio_sim::topology::clique(4, 1.0);
        let cfg = LbConfig::fast(0.25);
        let outcome =
            run_single_broadcast(&topo, Box::new(AllExtraEdges), &cfg, NodeId(0), 17);
        assert!(outcome.acked_at.is_some());
        assert!(outcome.reliable(&topo, NodeId(0)));
        let params = cfg.resolve(topo.r, topo.graph.delta(), topo.graph.delta_prime());
        spec::check_timely_ack(&outcome.trace, params.t_ack_rounds()).unwrap();
        spec::check_validity(&outcome.trace, &topo.graph).unwrap();
    }

    #[test]
    fn multi_message_workload_acks_in_order() {
        let topo = radio_sim::topology::clique(3, 1.0);
        let cfg = LbConfig::fast(0.25);
        let params = cfg.resolve(topo.r, topo.graph.delta(), topo.graph.delta_prime());
        let env = QueueWorkload::uniform(3, &[NodeId(0)], 2);
        let mut engine = build_engine(
            &topo,
            Box::new(AllExtraEdges),
            &cfg,
            Box::new(env),
            23,
            RecordingPolicy::outputs_only(),
        );
        engine.run(params.t_ack_rounds() * 3);
        let trace = engine.into_trace();
        let acks: Vec<_> = trace
            .outputs()
            .filter(|(_, v, o)| *v == NodeId(0) && o.is_ack())
            .map(|(r, _, o)| (r, o.payload().tag))
            .collect();
        assert_eq!(acks.len(), 2, "both messages acked");
        assert!(acks[0].0 < acks[1].0);
        assert_eq!(acks[0].1, 0);
        assert_eq!(acks[1].1, 1);
        spec::check_timely_ack(&trace, params.t_ack_rounds()).unwrap();
        spec::check_validity(&trace, &topo.graph).unwrap();
    }
}
