//! `LBAlg(ε₁)`: the local broadcast automaton (Section 4.2).
//!
//! Rounds are partitioned into phases of `T_s + T_prog` rounds. Every
//! phase opens with a fresh run of `SeedAlg(ε₂)` (the *preamble*), after
//! which each node holds a committed seed shared with its group. During
//! the *body*, a node in sending state repeatedly:
//!
//! 1. consumes `⌈log(r² log(1/ε₂))⌉` shared-seed bits — if all zero it is
//!    a **participant** this round (probability `a/(r² log(1/ε₂))`,
//!    `a ∈ [1, 2)`), correlated across its whole seed group;
//! 2. as a participant, consumes `log log Δ` more shared bits selecting
//!    `b ∈ [log Δ]`, i.e. a broadcast probability `2^{-b}` from the
//!    geometric ladder — again correlated within the group (the
//!    *permuted* schedule that the oblivious scheduler cannot have
//!    anticipated);
//! 3. finally flips `b` **private** coins and transmits iff all land zero
//!    — independent within the group, breaking the remaining symmetry.
//!
//! Nodes in receiving state listen through the body. Every first-time
//! reception of a payload produces a `recv` output; after `T_ack` full
//! sending phases the sender outputs `ack` and returns to receiving.

use crate::config::{LbConfig, LbParams, SeedMode};
use crate::msg::{LbInput, LbMsg, LbOutput, Payload};
use radio_sim::process::{Action, Context, ProcId, Process};
use rand::Rng;
use seed_agreement::alg::SeedProcess;
use seed_agreement::seed::Seed;
use seed_agreement::spec::Decide;
use std::collections::HashSet;

/// Sending-side state of the service.
#[derive(Debug, Clone, PartialEq)]
enum NodeState {
    /// Not broadcasting; listening through phase bodies.
    Receiving,
    /// Broadcasting `payload`; counts completed sending body segments
    /// (each phase contributes `bodies` of them).
    Sending {
        payload: Payload,
        bodies_completed: u64,
    },
}

/// The handful of resolved scalars the per-round hot path reads,
/// flattened out of [`LbParams`] at initialization so `transmit` and
/// `on_receive` touch one small `Copy` struct instead of re-deriving
/// them from the full parameter block every round.
#[derive(Debug, Clone, Copy, Default)]
struct HotParams {
    t_s: u64,
    phase_len: u64,
    t_ack: u64,
    bodies: u32,
    participant_bits: usize,
    b_bits: usize,
    kappa: usize,
    agreement: bool,
}

impl HotParams {
    fn of(p: &LbParams) -> Self {
        HotParams {
            t_s: p.t_s,
            phase_len: p.phase_len(),
            t_ack: p.t_ack,
            bodies: p.bodies,
            participant_bits: p.participant_bits,
            b_bits: p.b_bits,
            kappa: p.kappa,
            agreement: p.seed_mode == SeedMode::Agreement,
        }
    }
}

/// The `LBAlg(ε₁)` process.
#[derive(Debug)]
pub struct LbProcess {
    cfg: LbConfig,
    params: Option<LbParams>,
    hot: HotParams,
    my_id: ProcId,
    state: NodeState,
    /// A `bcast` input waiting for the next phase boundary.
    pending: Option<Payload>,
    /// The embedded seed agreement instance for the current preamble.
    preamble: Option<SeedProcess>,
    /// The committed seed for this phase's body, with its consumption
    /// cursor position and the round it was adopted at (used to detect
    /// a stale seed after a crash window spanned a phase boundary).
    phase_seed: Option<(Seed, usize, u64)>,
    /// One commitment per completed preamble, for instrumentation.
    commit_history: Vec<Decide>,
    received_keys: HashSet<(ProcId, u64)>,
    outputs: Vec<LbOutput>,
    /// The `(round, phase position)` computed by this round's `transmit`
    /// call. `on_receive` always runs after `transmit` in the same round
    /// (the engine skips both for down nodes), so it reuses the cached
    /// position instead of re-dividing — `locate` is hot-path cost.
    located: (u64, u64),
}

impl LbProcess {
    /// Creates a process; parameters resolve from the engine context at
    /// its first round.
    pub fn new(cfg: LbConfig) -> Self {
        LbProcess {
            cfg,
            params: None,
            hot: HotParams::default(),
            my_id: 0,
            state: NodeState::Receiving,
            pending: None,
            preamble: None,
            phase_seed: None,
            commit_history: Vec::new(),
            received_keys: HashSet::new(),
            outputs: Vec::new(),
            located: (0, 0),
        }
    }

    /// The resolved round structure, once the first round has run.
    pub fn params(&self) -> Option<&LbParams> {
        self.params.as_ref()
    }

    /// Whether the node is currently in sending state.
    pub fn is_sending(&self) -> bool {
        matches!(self.state, NodeState::Sending { .. })
    }

    /// The seed commitments made at each completed preamble
    /// (instrumentation for experiments E6/E10).
    pub fn commit_history(&self) -> &[Decide] {
        &self.commit_history
    }

    fn ensure_initialized(&mut self, ctx: &Context<'_>) {
        if self.params.is_none() {
            let params = self.cfg.resolve(ctx.r, ctx.delta, ctx.delta_prime);
            self.hot = HotParams::of(&params);
            self.params = Some(params);
            self.my_id = ctx.id;
        }
    }

    fn take_shared_bits(&mut self, k: usize) -> u64 {
        let (seed, pos, _) = self
            .phase_seed
            .as_mut()
            .expect("body rounds run with a committed phase seed");
        assert!(
            *pos + k <= seed.len(),
            "phase seed exhausted: κ sized too small for this configuration"
        );
        let mut out = 0u64;
        for j in 0..k {
            out |= u64::from(seed.bit(*pos + j)) << j;
        }
        *pos += k;
        out
    }
}

impl Process for LbProcess {
    type Msg = LbMsg;
    type Input = LbInput;
    type Output = LbOutput;

    fn on_input(&mut self, input: LbInput, ctx: &mut Context<'_>) {
        self.ensure_initialized(ctx);
        let LbInput::Bcast(payload) = input;
        assert!(
            self.pending.is_none() && !self.is_sending(),
            "environment violated well-formedness: bcast before previous ack (node id {})",
            self.my_id
        );
        assert_eq!(
            payload.origin, self.my_id,
            "payload origin must match the broadcasting node (M_u sets are disjoint)"
        );
        self.pending = Some(payload);
    }

    #[inline]
    fn transmit(&mut self, ctx: &mut Context<'_>) -> Action<LbMsg> {
        self.ensure_initialized(ctx);
        // Hot path: everything the round needs lives in the flat
        // `HotParams`, not the full parameter block.
        let HotParams {
            t_s,
            phase_len,
            participant_bits,
            b_bits,
            kappa,
            agreement,
            ..
        } = self.hot;
        // Advance the phase position incrementally over consecutive
        // rounds (the common case); `locate`'s division runs only after
        // a gap — e.g. the first round after a crash window, where the
        // engine skipped this node's transmit steps.
        let pos = if self.located.0 + 1 == ctx.round && self.located.0 != 0 {
            let next = self.located.1 + 1;
            if next == phase_len {
                0
            } else {
                next
            }
        } else {
            self.params.as_ref().expect("just initialized").locate(ctx.round).1
        };
        debug_assert_eq!(
            pos,
            self.params.as_ref().expect("initialized").locate(ctx.round).1
        );
        self.located = (ctx.round, pos);

        if pos == 0 {
            // Phase boundary: promote a pending bcast, restart SeedAlg.
            if let Some(payload) = self.pending.take() {
                debug_assert!(!self.is_sending());
                self.state = NodeState::Sending {
                    payload,
                    bodies_completed: 0,
                };
            }
            if agreement {
                let seed_cfg = self.params.as_ref().expect("initialized").seed_cfg.clone();
                self.preamble = Some(SeedProcess::new(seed_cfg));
            }
            self.phase_seed = None;
        }

        if pos < t_s {
            // In the preamble. A settled inner instance (decided and
            // inactive) is a guaranteed no-op for the rest of the
            // preamble — skip driving it. A node that was down at the
            // very first phase boundary of its life (crashed from round
            // 1) has no instance at all; it listens until the body.
            let Some(inner) = self.preamble.as_mut() else {
                return Action::Receive;
            };
            if inner.is_settled() {
                return Action::Receive;
            }
            return match inner.transmit(ctx) {
                Action::Transmit(m) => Action::Transmit(LbMsg::Seed(m)),
                Action::Receive => Action::Receive,
            };
        }

        if pos == t_s {
            // First body round: adopt the shared seed for this phase.
            // In the fault-free model the preamble instance exists and
            // has decided by now (SeedAlg well-formedness). Under churn
            // a node can be up here with a missed or partially driven
            // preamble — fall back to a fresh private seed, exactly the
            // no-coordination ablation arm, so the restarted node keeps
            // running (uncoordinated, hence measurably slower) instead
            // of crashing the trial.
            let decide = match (agreement, &self.preamble) {
                (true, Some(inner)) if inner.committed().is_some() => inner
                    .committed()
                    .expect("just checked")
                    .clone(),
                _ => Decide {
                    owner: self.my_id,
                    seed: Seed::random(ctx.rng, kappa),
                },
            };
            self.phase_seed = Some((decide.seed.clone(), 0, ctx.round));
            self.commit_history.push(decide);
        }

        match &self.state {
            NodeState::Receiving => Action::Receive,
            NodeState::Sending { payload, .. } => {
                // A sender that was down at this phase's adoption round
                // (`pos == t_s`) has no phase seed to coordinate with —
                // or, if the crash window also spanned the phase
                // boundary (`pos == 0`), a *stale* partially-consumed
                // seed from the previous phase, which could exhaust.
                // Either way it sits the rest of the phase out rather
                // than panicking in `take_shared_bits`. A seed is
                // current iff it was adopted within this phase (whose
                // first round is `ctx.round - pos`).
                let phase_start = ctx.round - pos;
                if !matches!(self.phase_seed, Some((_, _, adopted)) if adopted >= phase_start) {
                    return Action::Receive;
                }
                let payload = payload.clone();
                // Shared choice 1: participate this round?
                if self.take_shared_bits(participant_bits) != 0 {
                    return Action::Receive;
                }
                // Shared choice 2: which rung of the probability ladder?
                let b = self.take_shared_bits(b_bits) + 1;
                // Private choice: transmit with probability 2^{-b}.
                let p = 2f64.powi(-(b as i32));
                if ctx.rng.gen_bool(p) {
                    Action::Transmit(LbMsg::Data(payload))
                } else {
                    Action::Receive
                }
            }
        }
    }

    #[inline]
    fn on_receive(&mut self, msg: Option<LbMsg>, ctx: &mut Context<'_>) {
        let HotParams {
            t_s,
            phase_len,
            t_ack,
            bodies,
            ..
        } = self.hot;
        // `transmit` already located this round (the engine never calls
        // `on_receive` without it); reuse the cached position.
        debug_assert_eq!(self.located.0, ctx.round, "on_receive without transmit");
        let pos = if self.located.0 == ctx.round {
            self.located.1
        } else {
            self.params.as_ref().expect("initialized").locate(ctx.round).1
        };

        if pos < t_s {
            let inner_msg = match msg {
                Some(LbMsg::Seed(s)) => Some(s),
                // Data traffic cannot occur during globally aligned
                // preambles; tolerate and drop if it ever does.
                _ => None,
            };
            if let Some(inner) = self.preamble.as_mut() {
                // Settled instances ignore receptions and have already
                // decided; driving them further is a no-op.
                if !inner.is_settled() {
                    inner.on_receive(inner_msg, ctx);
                    // Internal decide outputs are not service outputs.
                    let _ = inner.take_outputs();
                }
            }
        } else if let Some(LbMsg::Data(p)) = msg {
            if self.received_keys.insert(p.key()) {
                self.outputs.push(LbOutput::Recv(p));
            }
        }

        if pos == phase_len - 1 {
            // End of phase: each completed phase contributes `bodies`
            // sending body segments toward T_ack.
            if let NodeState::Sending {
                payload,
                bodies_completed,
            } = &mut self.state
            {
                *bodies_completed += u64::from(bodies);
                if *bodies_completed >= t_ack {
                    let done = payload.clone();
                    self.outputs.push(LbOutput::Ack(done));
                    self.state = NodeState::Receiving;
                }
            }
        }
    }

    #[inline]
    fn has_outputs(&self) -> bool {
        !self.outputs.is_empty()
    }

    #[inline]
    fn take_outputs(&mut self) -> Vec<LbOutput> {
        std::mem::take(&mut self.outputs)
    }

    fn on_crash_restart(&mut self, _ctx: &mut Context<'_>) {
        // Volatile memory is lost: the pending message, the adopted
        // phase seed, the embedded preamble instance, the reception
        // dedup set, and all phase-position bookkeeping. Only the
        // static configuration survives the power cycle; parameters
        // re-resolve from the engine context at the next callback, as
        // on first boot. Losing `received_keys` means a re-delivered
        // message may surface as a duplicate `recv` — a real symptom
        // of crash-restart the duplicate-suppression analysis assumes
        // away, now measurable.
        *self = LbProcess::new(self.cfg.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_sim::environment::ScriptedEnvironment;
    use radio_sim::prelude::*;
    use radio_sim::scheduler::AllExtraEdges;

    fn run_lb(
        topo: &radio_sim::topology::Topology,
        cfg: &LbConfig,
        script: Vec<(u64, NodeId, LbInput)>,
        rounds: u64,
        master_seed: u64,
    ) -> crate::LbTrace {
        let n = topo.graph.len();
        let procs: Vec<LbProcess> = (0..n).map(|_| LbProcess::new(cfg.clone())).collect();
        let mut engine = Engine::new(
            topo.configuration(Box::new(AllExtraEdges)),
            procs,
            Box::new(ScriptedEnvironment::new(script)),
            master_seed,
        );
        engine.run(rounds);
        engine.into_trace()
    }

    #[test]
    fn ack_arrives_within_t_ack_rounds() {
        let topo = radio_sim::topology::clique(3, 1.0);
        let cfg = LbConfig::fast(0.25);
        let params = cfg.resolve(1.0, topo.graph.delta(), topo.graph.delta_prime());
        let payload = Payload::new(0, 1);
        let trace = run_lb(
            &topo,
            &cfg,
            vec![(1, NodeId(0), LbInput::Bcast(payload.clone()))],
            params.t_ack_rounds() + 2,
            3,
        );
        let ack = trace
            .outputs()
            .find(|(_, v, o)| *v == NodeId(0) && o.is_ack())
            .expect("sender acks");
        assert!(ack.0 <= 1 + params.t_ack_rounds(), "ack at {}", ack.0);
        assert_eq!(ack.2.payload(), &payload);
    }

    #[test]
    fn neighbors_receive_before_ack() {
        // With all links up and one sender in a small clique, delivery to
        // every neighbor before the ack is overwhelmingly likely.
        let topo = radio_sim::topology::clique(4, 1.0);
        let cfg = LbConfig::fast(0.25);
        let params = cfg.resolve(1.0, topo.graph.delta(), topo.graph.delta_prime());
        let payload = Payload::new(0, 9);
        let trace = run_lb(
            &topo,
            &cfg,
            vec![(1, NodeId(0), LbInput::Bcast(payload.clone()))],
            params.t_ack_rounds() + 2,
            11,
        );
        let ack_round = trace
            .outputs()
            .find(|(_, v, o)| *v == NodeId(0) && o.is_ack())
            .map(|(r, _, _)| r)
            .expect("sender acks");
        for v in 1..4 {
            let recv = trace.outputs().find(|(_, node, o)| {
                node.0 == v && !o.is_ack() && o.payload() == &payload
            });
            let (recv_round, _, _) = recv.unwrap_or_else(|| panic!("node {v} received"));
            assert!(recv_round <= ack_round);
        }
    }

    #[test]
    fn recv_outputs_are_deduplicated() {
        let topo = radio_sim::topology::clique(3, 1.0);
        let cfg = LbConfig::fast(0.25);
        let params = cfg.resolve(1.0, topo.graph.delta(), topo.graph.delta_prime());
        let payload = Payload::new(0, 2);
        let trace = run_lb(
            &topo,
            &cfg,
            vec![(1, NodeId(0), LbInput::Bcast(payload.clone()))],
            params.t_ack_rounds() + 2,
            5,
        );
        for v in 1..3 {
            let recvs = trace
                .outputs()
                .filter(|(_, node, o)| node.0 == v && !o.is_ack())
                .count();
            assert!(recvs <= 1, "node {v} produced {recvs} recv outputs");
        }
    }

    #[test]
    fn no_spurious_outputs_without_input() {
        let topo = radio_sim::topology::clique(3, 1.0);
        let cfg = LbConfig::fast(0.25);
        let params = cfg.resolve(1.0, topo.graph.delta(), topo.graph.delta_prime());
        let trace = run_lb(&topo, &cfg, vec![], params.phase_len() * 2, 7);
        assert_eq!(trace.outputs().count(), 0);
    }

    #[test]
    #[should_panic(expected = "well-formedness")]
    fn rejects_bcast_before_ack() {
        let topo = radio_sim::topology::clique(2, 1.0);
        let cfg = LbConfig::fast(0.25);
        let _ = run_lb(
            &topo,
            &cfg,
            vec![
                (1, NodeId(0), LbInput::Bcast(Payload::new(0, 1))),
                (2, NodeId(0), LbInput::Bcast(Payload::new(0, 2))),
            ],
            10,
            1,
        );
    }

    #[test]
    #[should_panic(expected = "origin")]
    fn rejects_foreign_payload() {
        let topo = radio_sim::topology::clique(2, 1.0);
        let cfg = LbConfig::fast(0.25);
        let _ = run_lb(
            &topo,
            &cfg,
            vec![(1, NodeId(0), LbInput::Bcast(Payload::new(5, 1)))],
            10,
            1,
        );
    }

    #[test]
    fn private_mode_runs_and_delivers() {
        let topo = radio_sim::topology::clique(3, 1.0);
        let cfg = LbConfig::fast(0.25).with_private_seeds();
        let params = cfg.resolve(1.0, topo.graph.delta(), topo.graph.delta_prime());
        assert_eq!(params.t_s, 0);
        let payload = Payload::new(0, 1);
        let trace = run_lb(
            &topo,
            &cfg,
            vec![(1, NodeId(0), LbInput::Bcast(payload.clone()))],
            params.t_ack_rounds() + 2,
            3,
        );
        assert!(trace
            .outputs()
            .any(|(_, v, o)| v == NodeId(0) && o.is_ack()));
        assert!(trace.outputs().any(|(_, _, o)| !o.is_ack()));
        crate::spec::check_validity(&trace, &topo.graph).unwrap();
    }

    #[test]
    fn seed_reuse_mode_acks_within_adapted_bound() {
        let topo = radio_sim::topology::clique(3, 1.0);
        let cfg = LbConfig::fast(0.25).with_seed_reuse(3);
        let params = cfg.resolve(1.0, topo.graph.delta(), topo.graph.delta_prime());
        let payload = Payload::new(0, 1);
        let trace = run_lb(
            &topo,
            &cfg,
            vec![(1, NodeId(0), LbInput::Bcast(payload.clone()))],
            params.t_ack_rounds() + 2,
            5,
        );
        let ack = trace
            .outputs()
            .find(|(_, v, o)| *v == NodeId(0) && o.is_ack())
            .expect("acks");
        assert!(ack.0 <= 1 + params.t_ack_rounds());
        crate::spec::check_timely_ack(&trace, params.t_ack_rounds()).unwrap();
    }

    #[test]
    fn commit_history_grows_per_phase() {
        let topo = radio_sim::topology::clique(3, 1.0);
        let cfg = LbConfig::fast(0.25);
        let params = cfg.resolve(1.0, topo.graph.delta(), topo.graph.delta_prime());
        let n = topo.graph.len();
        let procs: Vec<LbProcess> = (0..n).map(|_| LbProcess::new(cfg.clone())).collect();
        let mut engine = Engine::new(
            topo.configuration(Box::new(AllExtraEdges)),
            procs,
            Box::new(radio_sim::environment::NullEnvironment),
            2,
        );
        engine.run(params.phase_len() * 3);
        for p in engine.processes() {
            assert_eq!(p.commit_history().len(), 3);
        }
    }
}
