//! `LBAlg` over both substrates: the unmodified `LbProcess` runs as a
//! cluster of node runtimes over the `net` crate's transports — the sim
//! transport byte-identically to the engine, the mock network with the
//! same `t_ack` guarantee under delay and loss the simulator cannot
//! express.

use local_broadcast::config::LbConfig;
use local_broadcast::service::QueueWorkload;
use local_broadcast::spec;
use local_broadcast::{LbOutput, LbProcess, Payload};
use net::{Cluster, ClusterConfig, MockNetConfig, MockNetTransport, SimTransport};
use radio_sim::engine::Engine;
use radio_sim::graph::NodeId;
use radio_sim::scheduler::AllExtraEdges;
use radio_sim::topology;
use radio_sim::trace::RecordingPolicy;
use std::collections::VecDeque;

fn workload(n: usize, sender: usize) -> QueueWorkload {
    let mut queues = vec![VecDeque::new(); n];
    queues[sender].push_back(Payload::new(sender as u64, 0));
    QueueWorkload::new(queues, 1)
}

/// The simulator behind the transport trait is invisible to `LBAlg`:
/// engine and sim-transport cluster produce byte-identical executions,
/// and the LB specification accepts the cluster's trace.
#[test]
fn lb_over_the_sim_transport_is_the_engine() {
    let topo = topology::line(5, 0.9, 2.0);
    let cfg = LbConfig::fast(0.25);
    let params = cfg.resolve(topo.r, topo.graph.delta(), topo.graph.delta_prime());
    let n = topo.graph.len();
    let rounds = params.t_ack_rounds() + params.phase_len();
    let seed = 7;

    let procs: Vec<LbProcess> = (0..n).map(|_| LbProcess::new(cfg.clone())).collect();
    let config = topo
        .configuration(Box::new(AllExtraEdges))
        .with_recording(RecordingPolicy::full());
    let mut engine = Engine::new(config, procs, Box::new(workload(n, 0)), seed);
    engine.run(rounds);
    let reference = engine.into_trace();

    let procs: Vec<LbProcess> = (0..n).map(|_| LbProcess::new(cfg.clone())).collect();
    let transport = SimTransport::new(topo.graph.clone(), Box::new(AllExtraEdges));
    let config = ClusterConfig::new(topo.graph.clone())
        .with_r(topo.r)
        .with_recording(RecordingPolicy::full());
    let mut cluster = Cluster::new(config, transport, procs, Box::new(workload(n, 0)), seed);
    cluster.run(rounds);
    let trace = cluster.into_trace();

    assert_eq!(reference.events, trace.events);
    assert_eq!(reference.round_stats, trace.round_stats);
    spec::check_timely_ack(&trace, params.t_ack_rounds())
        .expect("t_ack holds on the cluster trace");
    spec::check_validity(&trace, &topo.graph).expect("validity holds on the cluster trace");
}

/// `t_ack` is a clock guarantee, not a channel guarantee: the sender
/// acks on schedule even when the mock network delays every hop and
/// drops a third of all deliveries.
#[test]
fn lb_ack_deadline_survives_a_degraded_mock_network() {
    let topo = topology::clique(4, 1.0);
    let cfg = LbConfig::fast(0.25);
    let params = cfg.resolve(topo.r, topo.graph.delta(), topo.graph.delta_prime());
    let n = topo.graph.len();

    let procs: Vec<LbProcess> = (0..n).map(|_| LbProcess::new(cfg.clone())).collect();
    let transport = MockNetTransport::new(
        topo.graph.clone(),
        MockNetConfig {
            delay_rounds: 1,
            loss_p: 0.33,
            ..MockNetConfig::default()
        },
        31,
    );
    let config = ClusterConfig::new(topo.graph.clone()).with_r(topo.r);
    let mut cluster = Cluster::new(config, transport, procs, Box::new(workload(n, 0)), 31);
    let acked = cluster.run_until(params.t_ack_rounds() + params.phase_len(), |t| {
        t.outputs().any(|(_, v, o)| v == NodeId(0) && o.is_ack())
    });
    assert!(acked, "the ack deadline holds over a delayed, lossy channel");
}

/// Deliveries that do land over a lossy mock network are real LB
/// deliveries: every `Recv` carries the broadcast payload, at most once
/// per node.
#[test]
fn lb_deliveries_over_the_mock_network_are_exactly_once() {
    let topo = topology::clique(6, 1.0);
    let cfg = LbConfig::fast(0.25);
    let params = cfg.resolve(topo.r, topo.graph.delta(), topo.graph.delta_prime());
    let n = topo.graph.len();

    let procs: Vec<LbProcess> = (0..n).map(|_| LbProcess::new(cfg.clone())).collect();
    let transport = MockNetTransport::new(
        topo.graph.clone(),
        MockNetConfig {
            loss_p: 0.25,
            ..MockNetConfig::default()
        },
        47,
    );
    let config = ClusterConfig::new(topo.graph.clone()).with_r(topo.r);
    let mut cluster = Cluster::new(config, transport, procs, Box::new(workload(n, 0)), 47);
    cluster.run(params.t_ack_rounds() + params.phase_len());
    let trace = cluster.into_trace();

    let mut recvs = vec![0usize; n];
    for (_, v, o) in trace.outputs() {
        if let LbOutput::Recv(p) = o {
            assert_eq!(p.origin, 0, "only node 0 broadcast");
            recvs[v.0] += 1;
        }
    }
    assert!(
        recvs.iter().all(|&c| c <= 1),
        "no duplicate deliveries: {recvs:?}"
    );
    assert!(
        recvs.iter().sum::<usize>() >= 1,
        "a 25%-lossy clique still delivers somewhere"
    );
}
