//! Property-based tests for `LBAlg` configuration arithmetic and the
//! `LB` specification predicates over synthetic traces.

use local_broadcast::config::LbConfig;
use local_broadcast::msg::{LbInput, LbOutput, Payload};
use local_broadcast::spec::{self, LbViolation};
use local_broadcast::LbTrace;
use proptest::prelude::*;
use radio_sim::graph::NodeId;
use radio_sim::trace::{Event, EventKind, Trace};

fn mk_trace(n: usize, rounds: u64) -> LbTrace {
    let mut t = Trace::new(n, (0..n as u64).collect());
    t.rounds = rounds;
    t
}

proptest! {
    #[test]
    fn params_arithmetic_is_consistent(
        eps in 0.01f64..0.5,
        r in 1.0f64..3.0,
        delta in 2usize..200,
        extra in 0usize..200,
    ) {
        let cfg = LbConfig::practical(eps);
        let delta_prime = delta + extra;
        let p = cfg.resolve(r, delta, delta_prime);
        // Structural identities.
        prop_assert_eq!(p.phase_len(), p.t_s + p.t_prog);
        prop_assert_eq!(p.t_ack_rounds(), (p.t_ack + 1) * p.phase_len());
        prop_assert_eq!(p.kappa, (p.t_prog as usize) * (p.participant_bits + p.b_bits));
        prop_assert_eq!(p.seed_cfg.seed_bits, p.kappa);
        prop_assert!(p.ladder >= p.log_delta);
        // Everything positive.
        prop_assert!(p.t_s >= 1 && p.t_prog >= 1 && p.t_ack >= 1);
        // locate() round-trips over a few rounds.
        for round in 1..=p.phase_len() * 2 {
            let (phase, pos) = p.locate(round);
            prop_assert_eq!((phase - 1) * p.phase_len() + pos + 1, round);
            prop_assert!(pos < p.phase_len());
        }
    }

    #[test]
    fn t_prog_monotone_in_delta(eps in 0.01f64..0.5, d1 in 2usize..200, d2 in 2usize..200) {
        let cfg = LbConfig::practical(eps);
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let a = cfg.resolve(2.0, lo, lo);
        let b = cfg.resolve(2.0, hi, hi);
        prop_assert!(a.t_prog <= b.t_prog);
        prop_assert!(a.t_s <= b.t_s);
    }

    #[test]
    fn participant_probability_within_paper_window(
        eps in 0.01f64..0.5,
        r in 1.0f64..3.0,
    ) {
        // 2^{-participant_bits} must be a/(r² log(1/ε₂)) with a ∈ [1, 2)
        // (when the target is ≥ 1 bit's worth).
        let cfg = LbConfig::practical(eps);
        let p = cfg.resolve(r, 16, 16);
        let target = r * r * (1.0 / cfg.epsilon2()).log2();
        let prob = 2f64.powi(-(p.participant_bits as i32));
        let a = prob * target;
        if target >= 2.0 {
            prop_assert!((1.0..2.0).contains(&a), "a = {a}");
        }
    }

    #[test]
    fn timely_ack_accepts_exactly_within_bound(
        bcast_round in 1u64..50,
        latency in 0u64..100,
        bound in 1u64..100,
    ) {
        let mut t = mk_trace(2, 500);
        let p = Payload::new(0, 1);
        t.events.push(Event {
            round: bcast_round,
            node: NodeId(0),
            kind: EventKind::Input(LbInput::Bcast(p.clone())),
        });
        t.events.push(Event {
            round: bcast_round + latency,
            node: NodeId(0),
            kind: EventKind::Output(LbOutput::Ack(p)),
        });
        let ok = spec::check_timely_ack(&t, bound).is_ok();
        prop_assert_eq!(ok, latency <= bound);
    }

    #[test]
    fn validity_accepts_only_neighbor_active_windows(
        recv_round in 1u64..60,
        bcast_round in 1u64..30,
        ack_round in 30u64..60,
        neighbor in prop::bool::ANY,
    ) {
        prop_assume!(bcast_round <= ack_round);
        let g = if neighbor {
            radio_sim::graph::DualGraph::reliable_only(2, [(0, 1)]).unwrap()
        } else {
            radio_sim::graph::DualGraph::reliable_only(2, []).unwrap()
        };
        let mut t = mk_trace(2, 100);
        let p = Payload::new(0, 1);
        t.events.push(Event {
            round: bcast_round,
            node: NodeId(0),
            kind: EventKind::Input(LbInput::Bcast(p.clone())),
        });
        t.events.push(Event {
            round: ack_round,
            node: NodeId(0),
            kind: EventKind::Output(LbOutput::Ack(p.clone())),
        });
        t.events.push(Event {
            round: recv_round,
            node: NodeId(1),
            kind: EventKind::Output(LbOutput::Recv(p)),
        });
        // Keep event order sane for the lifecycle walker.
        t.events.sort_by_key(|e| e.round);
        let valid = spec::check_validity(&t, &g).is_ok();
        let active = bcast_round <= recv_round && recv_round <= ack_round;
        prop_assert_eq!(valid, neighbor && active);
    }

    #[test]
    fn reliability_counts_misses_exactly(
        n in 2usize..8,
        receivers in proptest::collection::vec(prop::bool::ANY, 1..7),
    ) {
        // Star: node 0 reliable-neighbors everyone; receivers[i] marks
        // whether node i+1 receives in time.
        let edges: Vec<(usize, usize)> = (1..n).map(|v| (0, v)).collect();
        let g = radio_sim::graph::DualGraph::reliable_only(n, edges).unwrap();
        let mut t = mk_trace(n, 100);
        let p = Payload::new(0, 1);
        t.events.push(Event {
            round: 1,
            node: NodeId(0),
            kind: EventKind::Input(LbInput::Bcast(p.clone())),
        });
        let mut expected_missed = 0usize;
        for v in 1..n {
            let got = receivers[(v - 1) % receivers.len()];
            if got {
                t.events.push(Event {
                    round: 5,
                    node: NodeId(v),
                    kind: EventKind::Output(LbOutput::Recv(p.clone())),
                });
            } else {
                expected_missed += 1;
            }
        }
        t.events.push(Event {
            round: 50,
            node: NodeId(0),
            kind: EventKind::Output(LbOutput::Ack(p)),
        });
        t.events.sort_by_key(|e| e.round);
        let outcomes = spec::reliability_outcomes(&t, &g).unwrap();
        prop_assert_eq!(outcomes.len(), 1);
        prop_assert_eq!(outcomes[0].missed.len(), expected_missed);
        prop_assert_eq!(outcomes[0].success(), expected_missed == 0);
    }

    #[test]
    fn duplicate_broadcast_always_rejected(round1 in 1u64..20, round2 in 30u64..50) {
        let mut t = mk_trace(2, 100);
        let p = Payload::new(0, 1);
        for (round, ack) in [(round1, round1 + 5), (round2, round2 + 5)] {
            t.events.push(Event {
                round,
                node: NodeId(0),
                kind: EventKind::Input(LbInput::Bcast(p.clone())),
            });
            t.events.push(Event {
                round: ack,
                node: NodeId(0),
                kind: EventKind::Output(LbOutput::Ack(p.clone())),
            });
        }
        t.events.sort_by_key(|e| e.round);
        let dup = matches!(
            spec::lifecycles(&t),
            Err(LbViolation::DuplicatePayload { .. })
        );
        prop_assert!(dup);
    }

    #[test]
    fn progress_outcomes_respect_phase_boundaries(
        t_prog in 2u64..20,
        active_len in 1u64..60,
    ) {
        // Node 1 (neighbor of 0) active rounds 1..=active_len; count
        // hypothesis phases = full phases covered by activity.
        let g = radio_sim::graph::DualGraph::reliable_only(2, [(0, 1)]).unwrap();
        let rounds = 60u64;
        let mut t = mk_trace(2, rounds);
        let p = Payload::new(1, 1);
        t.events.push(Event {
            round: 1,
            node: NodeId(1),
            kind: EventKind::Input(LbInput::Bcast(p.clone())),
        });
        if active_len < rounds {
            t.events.push(Event {
                round: active_len,
                node: NodeId(1),
                kind: EventKind::Output(LbOutput::Ack(p)),
            });
        }
        let outcomes = spec::progress_outcomes(&t, &g, t_prog).unwrap();
        // Expected: node 0 hypothesis holds for phases fully inside
        // [1, active_len].
        let full_phases = rounds / t_prog;
        let covered = (1..=full_phases)
            .filter(|ph| ph * t_prog <= active_len)
            .count();
        let node0: Vec<_> = outcomes.iter().filter(|o| o.node == NodeId(0)).collect();
        prop_assert_eq!(node0.len(), covered);
        // No receptions recorded: all failures.
        prop_assert!(node0.iter().all(|o| !o.received));
    }
}

/// End-to-end property: tiny random LBAlg deployments always satisfy the
/// deterministic spec (few cases, real executions).
mod end_to_end {
    use super::*;
    use local_broadcast::service::{build_engine, QueueWorkload};
    use radio_sim::scheduler;
    use radio_sim::trace::RecordingPolicy;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn random_small_deployments_meet_deterministic_spec(
            n in 2usize..6,
            seed in 0u64..1000,
            sched_p in 0.0f64..1.0,
        ) {
            let topo = radio_sim::topology::clique(n, 1.0);
            let cfg = LbConfig::fast(0.25);
            let params = cfg.resolve(topo.r, topo.graph.delta(), topo.graph.delta_prime());
            let env = QueueWorkload::uniform(n, &[NodeId(0)], 1);
            let mut engine = build_engine(
                &topo,
                Box::new(scheduler::BernoulliEdges::new(sched_p, seed)),
                &cfg,
                Box::new(env),
                seed,
                RecordingPolicy::full(),
            );
            engine.run(params.t_ack_rounds() + params.phase_len());
            let trace = engine.into_trace();
            prop_assert!(spec::check_timely_ack(&trace, params.t_ack_rounds()).is_ok());
            prop_assert!(spec::check_validity(&trace, &topo.graph).is_ok());
        }
    }
}
