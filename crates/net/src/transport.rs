//! The [`Transport`] trait and its two implementations.
//!
//! A transport answers exactly one question per synchronous round: given
//! every node's transmit/listen decision, what does every node *hear*?
//! The answer is a [`Reception`] per vertex; the cluster (or any other
//! runtime) owns everything else — process callbacks, fault masks,
//! traces, statistics.

use radio_sim::graph::{DualGraph, NodeId};
use radio_sim::process::Action;
use radio_sim::resolve;
use radio_sim::rng::{derive_stream, StreamKind};
use radio_sim::scheduler::{AdaptiveScheduler, LinkScheduler, SchedulerBox};
use radio_sim::timeline::GraphTimeline;
use rand::Rng;
use std::collections::VecDeque;
use std::sync::Arc;

/// What one node hears in one round, as reported by a transport.
///
/// Radio semantics, no collision detection: a node that transmitted
/// this round hears nothing regardless of the variant reported for it
/// (the runtime ignores transports' values for transmitters), and
/// `Silence` vs `Collision` are indistinguishable *to the process*
/// (both deliver `⊥`) — the distinction exists only for the outside
/// view (channel statistics).
#[derive(Debug, Clone, PartialEq)]
pub enum Reception<M> {
    /// Nothing arrived at this node.
    Silence,
    /// Two or more arrivals interfered; the node hears noise (`⊥`).
    Collision,
    /// Exactly one message arrived.
    Message {
        /// The transmitting vertex.
        from: NodeId,
        /// The message.
        msg: M,
    },
}

/// How per-round transmit decisions become per-node receptions.
///
/// The contract:
///
/// * `resolve_round` is called exactly once per round, with strictly
///   increasing round numbers starting at 1.
/// * `actions` has one entry per vertex; `Action::Transmit(m)` means
///   the vertex put `m` on the air this round.
/// * On return, `receptions` has one entry per vertex describing what
///   that vertex hears *this* round (which, for a delayed transport,
///   may be traffic transmitted in an earlier round).
/// * Entries for transmitting vertices are ignored by the runtime
///   (a radio cannot listen while transmitting).
/// * The result must be a pure function of the construction parameters
///   and the sequence of `resolve_round` calls — transports are
///   deterministic and replayable, like everything else in the stack.
pub trait Transport<M: Clone + Send>: Send {
    /// Resolves one round of traffic.
    fn resolve_round(&mut self, round: u64, actions: &[Action<M>], receptions: &mut Vec<Reception<M>>);

    /// A short human-readable name for reports.
    fn name(&self) -> &'static str {
        "transport"
    }
}

// ---------------------------------------------------------------------------
// SimTransport
// ---------------------------------------------------------------------------

/// The simulator channel behind the trait: the link scheduler picks the
/// round topology and [`radio_sim::resolve`] applies the collision rule —
/// the *same* free functions [`radio_sim::engine::Engine::step`] calls,
/// serial or sharded, so executions through this transport are
/// byte-identical to the engine's by construction.
pub struct SimTransport {
    graph: Arc<DualGraph>,
    /// Dynamic geometry: the epoch schedule `graph` is swapped from,
    /// at exactly the boundaries the engine swaps at (epoch starts,
    /// before adjacency is read); `epoch` is the current index.
    timeline: Option<GraphTimeline>,
    epoch: usize,
    scheduler: SchedulerBox,
    shards: usize,
    transmitting: Vec<bool>,
    tx_list: Vec<usize>,
    tx_neighbors: Vec<u32>,
    last_sender: Vec<NodeId>,
}

impl SimTransport {
    /// A sim transport over the given dual graph and oblivious link
    /// scheduler, serial resolution.
    pub fn new(graph: impl Into<Arc<DualGraph>>, scheduler: Box<dyn LinkScheduler>) -> Self {
        let graph = graph.into();
        let n = graph.len();
        SimTransport {
            graph,
            timeline: None,
            epoch: 0,
            scheduler: SchedulerBox::Oblivious(scheduler),
            shards: 1,
            transmitting: vec![false; n],
            tx_list: Vec::with_capacity(n),
            tx_neighbors: vec![0; n],
            last_sender: vec![NodeId(0); n],
        }
    }

    /// Replaces the scheduler with an adaptive one (E8 separation runs).
    pub fn with_adaptive(mut self, scheduler: Box<dyn AdaptiveScheduler>) -> Self {
        self.scheduler = SchedulerBox::Adaptive(scheduler);
        self
    }

    /// Fans reception resolution out over `shards` worker threads
    /// (clamped to ≥ 1; byte-identical for every value, exactly like
    /// [`radio_sim::engine::Configuration::with_shards`]).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Installs a dynamic-geometry timeline; the transport resolves
    /// each round over the snapshot in force at that round, swapping at
    /// the same epoch boundaries as the engine.
    ///
    /// # Panics
    ///
    /// Panics if the timeline's vertex count differs from the graph's.
    pub fn with_timeline(mut self, timeline: GraphTimeline) -> Self {
        assert_eq!(
            timeline.len(),
            self.graph.len(),
            "timeline must cover the same vertex set as the graph"
        );
        self.graph = Arc::clone(timeline.epoch_graph(0));
        self.timeline = Some(timeline);
        self
    }

    /// The dual graph this transport resolves over (the current
    /// epoch's snapshot when geometry is dynamic).
    pub fn graph(&self) -> &DualGraph {
        &self.graph
    }
}

impl<M: Clone + Send> Transport<M> for SimTransport {
    fn resolve_round(
        &mut self,
        round: u64,
        actions: &[Action<M>],
        receptions: &mut Vec<Reception<M>>,
    ) {
        // Dynamic geometry: swap in the snapshot covering this round
        // before adjacency is read — the same boundary discipline as
        // the engine, so both substrates resolve over identical graphs
        // every round.
        if let Some(tl) = &self.timeline {
            while self.epoch + 1 < tl.num_epochs() && tl.epoch_start(self.epoch + 1) <= round {
                self.epoch += 1;
                self.graph = Arc::clone(tl.epoch_graph(self.epoch));
            }
        }
        let n = self.graph.len();
        assert_eq!(actions.len(), n, "one action per vertex required");
        self.transmitting.fill(false);
        self.tx_list.clear();
        for (v, a) in actions.iter().enumerate() {
            if matches!(a, Action::Transmit(_)) {
                self.transmitting[v] = true;
                self.tx_list.push(v);
            }
        }
        let selection = match &mut self.scheduler {
            SchedulerBox::Oblivious(s) => s.extra_edges(round, &self.graph),
            SchedulerBox::Adaptive(s) => s.extra_edges(round, &self.graph, &self.transmitting),
        };
        if self.shards > 1 {
            resolve::resolve_receptions_sharded(
                &self.graph,
                &selection,
                &self.transmitting,
                self.shards,
                &mut self.tx_neighbors,
                &mut self.last_sender,
                None,
            );
        } else {
            resolve::resolve_receptions_serial(
                &self.graph,
                &selection,
                &self.transmitting,
                &self.tx_list,
                &mut self.tx_neighbors,
                &mut self.last_sender,
            );
        }
        receptions.clear();
        for u in 0..n {
            receptions.push(match self.tx_neighbors[u] {
                0 => Reception::Silence,
                1 => {
                    let from = self.last_sender[u];
                    let msg = match &actions[from.0] {
                        Action::Transmit(m) => m.clone(),
                        Action::Receive => unreachable!("sender counted but not transmitting"),
                    };
                    Reception::Message { from, msg }
                }
                _ => Reception::Collision,
            });
        }
    }

    fn name(&self) -> &'static str {
        "sim"
    }
}

// ---------------------------------------------------------------------------
// MockNetTransport
// ---------------------------------------------------------------------------

/// Which static links the mock network routes over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkSet {
    /// The reliable edges `E` only (the `Gₜ = G` worst case).
    Reliable,
    /// Every edge of `E'` (the `Gₜ = G'` best case).
    All,
}

/// A network partition: during rounds `[from, to]` (inclusive), every
/// link crossing the boundary between `nodes` and its complement is cut
/// (messages on it are silently lost at send time).
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionWindow {
    /// One side of the partition (vertex indices).
    pub nodes: Vec<usize>,
    /// First partitioned round (inclusive; rounds start at 1).
    pub from: u64,
    /// Last partitioned round (inclusive).
    pub to: u64,
}

/// The mock network's delay/loss/partition model.
#[derive(Debug, Clone, PartialEq)]
pub struct MockNetConfig {
    /// The static link set messages route over.
    pub links: LinkSet,
    /// Per-hop delivery delay in rounds. `0` reproduces the simulator's
    /// synchronous round structure exactly (the sim-equivalence
    /// keystone); `d > 0` delivers a round-`t` transmission at round
    /// `t + d`.
    pub delay_rounds: u64,
    /// Independent per-link Bernoulli loss probability, applied at send
    /// time. Coins come from `StreamKind::Transport` (one stream per
    /// send round, consumed in (sender, link-neighbor) ascending order),
    /// so loss never perturbs process, scheduler, or fault randomness —
    /// and `loss_p = 0` consumes no coins at all.
    pub loss_p: f64,
    /// Partition windows; a link crossed by *any* active window is cut.
    pub partitions: Vec<PartitionWindow>,
}

impl Default for MockNetConfig {
    fn default() -> Self {
        MockNetConfig {
            links: LinkSet::All,
            delay_rounds: 0,
            loss_p: 0.0,
            partitions: Vec::new(),
        }
    }
}

/// A deterministic mock network: per-node inbox queues over an event
/// loop keyed by arrival round.
///
/// Every transmission fans out over the sender's static links; each
/// copy independently survives partitions and loss, then sits in the
/// receiver's inbox until its arrival round. At arrival, radio
/// semantics apply: a receiver that is itself transmitting discards the
/// arrivals (it cannot listen), one surviving arrival is a delivery,
/// and two or more interfere ([`Reception::Collision`]).
pub struct MockNetTransport<M> {
    graph: Arc<DualGraph>,
    config: MockNetConfig,
    master_seed: u64,
    /// `partition_masks[w][v]` — is `v` on the `nodes` side of window `w`?
    partition_masks: Vec<Vec<bool>>,
    /// Ring buffer of inboxes: `pending[d]` holds `(receiver, sender, msg)`
    /// entries arriving `d` rounds from the round being resolved.
    pending: VecDeque<Vec<(usize, NodeId, M)>>,
}

impl<M: Clone + Send> MockNetTransport<M> {
    /// A mock network over the given graph's links, seeded like every
    /// other component (the seed selects the loss-coin streams).
    ///
    /// # Panics
    ///
    /// Panics if `loss_p` is outside `[0, 1]`, or a partition window is
    /// malformed (zero-based round, empty or out-of-range node set).
    pub fn new(graph: impl Into<Arc<DualGraph>>, config: MockNetConfig, master_seed: u64) -> Self {
        let graph = graph.into();
        let n = graph.len();
        assert!(
            (0.0..=1.0).contains(&config.loss_p),
            "loss_p must be in [0, 1], got {}",
            config.loss_p
        );
        let partition_masks = config
            .partitions
            .iter()
            .map(|w| {
                assert!(w.from >= 1 && w.to >= w.from, "malformed partition window");
                let mut mask = vec![false; n];
                for &v in &w.nodes {
                    assert!(v < n, "partition references vertex {v} out of range");
                    mask[v] = true;
                }
                mask
            })
            .collect();
        let mut pending = VecDeque::new();
        for _ in 0..=config.delay_rounds {
            pending.push_back(Vec::new());
        }
        MockNetTransport {
            graph,
            config,
            master_seed,
            partition_masks,
            pending,
        }
    }

    /// The model this network runs.
    pub fn config(&self) -> &MockNetConfig {
        &self.config
    }
}

impl<M: Clone + Send> Transport<M> for MockNetTransport<M> {
    fn resolve_round(
        &mut self,
        round: u64,
        actions: &[Action<M>],
        receptions: &mut Vec<Reception<M>>,
    ) {
        let n = self.graph.len();
        assert_eq!(actions.len(), n, "one action per vertex required");
        let graph = Arc::clone(&self.graph);
        let delay = self.config.delay_rounds as usize;
        debug_assert_eq!(self.pending.len(), delay + 1);

        // Send phase: fan each transmission out over the sender's
        // links, drop partition-crossing and lossy copies at send time,
        // enqueue the rest for arrival at `round + delay`. Loss coins
        // are flipped in (sender ascending, neighbor ascending) order
        // from this round's Transport stream, and only when the model
        // is actually lossy.
        let active_masks: Vec<&Vec<bool>> = self
            .config
            .partitions
            .iter()
            .zip(&self.partition_masks)
            .filter(|(w, _)| round >= w.from && round <= w.to)
            .map(|(_, mask)| mask)
            .collect();
        let loss_p = self.config.loss_p;
        let mut loss_rng = None;
        for (v, action) in actions.iter().enumerate() {
            let Action::Transmit(m) = action else { continue };
            let neighbors = match self.config.links {
                LinkSet::Reliable => graph.reliable_neighbors(NodeId(v)),
                LinkSet::All => graph.all_neighbors(NodeId(v)),
            };
            for &u in neighbors {
                if active_masks.iter().any(|mask| mask[v] != mask[u.0]) {
                    continue;
                }
                if loss_p > 0.0 {
                    let rng = loss_rng.get_or_insert_with(|| {
                        derive_stream(self.master_seed, StreamKind::Transport, round)
                    });
                    if rng.gen_bool(loss_p) {
                        continue;
                    }
                }
                self.pending[delay].push((u.0, NodeId(v), m.clone()));
            }
        }

        // Arrival phase: drain this round's inbox slot and classify.
        // Entries for vertices transmitting this round are discarded —
        // a radio cannot listen while transmitting, and a delayed
        // message is not buffered past its arrival round.
        let arrivals = self.pending.pop_front().expect("ring is never empty");
        self.pending.push_back(Vec::new());
        receptions.clear();
        receptions.extend((0..n).map(|_| Reception::Silence));
        for (u, from, msg) in arrivals {
            receptions[u] = match receptions[u] {
                Reception::Silence => Reception::Message { from, msg },
                _ => Reception::Collision,
            };
        }
    }

    fn name(&self) -> &'static str {
        "mock-net"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_sim::scheduler::{AllExtraEdges, NoExtraEdges};

    fn line4() -> DualGraph {
        DualGraph::new(4, [(0, 1), (1, 2), (2, 3)], [(0, 2), (1, 3)]).unwrap()
    }

    fn tx(m: u32) -> Action<u32> {
        Action::Transmit(m)
    }

    fn rx() -> Action<u32> {
        Action::Receive
    }

    #[test]
    fn sim_transport_classifies_by_collision_rule() {
        let mut t = SimTransport::new(line4(), Box::new(NoExtraEdges));
        let mut out = Vec::new();
        // 0 and 2 transmit: 1 collides, 3 hears 2.
        t.resolve_round(1, &[tx(7), rx(), tx(9), rx()], &mut out);
        assert_eq!(out[1], Reception::Collision);
        assert_eq!(
            out[3],
            Reception::Message {
                from: NodeId(2),
                msg: 9
            }
        );
        assert_eq!(out[0], Reception::Silence);
    }

    #[test]
    fn sim_transport_extra_edges_follow_the_scheduler() {
        let g = DualGraph::new(2, [], [(0, 1)]).unwrap();
        let mut with = SimTransport::new(g.clone(), Box::new(AllExtraEdges));
        let mut out = Vec::new();
        with.resolve_round(1, &[tx(5), rx()], &mut out);
        assert!(matches!(out[1], Reception::Message { .. }));
        let mut without = SimTransport::new(g, Box::new(NoExtraEdges));
        without.resolve_round(1, &[tx(5), rx()], &mut out);
        assert_eq!(out[1], Reception::Silence);
    }

    #[test]
    fn sim_transport_sharded_matches_serial() {
        let mut serial = SimTransport::new(line4(), Box::new(AllExtraEdges));
        let mut sharded = SimTransport::new(line4(), Box::new(AllExtraEdges)).with_shards(3);
        let mut a = Vec::new();
        let mut b = Vec::new();
        for round in 1..=4 {
            let actions = [tx(round as u32), rx(), tx(100 + round as u32), rx()];
            serial.resolve_round(round, &actions, &mut a);
            sharded.resolve_round(round, &actions, &mut b);
            assert_eq!(a, b, "round {round}");
        }
    }

    #[test]
    fn mock_net_zero_delay_matches_sim_on_reliable_links() {
        let mut sim = SimTransport::new(line4(), Box::new(NoExtraEdges));
        let mut mock = MockNetTransport::new(
            line4(),
            MockNetConfig {
                links: LinkSet::Reliable,
                ..MockNetConfig::default()
            },
            0xFEED,
        );
        let mut a = Vec::new();
        let mut b = Vec::new();
        for round in 1..=6 {
            let actions = match round % 3 {
                0 => [tx(1), rx(), tx(2), rx()],
                1 => [rx(), tx(3), rx(), rx()],
                _ => [tx(4), rx(), rx(), tx(5)],
            };
            sim.resolve_round(round, &actions, &mut a);
            mock.resolve_round(round, &actions, &mut b);
            // Transmitter entries are unspecified; compare listeners.
            for u in 0..4 {
                if matches!(actions[u], Action::Receive) {
                    assert_eq!(a[u], b[u], "round {round}, u {u}");
                }
            }
        }
    }

    #[test]
    fn mock_net_delays_delivery_by_the_configured_rounds() {
        let g = DualGraph::reliable_only(2, [(0, 1)]).unwrap();
        let mut mock = MockNetTransport::new(
            g,
            MockNetConfig {
                links: LinkSet::Reliable,
                delay_rounds: 2,
                ..MockNetConfig::default()
            },
            1,
        );
        let mut out = Vec::new();
        mock.resolve_round(1, &[tx(7), rx()], &mut out);
        assert_eq!(out[1], Reception::Silence, "in flight");
        mock.resolve_round(2, &[rx(), rx()], &mut out);
        assert_eq!(out[1], Reception::Silence, "still in flight");
        mock.resolve_round(3, &[rx(), rx()], &mut out);
        assert_eq!(
            out[1],
            Reception::Message {
                from: NodeId(0),
                msg: 7
            },
            "arrives two rounds after transmission"
        );
    }

    #[test]
    fn mock_net_discards_arrivals_at_a_transmitting_receiver() {
        let g = DualGraph::reliable_only(2, [(0, 1)]).unwrap();
        let mut mock = MockNetTransport::new(
            g,
            MockNetConfig {
                links: LinkSet::Reliable,
                delay_rounds: 1,
                ..MockNetConfig::default()
            },
            1,
        );
        let mut out = Vec::new();
        mock.resolve_round(1, &[tx(7), rx()], &mut out);
        // Node 1 transmits exactly when node 0's message arrives: lost.
        mock.resolve_round(2, &[rx(), tx(8)], &mut out);
        mock.resolve_round(3, &[rx(), rx()], &mut out);
        assert_eq!(out[1], Reception::Silence, "not buffered past arrival");
    }

    #[test]
    fn partition_window_cuts_crossing_links_only_while_active() {
        let g = DualGraph::reliable_only(3, [(0, 1), (1, 2)]).unwrap();
        let mut mock = MockNetTransport::new(
            g,
            MockNetConfig {
                links: LinkSet::Reliable,
                partitions: vec![PartitionWindow {
                    nodes: vec![0],
                    from: 2,
                    to: 3,
                }],
                ..MockNetConfig::default()
            },
            1,
        );
        let mut out = Vec::new();
        for round in 1..=4 {
            mock.resolve_round(round, &[tx(round as u32), rx(), tx(50)], &mut out);
            let heard = matches!(out[1], Reception::Message { .. } | Reception::Collision);
            if (2..=3).contains(&round) {
                // 0→1 is cut, so only 2's copy arrives: a clean delivery.
                assert_eq!(
                    out[1],
                    Reception::Message {
                        from: NodeId(2),
                        msg: 50
                    },
                    "round {round}: the uncut side still delivers"
                );
            } else {
                assert!(heard, "round {round}");
                assert_eq!(out[1], Reception::Collision, "both sides reach 1");
            }
        }
    }

    #[test]
    fn loss_coins_are_deterministic_and_seed_sensitive() {
        let g = DualGraph::reliable_only(2, [(0, 1)]).unwrap();
        let run = |seed: u64| {
            let mut mock = MockNetTransport::new(
                g.clone(),
                MockNetConfig {
                    links: LinkSet::Reliable,
                    loss_p: 0.5,
                    ..MockNetConfig::default()
                },
                seed,
            );
            let mut out = Vec::new();
            (1..=64)
                .map(|round| {
                    mock.resolve_round(round, &[tx(round as u32), rx()], &mut out);
                    matches!(out[1], Reception::Message { .. })
                })
                .collect::<Vec<bool>>()
        };
        let a = run(7);
        assert_eq!(a, run(7), "same seed, same losses");
        assert_ne!(a, run(8), "loss pattern tracks the seed");
        let delivered = a.iter().filter(|&&d| d).count();
        assert!((10..=54).contains(&delivered), "p = 0.5 loses about half");
    }
}
