//! # net: running the paper's processes off the simulator
//!
//! The process layer ([`radio_sim::process::Process`]) is already pure
//! message-in/message-out: a process sees inputs, makes a transmit/listen
//! decision, and handles a reception — nothing else. The only thing that
//! ties `LbProcess`/`SeedProcess`/the baselines to the lockstep
//! [`Engine`](radio_sim::engine::Engine) is the *channel*: how one
//! round's transmit decisions become per-node receptions.
//!
//! This crate extracts that step behind the [`Transport`](transport::Transport)
//! trait and supplies two implementations:
//!
//! * [`SimTransport`](transport::SimTransport) — wraps the exact
//!   collision-resolution functions the engine itself calls
//!   ([`radio_sim::resolve`]), scheduler and sharding included, so an
//!   execution routed through the trait is **byte-identical** to the
//!   engine's.
//! * [`MockNetTransport`](transport::MockNetTransport) — a deterministic
//!   network event loop with per-link delivery delay, Bernoulli loss,
//!   and partition windows, seeded from the existing
//!   [`StreamKind`](radio_sim::rng::StreamKind) machinery
//!   (`StreamKind::Transport`, so a lossy network never perturbs
//!   process randomness). With delay 0, no loss, and no partitions its
//!   executions byte-compare equal to the simulator's — the bridge
//!   between the reproduction and a deployable, socket-shaped system.
//!
//! On top of the trait, [`runtime`] provides the round synchronizer:
//! one [`NodeRuntime`](runtime::NodeRuntime) per process and a
//! [`Cluster`](runtime::Cluster) that drives N runtimes through the
//! Section 2 round structure (inputs → transmit → reception → outputs),
//! communicating *only* through the transport — any
//! `radio_sim::Process` runs unmodified. The cluster records the same
//! [`Trace`](radio_sim::trace::Trace) the engine does, so every
//! specification predicate evaluates over both substrates unchanged.
//!
//! See `docs/transport.md` for the trait contract, the delay/loss/
//! partition model, the sim-equivalence argument, and what a
//! real-socket backend would add.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod runtime;
pub mod transport;

pub use runtime::{Cluster, ClusterConfig, NodeRuntime};
pub use transport::{
    LinkSet, MockNetConfig, MockNetTransport, PartitionWindow, Reception, SimTransport, Transport,
};
