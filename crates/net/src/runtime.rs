//! Node runtimes and the round-synchronized cluster.
//!
//! A [`NodeRuntime`] is one process plus its private random stream — the
//! unit a real deployment would run per device. A [`Cluster`] drives N
//! runtimes through the paper's Section 2 round structure (inputs →
//! transmit decisions → reception → outputs), with the reception step
//! delegated entirely to a [`Transport`]: the runtimes communicate
//! *only* through it.
//!
//! The cluster replicates [`radio_sim::engine::Engine::step`] exactly —
//! same callback order, same event ordering, same fault-coin discipline,
//! same per-node RNG derivation — so a cluster over
//! [`SimTransport`](crate::transport::SimTransport) produces a trace
//! byte-identical to the engine's (pinned by tests here and by a
//! proptest in `tests/`), and any divergence under
//! [`MockNetTransport`](crate::transport::MockNetTransport) is
//! attributable to the network model alone.

use crate::transport::{Reception, Transport};
use radio_sim::environment::Environment;
use radio_sim::fault::FaultPlan;
use radio_sim::graph::{DualGraph, NodeId};
use radio_sim::process::{Action, Context, ProcId, Process};
use radio_sim::rng::{derive_stream, StreamKind};
use radio_sim::timeline::GraphTimeline;
use radio_sim::trace::{Event, EventKind, FaultEvent, RecordingPolicy, RoundStats, Trace};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Everything a cluster needs besides the transport, the processes, the
/// environment, and the seed — the same knobs as
/// [`radio_sim::engine::Configuration`] minus the channel (scheduler and
/// shards live inside the transport now).
#[derive(Debug)]
pub struct ClusterConfig {
    /// The dual graph the nodes live on. Must be the same graph the
    /// transport routes over.
    pub graph: Arc<DualGraph>,
    /// Id assignment: `proc_ids[v]` is the process id at vertex `v`.
    /// Must be injective.
    pub proc_ids: Vec<ProcId>,
    /// The geographic parameter `r ≥ 1`.
    pub r: f64,
    /// What the cluster records into the trace.
    pub recording: RecordingPolicy,
    /// The fault schedule (churn, jamming, drop bursts); empty by
    /// default.
    pub faults: FaultPlan,
    /// Dynamic geometry: the epoch schedule of dual-graph snapshots.
    /// Must match the timeline installed on the transport
    /// ([`crate::transport::SimTransport::with_timeline`]) so both
    /// sides swap at identical boundaries. `None` keeps the static
    /// path byte-identical.
    pub timeline: Option<GraphTimeline>,
}

impl ClusterConfig {
    /// A config with the identity id assignment, `r = 2`, and
    /// output-only recording — the same defaults as
    /// [`radio_sim::engine::Configuration::new`].
    pub fn new(graph: impl Into<Arc<DualGraph>>) -> Self {
        let graph = graph.into();
        let n = graph.len();
        ClusterConfig {
            graph,
            proc_ids: (0..n as u64).collect(),
            r: 2.0,
            recording: RecordingPolicy::outputs_only(),
            faults: FaultPlan::none(),
            timeline: None,
        }
    }

    /// Installs a dynamic-geometry timeline. The config's `graph`
    /// becomes the timeline's first snapshot, mirroring
    /// [`radio_sim::engine::Configuration::with_timeline`].
    ///
    /// # Panics
    ///
    /// Panics if the timeline's vertex count differs from the graph's.
    pub fn with_timeline(mut self, timeline: GraphTimeline) -> Self {
        assert_eq!(
            timeline.len(),
            self.graph.len(),
            "timeline must cover the same vertex set as the graph"
        );
        self.graph = Arc::clone(timeline.epoch_graph(0));
        self.timeline = Some(timeline);
        self
    }

    /// Sets the geographic parameter `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r < 1`.
    pub fn with_r(mut self, r: f64) -> Self {
        assert!(r >= 1.0, "the model requires r >= 1, got {r}");
        self.r = r;
        self
    }

    /// Sets an explicit id assignment.
    ///
    /// # Panics
    ///
    /// Panics if the assignment length differs from the vertex count or
    /// is not injective.
    pub fn with_proc_ids(mut self, ids: Vec<ProcId>) -> Self {
        assert_eq!(ids.len(), self.graph.len(), "one id per vertex required");
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "id assignment must be injective");
        self.proc_ids = ids;
        self
    }

    /// Sets the trace recording policy.
    pub fn with_recording(mut self, recording: RecordingPolicy) -> Self {
        self.recording = recording;
        self
    }

    /// Installs a fault plan.
    ///
    /// # Panics
    ///
    /// Panics if the plan references a vertex outside the graph or
    /// contains a malformed window/probability.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        faults
            .validate(self.graph.len())
            .unwrap_or_else(|e| panic!("invalid fault plan: {e}"));
        self.faults = faults;
        self
    }
}

/// One process and its private random stream — the per-device state a
/// real deployment would host behind a socket.
pub struct NodeRuntime<P: Process> {
    proc: P,
    rng: ChaCha8Rng,
}

impl<P: Process> NodeRuntime<P> {
    /// The process this runtime hosts.
    pub fn process(&self) -> &P {
        &self.proc
    }
}

/// The round synchronizer: drives N [`NodeRuntime`]s through the
/// Section 2 round structure, resolving receptions through a
/// [`Transport`].
///
/// Step order per round, mirroring the engine exactly:
///
/// 0. fault masks and Crash/Recover/JamStart/JamEnd transitions (with
///    `on_restart` hooks);
/// 1. environment inputs (fed last round's outputs);
/// 2. transmit decisions (down nodes take no step);
/// 3. `transport.resolve_round`, then per-listener classification
///    (jamming, drop bursts) and `on_receive`;
/// 4. outputs, consumed by the environment next round.
pub struct Cluster<P: Process, T: Transport<P::Msg>> {
    graph: Arc<DualGraph>,
    /// Dynamic geometry: `graph` is swapped from this schedule at epoch
    /// starts, before the round's fault step — the same boundaries the
    /// engine (and a timeline-carrying transport) swap at.
    timeline: Option<GraphTimeline>,
    epoch: usize,
    transport: T,
    r: f64,
    recording: RecordingPolicy,
    faults: FaultPlan,
    master_seed: u64,
    delta: usize,
    delta_prime: usize,
    nodes: Vec<NodeRuntime<P>>,
    env: Box<dyn Environment<P::Input, P::Output>>,
    pending_outputs: Vec<(NodeId, P::Output)>,
    outputs_prev: Vec<(NodeId, P::Output)>,
    round: u64,
    down: Vec<bool>,
    down_prev: Vec<bool>,
    jammed: Vec<bool>,
    jam_prev: Vec<bool>,
    /// Per-round action vector handed to the transport, reused across
    /// rounds.
    actions: Vec<Action<P::Msg>>,
    /// Per-round receptions filled by the transport, reused across
    /// rounds.
    receptions: Vec<Reception<P::Msg>>,
    transmitters: usize,
    trace: Trace<P::Input, P::Output, P::Msg>,
}

impl<P: Process, T: Transport<P::Msg>> Cluster<P, T> {
    /// Builds a cluster from a config, a transport, one process per
    /// vertex, an environment, and the master seed (per-node streams
    /// derive exactly as in [`radio_sim::engine::Engine::new`]).
    ///
    /// # Panics
    ///
    /// Panics if `procs.len()` differs from the graph's vertex count.
    pub fn new(
        config: ClusterConfig,
        transport: T,
        procs: Vec<P>,
        env: Box<dyn Environment<P::Input, P::Output>>,
        master_seed: u64,
    ) -> Self {
        let n = config.graph.len();
        assert_eq!(procs.len(), n, "need exactly one process per vertex");
        let nodes = procs
            .into_iter()
            .enumerate()
            .map(|(v, proc)| NodeRuntime {
                proc,
                rng: derive_stream(master_seed, StreamKind::Process, v as u64),
            })
            .collect();
        // Timeline maxima when geometry is dynamic, exactly like the
        // engine, so processes see constant Δ/Δ' across epochs.
        let (delta, delta_prime) = match &config.timeline {
            Some(t) => (t.delta(), t.delta_prime()),
            None => (config.graph.delta(), config.graph.delta_prime()),
        };
        let trace = Trace::new(n, config.proc_ids.clone());
        Cluster {
            graph: config.graph,
            timeline: config.timeline,
            epoch: 0,
            transport,
            r: config.r,
            recording: config.recording,
            faults: config.faults,
            master_seed,
            delta,
            delta_prime,
            nodes,
            env,
            pending_outputs: Vec::new(),
            outputs_prev: Vec::new(),
            round: 0,
            down: vec![false; n],
            down_prev: vec![false; n],
            jammed: vec![false; n],
            jam_prev: vec![false; n],
            actions: (0..n).map(|_| Action::Receive).collect(),
            receptions: Vec::with_capacity(n),
            transmitters: 0,
            trace,
        }
    }

    /// The number of completed rounds.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The execution trace accumulated so far.
    pub fn trace(&self) -> &Trace<P::Input, P::Output, P::Msg> {
        &self.trace
    }

    /// Consumes the cluster, yielding the trace.
    pub fn into_trace(self) -> Trace<P::Input, P::Output, P::Msg> {
        self.trace
    }

    /// The node runtimes (for instrumentation in experiments).
    pub fn nodes(&self) -> &[NodeRuntime<P>] {
        &self.nodes
    }

    /// Read access to the processes, in vertex order.
    pub fn processes(&self) -> impl Iterator<Item = &P> {
        self.nodes.iter().map(|nr| &nr.proc)
    }

    /// The transport the cluster routes over.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// The dual graph the nodes live on (the current epoch's snapshot
    /// when geometry is dynamic).
    pub fn graph(&self) -> &DualGraph {
        &self.graph
    }

    /// The index of the epoch whose snapshot is currently in force
    /// (always 0 for static geometry).
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// Reserves trace capacity for `rounds` further rounds of channel
    /// stats (mirrors [`radio_sim::engine::Engine::reserve_rounds`]).
    pub fn reserve_rounds(&mut self, rounds: u64) {
        if self.recording.channel_stats {
            self.trace.round_stats.reserve(rounds as usize);
        }
    }

    /// Executes one synchronous round.
    pub fn step(&mut self) {
        let n = self.graph.len();
        let round = self.round + 1;
        let have_faults = !self.faults.is_empty();

        // Dynamic geometry: swap in the snapshot covering this round
        // before anything reads adjacency (the transport swaps its own
        // copy inside `resolve_round` at the same boundaries).
        if let Some(tl) = &self.timeline {
            while self.epoch + 1 < tl.num_epochs() && tl.epoch_start(self.epoch + 1) <= round {
                self.epoch += 1;
                self.graph = Arc::clone(tl.epoch_graph(self.epoch));
            }
        }

        // Step 0: fault masks for this round; record Crash/Recover and
        // JamStart/JamEnd transitions and fire recovery hooks.
        if have_faults {
            self.faults.fill_down(round, &mut self.down);
            self.faults.fill_jammed(round, &mut self.jammed);
            for v in 0..n {
                if self.down[v] != self.down_prev[v] {
                    let kind = if self.down[v] {
                        FaultEvent::Crash
                    } else {
                        FaultEvent::Recover
                    };
                    self.trace.events.push(Event {
                        round,
                        node: NodeId(v),
                        kind: EventKind::Fault(kind),
                    });
                    if !self.down[v] {
                        let node = &mut self.nodes[v];
                        let ctx = &mut Context {
                            round,
                            id: self.trace.proc_ids[v],
                            delta: self.delta,
                            delta_prime: self.delta_prime,
                            r: self.r,
                            rng: &mut node.rng,
                        };
                        // Same dispatch as the engine's step 0, so a
                        // cluster execution stays byte-identical to the
                        // simulator's under every crash mode.
                        if self.faults.restart_recovery(NodeId(v), round) {
                            node.proc.on_crash_restart(ctx);
                        } else {
                            node.proc.on_restart(ctx);
                        }
                    }
                }
                if self.jammed[v] != self.jam_prev[v] {
                    let kind = if self.jammed[v] {
                        FaultEvent::JamStart
                    } else {
                        FaultEvent::JamEnd
                    };
                    self.trace.events.push(Event {
                        round,
                        node: NodeId(v),
                        kind: EventKind::Fault(kind),
                    });
                }
            }
            self.down_prev.copy_from_slice(&self.down);
            self.jam_prev.copy_from_slice(&self.jammed);
        }

        // Step 1: environment inputs (receives last round's outputs).
        std::mem::swap(&mut self.pending_outputs, &mut self.outputs_prev);
        self.pending_outputs.clear();
        let inputs = self.env.next_inputs(round, &self.outputs_prev);
        for (v, input) in inputs {
            assert!(v.0 < n, "environment addressed nonexistent vertex {v}");
            if have_faults && self.down[v.0] {
                self.trace.events.push(Event {
                    round,
                    node: v,
                    kind: EventKind::Fault(FaultEvent::InputLost),
                });
                continue;
            }
            self.trace.events.push(Event {
                round,
                node: v,
                kind: EventKind::Input(input.clone()),
            });
            let node = &mut self.nodes[v.0];
            let ctx = &mut Context {
                round,
                id: self.trace.proc_ids[v.0],
                delta: self.delta,
                delta_prime: self.delta_prime,
                r: self.r,
                rng: &mut node.rng,
            };
            node.proc.on_input(input, ctx);
        }

        // Step 2: transmit decisions. Down nodes take no step (their
        // action stays Receive, so the transport sees them as silent
        // listeners, exactly like the engine's skipped transmitters).
        self.transmitters = 0;
        for (v, node) in self.nodes.iter_mut().enumerate() {
            self.actions[v] = Action::Receive;
            if have_faults && self.down[v] {
                continue;
            }
            let ctx = &mut Context {
                round,
                id: self.trace.proc_ids[v],
                delta: self.delta,
                delta_prime: self.delta_prime,
                r: self.r,
                rng: &mut node.rng,
            };
            match node.proc.transmit(ctx) {
                Action::Transmit(m) => {
                    self.actions[v] = Action::Transmit(m);
                    self.transmitters += 1;
                    if self.recording.transmissions {
                        self.trace.events.push(Event {
                            round,
                            node: NodeId(v),
                            kind: EventKind::Transmit,
                        });
                    }
                }
                Action::Receive => {}
            }
        }

        // Step 3: the transport resolves this round's traffic; classify
        // per listener (jamming, drop bursts) and deliver.
        self.transport
            .resolve_round(round, &self.actions, &mut self.receptions);
        assert_eq!(
            self.receptions.len(),
            n,
            "transport must report one reception per vertex"
        );

        let mut stats = self.recording.channel_stats.then(|| RoundStats {
            transmitters: self.transmitters,
            ..Default::default()
        });

        // The drop-burst stream for this round, derived lazily exactly
        // like the engine's: fault coins never touch process, scheduler,
        // or transport randomness.
        let mut fault_rng: Option<ChaCha8Rng> = None;
        for u in 0..n {
            if have_faults && self.down[u] {
                if let Some(s) = stats.as_mut() {
                    s.down += 1;
                }
                continue;
            }
            let received: Option<P::Msg> = if matches!(self.actions[u], Action::Transmit(_)) {
                // Transmitters are not receiving this round.
                None
            } else if have_faults && self.jammed[u] {
                if let Some(s) = stats.as_mut() {
                    s.jammed += 1;
                }
                None
            } else {
                match &self.receptions[u] {
                    Reception::Message { from, msg } => {
                        let from = *from;
                        // An otherwise-successful reception may still be
                        // lost to an active drop burst (one coin per
                        // burst, in vertex order, from the fault stream).
                        let mut suppressed = false;
                        if have_faults {
                            for burst in self.faults.active_drops(round) {
                                let rng = fault_rng.get_or_insert_with(|| {
                                    derive_stream(self.master_seed, StreamKind::Fault, round)
                                });
                                if rng.gen_bool(burst.p) {
                                    suppressed = true;
                                }
                            }
                        }
                        if suppressed {
                            if self.recording.receptions {
                                self.trace.events.push(Event {
                                    round,
                                    node: NodeId(u),
                                    kind: EventKind::Fault(FaultEvent::Dropped { from }),
                                });
                            }
                            if let Some(s) = stats.as_mut() {
                                s.dropped += 1;
                            }
                            None
                        } else {
                            let msg = msg.clone();
                            if self.recording.receptions {
                                self.trace.events.push(Event {
                                    round,
                                    node: NodeId(u),
                                    kind: EventKind::Receive {
                                        from,
                                        msg: msg.clone(),
                                    },
                                });
                            }
                            if let Some(s) = stats.as_mut() {
                                s.deliveries += 1;
                            }
                            Some(msg)
                        }
                    }
                    Reception::Silence => {
                        if let Some(s) = stats.as_mut() {
                            s.silent += 1;
                        }
                        None
                    }
                    Reception::Collision => {
                        if let Some(s) = stats.as_mut() {
                            s.collisions += 1;
                        }
                        None
                    }
                }
            };
            let node = &mut self.nodes[u];
            let ctx = &mut Context {
                round,
                id: self.trace.proc_ids[u],
                delta: self.delta,
                delta_prime: self.delta_prime,
                r: self.r,
                rng: &mut node.rng,
            };
            node.proc.on_receive(received, ctx);
        }

        if let Some(s) = stats {
            self.trace.round_stats.push(s);
        }

        // Step 4: outputs, consumed by the environment next round.
        for v in 0..n {
            if have_faults && self.down[v] {
                continue;
            }
            if !self.nodes[v].proc.has_outputs() {
                continue;
            }
            for out in self.nodes[v].proc.take_outputs() {
                self.trace.events.push(Event {
                    round,
                    node: NodeId(v),
                    kind: EventKind::Output(out.clone()),
                });
                self.pending_outputs.push((NodeId(v), out));
            }
        }

        self.round = round;
        self.trace.rounds = round;
    }

    /// Executes `rounds` additional rounds.
    pub fn run(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Steps until `pred(trace)` holds or `max_rounds` total rounds have
    /// run; returns whether the predicate held.
    pub fn run_until(
        &mut self,
        max_rounds: u64,
        mut pred: impl FnMut(&Trace<P::Input, P::Output, P::Msg>) -> bool,
    ) -> bool {
        while self.round < max_rounds {
            self.step();
            if pred(&self.trace) {
                return true;
            }
        }
        false
    }
}

impl<P: Process, T: Transport<P::Msg>> std::fmt::Debug for Cluster<P, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("n", &self.graph.len())
            .field("round", &self.round)
            .field("transport", &self.transport.name())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{LinkSet, MockNetConfig, MockNetTransport, SimTransport};
    use radio_sim::engine::{Configuration, Engine};
    use radio_sim::environment::NullEnvironment;
    use radio_sim::scheduler::{BernoulliEdges, LinkScheduler, NoExtraEdges};

    /// The engine test suite's beacon: transmits its fixed message on
    /// configured rounds, outputs every message it hears.
    struct Beacon {
        msg: u32,
        tx_rounds: Vec<u64>,
        heard: Vec<u32>,
    }

    impl Beacon {
        fn new(msg: u32, tx_rounds: Vec<u64>) -> Self {
            Beacon {
                msg,
                tx_rounds,
                heard: Vec::new(),
            }
        }
    }

    impl Process for Beacon {
        type Msg = u32;
        type Input = ();
        type Output = u32;

        fn on_input(&mut self, _input: (), _ctx: &mut Context<'_>) {}

        fn transmit(&mut self, ctx: &mut Context<'_>) -> Action<u32> {
            if self.tx_rounds.contains(&ctx.round) {
                Action::Transmit(self.msg)
            } else {
                Action::Receive
            }
        }

        fn on_receive(&mut self, msg: Option<u32>, _ctx: &mut Context<'_>) {
            if let Some(m) = msg {
                self.heard.push(m);
            }
        }

        fn take_outputs(&mut self) -> Vec<u32> {
            std::mem::take(&mut self.heard)
        }
    }

    fn faulted_graph() -> DualGraph {
        DualGraph::new(4, [(0, 1), (1, 2), (2, 3)], [(0, 2), (1, 3)]).unwrap()
    }

    fn beacons() -> Vec<Beacon> {
        vec![
            Beacon::new(1, vec![1, 3, 5]),
            Beacon::new(2, vec![2, 4]),
            Beacon::new(3, vec![1, 2, 3]),
            Beacon::new(4, vec![5, 6]),
        ]
    }

    fn fault_plan() -> FaultPlan {
        FaultPlan::none()
            .with_crash(NodeId(2), 2, Some(4))
            .with_jam(vec![NodeId(0), NodeId(3)], 3, 5)
            .with_drop_burst(1, 6, 0.5)
    }

    /// The keystone in miniature: a cluster over `SimTransport` is
    /// byte-identical to the engine — same events, same stats — on a
    /// faulted execution with a randomized scheduler. (The proptest in
    /// `tests/` widens this across random scenarios.)
    #[test]
    fn sim_cluster_matches_engine_byte_for_byte() {
        let g = faulted_graph();
        let mk_sched = || Box::new(BernoulliEdges::new(0.6, 5)) as Box<dyn LinkScheduler>;
        let seed = 42;

        let config = Configuration::new(g.clone(), mk_sched())
            .with_recording(RecordingPolicy::full())
            .with_faults(fault_plan());
        let mut engine = Engine::new(config, beacons(), Box::new(NullEnvironment), seed);
        engine.run(6);
        let reference = engine.into_trace();

        let config = ClusterConfig::new(g.clone())
            .with_recording(RecordingPolicy::full())
            .with_faults(fault_plan());
        let transport = SimTransport::new(g, mk_sched());
        let mut cluster = Cluster::new(config, transport, beacons(), Box::new(NullEnvironment), seed);
        cluster.run(6);
        let trace = cluster.into_trace();

        assert_eq!(reference.events, trace.events);
        assert_eq!(reference.round_stats, trace.round_stats);
        assert_eq!(reference.rounds, trace.rounds);
    }

    /// Down nodes must not advance their RNG (the engine skips their
    /// callbacks entirely); a divergence here would silently desync
    /// every round after recovery.
    #[test]
    fn sim_cluster_matches_engine_after_recovery() {
        let g = faulted_graph();
        let faults = || FaultPlan::none().with_crash(NodeId(1), 2, Some(5));
        let seed = 7;

        let config = Configuration::new(g.clone(), Box::new(NoExtraEdges) as Box<dyn LinkScheduler>)
            .with_recording(RecordingPolicy::full())
            .with_faults(faults());
        let mut engine = Engine::new(config, beacons(), Box::new(NullEnvironment), seed);
        engine.run(8);

        let config = ClusterConfig::new(g.clone())
            .with_recording(RecordingPolicy::full())
            .with_faults(faults());
        let transport = SimTransport::new(g, Box::new(NoExtraEdges));
        let mut cluster = Cluster::new(config, transport, beacons(), Box::new(NullEnvironment), seed);
        cluster.run(8);

        assert_eq!(engine.trace().events, cluster.trace().events);
    }

    /// The ISSUE 10 keystone in miniature: with a *multi-epoch*
    /// timeline installed on both the cluster and its `SimTransport`,
    /// the execution stays byte-identical to the engine's over the same
    /// timeline — faults, randomized scheduler, and all.
    #[test]
    fn sim_cluster_matches_engine_across_epoch_boundaries() {
        let a = Arc::new(faulted_graph());
        // Epoch 2 rewires the middle of the line and shifts the extra
        // edges; epoch 3 goes back to a denser variant.
        let b = Arc::new(DualGraph::new(4, [(0, 2), (2, 1), (1, 3)], [(0, 3)]).unwrap());
        let c = Arc::new(DualGraph::new(4, [(0, 1), (0, 2), (0, 3)], [(1, 2), (2, 3)]).unwrap());
        let timeline = || {
            GraphTimeline::new([
                (1, Arc::clone(&a)),
                (3, Arc::clone(&b)),
                (5, Arc::clone(&c)),
            ])
            .unwrap()
        };
        let mk_sched = || Box::new(BernoulliEdges::new(0.6, 5)) as Box<dyn LinkScheduler>;
        let seed = 42;

        let config = Configuration::new(Arc::clone(&a), mk_sched())
            .with_recording(RecordingPolicy::full())
            .with_faults(fault_plan())
            .with_timeline(timeline());
        let mut engine = Engine::new(config, beacons(), Box::new(NullEnvironment), seed);
        engine.run(6);
        let reference = engine.into_trace();

        let config = ClusterConfig::new(Arc::clone(&a))
            .with_recording(RecordingPolicy::full())
            .with_faults(fault_plan())
            .with_timeline(timeline());
        let transport = SimTransport::new(Arc::clone(&a), mk_sched()).with_timeline(timeline());
        let mut cluster =
            Cluster::new(config, transport, beacons(), Box::new(NullEnvironment), seed);
        cluster.run(6);
        assert_eq!(cluster.epoch(), 2);
        let trace = cluster.into_trace();

        assert_eq!(reference.events, trace.events);
        assert_eq!(reference.round_stats, trace.round_stats);
        assert_eq!(reference.rounds, trace.rounds);
    }

    #[test]
    fn mock_net_cluster_delivers_over_links() {
        let g = DualGraph::reliable_only(2, [(0, 1)]).unwrap();
        let transport = MockNetTransport::new(
            g.clone(),
            MockNetConfig {
                links: LinkSet::Reliable,
                ..MockNetConfig::default()
            },
            1,
        );
        let config = ClusterConfig::new(g).with_recording(RecordingPolicy::full());
        let procs = vec![Beacon::new(7, vec![1]), Beacon::new(9, vec![])];
        let mut cluster = Cluster::new(config, transport, procs, Box::new(NullEnvironment), 1);
        cluster.run(2);
        let outs: Vec<_> = cluster.trace().outputs().collect();
        assert_eq!(outs.len(), 1);
        assert_eq!(*outs[0].2, 7);
        assert_eq!(outs[0].1, NodeId(1));
    }

    #[test]
    #[should_panic(expected = "one process per vertex")]
    fn cluster_rejects_wrong_process_count() {
        let g = DualGraph::reliable_only(2, [(0, 1)]).unwrap();
        let transport = SimTransport::new(g.clone(), Box::new(NoExtraEdges));
        let _ = Cluster::new(
            ClusterConfig::new(g),
            transport,
            vec![Beacon::new(1, vec![])],
            Box::new(NullEnvironment),
            1,
        );
    }
}
