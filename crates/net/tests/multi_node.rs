//! End-to-end: the paper's algorithms running as multi-node clusters
//! over a transport, unmodified — broadcast-and-ack over the mock
//! network, and the keystone equivalence: when the mock network's delay
//! model matches the synchronous round structure (delay 0, no loss, no
//! partitions), executions byte-compare equal to the simulator's.

use local_broadcast::config::LbConfig;
use local_broadcast::service::QueueWorkload;
use local_broadcast::{LbOutput, LbProcess, Payload};
use net::{Cluster, ClusterConfig, MockNetConfig, MockNetTransport, SimTransport};
use radio_sim::engine::Engine;
use radio_sim::environment::NullEnvironment;
use radio_sim::graph::NodeId;
use radio_sim::scheduler::AllExtraEdges;
use radio_sim::topology;
use radio_sim::trace::RecordingPolicy;
use seed_agreement::{spec as seed_spec, SeedConfig, SeedProcess};
use std::collections::VecDeque;

/// A queue workload where only `sender` broadcasts one payload.
fn single_payload(n: usize, sender: NodeId) -> QueueWorkload {
    let mut queues = vec![VecDeque::new(); n];
    queues[sender.0].push_back(Payload::new(sender.0 as u64, 0));
    QueueWorkload::new(queues, 1)
}

/// Broadcast-and-ack over the mock network: an `LbProcess` cluster where
/// node 0 broadcasts one message; every node receives it and the sender
/// acks — the service works end-to-end with the simulator out of the
/// loop entirely.
#[test]
fn lb_broadcast_acks_over_the_mock_network() {
    let topo = topology::clique(4, 1.0);
    let cfg = LbConfig::fast(0.25);
    let params = cfg.resolve(topo.r, topo.graph.delta(), topo.graph.delta_prime());
    let n = topo.graph.len();
    let procs: Vec<LbProcess> = (0..n).map(|_| LbProcess::new(cfg.clone())).collect();
    let transport = MockNetTransport::new(topo.graph.clone(), MockNetConfig::default(), 17);
    let config = ClusterConfig::new(topo.graph.clone()).with_r(topo.r);
    let mut cluster = Cluster::new(
        config,
        transport,
        procs,
        Box::new(single_payload(n, NodeId(0))),
        17,
    );
    let horizon = params.t_ack_rounds() + params.phase_len();
    let acked = cluster.run_until(horizon, |t| {
        t.outputs().any(|(_, v, o)| v == NodeId(0) && o.is_ack())
    });
    assert!(acked, "the sender acks within t_ack over the mock network");
    let trace = cluster.into_trace();
    let ack_round = trace
        .outputs()
        .find(|(_, v, o)| *v == NodeId(0) && o.is_ack())
        .map(|(round, ..)| round)
        .unwrap();
    for v in 1..n {
        let recv = trace
            .outputs()
            .find(|(_, u, o)| *u == NodeId(v) && matches!(o, LbOutput::Recv(_)));
        let recv_round = recv.map(|(round, ..)| round);
        assert!(
            recv_round.is_some_and(|r| r <= ack_round),
            "node {v} received before the ack (recv at {recv_round:?}, ack at {ack_round})"
        );
    }
}

/// The same service keeps working when every hop takes two extra rounds:
/// delayed delivery stretches latency but the broadcast still completes
/// (the algorithm never assumed same-round delivery, only eventual).
#[test]
fn lb_broadcast_completes_under_delivery_delay() {
    let topo = topology::clique(4, 1.0);
    let cfg = LbConfig::fast(0.25);
    let params = cfg.resolve(topo.r, topo.graph.delta(), topo.graph.delta_prime());
    let n = topo.graph.len();
    let procs: Vec<LbProcess> = (0..n).map(|_| LbProcess::new(cfg.clone())).collect();
    let transport = MockNetTransport::new(
        topo.graph.clone(),
        MockNetConfig {
            delay_rounds: 2,
            ..MockNetConfig::default()
        },
        19,
    );
    let config = ClusterConfig::new(topo.graph.clone()).with_r(topo.r);
    let mut cluster = Cluster::new(
        config,
        transport,
        procs,
        Box::new(single_payload(n, NodeId(0))),
        19,
    );
    // Acks are deterministic in LBAlg (always within t_ack); receptions
    // under delay are not guaranteed, so assert only the ack.
    let acked = cluster.run_until(params.t_ack_rounds() + params.phase_len(), |t| {
        t.outputs().any(|(_, v, o)| v == NodeId(0) && o.is_ack())
    });
    assert!(acked, "t_ack holds regardless of the channel");
}

/// The keystone: with delay 0, no loss, and no partitions over the full
/// link set, the mock network *is* the synchronous `G' = G_t` channel —
/// an `LbProcess` execution over it byte-compares equal to the engine's
/// under the `AllExtraEdges` scheduler (events, stats, and rounds all
/// equal, under full recording).
#[test]
fn mock_net_matching_the_round_structure_equals_the_simulator() {
    let topo = topology::clique(5, 1.0);
    let cfg = LbConfig::fast(0.25);
    let params = cfg.resolve(topo.r, topo.graph.delta(), topo.graph.delta_prime());
    let n = topo.graph.len();
    let rounds = params.phase_len() * 2;
    let seed = 23;

    let procs: Vec<LbProcess> = (0..n).map(|_| LbProcess::new(cfg.clone())).collect();
    let config = topo
        .configuration(Box::new(AllExtraEdges))
        .with_recording(RecordingPolicy::full());
    let mut engine = Engine::new(config, procs, Box::new(single_payload(n, NodeId(0))), seed);
    engine.run(rounds);
    let reference = engine.into_trace();

    let procs: Vec<LbProcess> = (0..n).map(|_| LbProcess::new(cfg.clone())).collect();
    let transport = MockNetTransport::new(topo.graph.clone(), MockNetConfig::default(), seed);
    let config = ClusterConfig::new(topo.graph.clone())
        .with_r(topo.r)
        .with_recording(RecordingPolicy::full());
    let mut cluster = Cluster::new(
        config,
        transport,
        procs,
        Box::new(single_payload(n, NodeId(0))),
        seed,
    );
    cluster.run(rounds);
    let trace = cluster.into_trace();

    assert_eq!(reference.events, trace.events);
    assert_eq!(reference.round_stats, trace.round_stats);
    assert_eq!(reference.rounds, trace.rounds);
}

/// Seed agreement over both substrates: the cluster (over either
/// transport) produces executions satisfying the deterministic `Seed`
/// conditions, and the sim-transport run is byte-identical to the
/// engine's.
#[test]
fn seed_agreement_runs_on_both_substrates() {
    let topo = topology::line(6, 0.9, 2.0);
    let cfg = SeedConfig::practical(0.125, 64);
    let total = cfg.total_rounds(topo.graph.delta());
    let seed = 42;

    let procs: Vec<SeedProcess> = (0..6).map(|_| SeedProcess::new(cfg.clone())).collect();
    let config = topo
        .configuration(Box::new(AllExtraEdges))
        .with_recording(RecordingPolicy::full());
    let mut engine = Engine::new(config, procs, Box::new(NullEnvironment), seed);
    engine.run(total);
    let reference = engine.into_trace();
    seed_spec::check_well_formedness(&reference).unwrap();
    seed_spec::check_consistency(&reference).unwrap();

    let procs: Vec<SeedProcess> = (0..6).map(|_| SeedProcess::new(cfg.clone())).collect();
    let transport = SimTransport::new(topo.graph.clone(), Box::new(AllExtraEdges));
    let config = ClusterConfig::new(topo.graph.clone())
        .with_r(topo.r)
        .with_recording(RecordingPolicy::full());
    let mut sim_cluster = Cluster::new(config, transport, procs, Box::new(NullEnvironment), seed);
    sim_cluster.run(total);
    let sim_trace = sim_cluster.into_trace();
    assert_eq!(reference.events, sim_trace.events);
    assert_eq!(reference.round_stats, sim_trace.round_stats);

    let procs: Vec<SeedProcess> = (0..6).map(|_| SeedProcess::new(cfg.clone())).collect();
    let transport = MockNetTransport::new(topo.graph.clone(), MockNetConfig::default(), seed);
    let config = ClusterConfig::new(topo.graph.clone())
        .with_r(topo.r)
        .with_recording(RecordingPolicy::full());
    let mut mock_cluster = Cluster::new(config, transport, procs, Box::new(NullEnvironment), seed);
    mock_cluster.run(total);
    let mock_trace = mock_cluster.into_trace();
    assert_eq!(
        reference.events, mock_trace.events,
        "zero-delay mock net reproduces the simulator for seed agreement too"
    );
    seed_spec::check_well_formedness(&mock_trace).unwrap();
    seed_spec::check_consistency(&mock_trace).unwrap();
}
