//! Fault-injection tests for the mock network: delay, Bernoulli loss,
//! partition windows — and determinism of all three under a fixed seed.

use net::{Cluster, ClusterConfig, LinkSet, MockNetConfig, MockNetTransport, PartitionWindow};
use radio_sim::environment::NullEnvironment;
use radio_sim::graph::{DualGraph, NodeId};
use radio_sim::process::{Action, Context, Process};
use radio_sim::trace::{RecordingPolicy, Trace};

/// Transmits its fixed message on configured rounds, outputs every
/// message it hears (the engine test suite's beacon).
struct Beacon {
    msg: u32,
    tx_rounds: Vec<u64>,
    heard: Vec<u32>,
}

impl Beacon {
    fn new(msg: u32, tx_rounds: Vec<u64>) -> Self {
        Beacon {
            msg,
            tx_rounds,
            heard: Vec::new(),
        }
    }
}

impl Process for Beacon {
    type Msg = u32;
    type Input = ();
    type Output = u32;

    fn on_input(&mut self, _input: (), _ctx: &mut Context<'_>) {}

    fn transmit(&mut self, ctx: &mut Context<'_>) -> Action<u32> {
        if self.tx_rounds.contains(&ctx.round) {
            Action::Transmit(self.msg)
        } else {
            Action::Receive
        }
    }

    fn on_receive(&mut self, msg: Option<u32>, _ctx: &mut Context<'_>) {
        if let Some(m) = msg {
            self.heard.push(m);
        }
    }

    fn take_outputs(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.heard)
    }
}

fn line5() -> DualGraph {
    DualGraph::reliable_only(5, [(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap()
}

fn run_beacons(
    graph: DualGraph,
    config: MockNetConfig,
    specs: Vec<(u32, Vec<u64>)>,
    rounds: u64,
    seed: u64,
) -> Trace<(), u32, u32> {
    let procs = specs.into_iter().map(|(m, r)| Beacon::new(m, r)).collect();
    let transport = MockNetTransport::new(graph.clone(), config, seed);
    let cluster_config = ClusterConfig::new(graph).with_recording(RecordingPolicy::full());
    let mut cluster = Cluster::new(
        cluster_config,
        transport,
        procs,
        Box::new(NullEnvironment),
        seed,
    );
    cluster.run(rounds);
    cluster.into_trace()
}

#[test]
fn delay_shifts_every_delivery_by_the_configured_hops() {
    let specs = || vec![(7, vec![1, 4]), (0, vec![]), (8, vec![2]), (0, vec![]), (9, vec![3])];
    let immediate = run_beacons(
        line5(),
        MockNetConfig {
            links: LinkSet::Reliable,
            ..MockNetConfig::default()
        },
        specs(),
        10,
        3,
    );
    let delayed = run_beacons(
        line5(),
        MockNetConfig {
            links: LinkSet::Reliable,
            delay_rounds: 3,
            ..MockNetConfig::default()
        },
        specs(),
        10,
        3,
    );
    let rounds_of = |t: &Trace<(), u32, u32>| {
        t.receptions()
            .map(|(round, v, from, msg)| (round, v, from, *msg))
            .collect::<Vec<_>>()
    };
    let base = rounds_of(&immediate);
    assert!(!base.is_empty(), "the lossless run must deliver");
    // No transmitter in this schedule transmits at any arrival round, so
    // every delivery survives the shift, three rounds later.
    let shifted: Vec<_> = base
        .iter()
        .map(|&(round, v, from, msg)| (round + 3, v, from, msg))
        .collect();
    assert_eq!(rounds_of(&delayed), shifted);
}

#[test]
fn total_loss_silences_the_network() {
    let trace = run_beacons(
        line5(),
        MockNetConfig {
            links: LinkSet::Reliable,
            loss_p: 1.0,
            ..MockNetConfig::default()
        },
        vec![(7, vec![1, 2, 3]), (0, vec![]), (8, vec![2]), (0, vec![]), (9, vec![3])],
        6,
        3,
    );
    assert_eq!(trace.receptions().count(), 0);
    assert_eq!(trace.total_stats().deliveries, 0);
}

#[test]
fn partial_loss_thins_deliveries_deterministically() {
    let specs = || vec![(7, (1..=40).collect::<Vec<u64>>()), (0, vec![])];
    let g = || DualGraph::reliable_only(2, [(0, 1)]).unwrap();
    let lossless = run_beacons(g(), MockNetConfig::default(), specs(), 40, 11);
    assert_eq!(lossless.total_stats().deliveries, 40);
    let config = || MockNetConfig {
        loss_p: 0.5,
        ..MockNetConfig::default()
    };
    let lossy = run_beacons(g(), config(), specs(), 40, 11);
    let delivered = lossy.total_stats().deliveries;
    assert!(
        (5..=35).contains(&delivered),
        "p = 0.5 loses about half, got {delivered}/40"
    );
    // Same seed, same losses — byte for byte.
    let again = run_beacons(g(), config(), specs(), 40, 11);
    assert_eq!(lossy.events, again.events);
    assert_eq!(lossy.round_stats, again.round_stats);
    // A different seed flips different coins.
    let other = run_beacons(g(), config(), specs(), 40, 12);
    assert_ne!(lossy.events, other.events);
}

#[test]
fn partition_window_isolates_and_heals() {
    // 0-1-2 line; partition {0, 1} vs {2} during rounds 3..=6 cuts the
    // 1-2 link only.
    let g = || DualGraph::reliable_only(3, [(0, 1), (1, 2)]).unwrap();
    let config = MockNetConfig {
        links: LinkSet::Reliable,
        partitions: vec![PartitionWindow {
            nodes: vec![0, 1],
            from: 3,
            to: 6,
        }],
        ..MockNetConfig::default()
    };
    let trace = run_beacons(
        g(),
        config,
        vec![(7, (1..=8).collect()), (0, vec![]), (0, vec![])],
        8,
        5,
    );
    // Node 1 is inside the sender's side: hears every round.
    let to_1: Vec<u64> = trace
        .receptions()
        .filter(|&(_, v, _, _)| v == NodeId(1))
        .map(|(round, ..)| round)
        .collect();
    assert_eq!(to_1, (1..=8).collect::<Vec<u64>>());
    // Node 2 is across the cut... but node 0's transmissions never reach
    // it anyway (not neighbors); nothing changes for it. Re-run with
    // node 1 relaying to see the cut bite.
    let relayed = run_beacons(
        g(),
        MockNetConfig {
            links: LinkSet::Reliable,
            partitions: vec![PartitionWindow {
                nodes: vec![0, 1],
                from: 3,
                to: 6,
            }],
            ..MockNetConfig::default()
        },
        vec![(0, vec![]), (7, (1..=8).collect()), (0, vec![])],
        8,
        5,
    );
    let to_2: Vec<u64> = relayed
        .receptions()
        .filter(|&(_, v, _, _)| v == NodeId(2))
        .map(|(round, ..)| round)
        .collect();
    assert_eq!(
        to_2,
        vec![1, 2, 7, 8],
        "deliveries across the cut stop during the window and resume after"
    );
    // Node 0, on the sender's side, is unaffected throughout.
    let to_0 = relayed
        .receptions()
        .filter(|&(_, v, _, _)| v == NodeId(0))
        .count();
    assert_eq!(to_0, 8);
}

#[test]
fn faults_compose_with_the_mock_network() {
    // A drop burst (engine-level fault) on top of mock-net loss: both
    // thinning mechanisms apply, from independent streams.
    use radio_sim::fault::FaultPlan;
    let g = DualGraph::reliable_only(2, [(0, 1)]).unwrap();
    let transport = MockNetTransport::new(
        g.clone(),
        MockNetConfig {
            loss_p: 0.3,
            ..MockNetConfig::default()
        },
        21,
    );
    let config = ClusterConfig::new(g)
        .with_recording(RecordingPolicy::full())
        .with_faults(FaultPlan::none().with_drop_burst(10, 20, 1.0));
    let procs = vec![Beacon::new(7, (1..=30).collect()), Beacon::new(0, vec![])];
    let mut cluster = Cluster::new(config, transport, procs, Box::new(NullEnvironment), 21);
    cluster.run(30);
    let trace = cluster.into_trace();
    let totals = trace.total_stats();
    // Inside the burst every mock-net survivor is dropped at the
    // receiver; outside it only mock-net loss applies.
    assert!(totals.dropped > 0, "the burst dropped survivors");
    assert!(totals.deliveries > 0, "rounds outside the burst deliver");
    assert!(
        trace
            .receptions()
            .all(|(round, ..)| !(10..=20).contains(&round)),
        "no delivery lands inside the burst window"
    );
}

#[test]
fn mock_net_runs_are_deterministic_end_to_end() {
    // Loss, delay, and a partition together: two runs with the same seed
    // produce identical traces (delivery orders included); this is the
    // satellite determinism pin.
    let g = || {
        DualGraph::new(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)], [(0, 2), (3, 5)]).unwrap()
    };
    let config = || MockNetConfig {
        links: LinkSet::All,
        delay_rounds: 1,
        loss_p: 0.25,
        partitions: vec![PartitionWindow {
            nodes: vec![0, 1, 2],
            from: 4,
            to: 9,
        }],
    };
    let specs = || {
        (0..6u32)
            .map(|v| (v, (1..=20).filter(|r| r % (u64::from(v) + 2) == 0).collect()))
            .collect::<Vec<_>>()
    };
    let a = run_beacons(g(), config(), specs(), 20, 33);
    let b = run_beacons(g(), config(), specs(), 20, 33);
    assert_eq!(a.events, b.events);
    assert_eq!(a.round_stats, b.round_stats);
}
