//! Property: a [`net::Cluster`] over [`net::SimTransport`] is
//! byte-for-byte the engine — same events, same channel stats — across
//! random topologies, schedulers, shard counts, and fault plans. This is
//! the refactor's load-bearing invariant: the transport trait added a
//! seam, not a behavior.

use net::{Cluster, ClusterConfig, SimTransport};
use proptest::prelude::*;
use radio_sim::engine::{Configuration, Engine};
use radio_sim::environment::NullEnvironment;
use radio_sim::fault::FaultPlan;
use radio_sim::graph::NodeId;
use radio_sim::process::{Action, Context, Process};
use radio_sim::scheduler::{
    AllExtraEdges, BernoulliEdges, LinkScheduler, NoExtraEdges,
};
use radio_sim::topology::{self, RggParams};
use radio_sim::trace::RecordingPolicy;

/// Transmits on a seed-and-vertex-dependent schedule, relays the last
/// heard message — enough state to make any desynchronization between
/// the two executors cascade into a visible trace difference.
#[derive(Clone)]
struct Chatter {
    vertex: u32,
    period: u64,
    last_heard: Option<u32>,
}

impl Process for Chatter {
    type Msg = u32;
    type Input = ();
    type Output = u32;

    fn on_input(&mut self, _input: (), _ctx: &mut Context<'_>) {}

    fn transmit(&mut self, ctx: &mut Context<'_>) -> Action<u32> {
        // A random coin every round keeps each node's RNG advancing, so
        // a skipped-callback bug anywhere desyncs everything after it.
        use rand::Rng;
        let coin = ctx.rng.gen_bool(0.5);
        if ctx.round % self.period == u64::from(self.vertex) % self.period && coin {
            Action::Transmit(self.vertex * 1000 + (ctx.round as u32 % 1000))
        } else {
            Action::Receive
        }
    }

    fn on_receive(&mut self, msg: Option<u32>, _ctx: &mut Context<'_>) {
        if msg.is_some() {
            self.last_heard = msg;
        }
    }

    fn take_outputs(&mut self) -> Vec<u32> {
        self.last_heard.take().into_iter().collect()
    }
}

fn chatters(n: usize, period: u64) -> Vec<Chatter> {
    (0..n)
        .map(|v| Chatter {
            vertex: v as u32,
            period,
            last_heard: None,
        })
        .collect()
}

fn scheduler_for(kind: u8, p: f64, seed: u64) -> Box<dyn LinkScheduler> {
    match kind % 3 {
        0 => Box::new(AllExtraEdges),
        1 => Box::new(NoExtraEdges),
        _ => Box::new(BernoulliEdges::new(p, seed)),
    }
}

fn fault_plan_for(kind: u8, n: usize, drop_p: f64) -> FaultPlan {
    let plan = FaultPlan::none();
    match kind % 4 {
        0 => plan,
        1 => plan.with_crash(NodeId(n / 2), 2, Some(6)),
        2 => plan
            .with_crash(NodeId(n / 3), 3, Some(7))
            .with_jam(vec![NodeId(0), NodeId(n - 1)], 2, 5),
        _ => plan
            .with_jam(vec![NodeId(n / 2)], 4, 8)
            .with_drop_burst(1, 10, drop_p),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sim_cluster_is_byte_identical_to_the_engine(
        n in 8usize..40,
        topo_seed in 0u64..1000,
        master_seed in 0u64..1000,
        sched_kind in 0u8..3,
        sched_p in 0.1f64..0.9,
        fault_kind in 0u8..4,
        drop_p in 0.0f64..1.0,
        shards in 1usize..5,
        period in 2u64..6,
        rounds in 4u64..16,
    ) {
        let topo = topology::random_geometric(RggParams {
            n,
            side: 3.0,
            r: 2.0,
            grey_reliable_p: 0.2,
            grey_unreliable_p: 0.7,
            seed: topo_seed,
        });
        let faults = fault_plan_for(fault_kind, n, drop_p);

        let config = Configuration::new(
                topo.graph.clone(),
                scheduler_for(sched_kind, sched_p, topo_seed),
            )
            .with_r(topo.r)
            .with_recording(RecordingPolicy::full())
            .with_faults(faults.clone())
            .with_shards(shards);
        let mut engine = Engine::new(
            config,
            chatters(n, period),
            Box::new(NullEnvironment),
            master_seed,
        );
        engine.run(rounds);
        let reference = engine.into_trace();

        let transport = SimTransport::new(
                topo.graph.clone(),
                scheduler_for(sched_kind, sched_p, topo_seed),
            )
            .with_shards(shards);
        let config = ClusterConfig::new(topo.graph.clone())
            .with_r(topo.r)
            .with_recording(RecordingPolicy::full())
            .with_faults(faults);
        let mut cluster = Cluster::new(
            config,
            transport,
            chatters(n, period),
            Box::new(NullEnvironment),
            master_seed,
        );
        cluster.run(rounds);
        let trace = cluster.into_trace();

        prop_assert_eq!(&reference.events, &trace.events);
        prop_assert_eq!(&reference.round_stats, &trace.round_stats);
        prop_assert_eq!(reference.rounds, trace.rounds);
    }
}
