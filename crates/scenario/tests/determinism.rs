//! Replay determinism: identical scenario seeds produce byte-identical
//! traces, fault injection included.

use scenario::{registry, Scenario, ScenarioRunner};
use std::path::PathBuf;

fn load_file(name: &str) -> Scenario {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../scenarios")
        .join(name);
    let data = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{name}: {e}"));
    Scenario::from_json(&data).unwrap()
}

/// Two *independent* runner instances replay trial 0 to the same bytes.
fn assert_replay_identical(mut scenario: Scenario) {
    // One trial is enough for the byte-identity contract; keep it quick.
    scenario.trials = 1;
    let name = scenario.name.clone();
    let a = ScenarioRunner::new(scenario.clone()).unwrap();
    let b = ScenarioRunner::new(scenario).unwrap();
    let ta = a.trial_trace_json(0);
    let tb = b.trial_trace_json(0);
    assert!(!ta.is_empty());
    assert_eq!(ta, tb, "{name}: replayed trace differs");
}

#[test]
fn churn_scenario_replays_byte_identical() {
    let s = load_file("churn.json");
    assert_replay_identical(s.clone());
    // The trace actually exercises the fault machinery.
    let mut one = s;
    one.trials = 1;
    let trace = ScenarioRunner::new(one).unwrap().trial_trace_json(0);
    assert!(trace.contains("Crash"), "churn trace records crash events");
    assert!(
        trace.contains("Recover"),
        "churn trace records the power-cycle recovery"
    );
}

#[test]
fn jamming_scenario_replays_byte_identical() {
    let s = load_file("jamming_window.json");
    assert_replay_identical(s.clone());
    let mut one = s;
    one.trials = 1;
    let trace = ScenarioRunner::new(one).unwrap().trial_trace_json(0);
    assert!(trace.contains("JamStart") && trace.contains("JamEnd"));
}

#[test]
fn drop_burst_scenario_replays_byte_identical() {
    let s = load_file("drop_burst.json");
    assert_replay_identical(s.clone());
    let mut one = s;
    one.trials = 1;
    let runner = ScenarioRunner::new(one).unwrap();
    let outcome = runner.run_trial(0);
    assert!(
        outcome.totals.dropped > 0,
        "the 50% burst over 60 rounds should drop something"
    );
}

#[test]
fn different_seeds_change_randomized_executions() {
    let mut s = registry::find("drop-burst").unwrap();
    s.trials = 1;
    let a = ScenarioRunner::new(s.clone()).unwrap().trial_trace_json(0);
    s.base_seed ^= 0xDEAD_BEEF;
    let b = ScenarioRunner::new(s).unwrap().trial_trace_json(0);
    assert_ne!(a, b, "seed must select the execution branch");
}

#[test]
fn adaptive_jammer_scenario_is_deterministic() {
    // E8 uses the adaptive scheduler path; it must replay exactly too.
    let mut s = registry::find("e8").unwrap();
    s.stop = scenario::StopSpec::Rounds { rounds: 40 };
    assert_replay_identical(s);
}

#[test]
fn buffer_reuse_does_not_leak_across_executions() {
    // The engine owns reusable per-round scratch buffers, and runners
    // share one Arc'd graph across trials. Interleaving trials on one
    // runner — trial 0, a different trial, trial 0 again — must produce
    // the same bytes as a fresh runner that only ever ran trial 0.
    let mut s = registry::find("drop-burst").unwrap();
    s.trials = 3;
    let reused = ScenarioRunner::new(s.clone()).unwrap();
    let first = reused.trial_trace_json(0);
    let other = reused.trial_trace_json(2);
    let again = reused.trial_trace_json(0);
    assert_ne!(first, other, "distinct trials differ");
    assert_eq!(first, again, "re-running trial 0 on a reused runner drifted");
    let fresh = ScenarioRunner::new(s).unwrap();
    assert_eq!(first, fresh.trial_trace_json(0), "reused vs fresh runner drifted");
}

#[test]
fn stats_only_trials_match_full_recording_metrics() {
    // Metric trials record stats only; the traced path records the full
    // event log. Both run the identical execution, so every summary
    // metric must agree — the lean fan-out must not change outcomes.
    for name in ["e5", "churn", "jamming-window"] {
        let mut s = registry::find(name).unwrap();
        s.trials = 2;
        let runner = ScenarioRunner::new(s).unwrap();
        let (report, _trace) = runner.run_with_trial0_trace();
        let lean = runner.run();
        for (full, lean) in report.outcomes.iter().zip(&lean.outcomes) {
            assert_eq!(full.master_seed, lean.master_seed, "{name}");
            assert_eq!(full.rounds, lean.rounds, "{name}");
            assert_eq!(full.acks, lean.acks, "{name}");
            assert_eq!(full.recvs, lean.recvs, "{name}");
            assert_eq!(full.totals, lean.totals, "{name}");
            assert_eq!(full.first_ack, lean.first_ack, "{name}");
            assert_eq!(full.first_delivery, lean.first_delivery, "{name}");
            assert_eq!(full.spec_ok, lean.spec_ok, "{name}");
        }
    }
}
