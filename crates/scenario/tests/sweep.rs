//! Sweep expansion properties and the sweep/campaign equivalence
//! contract.
//!
//! * Every scenario a valid sweep expands to passes validation, and
//!   the derived names are unique and **stable**: re-expansion is
//!   byte-identical, and permuting an axis's points permutes the grid
//!   without changing any derived scenario (property tests).
//! * A sweep campaign's outcomes are identical to running each
//!   expanded point standalone — same seeds, counts, and channel
//!   totals, and a byte-identical markdown rendering.
//! * The checked-in `scenarios/sweeps/*.json` files stay in sync with
//!   the sweep registry, and the pinned golden files exist.

use proptest::prelude::*;
use scenario::prelude::*;
use std::path::PathBuf;

fn repo_dir(sub: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").join(sub)
}

fn base_scenario(seed: u64) -> Scenario {
    ScenarioBuilder::new(
        "base",
        TopologySpec::Clique { n: 4, r: 1.0 },
        WorkloadSpec::LocalBroadcast {
            epsilon1: 0.25,
            senders: vec![0],
            messages_per_sender: 1,
        },
    )
    .adversary(AdversarySpec::Bernoulli { p: 0.5 })
    .drop_burst(3, 24, 0.5)
    .stop(StopSpec::Rounds { rounds: 48 })
    .trials(2)
    .base_seed(seed)
    .build()
    .unwrap()
}

/// Assembles a valid sweep from drawn primitives: 1–3 axes, 1–3 points
/// each, every point using only overrides that apply to the base.
fn assemble(seed: u64, axis_count: usize, sizes: (usize, usize, usize), sel: usize) -> SweepSpec {
    let sizes = [sizes.0, sizes.1, sizes.2];
    let mk_override = |axis: usize, point: usize| -> Vec<OverrideSpec> {
        match (axis + point + sel) % 6 {
            0 => vec![OverrideSpec::DropP {
                p: 0.1 + 0.2 * point as f64,
            }],
            1 => vec![OverrideSpec::DropLen {
                len: 4 + 7 * point as u64,
            }],
            2 => vec![OverrideSpec::AdversaryP {
                p: 0.1 + 0.3 * point as f64,
            }],
            3 => vec![OverrideSpec::Trials { trials: 1 + point }],
            4 => vec![OverrideSpec::Churn {
                nodes: vec![1 + point % 3],
                period: 12,
                down: 2 + point as u64,
                start: 3,
                until: 40,
                restart: point % 2 == 1,
            }],
            _ => vec![], // the base itself
        }
    };
    SweepSpec {
        name: format!("prop-{seed}"),
        description: "generated".into(),
        base: base_scenario(seed),
        axes: (0..axis_count.clamp(1, 3))
            .map(|a| SweepAxis {
                axis: format!("ax{a}"),
                points: (0..sizes[a].clamp(1, 3))
                    .map(|p| SweepPoint {
                        label: format!("v{p}"),
                        set: mk_override(a, p),
                    })
                    .collect(),
            })
            .collect(),
        trials: None,
        pinned: vec![],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every expanded scenario validates, and the derived names are
    /// unique across the grid.
    #[test]
    fn expanded_scenarios_validate_with_unique_names(
        seed in 0u64..10_000,
        axis_count in 1usize..4,
        sizes in (1usize..4, 1usize..4, 1usize..4),
        sel in 0usize..6,
    ) {
        let spec = assemble(seed, axis_count, sizes, sel);
        let grid = spec.expand().expect("assembled sweeps are valid");
        let expected: usize = spec.axes.iter().map(|a| a.points.len()).product();
        prop_assert_eq!(grid.len(), expected);
        let mut names = Vec::new();
        for p in grid.points() {
            prop_assert!(p.scenario.validate().is_ok(), "{:?}", p.scenario.name);
            prop_assert!(p.scenario.name.starts_with("base@"));
            names.push(p.scenario.name.clone());
        }
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), names.len(), "duplicate derived names");
    }

    /// Expansion is deterministic, and permuting an axis's points
    /// permutes the grid without changing any derived scenario: the
    /// (name → scenario) mapping is independent of expansion order.
    #[test]
    fn derived_scenarios_are_stable_across_expansion_order(
        seed in 0u64..10_000,
        axis_count in 1usize..4,
        sizes in (1usize..4, 1usize..4, 1usize..4),
        sel in 0usize..6,
        reversed_axis in 0usize..3,
    ) {
        let spec = assemble(seed, axis_count, sizes, sel);
        let grid = spec.expand().expect("valid");
        let again = spec.expand().expect("valid");
        for (a, b) in grid.points().iter().zip(again.points()) {
            prop_assert_eq!(&a.scenario, &b.scenario, "re-expansion diverged");
            prop_assert_eq!(&a.coords, &b.coords);
        }

        let mut permuted = spec.clone();
        let ax = reversed_axis % permuted.axes.len();
        permuted.axes[ax].points.reverse();
        let permuted_grid = permuted.expand().expect("permuted sweep stays valid");
        prop_assert_eq!(permuted_grid.len(), grid.len());
        for p in grid.points() {
            let q = permuted_grid
                .points()
                .iter()
                .find(|q| q.scenario.name == p.scenario.name)
                .expect("permutation preserves the name set");
            prop_assert_eq!(&p.scenario, &q.scenario, "{:?}", p.scenario.name);
        }
    }
}

#[test]
fn sweep_campaign_outcomes_match_standalone_points() {
    let spec = assemble(7, 2, (2, 2, 1), 0);
    let grid = spec.expand().unwrap();
    let campaign_report = grid.campaign().unwrap().run();
    assert_eq!(campaign_report.reports.len(), grid.len());
    for (point, from_campaign) in grid.points().iter().zip(&campaign_report.reports) {
        assert_eq!(point.scenario.name, from_campaign.scenario.name);
        let solo = ScenarioRunner::new(point.scenario.clone()).unwrap().run();
        assert_eq!(solo.outcomes.len(), from_campaign.outcomes.len());
        for (a, b) in from_campaign.outcomes.iter().zip(&solo.outcomes) {
            assert_eq!(a.master_seed, b.master_seed);
            assert_eq!(a.rounds, b.rounds);
            assert_eq!(a.acks, b.acks);
            assert_eq!(a.recvs, b.recvs);
            assert_eq!(a.first_ack, b.first_ack);
            assert_eq!(a.first_delivery, b.first_delivery);
            assert_eq!(a.totals, b.totals);
        }
        // The per-point tables (hence any rendered report) are
        // byte-identical too.
        let solo_tables: Vec<String> =
            solo.tables().iter().map(|t| t.to_markdown()).collect();
        let campaign_tables: Vec<String> =
            from_campaign.tables().iter().map(|t| t.to_markdown()).collect();
        assert_eq!(solo_tables, campaign_tables);
    }
}

#[test]
fn sweep_report_is_byte_identical_across_thread_counts() {
    let spec = assemble(11, 2, (2, 2, 1), 2);
    let grid = spec.expand().unwrap();
    let md = |threads: usize| {
        let report = grid.campaign().unwrap().threads(threads).run();
        SweepReport::new(&grid, &report).to_markdown()
    };
    let one = md(1);
    assert!(!one.is_empty());
    assert_eq!(one, md(4), "thread count changed the sweep report");
    assert_eq!(one, md(2), "re-run changed the sweep report");
}

#[test]
fn checked_in_sweep_files_match_the_registry() {
    for (file, name) in [
        ("scenarios/sweeps/churn_knee.json", "churn-knee"),
        ("scenarios/sweeps/loss_grid.json", "loss-grid"),
        ("scenarios/sweeps/mobility_knee.json", "mobility-knee"),
        ("scenarios/sweeps/scale_curve.json", "scale-curve"),
    ] {
        let data = std::fs::read_to_string(repo_dir(file))
            .unwrap_or_else(|e| panic!("{file}: {e}"));
        let from_file = SweepSpec::from_json(&data)
            .unwrap_or_else(|e| panic!("{file}: {e}"));
        let registered = sweep::find_sweep(name).unwrap();
        assert_eq!(
            from_file, registered,
            "{file} diverged from the sweep registry; regenerate with \
             `cargo run --release -p bench --bin scenario -- sweep {name} --export {file}`"
        );
    }
}

#[test]
fn every_pinned_sweep_point_has_a_blessed_golden_file() {
    for spec in sweep::sweeps() {
        let grid = spec.expand().unwrap();
        for name in &spec.pinned {
            let path = repo_dir("scenarios/golden").join(format!("{name}.json"));
            let data = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!(
                    "{}: {e}; bless with `cargo run --release -p bench --bin \
                     scenario -- sweep {} --bless`",
                    path.display(),
                    spec.name
                )
            });
            let golden = GoldenMetrics::from_json(&data)
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            assert_eq!(&golden.scenario, name);
            let point = grid
                .points()
                .iter()
                .find(|p| &p.scenario.name == name)
                .expect("pinned names match grid points");
            assert_eq!(
                golden.trials, point.scenario.trials,
                "{}: trial count diverged from the sweep registry",
                path.display()
            );
            assert_eq!(golden.base_seed, point.scenario.base_seed);
        }
    }
}
