//! Dynamic-geometry invariants.
//!
//! * A **single-epoch** timeline is byte-identical to the static path:
//!   same trace JSON, same outcomes, whatever the adversary, fault
//!   plan, or shard count (the load-bearing refactor invariant — all
//!   pre-existing goldens ride on it).
//! * A **parked** (speed 0) multi-epoch timeline with a velocity-0 disc
//!   jam also matches the static path: per-epoch resolution emits
//!   contiguous same-set windows, and jam transitions are edge-triggered
//!   on the per-round mask.
//! * A **moving** jam resolves to genuinely different node sets across
//!   epochs, and mobility trials replay byte-identically regardless of
//!   shard count.
//! * A [`net::Cluster`] over [`net::SimTransport`] stays byte-for-byte
//!   the engine across epoch boundaries of a multi-epoch mobility
//!   scenario's compiled timeline and fault plan.

use net::{Cluster, ClusterConfig, SimTransport};
use proptest::prelude::*;
use radio_sim::engine::{Configuration, Engine};
use radio_sim::environment::NullEnvironment;
use radio_sim::process::{Action, Context, Process};
use radio_sim::scheduler::BernoulliEdges;
use radio_sim::trace::RecordingPolicy;
use scenario::prelude::*;
use scenario::spec::{TopologySpec, WorkloadSpec};
use std::sync::Arc;

/// A 24-node arena scenario with one of everything the fault machinery
/// injects: a disc jam, a crash with recovery, and a drop burst.
fn arena(topo_seed: u64, base_seed: u64, adv_p: f64, fault_kind: u8) -> ScenarioBuilder {
    let b = ScenarioBuilder::new(
        "arena",
        TopologySpec::RandomGeometric {
            n: 24,
            side: 3.0,
            r: 1.7,
            grey_reliable_p: 0.2,
            grey_unreliable_p: 0.8,
            seed: topo_seed,
        },
        WorkloadSpec::LocalBroadcast {
            epsilon1: 0.25,
            senders: vec![0],
            messages_per_sender: 2,
        },
    )
    .adversary(AdversarySpec::Bernoulli { p: adv_p })
    .stop(StopSpec::Rounds { rounds: 90 })
    .trials(1)
    .base_seed(base_seed);
    // A radius-2.5 disc at the arena center covers every point of the
    // 3x3 square, so resolution never comes up empty.
    match fault_kind % 4 {
        0 => b,
        1 => b.crash(3, 10, Some(30)),
        2 => b
            .jam_disc(1.5, 1.5, 2.5, 5, 70)
            .drop_burst(8, 20, 0.4),
        _ => b
            .jam_nodes(vec![1, 7], 12, 40)
            .crash_restart(5, 6, Some(50)),
    }
}

fn trace_and_outcome(s: Scenario, shards: usize) -> (String, TrialOutcome) {
    let runner = ScenarioRunner::new(s).unwrap().shards(shards);
    (runner.trial_trace_json(0), runner.run_trial(0))
}

#[test]
fn single_epoch_timeline_is_byte_identical_to_the_static_path() {
    let statics = arena(5, 77, 0.5, 2).build().unwrap();
    // epoch_rounds = horizon => one epoch; nonzero speed never gets to
    // move anything because no second epoch is ever built.
    let mobile = arena(5, 77, 0.5, 2).mobility(0.004, 90).build().unwrap();
    for shards in [1, 3] {
        let (ts, os) = trace_and_outcome(statics.clone(), shards);
        let (tm, om) = trace_and_outcome(mobile.clone(), shards);
        assert!(ts.contains("JamStart"), "the fault plan actually fires");
        assert_eq!(ts, tm, "single-epoch trace drifted (shards {shards})");
        assert_eq!(os, om, "single-epoch outcome drifted (shards {shards})");
    }
    let runner = ScenarioRunner::new(mobile).unwrap();
    let tl = runner.timeline().expect("mobility scenario has a timeline");
    assert!(tl.is_single(), "epoch_rounds = horizon compiles to one epoch");
}

#[test]
fn parked_mobility_with_a_velocity_zero_disc_matches_static() {
    let statics = arena(9, 13, 0.5, 2).build().unwrap();
    // Multi-epoch (30-round epochs over a 90-round horizon) but parked:
    // every epoch re-resolves the same disc against the same embedding,
    // and the contiguous same-set windows are indistinguishable from
    // one long window on the edge-triggered jam mask.
    let parked = arena(9, 13, 0.5, 2).mobility(0.0, 30).build().unwrap();
    let runner = ScenarioRunner::new(parked.clone()).unwrap();
    assert_eq!(runner.timeline().unwrap().num_epochs(), 3);
    assert!(
        runner.fault_plan().jams.len() > 1,
        "per-epoch resolution splits the window"
    );
    let (ts, os) = trace_and_outcome(statics, 1);
    let (tp, op) = trace_and_outcome(parked, 1);
    assert_eq!(ts, tp, "parked multi-epoch trace drifted from static");
    assert_eq!(os, op);
}

#[test]
fn moving_jam_resolves_a_different_node_set_per_epoch() {
    let s = registry::find("mobility").unwrap();
    let runner = ScenarioRunner::new(s).unwrap();
    let tl = runner.timeline().unwrap();
    assert!(tl.num_epochs() > 1, "the registry scenario is multi-epoch");
    let jams = &runner.fault_plan().jams;
    assert!(jams.len() > 1, "one compiled window per overlapped epoch");
    let mut sets: Vec<Vec<u32>> = jams
        .iter()
        .map(|j| j.nodes.iter().map(|v| v.0 as u32).collect())
        .collect();
    sets.dedup();
    assert!(
        sets.len() > 1,
        "a drifting disc over moving nodes must cover different vertices \
         in different epochs: {sets:?}"
    );
}

#[test]
fn mobility_trials_replay_byte_identical_and_shard_independent() {
    let mut s = registry::find("mobility").unwrap();
    s.trials = 1;
    let a = ScenarioRunner::new(s.clone()).unwrap();
    let b = ScenarioRunner::new(s.clone()).unwrap();
    let sharded = ScenarioRunner::new(s).unwrap().shards(3);
    let ta = a.trial_trace_json(0);
    assert!(!ta.is_empty());
    assert_eq!(ta, b.trial_trace_json(0), "fresh runner replay drifted");
    assert_eq!(ta, sharded.trial_trace_json(0), "shard count changed the bytes");
    assert_eq!(a.run_trial(0), sharded.run_trial(0));
}

/// Transmits on a vertex-dependent schedule and relays the last heard
/// message — any desynchronization between the two executors cascades
/// into a visible trace difference.
#[derive(Clone)]
struct Chatter {
    vertex: u32,
    last_heard: Option<u32>,
}

impl Process for Chatter {
    type Msg = u32;
    type Input = ();
    type Output = u32;

    fn on_input(&mut self, _input: (), _ctx: &mut Context<'_>) {}

    fn transmit(&mut self, ctx: &mut Context<'_>) -> Action<u32> {
        use rand::Rng;
        let coin = ctx.rng.gen_bool(0.5);
        if ctx.round % 3 == u64::from(self.vertex) % 3 && coin {
            Action::Transmit(self.vertex * 1000 + (ctx.round as u32 % 1000))
        } else {
            Action::Receive
        }
    }

    fn on_receive(&mut self, msg: Option<u32>, _ctx: &mut Context<'_>) {
        if msg.is_some() {
            self.last_heard = msg;
        }
    }

    fn take_outputs(&mut self) -> Vec<u32> {
        self.last_heard.take().into_iter().collect()
    }
}

#[test]
fn engine_and_sim_cluster_agree_across_epoch_boundaries() {
    // The registry mobility scenario's *compiled* timeline and per-epoch
    // fault plan, driven far enough to cross two epoch boundaries.
    let s = registry::find("mobility").unwrap();
    let runner = ScenarioRunner::new(s).unwrap();
    let timeline = runner.timeline().unwrap().clone();
    assert!(timeline.num_epochs() > 2);
    let faults = runner.fault_plan().clone();
    let graph = Arc::clone(timeline.epoch_graph(0));
    let r = runner.topology().r;
    let n = graph.len();
    let procs = || -> Vec<Chatter> {
        (0..n)
            .map(|v| Chatter {
                vertex: v as u32,
                last_heard: None,
            })
            .collect()
    };
    let rounds = timeline.epoch_start(2) + 20;

    let config = Configuration::new(Arc::clone(&graph), Box::new(BernoulliEdges::new(0.5, 7)))
        .with_r(r)
        .with_recording(RecordingPolicy::full())
        .with_faults(faults.clone())
        .with_shards(2)
        .with_timeline(timeline.clone());
    let mut engine = Engine::new(config, procs(), Box::new(NullEnvironment), 99);
    engine.run(rounds);
    let reference = engine.into_trace();

    let transport = SimTransport::new(Arc::clone(&graph), Box::new(BernoulliEdges::new(0.5, 7)))
        .with_shards(2)
        .with_timeline(timeline.clone());
    let config = ClusterConfig::new(Arc::clone(&graph))
        .with_r(r)
        .with_recording(RecordingPolicy::full())
        .with_faults(faults)
        .with_timeline(timeline);
    let mut cluster = Cluster::new(config, transport, procs(), Box::new(NullEnvironment), 99);
    cluster.run(rounds);
    let trace = cluster.into_trace();

    assert_eq!(reference.rounds, trace.rounds);
    assert_eq!(reference.events, trace.events);
    assert_eq!(reference.round_stats, trace.round_stats);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Single-epoch timelines match the static path across adversary
    /// strengths, fault plans, shard counts, and node speeds.
    #[test]
    fn single_epoch_equals_static_under_random_settings(
        topo_seed in 0u64..200,
        base_seed in 0u64..500,
        adv_p in 0.1f64..0.9,
        fault_kind in 0u8..4,
        shards in 1usize..4,
        speed in 0.0f64..0.01,
    ) {
        let statics = arena(topo_seed, base_seed, adv_p, fault_kind)
            .build()
            .unwrap();
        let mobile = arena(topo_seed, base_seed, adv_p, fault_kind)
            .mobility(speed, 90)
            .build()
            .unwrap();
        let (ts, os) = trace_and_outcome(statics, shards);
        let (tm, om) = trace_and_outcome(mobile, shards);
        prop_assert_eq!(ts, tm, "single-epoch trace drifted");
        prop_assert_eq!(os, om, "single-epoch outcome drifted");
    }
}
