//! Search-engine acceptance tests: seed determinism across thread
//! counts, the pinned `lb-worst` preset beating every hand-written
//! golden, the checked-in found corpus matching a re-run, and a fuzz
//! net over the raw sampled space.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use scenario::prelude::*;
use scenario::search::found_scenario;
use scenario::GoldenMetrics;
use std::path::PathBuf;

fn repo_dir(sub: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").join(sub)
}

/// A fast search spec: 4-node clique, short horizon, tiny budget.
fn small_spec(strategy: StrategySpec, budget: usize) -> SearchSpec {
    let base = ScenarioBuilder::new(
        "small",
        TopologySpec::Clique { n: 4, r: 1.0 },
        WorkloadSpec::LocalBroadcast {
            epsilon1: 0.25,
            senders: vec![0],
            messages_per_sender: 1,
        },
    )
    .stop(StopSpec::Rounds { rounds: 300 })
    .trials(2)
    .base_seed(1234)
    .build()
    .unwrap();
    let mut space = SpaceSpec::for_horizon(300);
    space.max_jam_nodes = 4;
    SearchSpec {
        name: "small".into(),
        description: String::new(),
        base,
        objective: Objective::MeanAckLatency,
        strategy,
        budget,
        seed: 99,
        trials: None,
        space,
    }
}

/// Same seed and budget ⇒ byte-identical archive JSON and the same
/// winner, at every worker-pool width. This is the determinism
/// contract `--threads` advertises.
#[test]
fn archive_is_byte_identical_across_thread_counts() {
    for strategy in [
        StrategySpec::Random,
        StrategySpec::Evolutionary { mu: 2, lambda: 3 },
    ] {
        let spec = small_spec(strategy, 8);
        let archives: Vec<_> = [1usize, 2, 8]
            .iter()
            .map(|&t| run_search(&spec, Some(t)).unwrap())
            .collect();
        let reference = archives[0].to_json();
        for (archive, threads) in archives.iter().zip([1, 2, 8]) {
            assert_eq!(
                archive.to_json(),
                reference,
                "{} archive diverged at {threads} thread(s)",
                spec.strategy.name()
            );
        }
        assert_eq!(archives[0].winner(), archives[1].winner());
        assert_eq!(archives[0].winner(), archives[2].winner());
    }
}

/// The pinned preset reproducibly finds a candidate whose (censored)
/// mean ack latency exceeds the worst blessed ack mean of every
/// hand-written registry scenario — the search engine automates past
/// the hand-written fault corpus.
#[test]
fn lb_worst_preset_beats_every_handwritten_golden() {
    let spec = scenario::search::find_preset("lb-worst").expect("preset registered");
    let archive = run_search(&spec, None).unwrap();

    let golden_dir = repo_dir("scenarios/golden");
    let mut worst: Option<(String, f64)> = None;
    for entry in std::fs::read_dir(&golden_dir).expect("scenarios/golden is checked in") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "json") {
            continue;
        }
        let name = path.file_stem().unwrap().to_string_lossy().to_string();
        if name.starts_with("found-") {
            continue; // compare against *hand-written* scenarios only
        }
        let g = GoldenMetrics::from_json(&std::fs::read_to_string(&path).unwrap())
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        if let Some(m) = g.ack_latency {
            if worst.as_ref().is_none_or(|(_, w)| m.mean > *w) {
                worst = Some((name, m.mean));
            }
        }
    }
    let (worst_name, worst_mean) = worst.expect("some golden pins an ack latency");
    let winner = archive.winner();
    assert!(
        winner.score > worst_mean,
        "search winner ({:.1}) must beat the worst hand-written golden \
         {worst_name} ({worst_mean:.1})",
        winner.score
    );
}

/// The checked-in found corpus is exactly what the pinned preset
/// emits: re-running the search reproduces `scenarios/found/` byte
/// for byte, so the corpus files carry verifiable provenance.
#[test]
fn checked_in_found_corpus_matches_a_rerun() {
    let spec = scenario::search::find_preset("lb-worst").unwrap();
    let archive = run_search(&spec, Some(3)).unwrap();

    let archive_path = repo_dir("scenarios/found/lb-worst.archive.json");
    let checked_in = std::fs::read_to_string(&archive_path)
        .expect("scenarios/found/lb-worst.archive.json is checked in");
    assert_eq!(
        archive.to_json(),
        checked_in,
        "checked-in archive diverged; regenerate with `cargo run --release -p bench \
         --bin scenario -- search lb-worst --archive scenarios/found/lb-worst.archive.json`"
    );

    let winner = found_scenario(&spec, archive.winner());
    let winner_path = repo_dir(&format!("scenarios/found/{}.json", winner.name));
    let on_disk = std::fs::read_to_string(&winner_path)
        .unwrap_or_else(|e| panic!("{}: {e}", winner_path.display()));
    assert_eq!(winner.to_json(), on_disk, "checked-in winner diverged");
    // And the corpus file round-trips through the ordinary loader.
    assert_eq!(Scenario::from_json(&on_disk).unwrap(), winner);
}

/// Every found scenario in the corpus has a blessed golden, so the
/// campaign gate covers the discovered worst cases.
#[test]
fn every_found_scenario_has_a_blessed_golden() {
    let found_dir = repo_dir("scenarios/found");
    for entry in std::fs::read_dir(&found_dir).expect("scenarios/found is checked in") {
        let path = entry.unwrap().path();
        let name = path.file_stem().unwrap().to_string_lossy().to_string();
        if !name.starts_with("found-") {
            continue; // the archive artifact
        }
        let golden = repo_dir(&format!("scenarios/golden/{name}.json"));
        assert!(
            golden.exists(),
            "{name} has no golden; bless with `scenario campaign {} --bless`",
            path.display()
        );
        let g = GoldenMetrics::from_json(&std::fs::read_to_string(&golden).unwrap()).unwrap();
        assert_eq!(g.scenario, name);
    }
}

/// Crash-restart semantics are observable end to end: the found
/// worst case crash-restarts the sender mid-broadcast (volatile state
/// wiped, the pending message lost, no ack ever); the *same* fault
/// windows in power-save mode keep the sender's state across the
/// outage and the ack lands. With the flag off, behavior is the
/// pre-existing power-save churn — which is exactly what the
/// unblessed hand-written goldens keep gating.
#[test]
fn crash_restart_differs_from_power_save_on_the_found_worst_case() {
    let path = repo_dir("scenarios/found/found-lb-worst-c0007.json");
    let restart = Scenario::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert!(restart.faults.crashes.iter().any(|c| c.restart));

    let mut power_save = restart.clone();
    for c in &mut power_save.faults.crashes {
        c.restart = false;
    }

    let with_restart = ScenarioRunner::new(restart).unwrap().run();
    let without = ScenarioRunner::new(power_save).unwrap().run();
    for o in &with_restart.outcomes {
        assert_eq!(o.first_ack, None, "restarting the sender must suppress the ack");
    }
    for o in &without.outcomes {
        assert!(
            o.first_ack.is_some(),
            "power-save keeps the pending broadcast across the outage"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fuzz the runner through the sampler: any candidate drawn from a
    /// validated space builds a scenario that runs panic-free with
    /// finite censored metrics, faults and all.
    #[test]
    fn sampled_candidates_run_panic_free(draw_seed in 0u64..1_000_000) {
        let spec = small_spec(StrategySpec::Random, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(draw_seed);
        let candidate = spec.space.sample(4, &mut rng);
        let scenario = candidate.apply(&spec, 0);
        let report = ScenarioRunner::new(scenario).unwrap().run();
        prop_assert_eq!(report.outcomes.len(), 2);
        let metrics = CandidateMetrics::of(&report.outcomes);
        prop_assert!(metrics.mean_ack.is_finite());
        prop_assert!(metrics.p99_ack.is_finite());
        prop_assert!((0.0..=1.0).contains(&metrics.spec_violation_rate));
        for o in &report.outcomes {
            prop_assert!(o.rounds > 0);
            prop_assert!(o.first_ack.is_none_or(|a| a <= o.rounds));
        }
    }
}
