//! Golden-file tests: the checked-in `scenarios/*.json` files stay in
//! sync with the registry and always load.

use scenario::{registry, Scenario};
use std::path::PathBuf;

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

#[test]
fn churn_golden_file_matches_registry() {
    let golden = std::fs::read_to_string(scenarios_dir().join("churn.json"))
        .expect("scenarios/churn.json is checked in");
    let registered = registry::find("churn").expect("churn is registered");
    assert_eq!(
        registered.to_json(),
        golden,
        "scenarios/churn.json diverged from the registry; regenerate with \
         `cargo run -p bench --bin scenario -- churn --export scenarios/churn.json`"
    );
}

#[test]
fn every_checked_in_scenario_loads_and_validates() {
    let dir = scenarios_dir();
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("scenarios/ directory exists") {
        let path = entry.expect("readable entry").path();
        if path.extension().is_none_or(|e| e != "json") {
            continue;
        }
        let data = std::fs::read_to_string(&path).expect("readable scenario file");
        let s = Scenario::from_json(&data)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(!s.name.is_empty());
        seen += 1;
    }
    assert!(
        seen >= 3,
        "expected the churn/jamming/drop-burst scenario files, found {seen}"
    );
}

#[test]
fn fault_scenario_files_match_their_registry_entries() {
    for (file, name) in [
        ("churn.json", "churn"),
        ("jamming_window.json", "jamming-window"),
        ("drop_burst.json", "drop-burst"),
    ] {
        let data = std::fs::read_to_string(scenarios_dir().join(file))
            .unwrap_or_else(|e| panic!("{file}: {e}"));
        let from_file = Scenario::from_json(&data).unwrap();
        let registered = registry::find(name).unwrap();
        assert_eq!(from_file, registered, "{file} diverged from registry {name}");
    }
}
