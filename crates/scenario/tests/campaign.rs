//! Campaign determinism and the golden-metric gate's contract.
//!
//! * A campaign's combined markdown report is **byte-identical** across
//!   worker thread counts and across runs.
//! * Golden tolerance comparison is symmetric in its two values and
//!   always accepts the metrics blessed from the same run.
//! * The checked-in `scenarios/golden/*.json` files cover every
//!   registry entry and pin its registered configuration. (The metric
//!   values themselves are re-measured by the CI `campaign --check`
//!   job, which needs a release build.)

use proptest::prelude::*;
use scenario::prelude::*;
use scenario::spec::{TopologySpec, WorkloadSpec};
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios/golden")
}

fn tiny(name: &str, seed: u64, drop_p: f64) -> Scenario {
    ScenarioBuilder::new(
        name,
        TopologySpec::Clique { n: 4, r: 1.0 },
        WorkloadSpec::LocalBroadcast {
            epsilon1: 0.25,
            senders: vec![0],
            messages_per_sender: 1,
        },
    )
    .drop_burst(2, 12, drop_p)
    .trials(3)
    .base_seed(seed)
    .build()
    .unwrap()
}

fn tiny_campaign() -> Vec<Scenario> {
    vec![tiny("a", 7, 0.25), tiny("b", 23, 0.5), tiny("c", 101, 0.0)]
}

#[test]
fn combined_report_is_byte_identical_across_threads_and_runs() {
    let markdown = |threads: usize| {
        Campaign::new(tiny_campaign())
            .unwrap()
            .threads(threads)
            .run()
            .to_markdown()
    };
    let one = markdown(1);
    let four = markdown(4);
    let again = markdown(4);
    let auto = Campaign::new(tiny_campaign()).unwrap().run().to_markdown();
    assert!(!one.is_empty());
    assert_eq!(one, four, "thread count changed the combined report");
    assert_eq!(four, again, "re-running changed the combined report");
    assert_eq!(one, auto, "default parallelism changed the combined report");
}

#[test]
fn stats_only_campaign_path_still_records_channel_totals() {
    // Campaign trials run under the lean stats-only recording policy;
    // the aggregate channel stats (and the drop-burst fault counters)
    // must still be measured — only the per-event trace is skipped.
    let report = Campaign::new(tiny_campaign()).unwrap().run();
    let drop_scenario = &report.reports[0]; // "a": drop_burst p = 0.25
    for o in &drop_scenario.outcomes {
        assert!(o.totals.transmitters > 0, "transmitter totals recorded");
        assert!(
            o.totals.deliveries + o.totals.dropped > 0,
            "delivery/drop totals recorded"
        );
    }
}

#[test]
fn campaign_handles_base_seed_at_u64_max() {
    // The flattened (scenario, trial) job list derives seeds the same
    // wrapping way as standalone runners.
    let mut s = tiny("wrap", 0, 0.25);
    s.base_seed = u64::MAX;
    let report = Campaign::new(vec![s]).unwrap().run();
    assert_eq!(
        report.reports[0]
            .outcomes
            .iter()
            .map(|o| o.master_seed)
            .collect::<Vec<_>>(),
        vec![u64::MAX, 0, 1],
    );
}

#[test]
fn every_registry_entry_has_a_blessed_golden_file() {
    for s in registry::all() {
        let path = golden_dir().join(format!("{}.json", s.name));
        let data = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{}: {e}; bless with `cargo run --release -p bench --bin scenario -- \
                 campaign --bless`",
                path.display()
            )
        });
        let golden = GoldenMetrics::from_json(&data)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(golden.scenario, s.name, "{}: wrong scenario", path.display());
        assert_eq!(
            golden.trials, s.trials,
            "{}: trial count diverged from the registry",
            path.display()
        );
        assert_eq!(
            golden.base_seed, s.base_seed,
            "{}: base seed diverged from the registry",
            path.display()
        );
    }
}

/// A synthetic report with the given per-trial (first_ack, acks, recvs,
/// spec_ok) measurements — golden blessing/checking is pure arithmetic
/// over these, so no simulation is needed to exercise it.
fn synthetic_report(outcomes: &[(Option<u64>, usize, usize, bool)]) -> ScenarioReport {
    let scenario = tiny("synthetic", 1, 0.0);
    let outcomes = outcomes
        .iter()
        .enumerate()
        .map(|(i, &(first_ack, acks, recvs, spec_ok))| TrialOutcome {
            master_seed: scenario.base_seed.wrapping_add(i as u64),
            rounds: 64,
            acks,
            recvs,
            totals: Default::default(),
            first_ack,
            first_delivery: first_ack,
            stop_satisfied: true,
            max_owners: None,
            jammed_recvs: None,
            clear_recvs: None,
            spec_ok,
        })
        .collect();
    ScenarioReport { scenario, outcomes }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `within_tolerance` is symmetric in its two values and reflexive
    /// for any non-negative band.
    #[test]
    fn tolerance_comparison_is_symmetric(
        a in -1.0e6f64..1.0e6,
        b in -1.0e6f64..1.0e6,
        tol in 0.0f64..1.0e4,
    ) {
        let fwd = analysis::report::within_tolerance(a, b, tol);
        let rev = analysis::report::within_tolerance(b, a, tol);
        prop_assert_eq!(fwd, rev);
        prop_assert!(analysis::report::within_tolerance(a, a, tol));
    }

    /// Golden metrics blessed from a report always accept that report,
    /// whatever it measured — including ack-free and all-failed runs —
    /// and survive a JSON round-trip intact.
    #[test]
    fn blessed_golden_accepts_its_own_report(
        acks in proptest::collection::vec(0usize..2_000, 1..6),
        latency_sel in 0u64..500,
        spec_sel in 0usize..8,
    ) {
        let outcomes: Vec<(Option<u64>, usize, usize, bool)> = acks
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                let first_ack = (a > 0).then(|| 1 + latency_sel + i as u64);
                (first_ack, a, a * 3, (i + spec_sel) % 3 != 0)
            })
            .collect();
        let report = synthetic_report(&outcomes);
        let golden = GoldenMetrics::from_report(&report);
        let back = GoldenMetrics::from_json(&golden.to_json()).expect("golden roundtrips");
        prop_assert_eq!(&golden, &back);
        let rows = back.check(&report);
        prop_assert!(rows.iter().all(|r| r.ok), "self-check drifted: {:?}", rows);
    }
}
