//! The named scenario registry.
//!
//! Every experiment of the E1–E11 suite is re-expressed here as *data*:
//! a representative cell of the experiment's sweep (its topology family,
//! adversary, workload, and horizon) as a [`Scenario`] value runnable by
//! name through the `scenario` binary. The registry also carries the
//! fault-injection scenarios — churn, a jamming window, a drop burst —
//! that the hard-coded suite could not express at all.
//!
//! The derived statistics of the original experiments (Wilson intervals,
//! log-fits, per-claim assertions) remain in `analysis::experiments`;
//! the registry gives every configuration a declarative, serializable,
//! extensible form.

use crate::spec::{
    AdversarySpec, Scenario, ScenarioBuilder, StopSpec, TopologySpec, WorkloadSpec,
};

fn seed_workload(epsilon1: f64) -> WorkloadSpec {
    WorkloadSpec::SeedAgreement {
        epsilon1,
        seed_bits: 64,
    }
}

fn lb_workload(epsilon1: f64, senders: Vec<usize>, messages: u64) -> WorkloadSpec {
    WorkloadSpec::LocalBroadcast {
        epsilon1,
        senders,
        messages_per_sender: messages,
    }
}

fn build(b: ScenarioBuilder) -> Scenario {
    b.build().expect("registry scenarios are valid")
}

/// All registered scenarios, in suite order.
pub fn all() -> Vec<Scenario> {
    vec![
        // ------------------------------------------------------------------
        // The E1–E11 experiment suite as data.
        // ------------------------------------------------------------------
        build(
            ScenarioBuilder::new(
                "e1",
                TopologySpec::RandomGeometric {
                    n: 60,
                    side: 4.0,
                    r: 2.0,
                    grey_reliable_p: 0.1,
                    grey_unreliable_p: 0.8,
                    seed: 11,
                },
                seed_workload(0.0625),
            )
            .description(
                "E1 seed agreement δ bound: max distinct owners per G'-neighborhood \
                 stays O(r² log 1/ε₁) on the E1a random geometric arena (ε₁ = 1/16)",
            )
            .trials(8)
            .base_seed(1_000),
        ),
        build(
            ScenarioBuilder::new("e2", TopologySpec::Clique { n: 16, r: 1.0 }, seed_workload(0.0625))
                .description(
                    "E2 SeedAlg round complexity: decides land within the \
                     O(log Δ · log²(1/ε₁)) schedule on a Δ = 16 clique",
                )
                .trials(6)
                .base_seed(3_000),
        ),
        build(
            ScenarioBuilder::new(
                "e3",
                TopologySpec::RandomGeometric {
                    n: 40,
                    side: 3.5,
                    r: 2.0,
                    grey_reliable_p: 0.1,
                    grey_unreliable_p: 0.8,
                    seed: 21,
                },
                seed_workload(0.125),
            )
            .description(
                "E3 seed spec conformance under a randomized oblivious scheduler: \
                 well-formedness/consistency/fidelity hold in every execution",
            )
            .adversary(AdversarySpec::Bernoulli { p: 0.5 })
            .trials(5)
            .base_seed(4_000),
        ),
        build(
            ScenarioBuilder::new(
                "e4",
                TopologySpec::Clique { n: 8, r: 1.0 },
                lb_workload(0.25, vec![0], 1_000),
            )
            .description(
                "E4 local broadcast progress: a streaming sender on a Δ = 8 clique; \
                 listeners hear data in most phases (≥ 1 − ε₁ per node and phase)",
            )
            .stop(StopSpec::Phases { phases: 4 })
            .trials(6)
            .base_seed(10_000),
        ),
        build(
            ScenarioBuilder::new(
                "e5",
                TopologySpec::Clique { n: 8, r: 1.0 },
                lb_workload(0.25, vec![0], 1),
            )
            .description(
                "E5 acknowledgment: a single broadcast acks within t_ack and serves \
                 all reliable neighbors first w.p. ≥ 1 − ε₁",
            )
            .trials(6)
            .base_seed(12_000),
        ),
        build(
            ScenarioBuilder::new(
                "e6",
                TopologySpec::Clique { n: 8, r: 1.0 },
                lb_workload(0.25, vec![0], 1_000),
            )
            .description(
                "E6 Lemma 4.2 reception rates: channel deliveries per listening round \
                 during streaming phase bodies (the p_u / p_{u,v} measurement arena)",
            )
            .stop(StopSpec::Phases { phases: 4 })
            .trials(6)
            .base_seed(14_000),
        ),
        build(
            ScenarioBuilder::new(
                "e7",
                TopologySpec::PumpArena {
                    reliable: 1,
                    grey: 16,
                },
                WorkloadSpec::Decay {
                    senders: (1..=17).collect(),
                },
            )
            .description(
                "E7 contention pump vs Decay: the anti-Decay masked pump floods the \
                 receiver's grey ring on aggressive rungs and starves the rest; \
                 first delivery at the receiver is delayed toward the horizon",
            )
            .adversary(AdversarySpec::MaskedPumpAgainstDecay {
                log_delta: 4,
                threshold: 0.45,
            })
            .stop(StopSpec::FirstDeliveryAt {
                node: 0,
                horizon_rounds: 1_024,
            })
            .trials(8)
            .base_seed(20_000),
        ),
        build(
            ScenarioBuilder::new(
                "e8",
                TopologySpec::GreySandwich {
                    reliable: 1,
                    grey: 16,
                    r: 2.0,
                },
                lb_workload(0.25, (1..=17).collect(), 1),
            )
            .description(
                "E8 oblivious/adaptive separation: the greedy jammer (outside the \
                 model) manufactures collisions at the receiver; first delivery is \
                 delayed or censored where any oblivious schedule permits progress",
            )
            .adversary(AdversarySpec::GreedyJammer)
            .stop(StopSpec::FirstDeliveryAt {
                node: 0,
                horizon_rounds: 4_096,
            })
            .trials(4)
            .base_seed(31_000),
        ),
        build(
            ScenarioBuilder::new(
                "e9",
                TopologySpec::ConstantDensity {
                    n: 144,
                    density: 8.0,
                    r: 1.5,
                    seed: 97,
                },
                lb_workload(0.25, vec![0], 1_000),
            )
            .description(
                "E9 true locality: a constant-density deployment 2.25× the base size; \
                 per-neighborhood behavior (not n) sets every measured quantity",
            )
            .adversary(AdversarySpec::Bernoulli { p: 0.5 })
            .stop(StopSpec::Phases { phases: 3 })
            .trials(3)
            .base_seed(40_000),
        ),
        build(
            ScenarioBuilder::new(
                "e10",
                TopologySpec::RandomGeometric {
                    n: 80,
                    side: 3.0,
                    r: 2.0,
                    grey_reliable_p: 0.1,
                    grey_unreliable_p: 0.8,
                    seed: 31,
                },
                seed_workload(0.0625),
            )
            .description(
                "E10 region-of-goodness arena: SeedAlg on the dense RGG used for the \
                 Appendix B goodness dynamics (phase-1 goodness, persistence)",
            )
            .trials(6)
            .base_seed(5_000),
        ),
        build(
            ScenarioBuilder::new(
                "e11",
                TopologySpec::Line {
                    n: 4,
                    spacing: 0.9,
                    r: 1.0,
                },
                WorkloadSpec::AmacFlood {
                    epsilon1: 0.25,
                    sources: vec![0],
                },
            )
            .description(
                "E11 abstract MAC port: flood broadcast over the LBAlg-backed MAC \
                 layer completes along a path in ≈ hops × f_ack rounds",
            )
            .adversary(AdversarySpec::Bernoulli { p: 0.5 })
            .trials(4)
            .base_seed(60_000),
        ),
        // ------------------------------------------------------------------
        // Fault-injection scenarios the hard-coded suite could not express.
        // ------------------------------------------------------------------
        build(
            ScenarioBuilder::new(
                "churn",
                TopologySpec::Grid {
                    rows: 4,
                    cols: 4,
                    spacing: 0.9,
                    r: 2.0,
                },
                lb_workload(0.25, vec![0, 5], 1_000),
            )
            .description(
                "churn: two streaming senders on a 4×4 grid while node 10 \
                 power-cycles (down rounds 40–119) and node 3 fails permanently at \
                 round 200; the layer keeps serving the surviving neighborhoods",
            )
            .adversary(AdversarySpec::Bernoulli { p: 0.5 })
            .crash(10, 40, Some(120))
            .crash(3, 200, None)
            .stop(StopSpec::Phases { phases: 6 })
            .trials(4)
            .base_seed(70_000),
        ),
        build(
            ScenarioBuilder::new(
                "churn-restart",
                TopologySpec::Grid {
                    rows: 4,
                    cols: 4,
                    spacing: 0.9,
                    r: 2.0,
                },
                lb_workload(0.25, vec![0, 5], 1_000),
            )
            .description(
                "churn-restart: the churn scenario under true crash-restart \
                 semantics — node 10's recovery wipes its volatile state (fresh \
                 phase bookkeeping, lost reception-dedup memory) instead of \
                 resuming mid-phase where power-save churn left off",
            )
            .adversary(AdversarySpec::Bernoulli { p: 0.5 })
            .crash_restart(10, 40, Some(120))
            .crash(3, 200, None)
            .stop(StopSpec::Phases { phases: 6 })
            .trials(4)
            .base_seed(70_000),
        ),
        build(
            ScenarioBuilder::new(
                "jamming-window",
                TopologySpec::Grid {
                    rows: 4,
                    cols: 4,
                    spacing: 0.9,
                    r: 2.0,
                },
                lb_workload(0.25, vec![0], 1_000),
            )
            .description(
                "jamming-window: a unit-radius interference disc over the grid \
                 center silences its listeners during rounds 60–180; deliveries \
                 inside the region stall, then recover when the window ends",
            )
            .jam_disc(1.35, 1.35, 1.0, 60, 180)
            .stop(StopSpec::Phases { phases: 6 })
            .trials(4)
            .base_seed(71_000),
        ),
        build(
            ScenarioBuilder::new(
                "mobility",
                TopologySpec::RandomGeometric {
                    n: 40,
                    side: 4.0,
                    r: 2.0,
                    grey_reliable_p: 0.1,
                    grey_unreliable_p: 0.8,
                    seed: 41,
                },
                lb_workload(0.25, vec![0], 1_000),
            )
            .description(
                "mobility: a streaming sender on a 40-node arena whose deployment \
                 drifts under random-waypoint motion (120-round geometry epochs) \
                 while a unit-radius jam disc sweeps left to right across the \
                 arena; deliveries stall inside the disc's current footprint and \
                 recover behind it",
            )
            .adversary(AdversarySpec::Bernoulli { p: 0.5 })
            .mobility(0.005, 120)
            .moving_jam_disc(0.5, 2.0, 1.0, 0.005, 0.0, 60, 600)
            .stop(StopSpec::Rounds { rounds: 720 })
            .trials(4)
            .base_seed(73_000),
        ),
        build(
            ScenarioBuilder::new(
                "drop-burst",
                TopologySpec::Clique { n: 8, r: 1.0 },
                lb_workload(0.25, vec![0], 1_000),
            )
            .description(
                "drop-burst: a streaming sender on a Δ = 8 clique through a 50% \
                 loss burst during rounds 30–90; acknowledgments slow during the \
                 burst and catch up after",
            )
            .drop_burst(30, 90, 0.5)
            .stop(StopSpec::Phases { phases: 6 })
            .trials(4)
            .base_seed(72_000),
        ),
    ]
}

/// The registered scenario names, in suite order.
pub fn names() -> Vec<String> {
    all().into_iter().map(|s| s.name).collect()
}

/// Looks up a scenario by name (case-insensitive).
pub fn find(name: &str) -> Option<Scenario> {
    all()
        .into_iter()
        .find(|s| s.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_cover_the_suite() {
        let names = names();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate registry names");
        for e in 1..=11 {
            assert!(
                names.iter().any(|n| n == &format!("e{e}")),
                "experiment e{e} missing from the registry"
            );
        }
        for extra in ["churn", "jamming-window", "mobility", "drop-burst"] {
            assert!(names.iter().any(|n| n == extra), "{extra} missing");
        }
    }

    #[test]
    fn every_registry_scenario_validates() {
        for s in all() {
            s.validate().unwrap_or_else(|e| panic!("{}: {e}", s.name));
            assert!(!s.description.is_empty(), "{} lacks a description", s.name);
        }
    }

    #[test]
    fn find_is_case_insensitive() {
        assert!(find("E4").is_some());
        assert!(find("Churn").is_some());
        assert!(find("nope").is_none());
    }

    #[test]
    fn fault_scenarios_actually_inject_faults() {
        for name in ["churn", "jamming-window", "mobility", "drop-burst"] {
            let s = find(name).unwrap();
            assert!(!s.faults.is_empty(), "{name} has an empty fault plan");
        }
    }

    #[test]
    fn mobility_scenario_moves_both_geometry_and_jammer() {
        let s = find("mobility").unwrap();
        let m = s.mobility.expect("mobility scenario declares motion");
        assert!(m.speed > 0.0);
        assert!(m.epochs_for(720) > 1, "multi-epoch by construction");
        assert!(s.faults.jams.iter().any(|j| j.is_moving()));
    }

    #[test]
    fn experiment_scenarios_roundtrip_through_json() {
        for s in all() {
            let back = Scenario::from_json(&s.to_json())
                .unwrap_or_else(|e| panic!("{}: {e}", s.name));
            assert_eq!(s, back);
        }
    }
}
