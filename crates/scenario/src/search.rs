//! Adversary search: automated exploration of the fault/adversary space.
//!
//! The paper quantifies over *every* link-scheduler adversary; the
//! registry pins the handful of hand-written worst cases we thought of.
//! This module closes the gap between the two: a [`SearchSpec`]
//! describes a **budgeted search** over the declarative
//! [`AdversarySpec`] × [`FaultPlanSpec`](crate::spec::FaultPlanSpec) ×
//! drop/jam parameter space that maximizes a chosen [`Objective`]
//! (censored mean or p99 ack latency, spec-violation rate) against the
//! `LBAlg` workload of a base scenario.
//!
//! Two strategies ship behind the [`SearchStrategy`] trait: seeded
//! [random sampling](RandomSearch) and a (μ+λ) [evolutionary
//! loop](Evolutionary) with typed mutation and crossover operators on
//! the spec space. Both draw every random decision from a single
//! `ChaCha8` stream seeded by the search seed, and candidates are
//! evaluated in batches on the existing [`Campaign`] worker pool —
//! whose results are job-index-ordered regardless of thread count — so
//! a search is **fully deterministic**: same seed and budget ⇒ a
//! byte-identical [`SearchArchive`] at any `--threads` value.
//!
//! Found worst cases round-trip into the regression corpus: the CLI
//! emits the top candidates as ordinary scenario JSON under
//! `scenarios/found/` (see [`found_scenario`]), and `scenario campaign
//! <file> --bless` pins their metrics like any registry entry — the
//! golden gate permanently remembers every adversary the search ever
//! discovered. Budget math: a search costs exactly
//! `budget × trials-per-candidate` simulated trials; at the engine's
//! measured thousands of trials per second, thousand-candidate searches
//! are routine (see `docs/search.md`).

use crate::campaign::Campaign;
use crate::runner::TrialOutcome;
use crate::spec::{
    AdversarySpec, CrashSpec, DropSpec, FaultPlanSpec, JamSpec, RegionSpec, Scenario,
    ScenarioError, TransportSpec, WorkloadSpec, MAX_STOP_ROUNDS,
};
use analysis::stats::Summary;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

fn invalid(msg: impl Into<String>) -> ScenarioError {
    ScenarioError::Invalid(msg.into())
}

/// Most candidate evaluations one search may be budgeted for — large
/// enough for an overnight exploration, small enough that a typo'd
/// budget cannot request an effectively unbounded campaign.
pub const MAX_SEARCH_BUDGET: usize = 4096;

// ---------------------------------------------------------------------------
// Objectives
// ---------------------------------------------------------------------------

/// What the search maximizes. All objectives are **total** over the
/// candidate space: ack-latency objectives censor ack-less trials at
/// the executed round count, so a candidate that suppresses the ack
/// entirely scores the full horizon instead of being unmeasurable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    /// Mean censored ack latency over the candidate's trials.
    MeanAckLatency,
    /// 99th percentile of the censored per-trial ack latencies.
    P99AckLatency,
    /// Fraction of trials whose deterministic workload spec
    /// (timely-ack/validity for `LBAlg`) was violated.
    SpecViolationRate,
}

impl Objective {
    /// The CLI name of the objective.
    pub fn name(&self) -> &'static str {
        match self {
            Objective::MeanAckLatency => "mean-ack",
            Objective::P99AckLatency => "p99-ack",
            Objective::SpecViolationRate => "spec-violations",
        }
    }

    /// Parses a CLI name (see [`Objective::name`]).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "mean-ack" => Some(Objective::MeanAckLatency),
            "p99-ack" => Some(Objective::P99AckLatency),
            "spec-violations" => Some(Objective::SpecViolationRate),
            _ => None,
        }
    }

    /// The candidate's score under this objective (higher = worse for
    /// the algorithm = better for the search).
    pub fn score(&self, m: &CandidateMetrics) -> f64 {
        match self {
            Objective::MeanAckLatency => m.mean_ack,
            Objective::P99AckLatency => m.p99_ack,
            Objective::SpecViolationRate => m.spec_violation_rate,
        }
    }
}

/// Per-candidate measurements, computed from the trial outcomes with
/// censoring so every candidate is comparable (see [`Objective`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CandidateMetrics {
    /// Mean censored ack latency in rounds.
    pub mean_ack: f64,
    /// p99 of the censored per-trial ack latencies.
    pub p99_ack: f64,
    /// Fraction of trials with a violated workload spec.
    pub spec_violation_rate: f64,
    /// Trials in which an ack was actually observed (un-censored).
    pub ack_trials: usize,
    /// Total trials measured.
    pub trials: usize,
}

impl CandidateMetrics {
    /// Measures a candidate from its trial outcomes. Trials without an
    /// ack contribute their executed round count (the censoring bound).
    pub fn of(outcomes: &[TrialOutcome]) -> Self {
        let censored: Vec<f64> = outcomes
            .iter()
            .map(|o| o.first_ack.unwrap_or(o.rounds) as f64)
            .collect();
        let sum = Summary::try_of(&censored).expect("every scenario runs >= 1 trial");
        let violations = outcomes.iter().filter(|o| !o.spec_ok).count();
        CandidateMetrics {
            mean_ack: sum.mean,
            p99_ack: sum.p99,
            spec_violation_rate: violations as f64 / outcomes.len() as f64,
            ack_trials: outcomes.iter().filter(|o| o.first_ack.is_some()).count(),
            trials: outcomes.len(),
        }
    }
}

// ---------------------------------------------------------------------------
// Search space
// ---------------------------------------------------------------------------

/// The adversary families the sampler may draw, parameters sampled
/// within always-valid bounds. The baseline-specific pumps and the
/// adaptive greedy jammer are deliberately absent: the search explores
/// the *oblivious* space the paper's guarantees quantify over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdversaryFamily {
    /// `Gₜ = G'` every round.
    AllExtraEdges,
    /// `Gₜ = G` every round.
    NoExtraEdges,
    /// Independent per-round edge inclusion.
    Bernoulli,
    /// All-edges / no-edges duty cycling.
    Alternating,
    /// Stripes `(t + j) mod k == 0`.
    Striped,
    /// Rotation through `k` edge slices.
    RoundRobin,
    /// Random subsets held for whole epochs.
    EpochRandom,
}

impl AdversaryFamily {
    /// Every samplable family, in declaration order.
    pub fn all() -> Vec<AdversaryFamily> {
        vec![
            AdversaryFamily::AllExtraEdges,
            AdversaryFamily::NoExtraEdges,
            AdversaryFamily::Bernoulli,
            AdversaryFamily::Alternating,
            AdversaryFamily::Striped,
            AdversaryFamily::RoundRobin,
            AdversaryFamily::EpochRandom,
        ]
    }

    /// Draws a concrete adversary of this family.
    fn sample(&self, rng: &mut ChaCha8Rng) -> AdversarySpec {
        match self {
            AdversaryFamily::AllExtraEdges => AdversarySpec::AllExtraEdges,
            AdversaryFamily::NoExtraEdges => AdversarySpec::NoExtraEdges,
            AdversaryFamily::Bernoulli => AdversarySpec::Bernoulli {
                p: rng.gen::<f64>(),
            },
            AdversaryFamily::Alternating => AdversarySpec::Alternating {
                high: rng.gen_range(1..65u64),
                low: rng.gen_range(1..65u64),
            },
            AdversaryFamily::Striped => AdversarySpec::Striped {
                k: rng.gen_range(1..9u64),
            },
            AdversaryFamily::RoundRobin => AdversarySpec::RoundRobin {
                k: rng.gen_range(1..9u64),
            },
            AdversaryFamily::EpochRandom => AdversarySpec::EpochRandom {
                epoch: rng.gen_range(1..129u64),
                p: rng.gen::<f64>(),
            },
        }
    }
}

/// Bounds of sampled **moving jam discs**. When a [`SpaceSpec`]
/// carries one of these, every sampled jam window is a disc with a
/// per-axis drift velocity instead of an explicit node list — the
/// dynamic-geometry half of the fault space. The base scenario must be
/// a mobility scenario (see [`SearchSpec::validate`]): the runner
/// re-resolves each disc against every epoch's embedding, so a moving
/// disc on a static deployment would be indistinguishable from a
/// parked one.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MovingJamSpace {
    /// Side of the square arena disc centers are drawn from (match the
    /// base topology's arena so sampled discs overlap the deployment).
    pub arena_side: f64,
    /// Largest sampled disc radius; draws land in `[radius/2, radius]`
    /// so a disc is never vanishingly small.
    pub radius: f64,
    /// Per-axis velocity bound in arena units per round: `vx` and `vy`
    /// are drawn uniformly from `[-velocity, velocity]`.
    pub velocity: f64,
}

impl MovingJamSpace {
    fn validate(&self) -> Result<(), ScenarioError> {
        if !(self.arena_side.is_finite() && self.arena_side > 0.0) {
            return Err(invalid(format!(
                "search space: moving-jam arena_side must be finite and > 0, got {}",
                self.arena_side
            )));
        }
        if !(self.radius.is_finite() && self.radius > 0.0) {
            return Err(invalid(format!(
                "search space: moving-jam radius must be finite and > 0, got {}",
                self.radius
            )));
        }
        if !(self.velocity.is_finite() && self.velocity >= 0.0) {
            return Err(invalid(format!(
                "search space: moving-jam velocity must be finite and >= 0, got {}",
                self.velocity
            )));
        }
        Ok(())
    }

    fn sample(&self, horizon: u64, max_window: u64, rng: &mut ChaCha8Rng) -> JamSpec {
        let x = rng.gen::<f64>() * self.arena_side;
        let y = rng.gen::<f64>() * self.arena_side;
        let radius = self.radius * (0.5 + 0.5 * rng.gen::<f64>());
        let vx = (rng.gen::<f64>() * 2.0 - 1.0) * self.velocity;
        let vy = (rng.gen::<f64>() * 2.0 - 1.0) * self.velocity;
        let from = rng.gen_range(1..horizon + 1);
        JamSpec {
            region: RegionSpec::Disc { x, y, radius },
            from,
            to: from + rng.gen_range(0..max_window),
            vx,
            vy,
        }
    }
}

/// Bounds of the sampled fault/adversary space. Every candidate drawn
/// from a validated space is a valid scenario by construction —
/// windows are 1-based and non-empty, vertices in range, probabilities
/// in `[0, 1]` — so the fuzz net can hammer the runner with raw
/// samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpaceSpec {
    /// Latest round a sampled fault window may start at (use the base
    /// scenario's horizon: windows past it would no-op).
    pub horizon: u64,
    /// Most crash windows per candidate.
    pub max_crashes: usize,
    /// Most jam windows per candidate.
    pub max_jams: usize,
    /// Most drop bursts per candidate.
    pub max_drops: usize,
    /// Most (distinct) vertices per jam window.
    pub max_jam_nodes: usize,
    /// Longest crash outage in rounds.
    pub max_outage: u64,
    /// Longest jam/drop window in rounds.
    pub max_window: u64,
    /// Upper bound of the sampled drop probability.
    pub drop_p_max: f64,
    /// Whether crash windows may carry crash-restart semantics
    /// (volatile state loss; see [`CrashSpec::restart`]).
    pub allow_restart: bool,
    /// The adversary families candidates may use (non-empty).
    pub adversaries: Vec<AdversaryFamily>,
    /// When set, sampled jam windows are moving discs drawn from these
    /// bounds instead of explicit node lists; requires a mobility base.
    /// `None` (the default) keeps the classic node-set jams — and the
    /// sampler's RNG consumption — exactly as before.
    #[serde(default)]
    pub moving_jams: Option<MovingJamSpace>,
}

impl SpaceSpec {
    /// A practical default space bounded by the given horizon: a few
    /// windows of every fault type, every oblivious adversary family,
    /// restart semantics allowed.
    pub fn for_horizon(horizon: u64) -> Self {
        SpaceSpec {
            horizon,
            max_crashes: 4,
            max_jams: 2,
            max_drops: 2,
            max_jam_nodes: 8,
            max_outage: (horizon / 8).max(1),
            max_window: (horizon / 2).max(1),
            drop_p_max: 0.9,
            allow_restart: true,
            adversaries: AdversaryFamily::all(),
            moving_jams: None,
        }
    }

    fn validate(&self, n: usize) -> Result<(), ScenarioError> {
        if self.horizon == 0 || self.horizon > MAX_STOP_ROUNDS {
            return Err(invalid(format!(
                "search space: horizon must be in [1, {MAX_STOP_ROUNDS}], got {}",
                self.horizon
            )));
        }
        if self.adversaries.is_empty() {
            return Err(invalid("search space: needs >= 1 adversary family"));
        }
        if self.max_jams > 0 && (self.max_jam_nodes == 0 || self.max_jam_nodes > n) {
            return Err(invalid(format!(
                "search space: max_jam_nodes must be in [1, {n}], got {}",
                self.max_jam_nodes
            )));
        }
        if self.max_outage == 0 || self.max_window == 0 {
            return Err(invalid(
                "search space: max_outage and max_window must be >= 1",
            ));
        }
        if !(0.0..=1.0).contains(&self.drop_p_max) {
            return Err(invalid(format!(
                "search space: drop_p_max must be in [0, 1], got {}",
                self.drop_p_max
            )));
        }
        if self.max_crashes > 32 || self.max_jams > 32 || self.max_drops > 32 {
            return Err(invalid(
                "search space: at most 32 windows of each fault type",
            ));
        }
        if let Some(mj) = &self.moving_jams {
            mj.validate()?;
        }
        Ok(())
    }

    /// Draws a uniform candidate from the space, valid by construction
    /// for any base with `n` vertices.
    pub fn sample(&self, n: usize, rng: &mut ChaCha8Rng) -> Candidate {
        let family = self.adversaries[rng.gen_range(0..self.adversaries.len())];
        let adversary = family.sample(rng);
        let crashes = (0..rng.gen_range(0..self.max_crashes + 1))
            .map(|_| self.sample_crash(n, rng))
            .collect();
        let jams = (0..rng.gen_range(0..self.max_jams + 1))
            .map(|_| self.sample_jam(n, rng))
            .collect();
        let drops = (0..rng.gen_range(0..self.max_drops + 1))
            .map(|_| self.sample_drop(rng))
            .collect();
        Candidate {
            adversary,
            crashes,
            jams,
            drops,
        }
    }

    fn sample_crash(&self, n: usize, rng: &mut ChaCha8Rng) -> CrashSpec {
        let down_from = rng.gen_range(1..self.horizon + 1);
        let outage = rng.gen_range(1..self.max_outage + 1);
        CrashSpec {
            node: rng.gen_range(0..n),
            down_from,
            // A quarter of sampled crashes are permanent.
            up_at: if rng.gen_bool(0.25) {
                None
            } else {
                Some(down_from + outage)
            },
            restart: self.allow_restart && rng.gen_bool(0.5),
        }
    }

    fn sample_jam(&self, n: usize, rng: &mut ChaCha8Rng) -> JamSpec {
        if let Some(mj) = &self.moving_jams {
            return mj.sample(self.horizon, self.max_window, rng);
        }
        let count = rng.gen_range(1..self.max_jam_nodes + 1);
        let mut nodes: Vec<usize> = (0..count).map(|_| rng.gen_range(0..n)).collect();
        nodes.sort_unstable();
        nodes.dedup();
        let from = rng.gen_range(1..self.horizon + 1);
        JamSpec {
            region: RegionSpec::Nodes { nodes },
            from,
            to: from + rng.gen_range(0..self.max_window),
            vx: 0.0,
            vy: 0.0,
        }
    }

    fn sample_drop(&self, rng: &mut ChaCha8Rng) -> DropSpec {
        let from = rng.gen_range(1..self.horizon + 1);
        DropSpec {
            from,
            to: from + rng.gen_range(0..self.max_window),
            // `gen * max` instead of `gen_range` so a zero bound is the
            // always-zero distribution rather than an empty range.
            p: rng.gen::<f64>() * self.drop_p_max,
        }
    }

    /// Applies one to two typed mutation operators to `c` in place,
    /// keeping it inside the space's bounds.
    pub fn mutate(&self, c: &mut Candidate, n: usize, rng: &mut ChaCha8Rng) {
        for _ in 0..rng.gen_range(1..3usize) {
            match rng.gen_range(0..8u32) {
                // Adversary: resample the family, or perturb a
                // probability knob when the current one has any.
                0 => {
                    let family = self.adversaries[rng.gen_range(0..self.adversaries.len())];
                    c.adversary = family.sample(rng);
                }
                1 => match &mut c.adversary {
                    AdversarySpec::Bernoulli { p } | AdversarySpec::EpochRandom { p, .. } => {
                        *p = (*p + (rng.gen::<f64>() - 0.5) * 0.4).clamp(0.0, 1.0);
                    }
                    _ => {
                        let family = self.adversaries[rng.gen_range(0..self.adversaries.len())];
                        c.adversary = family.sample(rng);
                    }
                },
                // Crash list: grow/replace, or shrink.
                2 => {
                    let fresh = self.sample_crash(n, rng);
                    if c.crashes.len() < self.max_crashes {
                        c.crashes.push(fresh);
                    } else if !c.crashes.is_empty() {
                        let i = rng.gen_range(0..c.crashes.len());
                        c.crashes[i] = fresh;
                    }
                }
                3 => {
                    if !c.crashes.is_empty() {
                        let i = rng.gen_range(0..c.crashes.len());
                        c.crashes.remove(i);
                    }
                }
                // Jam list.
                4 => {
                    if self.max_jams > 0 {
                        let fresh = self.sample_jam(n, rng);
                        if c.jams.len() < self.max_jams {
                            c.jams.push(fresh);
                        } else {
                            let i = rng.gen_range(0..c.jams.len());
                            c.jams[i] = fresh;
                        }
                    }
                }
                5 => {
                    if !c.jams.is_empty() {
                        let i = rng.gen_range(0..c.jams.len());
                        c.jams.remove(i);
                    }
                }
                // Drop list: grow/replace, or perturb a probability.
                6 => {
                    if self.max_drops > 0 {
                        if c.drops.is_empty() || c.drops.len() < self.max_drops && rng.gen_bool(0.5)
                        {
                            let fresh = self.sample_drop(rng);
                            c.drops.push(fresh);
                        } else {
                            let i = rng.gen_range(0..c.drops.len());
                            let p = (c.drops[i].p + (rng.gen::<f64>() - 0.5) * 0.4)
                                .clamp(0.0, self.drop_p_max);
                            c.drops[i].p = p;
                        }
                    }
                }
                _ => {
                    if !c.drops.is_empty() {
                        let i = rng.gen_range(0..c.drops.len());
                        c.drops.remove(i);
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Candidates
// ---------------------------------------------------------------------------

/// One point of the search space: the adversary schedule plus the
/// fault plan a candidate scenario overlays on the base.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// The dual-graph adversary.
    pub adversary: AdversarySpec,
    /// Crash/recover windows (power-save or crash-restart).
    pub crashes: Vec<CrashSpec>,
    /// Jamming windows.
    pub jams: Vec<JamSpec>,
    /// Drop bursts.
    pub drops: Vec<DropSpec>,
}

impl Candidate {
    /// Uniform crossover: each gene (adversary, crash list, jam list,
    /// drop list) comes wholesale from one parent.
    pub fn crossover(a: &Candidate, b: &Candidate, rng: &mut ChaCha8Rng) -> Candidate {
        let pick = |rng: &mut ChaCha8Rng| rng.gen_bool(0.5);
        Candidate {
            adversary: if pick(rng) {
                a.adversary.clone()
            } else {
                b.adversary.clone()
            },
            crashes: if pick(rng) {
                a.crashes.clone()
            } else {
                b.crashes.clone()
            },
            jams: if pick(rng) {
                a.jams.clone()
            } else {
                b.jams.clone()
            },
            drops: if pick(rng) {
                a.drops.clone()
            } else {
                b.drops.clone()
            },
        }
    }

    /// Materializes the candidate as a runnable scenario: the base with
    /// this adversary and fault plan, named by evaluation index.
    pub fn apply(&self, spec: &SearchSpec, index: usize) -> Scenario {
        let mut s = spec.base.clone();
        s.name = format!("{}-c{index:04}", spec.name);
        s.description = format!(
            "search '{}' candidate {index} (objective {}, search seed {})",
            spec.name,
            spec.objective.name(),
            spec.seed
        );
        s.adversary = self.adversary.clone();
        s.faults = FaultPlanSpec {
            crashes: self.crashes.clone(),
            jams: self.jams.clone(),
            drops: self.drops.clone(),
        };
        if let Some(t) = spec.trials {
            s.trials = t;
        }
        s
    }
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// How the next batch of candidates is chosen. Implementations must be
/// deterministic functions of their observation history and the RNG
/// stream — the driver guarantees single-threaded proposal order, so
/// this suffices for thread-count-independent archives.
pub trait SearchStrategy {
    /// The strategy's display name.
    fn name(&self) -> &'static str;

    /// Proposes the next batch: at least one and at most `remaining`
    /// candidates.
    fn propose(
        &mut self,
        space: &SpaceSpec,
        n: usize,
        remaining: usize,
        rng: &mut ChaCha8Rng,
    ) -> Vec<Candidate>;

    /// Observes the scored batch, in proposal order.
    fn observe(&mut self, scored: &[(Candidate, f64)]);
}

/// Seeded uniform sampling: the whole budget is drawn up front and
/// evaluated as one maximally parallel batch.
#[derive(Debug, Default)]
pub struct RandomSearch;

impl SearchStrategy for RandomSearch {
    fn name(&self) -> &'static str {
        "random"
    }

    fn propose(
        &mut self,
        space: &SpaceSpec,
        n: usize,
        remaining: usize,
        rng: &mut ChaCha8Rng,
    ) -> Vec<Candidate> {
        (0..remaining).map(|_| space.sample(n, rng)).collect()
    }

    fn observe(&mut self, _scored: &[(Candidate, f64)]) {}
}

/// (μ+λ) evolution: keep the `mu` best candidates ever seen, breed
/// `lambda` children per generation by uniform crossover plus typed
/// mutation, and re-select from parents and children together.
#[derive(Debug)]
pub struct Evolutionary {
    mu: usize,
    lambda: usize,
    /// The μ best (candidate, score) pairs seen so far, best first;
    /// ties keep the earlier-evaluated candidate first.
    population: Vec<(Candidate, f64)>,
}

impl Evolutionary {
    /// Creates the loop with the given parent/offspring counts.
    pub fn new(mu: usize, lambda: usize) -> Self {
        Evolutionary {
            mu,
            lambda,
            population: Vec::new(),
        }
    }
}

impl SearchStrategy for Evolutionary {
    fn name(&self) -> &'static str {
        "evolutionary"
    }

    fn propose(
        &mut self,
        space: &SpaceSpec,
        n: usize,
        remaining: usize,
        rng: &mut ChaCha8Rng,
    ) -> Vec<Candidate> {
        if self.population.is_empty() {
            // Bootstrap generation: uniform samples.
            let k = remaining.min(self.mu.max(self.lambda));
            return (0..k).map(|_| space.sample(n, rng)).collect();
        }
        let k = remaining.min(self.lambda);
        (0..k)
            .map(|_| {
                let a = self.population[rng.gen_range(0..self.population.len())]
                    .0
                    .clone();
                let mut child = if self.population.len() >= 2 && rng.gen_bool(0.5) {
                    let b = &self.population[rng.gen_range(0..self.population.len())].0;
                    Candidate::crossover(&a, b, rng)
                } else {
                    a
                };
                space.mutate(&mut child, n, rng);
                child
            })
            .collect()
    }

    fn observe(&mut self, scored: &[(Candidate, f64)]) {
        self.population.extend(scored.iter().cloned());
        // Stable sort: equal scores keep the earlier-evaluated
        // candidate ahead, so selection is deterministic.
        self.population
            .sort_by(|x, y| y.1.partial_cmp(&x.1).expect("scores are finite"));
        self.population.truncate(self.mu);
    }
}

/// The declarative strategy choice carried by a [`SearchSpec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StrategySpec {
    /// Seeded uniform sampling ([`RandomSearch`]).
    Random,
    /// (μ+λ) evolution ([`Evolutionary`]).
    Evolutionary {
        /// Parent population size (≥ 1).
        mu: usize,
        /// Offspring per generation (≥ 1).
        lambda: usize,
    },
}

impl StrategySpec {
    /// The CLI name of the strategy.
    pub fn name(&self) -> &'static str {
        match self {
            StrategySpec::Random => "random",
            StrategySpec::Evolutionary { .. } => "evolutionary",
        }
    }

    /// Instantiates the strategy.
    pub fn build(&self) -> Box<dyn SearchStrategy> {
        match *self {
            StrategySpec::Random => Box::new(RandomSearch),
            StrategySpec::Evolutionary { mu, lambda } => Box::new(Evolutionary::new(mu, lambda)),
        }
    }

    fn validate(&self) -> Result<(), ScenarioError> {
        if let StrategySpec::Evolutionary { mu, lambda } = self {
            if *mu == 0 || *lambda == 0 {
                return Err(invalid("search strategy: mu and lambda must be >= 1"));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Search spec
// ---------------------------------------------------------------------------

/// A complete, serializable search description: base scenario,
/// objective, strategy, budget, seed, and space bounds. Construct in
/// code, load from JSON, or take a [preset](presets).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchSpec {
    /// Identifier: prefixes candidate scenario names and names the
    /// archive.
    pub name: String,
    /// Human description of what the search hunts for.
    pub description: String,
    /// The scenario every candidate starts from; its adversary and
    /// fault plan are replaced by the candidate's.
    pub base: Scenario,
    /// What to maximize.
    pub objective: Objective,
    /// How to explore.
    pub strategy: StrategySpec,
    /// Total candidate evaluations (1 to [`MAX_SEARCH_BUDGET`]).
    pub budget: usize,
    /// Seed of the single RNG stream all proposals draw from.
    pub seed: u64,
    /// Per-candidate trial override (`None` = the base's trial count).
    #[serde(default)]
    pub trials: Option<usize>,
    /// Bounds of the sampled space.
    pub space: SpaceSpec,
}

impl SearchSpec {
    /// Validates the search: base scenario, budget, strategy, space.
    ///
    /// # Errors
    ///
    /// Returns the first constraint violation found.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.name.is_empty() {
            return Err(invalid("search: name must be non-empty"));
        }
        if self.budget == 0 || self.budget > MAX_SEARCH_BUDGET {
            return Err(invalid(format!(
                "search: budget must be in [1, {MAX_SEARCH_BUDGET}], got {}",
                self.budget
            )));
        }
        self.base.validate()?;
        if !matches!(
            self.base.workload,
            WorkloadSpec::LocalBroadcast { .. } | WorkloadSpec::SeedAgreement { .. }
        ) {
            return Err(invalid(
                "search: the base workload must be LocalBroadcast or SeedAgreement \
                 (ack objectives measure LBAlg's censored ack round; SeedAlg bases \
                 report no acks, so pair them with the spec-violations objective)",
            ));
        }
        if self.space.moving_jams.is_some()
            && self.space.max_jams > 0
            && self.base.mobility.is_none()
        {
            return Err(invalid(
                "search: a moving-jam space needs a mobility base (the runner \
                 resolves moving discs against each epoch's embedding)",
            ));
        }
        if !matches!(self.base.transport, TransportSpec::Sim) {
            return Err(invalid(
                "search: the base transport must be the simulator (candidates \
                 schedule dynamic adversaries a static mock-net link set cannot express)",
            ));
        }
        if self.trials == Some(0) {
            return Err(invalid("search: trials override must be >= 1"));
        }
        self.strategy.validate()?;
        self.space.validate(self.base.topology.node_count())
    }

    /// Serializes to pretty-printed JSON (the on-disk search format).
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("searches always serialize");
        s.push('\n');
        s
    }

    /// Parses and validates a search from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Parse`] on malformed JSON and
    /// [`ScenarioError::Invalid`] on a well-formed but invalid search.
    pub fn from_json(json: &str) -> Result<Self, ScenarioError> {
        let spec: SearchSpec =
            serde_json::from_str(json).map_err(|e| ScenarioError::Parse(e.to_string()))?;
        spec.validate()?;
        Ok(spec)
    }
}

// ---------------------------------------------------------------------------
// Archive and driver
// ---------------------------------------------------------------------------

/// One evaluated candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchiveEntry {
    /// Evaluation index (also the candidate scenario's name suffix).
    pub index: usize,
    /// Objective score (higher = worse for the algorithm).
    pub score: f64,
    /// The full censored measurements.
    pub metrics: CandidateMetrics,
    /// The candidate itself.
    pub candidate: Candidate,
}

/// The complete, deterministic result of a search: every candidate in
/// evaluation order plus the ranking. Serialized bytes are identical
/// for every thread count (the determinism test pins this).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchArchive {
    /// The search's name.
    pub search: String,
    /// The maximized objective.
    pub objective: Objective,
    /// The strategy's display name.
    pub strategy: String,
    /// Candidate evaluations performed.
    pub budget: usize,
    /// The search seed.
    pub seed: u64,
    /// Trials per candidate.
    pub trials: usize,
    /// Every evaluated candidate, in evaluation order.
    pub entries: Vec<ArchiveEntry>,
    /// Entry indices ranked best-first; ties rank the
    /// earlier-evaluated candidate first.
    pub ranking: Vec<usize>,
}

impl SearchArchive {
    /// The best candidate found.
    pub fn winner(&self) -> &ArchiveEntry {
        &self.entries[self.ranking[0]]
    }

    /// Serializes to pretty-printed JSON (the archive artifact).
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("archives always serialize");
        s.push('\n');
        s
    }

    /// Parses an archive from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Parse`] on malformed JSON.
    pub fn from_json(json: &str) -> Result<Self, ScenarioError> {
        serde_json::from_str(json).map_err(|e| ScenarioError::Parse(e.to_string()))
    }
}

/// Runs a search to completion. Proposal is single-threaded off the
/// seeded stream; evaluation fans each batch across the [`Campaign`]
/// worker pool (`threads = None` uses the pool's default), whose
/// results are job-index-ordered — so the returned archive is
/// byte-identical for every thread count.
///
/// # Errors
///
/// Returns the first validation failure; candidate scenarios drawn
/// from a validated space always build.
pub fn run_search(
    spec: &SearchSpec,
    threads: Option<usize>,
) -> Result<SearchArchive, ScenarioError> {
    spec.validate()?;
    let n = spec.base.topology.node_count();
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
    let mut strategy = spec.strategy.build();
    let mut entries: Vec<ArchiveEntry> = Vec::with_capacity(spec.budget);
    while entries.len() < spec.budget {
        let remaining = spec.budget - entries.len();
        let candidates = strategy.propose(&spec.space, n, remaining, &mut rng);
        assert!(
            !candidates.is_empty() && candidates.len() <= remaining,
            "strategy must propose 1..=remaining candidates"
        );
        let scenarios: Vec<Scenario> = candidates
            .iter()
            .enumerate()
            .map(|(j, c)| c.apply(spec, entries.len() + j))
            .collect();
        let mut campaign = Campaign::new(scenarios)?;
        if let Some(t) = threads {
            campaign = campaign.threads(t);
        }
        let report = campaign.run();
        let scored: Vec<(Candidate, f64)> = candidates
            .iter()
            .zip(&report.reports)
            .map(|(c, r)| {
                (
                    c.clone(),
                    spec.objective.score(&CandidateMetrics::of(&r.outcomes)),
                )
            })
            .collect();
        strategy.observe(&scored);
        for (candidate, r) in candidates.into_iter().zip(report.reports) {
            let metrics = CandidateMetrics::of(&r.outcomes);
            entries.push(ArchiveEntry {
                index: entries.len(),
                score: spec.objective.score(&metrics),
                metrics,
                candidate,
            });
        }
    }
    let mut ranking: Vec<usize> = (0..entries.len()).collect();
    ranking.sort_by(|&a, &b| {
        entries[b].score
            .partial_cmp(&entries[a].score)
            .expect("scores are finite")
            .then(a.cmp(&b))
    });
    Ok(SearchArchive {
        search: spec.name.clone(),
        objective: spec.objective,
        strategy: spec.strategy.name().to_string(),
        budget: spec.budget,
        seed: spec.seed,
        trials: spec.trials.unwrap_or(spec.base.trials),
        entries,
        ranking,
    })
}

/// Rebuilds an archived candidate as a standalone **found scenario**
/// ready for `scenarios/found/`: same execution as during the search
/// (name is not part of seeding), renamed `found-<search>-c<index>`
/// with a provenance description, blessable into the golden registry
/// like any registry entry.
pub fn found_scenario(spec: &SearchSpec, entry: &ArchiveEntry) -> Scenario {
    let mut s = entry.candidate.apply(spec, entry.index);
    s.name = format!("found-{}-c{:04}", spec.name, entry.index);
    s.description = format!(
        "found by `scenario search {}` (seed {}, {} strategy, budget {}): \
         {} = {:.2} over {} trial(s)",
        spec.name,
        spec.seed,
        spec.strategy.name(),
        spec.budget,
        spec.objective.name(),
        entry.score,
        entry.metrics.trials,
    );
    s
}

// ---------------------------------------------------------------------------
// Presets
// ---------------------------------------------------------------------------

/// The registered search presets, in registry order.
pub fn presets() -> Vec<SearchSpec> {
    vec![lb_worst(), lb_mobile_jam()]
}

/// Looks up a preset by name (case-insensitive).
pub fn find_preset(name: &str) -> Option<SearchSpec> {
    presets()
        .into_iter()
        .find(|s| s.name.eq_ignore_ascii_case(name))
}

/// The pinned small-budget search: maximize the censored mean ack
/// latency of a single broadcast on the churn scenario's 4×4 grid.
/// The fixed seed makes it reproducible end to end — CI re-runs it and
/// golden-gates the emitted worst case — and its winner demonstrably
/// beats every hand-written registry scenario's blessed ack mean (the
/// acceptance test pins this).
fn lb_worst() -> SearchSpec {
    let base = crate::spec::ScenarioBuilder::new(
        "lb-worst",
        crate::spec::TopologySpec::Grid {
            rows: 4,
            cols: 4,
            spacing: 0.9,
            r: 2.0,
        },
        WorkloadSpec::LocalBroadcast {
            epsilon1: 0.25,
            senders: vec![0],
            messages_per_sender: 1,
        },
    )
    .description("search base: single broadcast on the churn grid, fixed 4536-round horizon")
    .adversary(AdversarySpec::Bernoulli { p: 0.5 })
    .stop(crate::spec::StopSpec::Rounds { rounds: 4_536 })
    .trials(2)
    .base_seed(90_000)
    .build()
    .expect("preset base is valid");
    SearchSpec {
        name: "lb-worst".into(),
        description: "hunt the adversary/fault combination that maximizes the censored \
                      mean ack latency of a single broadcast on the 4×4 churn grid \
                      (horizon 4536 rounds ≈ 1.5× the nominal t_ack)"
            .into(),
        base,
        objective: Objective::MeanAckLatency,
        strategy: StrategySpec::Evolutionary { mu: 4, lambda: 8 },
        budget: 20,
        seed: 0x5EA_C41,
        trials: None,
        space: SpaceSpec::for_horizon(4_536),
    }
}

/// The pinned dynamic-geometry search: moving jam discs hunting a
/// single broadcast on a mobile random-geometric arena. Small budget —
/// the preset exists to pin the moving-jam sampler end to end (the
/// acceptance test checks a rerun stays deterministic and actually
/// drifts its discs), not to explore exhaustively.
fn lb_mobile_jam() -> SearchSpec {
    let base = crate::spec::ScenarioBuilder::new(
        "lb-mobile-jam",
        crate::spec::TopologySpec::RandomGeometric {
            n: 16,
            side: 3.0,
            r: 1.6,
            grey_reliable_p: 0.1,
            grey_unreliable_p: 0.9,
            seed: 11,
        },
        WorkloadSpec::LocalBroadcast {
            epsilon1: 0.25,
            senders: vec![0],
            messages_per_sender: 1,
        },
    )
    .description(
        "search base: single broadcast on a 16-node mobile RGG arena, \
         5 geometry epochs over a 1500-round horizon",
    )
    .adversary(AdversarySpec::Bernoulli { p: 0.5 })
    .stop(crate::spec::StopSpec::Rounds { rounds: 1_500 })
    .mobility(0.002, 300)
    .trials(2)
    .base_seed(91_000)
    .build()
    .expect("preset base is valid");
    let mut space = SpaceSpec::for_horizon(1_500);
    space.max_crashes = 2;
    space.max_jams = 2;
    space.moving_jams = Some(MovingJamSpace {
        arena_side: 3.0,
        radius: 1.5,
        velocity: 0.01,
    });
    SearchSpec {
        name: "lb-mobile-jam".into(),
        description: "hunt the moving-disc jam schedule that maximizes the censored \
                      mean ack latency of a single broadcast while the deployment \
                      itself drifts (random-waypoint mobility, 300-round epochs)"
            .into(),
        base,
        objective: Objective::MeanAckLatency,
        strategy: StrategySpec::Random,
        budget: 6,
        seed: 0x4D0B11,
        trials: None,
        space,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SearchSpec {
        let base = crate::spec::ScenarioBuilder::new(
            "tiny",
            crate::spec::TopologySpec::Clique { n: 4, r: 1.0 },
            WorkloadSpec::LocalBroadcast {
                epsilon1: 0.25,
                senders: vec![0],
                messages_per_sender: 1,
            },
        )
        .stop(crate::spec::StopSpec::Rounds { rounds: 200 })
        .trials(1)
        .build()
        .unwrap();
        let mut space = SpaceSpec::for_horizon(200);
        space.max_jam_nodes = 3;
        SearchSpec {
            name: "tiny".into(),
            description: String::new(),
            base,
            objective: Objective::MeanAckLatency,
            strategy: StrategySpec::Random,
            budget: 3,
            seed: 7,
            trials: None,
            space,
        }
    }

    #[test]
    fn presets_validate() {
        for p in presets() {
            p.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
        assert!(find_preset("LB-WORST").is_some());
        assert!(find_preset("nope").is_none());
    }

    #[test]
    fn sampled_candidates_build_valid_scenarios() {
        let spec = tiny_spec();
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for i in 0..50 {
            let c = spec.space.sample(4, &mut rng);
            let s = c.apply(&spec, i);
            s.validate().unwrap_or_else(|e| panic!("candidate {i}: {e}"));
        }
    }

    #[test]
    fn mutation_stays_in_bounds() {
        let spec = tiny_spec();
        let mut rng = ChaCha8Rng::seed_from_u64(43);
        let mut c = spec.space.sample(4, &mut rng);
        for i in 0..200 {
            spec.space.mutate(&mut c, 4, &mut rng);
            let s = c.apply(&spec, i);
            s.validate().unwrap_or_else(|e| panic!("mutation {i}: {e}"));
            assert!(c.crashes.len() <= spec.space.max_crashes);
            assert!(c.jams.len() <= spec.space.max_jams);
            assert!(c.drops.len() <= spec.space.max_drops);
        }
    }

    #[test]
    fn censoring_makes_every_candidate_scoreable() {
        use radio_sim::trace::RoundStats;
        let outcome = |first_ack: Option<u64>, spec_ok: bool| TrialOutcome {
            master_seed: 1,
            rounds: 100,
            acks: usize::from(first_ack.is_some()),
            recvs: 0,
            totals: RoundStats::default(),
            first_ack,
            first_delivery: None,
            stop_satisfied: true,
            max_owners: None,
            jammed_recvs: None,
            clear_recvs: None,
            spec_ok,
        };
        let m = CandidateMetrics::of(&[outcome(Some(40), true), outcome(None, false)]);
        assert_eq!(m.mean_ack, 70.0);
        assert_eq!(m.ack_trials, 1);
        assert_eq!(m.spec_violation_rate, 0.5);
        assert_eq!(Objective::SpecViolationRate.score(&m), 0.5);
    }

    #[test]
    fn search_runs_and_ranks() {
        let spec = tiny_spec();
        let archive = run_search(&spec, Some(1)).unwrap();
        assert_eq!(archive.entries.len(), 3);
        assert_eq!(archive.ranking.len(), 3);
        let w = archive.winner();
        assert!(archive.entries.iter().all(|e| e.score <= w.score));
        // Archive JSON round-trips.
        let back = SearchArchive::from_json(&archive.to_json()).unwrap();
        assert_eq!(back, archive);
        // Found scenarios are valid standalone files.
        let found = found_scenario(&spec, w);
        Scenario::from_json(&found.to_json()).unwrap();
        assert!(found.name.starts_with("found-tiny-c"));
    }

    #[test]
    fn evolutionary_strategy_is_exercised() {
        let mut spec = tiny_spec();
        spec.strategy = StrategySpec::Evolutionary { mu: 2, lambda: 2 };
        spec.budget = 6;
        let archive = run_search(&spec, Some(2)).unwrap();
        assert_eq!(archive.entries.len(), 6);
        assert_eq!(archive.strategy, "evolutionary");
    }

    #[test]
    fn validate_rejects_bad_specs() {
        let mut s = tiny_spec();
        s.budget = 0;
        assert!(s.validate().is_err());
        let mut s = tiny_spec();
        s.budget = MAX_SEARCH_BUDGET + 1;
        assert!(s.validate().is_err());
        let mut s = tiny_spec();
        s.space.adversaries.clear();
        assert!(s.validate().is_err());
        let mut s = tiny_spec();
        s.space.drop_p_max = 1.5;
        assert!(s.validate().is_err());
        let mut s = tiny_spec();
        s.strategy = StrategySpec::Evolutionary { mu: 0, lambda: 1 };
        assert!(s.validate().is_err());
        let mut s = tiny_spec();
        s.base.workload = WorkloadSpec::Decay { senders: vec![0] };
        assert!(s.validate().is_err());
        let mut s = tiny_spec();
        s.trials = Some(0);
        assert!(s.validate().is_err());
        // Moving-jam spaces demand a mobility base and sane bounds.
        let mut s = tiny_spec();
        s.space.moving_jams = Some(MovingJamSpace {
            arena_side: 3.0,
            radius: 1.0,
            velocity: 0.01,
        });
        assert!(s.validate().is_err(), "static base must reject moving jams");
        let mut s = find_preset("lb-mobile-jam").unwrap();
        s.space.moving_jams = Some(MovingJamSpace {
            arena_side: 3.0,
            radius: 0.0,
            velocity: 0.01,
        });
        assert!(s.validate().is_err(), "zero-radius disc space");
        let mut s = find_preset("lb-mobile-jam").unwrap();
        s.space.moving_jams = Some(MovingJamSpace {
            arena_side: 3.0,
            radius: 1.0,
            velocity: f64::NAN,
        });
        assert!(s.validate().is_err(), "non-finite velocity bound");
    }

    /// Satellite of the dynamic-geometry work: SeedAlg bases are legal
    /// search subjects. They report no acks (every ack objective sees
    /// the censoring bound), so the meaningful pairing is the
    /// spec-violation objective — and the archive stays byte-identical
    /// across thread counts like any other search.
    #[test]
    fn seed_agreement_bases_search_deterministically() {
        let base = crate::spec::ScenarioBuilder::new(
            "seed-tiny",
            crate::spec::TopologySpec::Clique { n: 4, r: 1.0 },
            WorkloadSpec::SeedAgreement {
                epsilon1: 0.25,
                seed_bits: 8,
            },
        )
        .stop(crate::spec::StopSpec::Rounds { rounds: 150 })
        .trials(1)
        .base_seed(77)
        .build()
        .unwrap();
        let mut space = SpaceSpec::for_horizon(150);
        space.max_jam_nodes = 3;
        let spec = SearchSpec {
            name: "seed-tiny".into(),
            description: String::new(),
            base,
            objective: Objective::SpecViolationRate,
            strategy: StrategySpec::Random,
            budget: 4,
            seed: 21,
            trials: None,
            space,
        };
        spec.validate().unwrap();
        let a = run_search(&spec, Some(1)).unwrap();
        let b = run_search(&spec, Some(3)).unwrap();
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.entries.len(), 4);
        // Censoring keeps ack-less SeedAlg trials scoreable.
        assert!(a.entries.iter().all(|e| e.metrics.mean_ack.is_finite()));
    }

    /// The pinned moving-jam preset actually samples drifting discs:
    /// every candidate's jams are disc regions, at least one drifts,
    /// and the search runs to completion (no disc misses every epoch).
    #[test]
    fn mobile_jam_preset_samples_moving_discs() {
        let spec = find_preset("lb-mobile-jam").unwrap();
        let archive = run_search(&spec, Some(2)).unwrap();
        assert_eq!(archive.entries.len(), spec.budget);
        let jams: Vec<&JamSpec> = archive
            .entries
            .iter()
            .flat_map(|e| &e.candidate.jams)
            .collect();
        assert!(!jams.is_empty(), "budget 6 should sample some jam windows");
        assert!(jams
            .iter()
            .all(|j| matches!(j.region, RegionSpec::Disc { .. })));
        assert!(jams.iter().any(|j| j.is_moving()), "discs should drift");
        let back = SearchArchive::from_json(&archive.to_json()).unwrap();
        assert_eq!(back, archive);
    }

    #[test]
    fn search_spec_json_roundtrip() {
        let spec = lb_worst();
        let back = SearchSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
    }
}
