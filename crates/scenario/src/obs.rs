//! Run-level observability: per-scenario latency/timing aggregation
//! and the structured JSONL run journal.
//!
//! [`Campaign::run_observed`](crate::campaign::Campaign::run_observed)
//! fills a [`RunTelemetry`] while it runs — per-trial wall-clock
//! histograms, per-worker busy time, ack/delivery latency histograms
//! (in rounds, built from the same [`TrialOutcome`] fields the golden
//! gate pins, so they are deterministic), and merged engine metrics
//! for every workload that exposes the engine. [`RunTelemetry::journal`]
//! serializes the whole run as a JSONL journal (`telemetry::journal`
//! schema, checked by `telemetry::validate_journal`), and
//! [`RunTelemetry::footer`] renders the wall-clock/throughput footer
//! the CLI appends to written reports.
//!
//! None of this feeds back into simulation: outcomes, reports, and
//! golden metrics from an observed run are identical to a plain run.

use crate::runner::TrialOutcome;
use telemetry::{
    EngineMetrics, EngineRecord, Histogram, HistogramRecord, MetaRecord, PoolRecord,
    ScenarioRecord, SummaryRecord,
};

/// Telemetry aggregated over one scenario's trials.
pub struct ScenarioTelemetry {
    /// Scenario (registry or derived sweep-point) name.
    pub name: String,
    /// Trials measured.
    pub trials: usize,
    /// Per-trial wall-clock distribution (ns).
    pub trial_ns: Histogram,
    /// First-ack round across trials that observed one (deterministic:
    /// a pure function of the outcomes).
    pub ack_latency_rounds: Histogram,
    /// Watched-delivery round across trials that observed one.
    pub delivery_latency_rounds: Histogram,
    /// Engine metrics merged over all trials; `None` when the workload
    /// hides the engine behind an adapter (the MAC flood).
    pub engine: Option<EngineMetrics>,
}

impl ScenarioTelemetry {
    /// An empty sink for a named scenario.
    pub fn new(name: &str) -> Self {
        ScenarioTelemetry {
            name: name.into(),
            trials: 0,
            trial_ns: Histogram::new(),
            ack_latency_rounds: Histogram::new(),
            delivery_latency_rounds: Histogram::new(),
            engine: None,
        }
    }

    /// Folds one trial's outcome (and, when present, its engine
    /// metrics) in. `elapsed_ns` is the trial's wall-clock time on its
    /// worker.
    pub fn record_trial(
        &mut self,
        outcome: &TrialOutcome,
        elapsed_ns: u64,
        engine: Option<EngineMetrics>,
    ) {
        self.trials += 1;
        self.trial_ns.record(elapsed_ns);
        if let Some(r) = outcome.first_ack {
            self.ack_latency_rounds.record(r);
        }
        if let Some(r) = outcome.first_delivery {
            self.delivery_latency_rounds.record(r);
        }
        if let Some(m) = engine {
            match &mut self.engine {
                Some(acc) => acc.merge(&m),
                None => self.engine = Some(m),
            }
        }
    }

    fn record(&self) -> ScenarioRecord {
        let mut rec = ScenarioRecord::new(&self.name, self.trials);
        rec.trial_ns = HistogramRecord::of(&self.trial_ns);
        rec.ack_latency_rounds = HistogramRecord::of(&self.ack_latency_rounds);
        rec.delivery_latency_rounds = HistogramRecord::of(&self.delivery_latency_rounds);
        rec.engine = self.engine.as_ref().map(EngineRecord::of);
        rec
    }
}

/// Telemetry for one whole observed run (campaign, sweep, or a
/// single-scenario run wrapped in a one-entry campaign).
pub struct RunTelemetry {
    /// Worker threads the pool actually used.
    pub threads: usize,
    /// Reception-resolution shards per trial engine.
    pub shards: usize,
    /// Total run wall-clock (ns).
    pub wall_ns: u64,
    /// Busy nanoseconds per pool worker.
    pub worker_busy_ns: Vec<u64>,
    /// Per-trial wall-clock distribution over the whole run.
    pub trial_ns: Histogram,
    /// Per-scenario aggregates, in campaign order.
    pub scenarios: Vec<ScenarioTelemetry>,
}

impl RunTelemetry {
    /// Total trials measured.
    pub fn total_trials(&self) -> usize {
        self.scenarios.iter().map(|s| s.trials).sum()
    }

    /// Run wall-clock in seconds.
    pub fn wall_s(&self) -> f64 {
        self.wall_ns as f64 / 1e9
    }

    /// The run as a JSONL journal: one `meta` line, one `scenario`
    /// line per scenario, one `pool` line, one `summary` line — the
    /// schema `telemetry::validate_journal` checks.
    pub fn journal(&self, mode: &str, label: &str) -> String {
        let meta = MetaRecord::new(
            mode,
            label,
            self.scenarios.len(),
            self.total_trials(),
            self.threads,
            self.shards,
        );
        let pool = PoolRecord::new(
            self.total_trials() as u64,
            self.wall_ns,
            self.worker_busy_ns.clone(),
        );
        let summary = SummaryRecord::new(self.scenarios.len(), self.total_trials(), self.wall_s());
        let mut out = String::new();
        let mut push = |json: String| {
            out.push_str(&json);
            out.push('\n');
        };
        push(serde_json::to_string(&meta).expect("meta record serializes"));
        for s in &self.scenarios {
            push(serde_json::to_string(&s.record()).expect("scenario record serializes"));
        }
        push(serde_json::to_string(&pool).expect("pool record serializes"));
        push(serde_json::to_string(&summary).expect("summary record serializes"));
        out
    }

    /// The perf footer for written reports: total wall-clock, aggregate
    /// trials/s, worker-thread count. Appended by the CLI at file-write
    /// time only — never part of `to_markdown` (byte-identity).
    pub fn footer(&self) -> String {
        analysis::report::perf_footer(self.total_trials(), self.wall_s(), self.threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_sim::trace::RoundStats;

    fn outcome(first_ack: Option<u64>, first_delivery: Option<u64>) -> TrialOutcome {
        TrialOutcome {
            master_seed: 1,
            rounds: 10,
            acks: first_ack.map_or(0, |_| 1),
            recvs: first_delivery.map_or(0, |_| 1),
            totals: RoundStats::default(),
            first_ack,
            first_delivery,
            stop_satisfied: true,
            max_owners: None,
            jammed_recvs: None,
            clear_recvs: None,
            spec_ok: true,
        }
    }

    fn sample_run() -> RunTelemetry {
        let mut s1 = ScenarioTelemetry::new("a");
        let mut engine = EngineMetrics::new(1);
        engine.record_round([1, 2, 3, 4, 5, 6]);
        s1.record_trial(&outcome(Some(7), Some(3)), 10_000, Some(engine));
        let mut engine2 = EngineMetrics::new(1);
        engine2.record_round([2, 2, 2, 2, 2, 2]);
        s1.record_trial(&outcome(Some(9), None), 12_000, Some(engine2));
        let mut s2 = ScenarioTelemetry::new("b");
        s2.record_trial(&outcome(None, Some(4)), 20_000, None);
        let mut trial_ns = Histogram::new();
        for v in [10_000u64, 12_000, 20_000] {
            trial_ns.record(v);
        }
        RunTelemetry {
            threads: 2,
            shards: 1,
            wall_ns: 50_000,
            worker_busy_ns: vec![22_000, 20_000],
            trial_ns,
            scenarios: vec![s1, s2],
        }
    }

    #[test]
    fn scenario_telemetry_merges_trials() {
        let run = sample_run();
        let s1 = &run.scenarios[0];
        assert_eq!(s1.trials, 2);
        assert_eq!(s1.ack_latency_rounds.count(), 2);
        assert_eq!(s1.ack_latency_rounds.p50(), Some(7));
        assert_eq!(s1.delivery_latency_rounds.count(), 1);
        let engine = s1.engine.as_ref().expect("merged engine metrics");
        assert_eq!(engine.rounds, 2);
        assert!(run.scenarios[1].engine.is_none());
        assert_eq!(run.total_trials(), 3);
    }

    #[test]
    fn journal_validates_and_counts_scenarios() {
        let journal = sample_run().journal("campaign", "test");
        let stats = telemetry::validate_journal(&journal).expect("journal validates");
        assert_eq!(stats.scenarios, 2);
        assert_eq!(stats.engine_scenarios, 1);
        assert_eq!(stats.ack_scenarios, 1);
        assert_eq!(stats.trials, 3);
        assert!(journal.contains("\"mode\":\"campaign\""));
    }

    #[test]
    fn footer_reports_throughput() {
        let f = sample_run().footer();
        assert!(f.contains("3 trials"), "{f}");
        assert!(f.contains("2 worker threads"), "{f}");
    }
}
