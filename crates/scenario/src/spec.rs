//! The declarative scenario description: serde types and validation.
//!
//! A [`Scenario`] is a complete, self-contained description of a
//! simulation campaign — topology family, dual-graph adversary schedule,
//! fault plan, workload, stop condition, and seeding — expressible as a
//! JSON file. Everything the runner does is a pure function of the
//! scenario value, so campaigns are shareable, diffable, and replayable.
//!
//! Construction goes through [`ScenarioBuilder`] (or JSON via
//! [`Scenario::from_json`]); both validate the description before any
//! simulation runs, so a `Scenario` accepted by the runner never panics
//! inside a topology generator or the engine's fault-plan check.

use radio_sim::fault::FaultPlan;
use radio_sim::geometry::{Embedding, Point};
use radio_sim::graph::NodeId;
use radio_sim::scheduler::{self, AdaptiveScheduler, LinkScheduler};
use radio_sim::topology::{self, GreyKind, Topology};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors from scenario validation and JSON loading.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The JSON could not be parsed into a [`Scenario`].
    Parse(String),
    /// A field failed validation; the string names field and constraint.
    Invalid(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Parse(e) => write!(f, "cannot parse scenario: {e}"),
            ScenarioError::Invalid(e) => write!(f, "invalid scenario: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

fn invalid(msg: impl Into<String>) -> ScenarioError {
    ScenarioError::Invalid(msg.into())
}

// ---------------------------------------------------------------------------
// Topology
// ---------------------------------------------------------------------------

/// A topology family plus its parameters, mirroring the generators in
/// [`radio_sim::topology`] (and the E7 pump arena from the experiment
/// suite) as plain data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TopologySpec {
    /// `n` nodes on a line, `spacing` apart; grey-zone pairs unreliable.
    Line {
        /// Node count.
        n: usize,
        /// Distance between adjacent nodes.
        spacing: f64,
        /// Geographic parameter `r ≥ 1`.
        r: f64,
    },
    /// `n` nodes on a circle of circumference `n · spacing`.
    Ring {
        /// Node count (≥ 3).
        n: usize,
        /// Arc distance between adjacent nodes.
        spacing: f64,
        /// Geographic parameter `r ≥ 1`.
        r: f64,
    },
    /// A `rows × cols` grid with the given spacing.
    Grid {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
        /// Distance between adjacent grid points.
        spacing: f64,
        /// Geographic parameter `r ≥ 1`.
        r: f64,
    },
    /// `n` nodes packed in a disc of diameter < 1: a reliable clique.
    Clique {
        /// Node count.
        n: usize,
        /// Geographic parameter `r ≥ 1`.
        r: f64,
    },
    /// The grey-zone sandwich: receiver + reliable senders + a ring of
    /// grey (unreliable-only) senders.
    GreySandwich {
        /// Reliable senders within distance 1 of the receiver.
        reliable: usize,
        /// Grey senders in the annulus `(1, r]`.
        grey: usize,
        /// Geographic parameter `r > 1`.
        r: f64,
    },
    /// The E7 arena: a grey sandwich plus a remote clique inflating the
    /// global degree bound Δ (stretching Decay's probability ladder).
    PumpArena {
        /// Reliable senders near the receiver.
        reliable: usize,
        /// Grey senders on the unreliable ring.
        grey: usize,
    },
    /// Dense core clique with a sparse grey-zone periphery ring.
    TwoTier {
        /// Core clique size.
        core: usize,
        /// Periphery node count.
        periphery: usize,
        /// Periphery ring radius, in `(1, r]`.
        ring_radius: f64,
        /// Geographic parameter.
        r: f64,
    },
    /// Clusters of tightly packed nodes bridged by grey-zone links.
    Clustered {
        /// Number of clusters.
        clusters: usize,
        /// Nodes per cluster.
        cluster_size: usize,
        /// Distance between adjacent cluster centers.
        spacing: f64,
        /// Cluster radius.
        spread: f64,
        /// Geographic parameter.
        r: f64,
        /// Placement seed.
        seed: u64,
    },
    /// Uniformly random placement in a `side × side` square.
    RandomGeometric {
        /// Node count.
        n: usize,
        /// Deployment square side length.
        side: f64,
        /// Geographic parameter.
        r: f64,
        /// Probability a grey-zone pair becomes reliable.
        grey_reliable_p: f64,
        /// Probability a (non-reliable) grey-zone pair becomes unreliable.
        grey_unreliable_p: f64,
        /// Placement and wiring seed.
        seed: u64,
    },
    /// Constant-density deployment whose area grows with `n` (E9).
    ConstantDensity {
        /// Node count.
        n: usize,
        /// Expected nodes per unit disc.
        density: f64,
        /// Geographic parameter.
        r: f64,
        /// Placement seed.
        seed: u64,
    },
}

impl TopologySpec {
    /// The vertex count the built topology will have.
    pub fn node_count(&self) -> usize {
        match self {
            TopologySpec::Line { n, .. }
            | TopologySpec::Ring { n, .. }
            | TopologySpec::Clique { n, .. }
            | TopologySpec::RandomGeometric { n, .. }
            | TopologySpec::ConstantDensity { n, .. } => *n,
            TopologySpec::Grid { rows, cols, .. } => rows * cols,
            TopologySpec::GreySandwich { reliable, grey, .. } => 1 + reliable + grey,
            TopologySpec::PumpArena { reliable, grey } => 1 + reliable + grey + (*grey).max(4),
            TopologySpec::TwoTier {
                core, periphery, ..
            } => core + periphery,
            TopologySpec::Clustered {
                clusters,
                cluster_size,
                ..
            } => clusters * cluster_size,
        }
    }

    /// Checks the parameters the generators would otherwise `assert!` on.
    fn validate(&self) -> Result<(), ScenarioError> {
        let check_r = |r: f64| {
            if r >= 1.0 && r.is_finite() {
                Ok(())
            } else {
                Err(invalid(format!("topology: r must be >= 1, got {r}")))
            }
        };
        let check_spacing = |s: f64| {
            if s > 0.0 && s.is_finite() {
                Ok(())
            } else {
                Err(invalid(format!("topology: spacing must be > 0, got {s}")))
            }
        };
        if self.node_count() == 0 {
            return Err(invalid("topology: node count must be >= 1"));
        }
        match *self {
            TopologySpec::Line { spacing, r, .. } | TopologySpec::Grid { spacing, r, .. } => {
                check_spacing(spacing)?;
                check_r(r)
            }
            TopologySpec::Ring { n, spacing, r } => {
                if n < 3 {
                    return Err(invalid("topology: a ring needs at least 3 nodes"));
                }
                check_spacing(spacing)?;
                check_r(r)
            }
            TopologySpec::Clique { r, .. } => check_r(r),
            TopologySpec::GreySandwich { r, .. } => {
                if r <= 1.0 {
                    return Err(invalid("topology: grey sandwich needs r > 1"));
                }
                check_r(r)
            }
            TopologySpec::PumpArena { .. } => Ok(()),
            TopologySpec::TwoTier { ring_radius, r, .. } => {
                check_r(r)?;
                if ring_radius > 1.0 && ring_radius <= r {
                    Ok(())
                } else {
                    Err(invalid(format!(
                        "topology: two-tier ring radius must lie in (1, r], got {ring_radius}"
                    )))
                }
            }
            TopologySpec::Clustered {
                spacing, spread, r, ..
            } => {
                check_spacing(spacing)?;
                if spread <= 0.0 || !spread.is_finite() {
                    return Err(invalid("topology: cluster spread must be > 0"));
                }
                check_r(r)
            }
            TopologySpec::RandomGeometric {
                side,
                r,
                grey_reliable_p,
                grey_unreliable_p,
                ..
            } => {
                check_spacing(side)?;
                check_r(r)?;
                for p in [grey_reliable_p, grey_unreliable_p] {
                    if !(0.0..=1.0).contains(&p) {
                        return Err(invalid(format!(
                            "topology: grey wiring probability must be in [0, 1], got {p}"
                        )));
                    }
                }
                Ok(())
            }
            TopologySpec::ConstantDensity { density, r, .. } => {
                if density <= 0.0 || !density.is_finite() {
                    return Err(invalid("topology: density must be > 0"));
                }
                check_r(r)
            }
        }
    }

    /// Builds the topology. Call only on a validated spec.
    pub fn build(&self) -> Topology {
        match *self {
            TopologySpec::Line { n, spacing, r } => topology::line(n, spacing, r),
            TopologySpec::Ring { n, spacing, r } => topology::ring(n, spacing, r),
            TopologySpec::Grid {
                rows,
                cols,
                spacing,
                r,
            } => topology::grid(rows, cols, spacing, r),
            TopologySpec::Clique { n, r } => topology::clique(n, r),
            TopologySpec::GreySandwich { reliable, grey, r } => {
                topology::grey_sandwich(reliable, grey, r)
            }
            TopologySpec::PumpArena { reliable, grey } => pump_arena(reliable, grey),
            TopologySpec::TwoTier {
                core,
                periphery,
                ring_radius,
                r,
            } => topology::two_tier(core, periphery, ring_radius, r),
            TopologySpec::Clustered {
                clusters,
                cluster_size,
                spacing,
                spread,
                r,
                seed,
            } => topology::clustered(topology::ClusterParams {
                clusters,
                cluster_size,
                spacing,
                spread,
                r,
                seed,
            }),
            TopologySpec::RandomGeometric {
                n,
                side,
                r,
                grey_reliable_p,
                grey_unreliable_p,
                seed,
            } => topology::random_geometric(topology::RggParams {
                n,
                side,
                r,
                grey_reliable_p,
                grey_unreliable_p,
                seed,
            }),
            TopologySpec::ConstantDensity { n, density, r, seed } => {
                topology::constant_density(n, density, r, seed)
            }
        }
    }
}

/// The E7 arena (receiver + reliable arc + grey ring + remote clique),
/// re-expressed here so scenarios can name it as a family.
fn pump_arena(reliable: usize, grey: usize) -> Topology {
    let r = 2.0;
    let mut pts = vec![Point::new(0.0, 0.0)];
    for i in 0..reliable {
        let a = 0.5 * (i as f64) / reliable.max(1) as f64;
        pts.push(Point::new(0.8 * a.cos(), 0.8 * a.sin()));
    }
    let ring = 1.5;
    for i in 0..grey {
        let a = 2.0 * std::f64::consts::PI * (i as f64) / grey.max(1) as f64;
        pts.push(Point::new(ring * a.cos(), ring * a.sin()));
    }
    let clique = grey.max(4);
    for i in 0..clique {
        let a = 2.0 * std::f64::consts::PI * (i as f64) / clique as f64;
        pts.push(Point::new(100.0 + 0.49 * a.cos(), 0.49 * a.sin()));
    }
    topology::from_embedding(Embedding::new(pts), r, GreyKind::Unreliable)
}

// ---------------------------------------------------------------------------
// Adversary (link scheduler)
// ---------------------------------------------------------------------------

/// The dual-graph adversary schedule, mirroring the scheduler library.
///
/// Randomized schedules (`Bernoulli`, `EpochRandom`) derive their seed
/// from each trial's master seed, so Monte-Carlo trials see independent
/// schedules — exactly how the experiment suite uses them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AdversarySpec {
    /// Every unreliable edge present every round (`Gₜ = G'`).
    AllExtraEdges,
    /// No unreliable edge ever present (`Gₜ = G`).
    NoExtraEdges,
    /// Each extra edge present independently with probability `p` per
    /// round.
    Bernoulli {
        /// Per-round inclusion probability.
        p: f64,
    },
    /// All extra edges for `high` rounds, none for `low`, repeating.
    Alternating {
        /// Rounds per cycle with all extra edges.
        high: u64,
        /// Rounds per cycle with none.
        low: u64,
    },
    /// The §1 contention pump against a Decay cycle of the given length.
    ContentionPump {
        /// Baseline probability-cycle length (`log₂ Δ̂`).
        cycle: u64,
    },
    /// The fully general anti-Decay pump: flood rungs whose transmit
    /// probability exceeds `threshold`, starve the rest.
    MaskedPumpAgainstDecay {
        /// Decay ladder length (`log₂ Δ̂`).
        log_delta: u32,
        /// Contention threshold selecting the flooded rungs.
        threshold: f64,
    },
    /// Edge `j` present in round `t` iff `(t + j) mod k == 0`.
    Striped {
        /// Stripe modulus.
        k: u64,
    },
    /// Round-robin rotation through `k` slices of the extra edges.
    RoundRobin {
        /// Slice count.
        k: u64,
    },
    /// A fresh random subset held constant for `epoch` rounds at a time.
    EpochRandom {
        /// Rounds per epoch.
        epoch: u64,
        /// Per-epoch inclusion probability.
        p: f64,
    },
    /// The adaptive greedy jammer — outside the paper's model; reproduces
    /// the oblivious/adaptive separation (E8).
    GreedyJammer,
}

impl AdversarySpec {
    /// Whether this is the adaptive (outside-the-model) adversary.
    pub fn is_adaptive(&self) -> bool {
        matches!(self, AdversarySpec::GreedyJammer)
    }

    /// A short name for report tables.
    pub fn name(&self) -> &'static str {
        match self {
            AdversarySpec::AllExtraEdges => "all-edges",
            AdversarySpec::NoExtraEdges => "no-edges",
            AdversarySpec::Bernoulli { .. } => "bernoulli",
            AdversarySpec::Alternating { .. } => "alternating",
            AdversarySpec::ContentionPump { .. } => "contention-pump",
            AdversarySpec::MaskedPumpAgainstDecay { .. } => "masked-pump",
            AdversarySpec::Striped { .. } => "striped",
            AdversarySpec::RoundRobin { .. } => "round-robin",
            AdversarySpec::EpochRandom { .. } => "epoch-random",
            AdversarySpec::GreedyJammer => "greedy-jammer",
        }
    }

    fn validate(&self) -> Result<(), ScenarioError> {
        match *self {
            AdversarySpec::Bernoulli { p } | AdversarySpec::EpochRandom { p, .. }
                if !(0.0..=1.0).contains(&p) =>
            {
                Err(invalid(format!(
                    "adversary: inclusion probability must be in [0, 1], got {p}"
                )))
            }
            AdversarySpec::EpochRandom { epoch: 0, .. } => {
                Err(invalid("adversary: epoch must be >= 1"))
            }
            AdversarySpec::Alternating { high: 0, low: 0 } => {
                Err(invalid("adversary: alternating cycle must be non-empty"))
            }
            AdversarySpec::ContentionPump { cycle: 0 } => {
                Err(invalid("adversary: pump cycle must be >= 1"))
            }
            AdversarySpec::MaskedPumpAgainstDecay {
                log_delta,
                threshold,
            } => {
                if log_delta == 0 {
                    Err(invalid("adversary: log_delta must be >= 1"))
                } else if !(0.0..=1.0).contains(&threshold) {
                    Err(invalid(format!(
                        "adversary: pump threshold must be in [0, 1], got {threshold}"
                    )))
                } else {
                    Ok(())
                }
            }
            AdversarySpec::Striped { k: 0 } | AdversarySpec::RoundRobin { k: 0 } => {
                Err(invalid("adversary: modulus must be >= 1"))
            }
            _ => Ok(()),
        }
    }

    /// Builds the oblivious scheduler for one trial. `None` for the
    /// adaptive adversary (see [`AdversarySpec::build_adaptive`]).
    pub fn build_oblivious(&self, master_seed: u64) -> Option<Box<dyn LinkScheduler>> {
        match *self {
            AdversarySpec::AllExtraEdges => Some(Box::new(scheduler::AllExtraEdges)),
            AdversarySpec::NoExtraEdges => Some(Box::new(scheduler::NoExtraEdges)),
            AdversarySpec::Bernoulli { p } => {
                Some(Box::new(scheduler::BernoulliEdges::new(p, master_seed)))
            }
            AdversarySpec::Alternating { high, low } => {
                Some(Box::new(scheduler::AlternatingEdges::new(high, low)))
            }
            AdversarySpec::ContentionPump { cycle } => {
                Some(Box::new(scheduler::ContentionPump::against_decay(cycle)))
            }
            AdversarySpec::MaskedPumpAgainstDecay {
                log_delta,
                threshold,
            } => Some(Box::new(scheduler::MaskedPump::against_decay_with_threshold(
                log_delta, threshold,
            ))),
            AdversarySpec::Striped { k } => Some(Box::new(scheduler::StripedEdges::new(k))),
            AdversarySpec::RoundRobin { k } => {
                Some(Box::new(scheduler::RoundRobinEdges::new(k)))
            }
            AdversarySpec::EpochRandom { epoch, p } => Some(Box::new(
                scheduler::EpochRandomEdges::new(epoch, p, master_seed ^ 0xEB0C),
            )),
            AdversarySpec::GreedyJammer => None,
        }
    }

    /// Builds the adaptive scheduler, when this spec names one.
    pub fn build_adaptive(&self) -> Option<Box<dyn AdaptiveScheduler>> {
        match self {
            AdversarySpec::GreedyJammer => Some(Box::new(scheduler::GreedyJammer)),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Faults
// ---------------------------------------------------------------------------

/// A set of nodes, either listed explicitly or described geometrically
/// against the topology's embedding (e.g. "everything within 1 unit of
/// the arena center").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RegionSpec {
    /// An explicit vertex list.
    Nodes {
        /// The vertex indices.
        nodes: Vec<usize>,
    },
    /// All vertices within `radius` of `(x, y)` in the embedding.
    Disc {
        /// Disc center x.
        x: f64,
        /// Disc center y.
        y: f64,
        /// Disc radius.
        radius: f64,
    },
}

impl RegionSpec {
    /// Resolves the region to a concrete vertex list.
    pub fn resolve(&self, topo: &Topology) -> Vec<NodeId> {
        match self {
            RegionSpec::Nodes { nodes } => nodes.iter().map(|&v| NodeId(v)).collect(),
            RegionSpec::Disc { x, y, radius } => {
                let c = Point::new(*x, *y);
                (0..topo.graph.len())
                    .filter(|&v| topo.embedding.position(v).distance(&c) <= *radius)
                    .map(NodeId)
                    .collect()
            }
        }
    }
}

/// A crash/recover entry in the scenario's fault plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrashSpec {
    /// The affected vertex.
    pub node: usize,
    /// First round (1-based) the node is down.
    pub down_from: u64,
    /// First round it is back up; `None` = never.
    pub up_at: Option<u64>,
    /// Recovery semantics: `false` (the default, so scenario files
    /// written before this field existed keep their behavior) is
    /// power-save churn — the process state survives the outage.
    /// `true` is a true crash-restart: the process loses its volatile
    /// memory on recovery (see
    /// [`radio_sim::fault::Crash::restart`]).
    #[serde(default)]
    pub restart: bool,
}

/// Serde predicate: omit zero-valued velocity components so scenario
/// files and search archives written before moving jams existed stay
/// byte-identical when re-serialized.
fn f64_is_zero(v: &f64) -> bool {
    *v == 0.0
}

/// A jamming window over a region.
///
/// A nonzero velocity turns a `Disc` region into a **moving jammer**:
/// the disc center starts at `(x, y)` when the window opens and drifts
/// by `(vx, vy)` per round. Moving jams require node mobility on the
/// scenario (the per-epoch geometry machinery resolves the disc against
/// each epoch's embedding) and compile to one static jam window per
/// overlapped epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JamSpec {
    /// The jammed region.
    pub region: RegionSpec,
    /// First jammed round (inclusive).
    pub from: u64,
    /// Last jammed round (inclusive).
    pub to: u64,
    /// Disc-center x velocity in arena units per round (0 = parked).
    #[serde(default, skip_serializing_if = "f64_is_zero")]
    pub vx: f64,
    /// Disc-center y velocity in arena units per round (0 = parked).
    #[serde(default, skip_serializing_if = "f64_is_zero")]
    pub vy: f64,
}

impl JamSpec {
    /// Whether the jam region moves (any nonzero or non-finite velocity
    /// component — NaN counts as moving so validation rejects it).
    pub fn is_moving(&self) -> bool {
        self.vx != 0.0 || self.vy != 0.0 || !self.vx.is_finite() || !self.vy.is_finite()
    }

    /// The disc center at round `t` (≥ `from`), for a `Disc` region.
    /// `None` for explicit node lists, which cannot move.
    pub fn center_at(&self, t: u64) -> Option<Point> {
        match self.region {
            RegionSpec::Disc { x, y, .. } => {
                let dt = t.saturating_sub(self.from) as f64;
                Some(Point::new(x + self.vx * dt, y + self.vy * dt))
            }
            RegionSpec::Nodes { .. } => None,
        }
    }
}

/// A message-drop burst.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DropSpec {
    /// First affected round (inclusive).
    pub from: u64,
    /// Last affected round (inclusive).
    pub to: u64,
    /// Per-reception drop probability.
    pub p: f64,
}

/// The scenario-level fault plan; regions are resolved against the built
/// topology into a [`radio_sim::fault::FaultPlan`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlanSpec {
    /// Node churn events.
    pub crashes: Vec<CrashSpec>,
    /// Jamming windows.
    pub jams: Vec<JamSpec>,
    /// Drop bursts.
    pub drops: Vec<DropSpec>,
}

impl FaultPlanSpec {
    /// Whether the plan injects no faults.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty() && self.jams.is_empty() && self.drops.is_empty()
    }

    /// Resolves regions and converts into the engine's fault plan.
    ///
    /// # Errors
    ///
    /// Rejects a jam window whose region resolves to **no vertices** of
    /// the built topology (e.g. a disc whose finite center lies outside
    /// the arena): such a window would silently no-op at runtime while
    /// the scenario claims to jam. Structural errors (out-of-range
    /// vertices, malformed windows) are caught earlier by
    /// [`Scenario::validate`].
    pub fn resolve(&self, topo: &Topology) -> Result<FaultPlan, ScenarioError> {
        let mut plan = FaultPlan::none();
        for c in &self.crashes {
            plan = if c.restart {
                plan.with_crash_restart(NodeId(c.node), c.down_from, c.up_at)
            } else {
                plan.with_crash(NodeId(c.node), c.down_from, c.up_at)
            };
        }
        for j in &self.jams {
            let nodes = j.region.resolve(topo);
            if nodes.is_empty() {
                return Err(invalid(format!(
                    "faults: jam window [{}, {}] resolves to no vertices \
                     (region {:?} misses the topology entirely)",
                    j.from, j.to, j.region
                )));
            }
            plan = plan.with_jam(nodes, j.from, j.to);
        }
        for d in &self.drops {
            plan = plan.with_drop_burst(d.from, d.to, d.p);
        }
        Ok(plan)
    }

    /// Structural validation against a vertex count, mirroring the
    /// engine's [`FaultPlan::validate`] without building the topology:
    /// disc regions resolve to in-range vertices by construction, so no
    /// embedding is needed to validate a plan.
    fn validate(&self, n: usize) -> Result<(), ScenarioError> {
        for c in &self.crashes {
            if c.node >= n {
                return Err(invalid(format!(
                    "faults: crash references vertex {} but the graph has {n} vertices",
                    c.node
                )));
            }
            if c.down_from == 0 {
                return Err(invalid("faults: crash rounds are 1-based"));
            }
            if c.up_at.is_some_and(|up| up <= c.down_from) {
                return Err(invalid(format!(
                    "faults: crash of node {} recovers before going down",
                    c.node
                )));
            }
        }
        for j in &self.jams {
            match &j.region {
                RegionSpec::Nodes { nodes } => {
                    // An empty explicit list would pass every per-vertex
                    // check yet jam nothing — the same silent-no-op
                    // failure mode as an out-of-arena disc.
                    if nodes.is_empty() {
                        return Err(invalid(
                            "faults: jam region lists no vertices (the window would \
                             silently jam nothing)",
                        ));
                    }
                    if let Some(v) = nodes.iter().find(|&&v| v >= n) {
                        return Err(invalid(format!(
                            "faults: jam references vertex {v} but the graph has {n} vertices"
                        )));
                    }
                }
                RegionSpec::Disc { x, y, radius } => {
                    if *radius < 0.0 || !radius.is_finite() {
                        return Err(invalid(format!(
                            "faults: jam disc radius must be >= 0, got {radius}"
                        )));
                    }
                    // A NaN/infinite center would pass the radius check
                    // yet resolve to an *empty* region — the scenario
                    // would claim to jam while injecting nothing.
                    if !x.is_finite() || !y.is_finite() {
                        return Err(invalid(format!(
                            "faults: jam disc center must be finite, got ({x}, {y})"
                        )));
                    }
                }
            }
            if j.from == 0 || j.to < j.from {
                return Err(invalid(format!(
                    "faults: malformed jam window [{}, {}]",
                    j.from, j.to
                )));
            }
            if j.is_moving() {
                if !j.vx.is_finite() || !j.vy.is_finite() {
                    return Err(invalid(format!(
                        "faults: jam velocity must be finite, got ({}, {})",
                        j.vx, j.vy
                    )));
                }
                if !matches!(j.region, RegionSpec::Disc { .. }) {
                    return Err(invalid(
                        "faults: a moving jam needs a disc region (an explicit \
                         node list has no position to move)",
                    ));
                }
            }
        }
        for d in &self.drops {
            if d.from == 0 || d.to < d.from {
                return Err(invalid(format!(
                    "faults: malformed drop burst [{}, {}]",
                    d.from, d.to
                )));
            }
            if !(0.0..=1.0).contains(&d.p) {
                return Err(invalid(format!(
                    "faults: drop probability must be in [0, 1], got {}",
                    d.p
                )));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Workload and stop condition
// ---------------------------------------------------------------------------

/// What runs on the network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// `SeedAlg` with no environment inputs (E1–E3, E10).
    SeedAgreement {
        /// Error parameter ε₁.
        epsilon1: f64,
        /// Seed length κ in bits.
        seed_bits: usize,
    },
    /// `LBAlg` with per-sender payload queues injected one-at-a-time
    /// after each ack (the well-formed LB workload).
    LocalBroadcast {
        /// Error parameter ε₁.
        epsilon1: f64,
        /// Broadcasting vertices.
        senders: Vec<usize>,
        /// Payloads queued per sender.
        messages_per_sender: u64,
    },
    /// The Decay fixed-probability baseline; every sender gets one
    /// broadcast input at round 1.
    Decay {
        /// Broadcasting vertices.
        senders: Vec<usize>,
    },
    /// A uniform fixed-probability baseline.
    Uniform {
        /// Per-round transmit probability.
        p: f64,
        /// Broadcasting vertices.
        senders: Vec<usize>,
    },
    /// Flood broadcast over the `LBAlg`-backed abstract MAC layer (E11).
    /// Supports only oblivious adversaries and an empty fault plan (the
    /// MAC adapter drives its own engine).
    AmacFlood {
        /// Error parameter ε₁ of the underlying `LBAlg`.
        epsilon1: f64,
        /// Flood source vertices.
        sources: Vec<usize>,
    },
}

impl WorkloadSpec {
    /// A short name for report tables.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadSpec::SeedAgreement { .. } => "seed-agreement",
            WorkloadSpec::LocalBroadcast { .. } => "local-broadcast",
            WorkloadSpec::Decay { .. } => "decay",
            WorkloadSpec::Uniform { .. } => "uniform",
            WorkloadSpec::AmacFlood { .. } => "amac-flood",
        }
    }

    fn senders(&self) -> &[usize] {
        match self {
            WorkloadSpec::SeedAgreement { .. } => &[],
            WorkloadSpec::LocalBroadcast { senders, .. }
            | WorkloadSpec::Decay { senders }
            | WorkloadSpec::Uniform { senders, .. } => senders,
            WorkloadSpec::AmacFlood { sources, .. } => sources,
        }
    }

    fn validate(&self, n: usize) -> Result<(), ScenarioError> {
        let check_eps = |eps: f64| {
            if eps > 0.0 && eps < 1.0 {
                Ok(())
            } else {
                Err(invalid(format!(
                    "workload: epsilon1 must be in (0, 1), got {eps}"
                )))
            }
        };
        for &s in self.senders() {
            if s >= n {
                return Err(invalid(format!(
                    "workload: sender {s} out of range for {n} vertices"
                )));
            }
        }
        match *self {
            WorkloadSpec::SeedAgreement {
                epsilon1,
                seed_bits,
            } => {
                check_eps(epsilon1)?;
                if seed_bits == 0 {
                    return Err(invalid("workload: seed_bits must be >= 1"));
                }
                Ok(())
            }
            WorkloadSpec::LocalBroadcast {
                epsilon1,
                ref senders,
                messages_per_sender,
            } => {
                check_eps(epsilon1)?;
                if senders.is_empty() {
                    return Err(invalid("workload: local broadcast needs >= 1 sender"));
                }
                if messages_per_sender == 0 {
                    return Err(invalid("workload: messages_per_sender must be >= 1"));
                }
                if messages_per_sender > 1_000_000 {
                    return Err(invalid(format!(
                        "workload: messages_per_sender must be <= 1000000, \
                         got {messages_per_sender}"
                    )));
                }
                Ok(())
            }
            WorkloadSpec::Decay { ref senders } => {
                if senders.is_empty() {
                    return Err(invalid("workload: decay needs >= 1 sender"));
                }
                Ok(())
            }
            WorkloadSpec::Uniform { p, ref senders } => {
                if senders.is_empty() {
                    return Err(invalid("workload: uniform needs >= 1 sender"));
                }
                if p > 0.0 && p <= 1.0 {
                    Ok(())
                } else {
                    Err(invalid(format!(
                        "workload: uniform probability must be in (0, 1], got {p}"
                    )))
                }
            }
            WorkloadSpec::AmacFlood {
                epsilon1,
                ref sources,
            } => {
                check_eps(epsilon1)?;
                if sources.is_empty() {
                    return Err(invalid("workload: amac flood needs >= 1 source"));
                }
                Ok(())
            }
        }
    }
}

/// When a trial ends.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StopSpec {
    /// Run exactly this many rounds.
    Rounds {
        /// Round budget.
        rounds: u64,
    },
    /// Run this many workload phases (`LBAlg`/`SeedAlg` phase length;
    /// 128 rounds per "phase" for the fixed-schedule baselines).
    Phases {
        /// Phase budget.
        phases: u64,
    },
    /// Run the workload's natural horizon: `SeedAlg`'s full schedule;
    /// `t_ack + t_prog` per queued message for `LBAlg`; 1024 rounds for
    /// the baselines; `f_ack · (n + 4) · 2` for the MAC flood.
    Complete,
    /// Run until `node` first outputs a delivery (a `recv` for broadcast
    /// workloads, a `decide` for seed agreement), censored at the
    /// horizon.
    FirstDeliveryAt {
        /// The watched vertex.
        node: usize,
        /// Censoring horizon in rounds.
        horizon_rounds: u64,
    },
}

/// Upper bound on explicit round budgets — large enough for any real
/// campaign, small enough that horizon arithmetic cannot overflow and a
/// typo cannot request an effectively unbounded run.
pub const MAX_STOP_ROUNDS: u64 = 50_000_000;

/// Upper bound on explicit phase budgets (phases are multiplied by the
/// workload's phase length at run time).
pub const MAX_STOP_PHASES: u64 = 1_000_000;

impl StopSpec {
    /// The explicit round horizon, when the stop condition names one
    /// (`Rounds` and `FirstDeliveryAt`; `Phases`/`Complete` derive
    /// their horizon from the workload at run time).
    pub fn horizon_rounds(&self) -> Option<u64> {
        match *self {
            StopSpec::Rounds { rounds } => Some(rounds),
            StopSpec::FirstDeliveryAt { horizon_rounds, .. } => Some(horizon_rounds),
            StopSpec::Phases { .. } | StopSpec::Complete => None,
        }
    }

    fn validate(&self, n: usize) -> Result<(), ScenarioError> {
        let check_rounds = |what: &str, r: u64| {
            if r == 0 {
                Err(invalid(format!("stop: {what} must be >= 1")))
            } else if r > MAX_STOP_ROUNDS {
                Err(invalid(format!(
                    "stop: {what} must be <= {MAX_STOP_ROUNDS}, got {r}"
                )))
            } else {
                Ok(())
            }
        };
        match *self {
            StopSpec::Rounds { rounds } => check_rounds("rounds", rounds),
            StopSpec::Phases { phases } => {
                if phases == 0 {
                    Err(invalid("stop: phases must be >= 1"))
                } else if phases > MAX_STOP_PHASES {
                    Err(invalid(format!(
                        "stop: phases must be <= {MAX_STOP_PHASES}, got {phases}"
                    )))
                } else {
                    Ok(())
                }
            }
            StopSpec::FirstDeliveryAt {
                node,
                horizon_rounds,
            } => {
                if node >= n {
                    Err(invalid(format!(
                        "stop: watched node {node} out of range for {n} vertices"
                    )))
                } else {
                    check_rounds("horizon_rounds", horizon_rounds)
                }
            }
            StopSpec::Complete => Ok(()),
        }
    }
}

// ---------------------------------------------------------------------------
// Mobility
// ---------------------------------------------------------------------------

/// Upper bound on the number of geometry epochs a trial may span
/// (each epoch rebuilds the dual graph; the cap keeps a typo'd epoch
/// length from requesting millions of rebuilds).
pub const MAX_MOBILITY_EPOCHS: u64 = 4096;

/// Node mobility: random-waypoint motion over the deployment arena.
///
/// Each node walks toward a uniformly drawn waypoint at `speed` arena
/// units per round, drawing a fresh waypoint on arrival. The dual graph
/// is re-sampled from the moved embedding every `epoch_rounds` rounds,
/// producing a deterministic timeline of graph snapshots (one per
/// epoch) built once per trial before the first round. Motion draws
/// from the dedicated mobility RNG stream, so enabling it never
/// perturbs placement, wiring, scheduling, or process randomness — and
/// `speed = 0` (or a horizon inside one epoch) is byte-identical to
/// the static scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MobilitySpec {
    /// Distance each node covers per round, in arena units (≥ 0).
    pub speed: f64,
    /// Rounds between dual-graph rebuilds (epoch length, ≥ 1).
    pub epoch_rounds: u64,
}

impl MobilitySpec {
    /// The number of geometry epochs a `horizon`-round trial spans
    /// (≥ 1; the last epoch covers any remainder).
    pub fn epochs_for(&self, horizon: u64) -> u64 {
        horizon.div_ceil(self.epoch_rounds).max(1)
    }

    fn validate(&self, horizon: Option<u64>) -> Result<(), ScenarioError> {
        if !(self.speed >= 0.0 && self.speed.is_finite()) {
            return Err(invalid(format!(
                "mobility: speed must be finite and >= 0, got {}",
                self.speed
            )));
        }
        if self.epoch_rounds == 0 {
            return Err(invalid("mobility: epoch_rounds must be >= 1"));
        }
        // The timeline is materialized up front, so the trial horizon
        // must be known before the first round.
        let Some(h) = horizon else {
            return Err(invalid(
                "mobility: the stop condition must name an explicit round \
                 horizon (Rounds or FirstDeliveryAt); Phases/Complete derive \
                 theirs from the workload after the timeline would be built",
            ));
        };
        let epochs = self.epochs_for(h);
        if epochs > MAX_MOBILITY_EPOCHS {
            return Err(invalid(format!(
                "mobility: horizon {h} at epoch length {} spans {epochs} \
                 epochs, over the {MAX_MOBILITY_EPOCHS} cap — raise \
                 epoch_rounds or shorten the trial",
                self.epoch_rounds
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Transport
// ---------------------------------------------------------------------------

/// A network partition window for the mock-net transport: every link
/// crossing the boundary of `nodes` is cut during rounds `[from, to]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionSpec {
    /// One side of the partition (vertex indices).
    pub nodes: Vec<usize>,
    /// First partitioned round (inclusive; rounds are 1-based).
    pub from: u64,
    /// Last partitioned round (inclusive).
    pub to: u64,
}

/// Which substrate executes the scenario's trials.
///
/// `Sim` (the default — absent in older scenario files) is the lockstep
/// engine; every golden metric and replay trace is pinned against it.
/// `MockNet` runs the same processes as a cluster of node runtimes over
/// the `net` crate's deterministic mock network instead: the adversary
/// selects the static link set (`AllExtraEdges` → all of `G'`,
/// `NoExtraEdges` → `G` only; nothing else is expressible over a static
/// network, so other adversaries are rejected), and the transport adds
/// per-hop delivery delay, Bernoulli link loss, and partition windows on
/// top. With delay 0, no loss, and no partitions, mock-net executions are
/// byte-identical to the simulator's.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub enum TransportSpec {
    /// The lockstep simulator engine (the default).
    #[default]
    Sim,
    /// The deterministic mock network from the `net` crate.
    MockNet {
        /// Per-hop delivery delay in rounds (0 = synchronous).
        delay_rounds: u64,
        /// Independent per-link Bernoulli loss probability.
        loss_p: f64,
        /// Partition windows cutting boundary-crossing links.
        partitions: Vec<PartitionSpec>,
    },
}

impl TransportSpec {
    /// Short name for reports and CLI output.
    pub fn name(&self) -> &'static str {
        match self {
            TransportSpec::Sim => "sim",
            TransportSpec::MockNet { .. } => "mock-net",
        }
    }

    /// Whether this is the default simulator transport (used to omit the
    /// field from serialized scenarios, keeping pre-transport JSON stable).
    pub fn is_sim(&self) -> bool {
        matches!(self, TransportSpec::Sim)
    }

    /// A mock-net transport with no delay, loss, or partitions — the
    /// configuration whose executions byte-compare equal to the
    /// simulator's.
    pub fn mock_net_synchronous() -> Self {
        TransportSpec::MockNet {
            delay_rounds: 0,
            loss_p: 0.0,
            partitions: Vec::new(),
        }
    }

    fn validate(&self, n: usize) -> Result<(), ScenarioError> {
        let TransportSpec::MockNet {
            delay_rounds,
            loss_p,
            partitions,
        } = self
        else {
            return Ok(());
        };
        if *delay_rounds > MAX_STOP_ROUNDS {
            return Err(invalid(format!(
                "transport: delay_rounds must be <= {MAX_STOP_ROUNDS}, got {delay_rounds}"
            )));
        }
        if !(0.0..=1.0).contains(loss_p) {
            return Err(invalid(format!(
                "transport: loss_p must be in [0, 1], got {loss_p}"
            )));
        }
        for (i, w) in partitions.iter().enumerate() {
            if w.from < 1 || w.to < w.from {
                return Err(invalid(format!(
                    "transport: partition {i} window [{}, {}] is malformed (rounds are 1-based, to >= from)",
                    w.from, w.to
                )));
            }
            if w.nodes.is_empty() {
                return Err(invalid(format!("transport: partition {i} has no nodes")));
            }
            if let Some(&v) = w.nodes.iter().find(|&&v| v >= n) {
                return Err(invalid(format!(
                    "transport: partition {i} references node {v}, out of range for {n} vertices"
                )));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Scenario
// ---------------------------------------------------------------------------

/// A complete scenario description. See the module docs; construct via
/// [`ScenarioBuilder`] or [`Scenario::from_json`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Identifier (registry key / report caption).
    pub name: String,
    /// Human description of what the scenario exercises.
    pub description: String,
    /// The network family.
    pub topology: TopologySpec,
    /// The dual-graph adversary schedule.
    pub adversary: AdversarySpec,
    /// Injected faults (churn, jamming, drop bursts).
    pub faults: FaultPlanSpec,
    /// What runs on the network.
    pub workload: WorkloadSpec,
    /// When each trial ends.
    pub stop: StopSpec,
    /// Monte-Carlo trial count.
    pub trials: usize,
    /// Master seed of trial 0; trial `i` uses `base_seed.wrapping_add(i)`
    /// (wrapping, so seeds near `u64::MAX` are legal).
    pub base_seed: u64,
    /// Which substrate executes the trials (defaults to the simulator,
    /// so scenario files written before this field existed still parse).
    #[serde(default)]
    pub transport: TransportSpec,
    /// Node mobility (dynamic geometry). `None` — the default, and
    /// omitted from serialized scenarios so pre-mobility files and
    /// archives stay byte-identical — keeps the arena static.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub mobility: Option<MobilitySpec>,
}

impl Scenario {
    /// Validates every field (including resolving the fault plan against
    /// the built topology).
    ///
    /// # Errors
    ///
    /// Returns the first constraint violation found.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.name.is_empty() {
            return Err(invalid("name must be non-empty"));
        }
        if self.trials == 0 {
            return Err(invalid("trials must be >= 1"));
        }
        self.topology.validate()?;
        self.adversary.validate()?;
        let n = self.topology.node_count();
        self.workload.validate(n)?;
        self.stop.validate(n)?;
        self.faults.validate(n)?;
        if let WorkloadSpec::AmacFlood { .. } = self.workload {
            if !self.faults.is_empty() {
                return Err(invalid(
                    "amac flood drives its own engine and does not support fault plans",
                ));
            }
            if self.adversary.is_adaptive() {
                return Err(invalid(
                    "amac flood supports only oblivious adversaries",
                ));
            }
            if matches!(self.stop, StopSpec::FirstDeliveryAt { .. }) {
                return Err(invalid(
                    "amac flood does not support the first-delivery stop condition",
                ));
            }
        }
        self.transport.validate(n)?;
        if matches!(self.transport, TransportSpec::MockNet { .. }) {
            // The mock network routes over a static link set; only the
            // two static adversaries map onto one. Everything dynamic
            // (per-round subsets, adaptivity) is the simulator's domain.
            if !matches!(
                self.adversary,
                AdversarySpec::AllExtraEdges | AdversarySpec::NoExtraEdges
            ) {
                return Err(invalid(format!(
                    "transport: mock-net requires a static link set; adversary '{}' \
                     schedules per-round edges and only runs on the simulator",
                    self.adversary.name()
                )));
            }
            if let WorkloadSpec::AmacFlood { .. } = self.workload {
                return Err(invalid(
                    "transport: amac flood drives its own engine and only runs on the simulator",
                ));
            }
        }
        if let Some(m) = &self.mobility {
            m.validate(self.stop.horizon_rounds())?;
            // Mobility re-samples an RGG from the moved embedding each
            // epoch; only the arena families have that construction.
            if !matches!(
                self.topology,
                TopologySpec::RandomGeometric { .. } | TopologySpec::ConstantDensity { .. }
            ) {
                return Err(invalid(
                    "mobility: only the RandomGeometric and ConstantDensity \
                     arena topologies support node mobility",
                ));
            }
            if matches!(self.transport, TransportSpec::MockNet { .. }) {
                return Err(invalid(
                    "mobility: the mock network routes over a static link set; \
                     dynamic geometry runs on the simulator transport",
                ));
            }
            if let WorkloadSpec::AmacFlood { .. } = self.workload {
                return Err(invalid(
                    "mobility: amac flood drives its own engine and does not \
                     support dynamic geometry",
                ));
            }
        } else if let Some(j) = self.faults.jams.iter().find(|j| j.is_moving()) {
            return Err(invalid(format!(
                "faults: jam window [{}, {}] has velocity ({}, {}) but the \
                 scenario has no mobility spec — moving jams ride the \
                 per-epoch geometry machinery (set mobility, speed 0 is fine)",
                j.from, j.to, j.vx, j.vy
            )));
        }
        Ok(())
    }

    /// Serializes to pretty-printed JSON (the on-disk scenario format).
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("scenarios always serialize");
        s.push('\n');
        s
    }

    /// Parses and validates a scenario from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Parse`] on malformed JSON and
    /// [`ScenarioError::Invalid`] on a well-formed but invalid scenario.
    pub fn from_json(json: &str) -> Result<Self, ScenarioError> {
        let scenario: Scenario =
            serde_json::from_str(json).map_err(|e| ScenarioError::Parse(e.to_string()))?;
        scenario.validate()?;
        Ok(scenario)
    }
}

/// Step-by-step construction of a [`Scenario`] with validation at
/// [`ScenarioBuilder::build`] time.
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    scenario: Scenario,
}

impl ScenarioBuilder {
    /// Starts a scenario with the given name, topology, and workload.
    /// Defaults: no description, the all-edges adversary, no faults, the
    /// `Complete` stop condition, 4 trials, base seed 1.
    pub fn new(
        name: impl Into<String>,
        topology: TopologySpec,
        workload: WorkloadSpec,
    ) -> Self {
        ScenarioBuilder {
            scenario: Scenario {
                name: name.into(),
                description: String::new(),
                topology,
                adversary: AdversarySpec::AllExtraEdges,
                faults: FaultPlanSpec::default(),
                workload,
                stop: StopSpec::Complete,
                trials: 4,
                base_seed: 1,
                transport: TransportSpec::default(),
                mobility: None,
            },
        }
    }

    /// Sets the human description.
    pub fn description(mut self, d: impl Into<String>) -> Self {
        self.scenario.description = d.into();
        self
    }

    /// Sets the adversary schedule.
    pub fn adversary(mut self, a: AdversarySpec) -> Self {
        self.scenario.adversary = a;
        self
    }

    /// Adds a power-save crash/recover event (state kept across the
    /// outage).
    pub fn crash(mut self, node: usize, down_from: u64, up_at: Option<u64>) -> Self {
        self.scenario.faults.crashes.push(CrashSpec {
            node,
            down_from,
            up_at,
            restart: false,
        });
        self
    }

    /// Adds a crash-restart event: the process loses its volatile
    /// memory on recovery (see [`CrashSpec::restart`]).
    pub fn crash_restart(mut self, node: usize, down_from: u64, up_at: Option<u64>) -> Self {
        self.scenario.faults.crashes.push(CrashSpec {
            node,
            down_from,
            up_at,
            restart: true,
        });
        self
    }

    /// Adds a jamming window over an explicit node set.
    pub fn jam_nodes(mut self, nodes: Vec<usize>, from: u64, to: u64) -> Self {
        self.scenario.faults.jams.push(JamSpec {
            region: RegionSpec::Nodes { nodes },
            from,
            to,
            vx: 0.0,
            vy: 0.0,
        });
        self
    }

    /// Adds a jamming window over a disc in the embedding.
    pub fn jam_disc(mut self, x: f64, y: f64, radius: f64, from: u64, to: u64) -> Self {
        self.scenario.faults.jams.push(JamSpec {
            region: RegionSpec::Disc { x, y, radius },
            from,
            to,
            vx: 0.0,
            vy: 0.0,
        });
        self
    }

    /// Adds a moving jam disc: the center starts at `(x, y)` when the
    /// window opens and drifts by `(vx, vy)` per round. Requires
    /// [`ScenarioBuilder::mobility`].
    #[allow(clippy::too_many_arguments)]
    pub fn moving_jam_disc(
        mut self,
        x: f64,
        y: f64,
        radius: f64,
        vx: f64,
        vy: f64,
        from: u64,
        to: u64,
    ) -> Self {
        self.scenario.faults.jams.push(JamSpec {
            region: RegionSpec::Disc { x, y, radius },
            from,
            to,
            vx,
            vy,
        });
        self
    }

    /// Enables random-waypoint node mobility: each node walks at
    /// `speed` arena units per round and the dual graph is re-sampled
    /// every `epoch_rounds` rounds.
    pub fn mobility(mut self, speed: f64, epoch_rounds: u64) -> Self {
        self.scenario.mobility = Some(MobilitySpec {
            speed,
            epoch_rounds,
        });
        self
    }

    /// Adds a message-drop burst.
    pub fn drop_burst(mut self, from: u64, to: u64, p: f64) -> Self {
        self.scenario.faults.drops.push(DropSpec { from, to, p });
        self
    }

    /// Sets the stop condition.
    pub fn stop(mut self, s: StopSpec) -> Self {
        self.scenario.stop = s;
        self
    }

    /// Sets the trial count.
    pub fn trials(mut self, t: usize) -> Self {
        self.scenario.trials = t;
        self
    }

    /// Sets the base seed.
    pub fn base_seed(mut self, s: u64) -> Self {
        self.scenario.base_seed = s;
        self
    }

    /// Selects the execution substrate (simulator or mock network).
    pub fn transport(mut self, t: TransportSpec) -> Self {
        self.scenario.transport = t;
        self
    }

    /// Validates and returns the scenario.
    ///
    /// # Errors
    ///
    /// Returns the first constraint violation (see [`Scenario::validate`]).
    pub fn build(self) -> Result<Scenario, ScenarioError> {
        self.scenario.validate()?;
        Ok(self.scenario)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> ScenarioBuilder {
        ScenarioBuilder::new(
            "t",
            TopologySpec::Clique { n: 4, r: 1.0 },
            WorkloadSpec::LocalBroadcast {
                epsilon1: 0.25,
                senders: vec![0],
                messages_per_sender: 1,
            },
        )
    }

    #[test]
    fn builder_produces_valid_scenario() {
        let s = minimal()
            .description("demo")
            .adversary(AdversarySpec::Bernoulli { p: 0.5 })
            .crash(1, 3, Some(9))
            .jam_nodes(vec![2], 2, 5)
            .drop_burst(1, 4, 0.25)
            .stop(StopSpec::Phases { phases: 2 })
            .trials(2)
            .base_seed(7)
            .build()
            .unwrap();
        assert_eq!(s.trials, 2);
        assert!(!s.faults.is_empty());
    }

    #[test]
    fn json_roundtrip_preserves_scenario() {
        let s = minimal()
            .adversary(AdversarySpec::EpochRandom { epoch: 8, p: 0.3 })
            .jam_disc(0.0, 0.0, 0.6, 4, 9)
            .build()
            .unwrap();
        let back = Scenario::from_json(&s.to_json()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn rejects_out_of_range_sender() {
        let err = ScenarioBuilder::new(
            "t",
            TopologySpec::Clique { n: 4, r: 1.0 },
            WorkloadSpec::LocalBroadcast {
                epsilon1: 0.25,
                senders: vec![9],
                messages_per_sender: 1,
            },
        )
        .build()
        .unwrap_err();
        assert!(matches!(err, ScenarioError::Invalid(_)), "{err}");
    }

    #[test]
    fn rejects_bad_probabilities_and_windows() {
        assert!(minimal()
            .adversary(AdversarySpec::Bernoulli { p: 1.5 })
            .build()
            .is_err());
        assert!(minimal().drop_burst(5, 2, 0.5).build().is_err());
        assert!(minimal().crash(0, 0, None).build().is_err());
        assert!(minimal().trials(0).build().is_err());
    }

    #[test]
    fn rejects_non_finite_jam_disc() {
        // Regression: only the radius used to be validated, so a
        // NaN/infinite center passed and silently resolved to an empty
        // jam region — the plan claimed to jam but injected nothing.
        for (x, y) in [
            (f64::NAN, 0.0),
            (0.0, f64::NAN),
            (f64::INFINITY, 0.0),
            (0.0, f64::NEG_INFINITY),
        ] {
            let err = minimal().jam_disc(x, y, 1.0, 1, 5).build().unwrap_err();
            assert!(
                matches!(&err, ScenarioError::Invalid(m) if m.contains("center")),
                "({x}, {y}): {err}"
            );
        }
        // Finite centers (and a zero radius) remain legal.
        assert!(minimal().jam_disc(0.0, 0.0, 0.0, 1, 5).build().is_ok());
        assert!(minimal()
            .jam_disc(1.0, 1.0, f64::NAN, 1, 5)
            .build()
            .is_err());
    }

    #[test]
    fn rejects_amac_flood_with_faults_or_jammer() {
        let flood = |b: ScenarioBuilder| {
            let mut s = b;
            s.scenario.workload = WorkloadSpec::AmacFlood {
                epsilon1: 0.25,
                sources: vec![0],
            };
            s
        };
        assert!(flood(minimal()).build().is_ok());
        assert!(flood(minimal().crash(0, 1, None)).build().is_err());
        assert!(flood(minimal().adversary(AdversarySpec::GreedyJammer))
            .build()
            .is_err());
    }

    fn mobile() -> ScenarioBuilder {
        ScenarioBuilder::new(
            "m",
            TopologySpec::RandomGeometric {
                n: 20,
                side: 3.0,
                r: 2.0,
                grey_reliable_p: 0.1,
                grey_unreliable_p: 0.8,
                seed: 5,
            },
            WorkloadSpec::Uniform {
                p: 0.25,
                senders: vec![0],
            },
        )
        .stop(StopSpec::Rounds { rounds: 40 })
        .mobility(0.1, 10)
    }

    #[test]
    fn mobility_scenario_round_trips_through_json() {
        let s = mobile()
            .moving_jam_disc(0.5, 0.5, 1.0, 0.05, -0.02, 3, 30)
            .build()
            .unwrap();
        let json = s.to_json();
        assert!(json.contains("mobility"), "{json}");
        assert!(json.contains("vx"), "{json}");
        let back = Scenario::from_json(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn static_scenarios_serialize_without_mobility_keys() {
        // Byte-stability: pre-mobility scenario files, goldens, and the
        // search archive must re-serialize without the new fields.
        let s = minimal().jam_disc(0.0, 0.0, 0.6, 4, 9).build().unwrap();
        let json = s.to_json();
        assert!(!json.contains("mobility"), "{json}");
        assert!(!json.contains("vx"), "{json}");
        assert!(!json.contains("vy"), "{json}");
    }

    #[test]
    fn rejects_malformed_mobility() {
        // Moving jam without a mobility spec.
        assert!(minimal()
            .moving_jam_disc(0.0, 0.0, 0.6, 0.1, 0.0, 1, 5)
            .build()
            .is_err());
        // Moving jam over an explicit node list.
        {
            let mut b = mobile();
            b.scenario.faults.jams.push(JamSpec {
                region: RegionSpec::Nodes { nodes: vec![1] },
                from: 1,
                to: 5,
                vx: 0.1,
                vy: 0.0,
            });
            assert!(b.build().is_err());
        }
        // Non-finite velocity.
        assert!(mobile()
            .moving_jam_disc(0.5, 0.5, 1.0, f64::NAN, 0.0, 1, 5)
            .build()
            .is_err());
        // Mobility outside the arena families.
        assert!(minimal()
            .stop(StopSpec::Rounds { rounds: 40 })
            .mobility(0.1, 10)
            .build()
            .is_err());
        // Mobility without an explicit horizon.
        assert!(mobile().stop(StopSpec::Complete).build().is_err());
        // Bad speed / epoch length / epoch-count blowup.
        assert!(mobile().mobility(-1.0, 10).build().is_err());
        assert!(mobile().mobility(f64::INFINITY, 10).build().is_err());
        assert!(mobile().mobility(0.1, 0).build().is_err());
        assert!(mobile()
            .stop(StopSpec::Rounds {
                rounds: MAX_STOP_ROUNDS
            })
            .mobility(0.1, 1)
            .build()
            .is_err());
        // Speed 0 with a sane horizon remains legal.
        assert!(mobile().mobility(0.0, 10).build().is_ok());
    }

    #[test]
    fn moving_jam_center_drifts_from_window_open() {
        let j = JamSpec {
            region: RegionSpec::Disc {
                x: 1.0,
                y: 2.0,
                radius: 0.5,
            },
            from: 10,
            to: 30,
            vx: 0.1,
            vy: -0.2,
        };
        assert!(j.is_moving());
        let c = j.center_at(20).unwrap();
        assert!((c.x - 2.0).abs() < 1e-12 && (c.y - 0.0).abs() < 1e-12);
        assert_eq!(j.center_at(10), Some(Point::new(1.0, 2.0)));
    }

    #[test]
    fn disc_region_resolves_against_embedding() {
        let topo = TopologySpec::Line {
            n: 5,
            spacing: 1.0,
            r: 2.0,
        }
        .build();
        let region = RegionSpec::Disc {
            x: 2.0,
            y: 0.0,
            radius: 1.1,
        };
        let nodes = region.resolve(&topo);
        assert_eq!(nodes, vec![NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn node_counts_match_built_topologies() {
        let specs = vec![
            TopologySpec::Line {
                n: 5,
                spacing: 0.9,
                r: 2.0,
            },
            TopologySpec::Ring {
                n: 6,
                spacing: 0.9,
                r: 2.0,
            },
            TopologySpec::Grid {
                rows: 3,
                cols: 4,
                spacing: 0.9,
                r: 2.0,
            },
            TopologySpec::Clique { n: 7, r: 1.0 },
            TopologySpec::GreySandwich {
                reliable: 2,
                grey: 5,
                r: 2.0,
            },
            TopologySpec::PumpArena {
                reliable: 1,
                grey: 6,
            },
            TopologySpec::TwoTier {
                core: 3,
                periphery: 4,
                ring_radius: 1.5,
                r: 2.0,
            },
            TopologySpec::Clustered {
                clusters: 2,
                cluster_size: 3,
                spacing: 1.5,
                spread: 0.4,
                r: 2.0,
                seed: 1,
            },
            TopologySpec::RandomGeometric {
                n: 12,
                side: 3.0,
                r: 2.0,
                grey_reliable_p: 0.1,
                grey_unreliable_p: 0.8,
                seed: 2,
            },
            TopologySpec::ConstantDensity {
                n: 16,
                density: 8.0,
                r: 1.5,
                seed: 3,
            },
        ];
        for spec in specs {
            spec.validate().unwrap();
            let topo = spec.build();
            assert_eq!(topo.graph.len(), spec.node_count(), "{spec:?}");
            topo.check_geographic().unwrap();
        }
    }
}
