//! Whole-suite campaigns and the golden-metric regression gate.
//!
//! A [`Campaign`] runs many scenarios — the full registry or a named
//! subset — by flattening every *(scenario, trial)* pair into one job
//! list for [`analysis::runner::run_jobs_on`], so the worker pool fans
//! out **across scenarios as well as trials**: a slow scenario's last
//! trials overlap the next scenario's first ones instead of serializing
//! behind them. Per-scenario [`ScenarioReport`]s are reassembled in
//! registry order and render into one combined markdown report (the
//! EXPERIMENTS.md analog for scenario runs).
//!
//! On top of the campaign sits the regression gate: each scenario's
//! summary metrics — mean first-ack latency, mean deliveries, mean
//! acks, and the deterministic-spec pass rate — are pinned as
//! [`GoldenMetrics`] (mean ± absolute tolerance, checked into
//! `scenarios/golden/*.json`). [`CampaignReport::check`] diffs a fresh
//! run against the blessed values with a readable pass/fail table;
//! [`CampaignReport::golden`] regenerates them. Because every trial is
//! a pure function of `(scenario, trial index)`, a fresh run of
//! unchanged code reproduces the blessed means exactly — the tolerance
//! band exists so intended small algorithmic drift can land without
//! re-blessing, while real regressions in `LBAlg` or the seed-agreement
//! preamble trip the gate.

use crate::obs::{RunTelemetry, ScenarioTelemetry};
use crate::runner::{ScenarioReport, ScenarioRunner, TrialOutcome};
use crate::spec::{Scenario, ScenarioError};
use analysis::report::{markdown_report, pm, within_tolerance};
use analysis::runner::{effective_threads, run_jobs_observed, run_jobs_on};
use analysis::table::{fnum, Table};
use serde::{Deserialize, Serialize};
use std::sync::Mutex;
use std::time::Instant;
use telemetry::{Heartbeat, Histogram};

fn invalid(msg: impl Into<String>) -> ScenarioError {
    ScenarioError::Invalid(msg.into())
}

// ---------------------------------------------------------------------------
// Campaign
// ---------------------------------------------------------------------------

/// A validated batch of scenarios, runnable as one parallel job pool.
pub struct Campaign {
    runners: Vec<ScenarioRunner>,
    threads: Option<usize>,
}

impl Campaign {
    /// A campaign over every registry entry, in suite order.
    pub fn from_registry() -> Self {
        Campaign::new(crate::registry::all()).expect("registry scenarios are valid")
    }

    /// A campaign over the given scenarios.
    ///
    /// # Errors
    ///
    /// Rejects an empty list, a duplicate scenario name (golden files
    /// are keyed by name), and any scenario that fails validation.
    pub fn new(scenarios: Vec<Scenario>) -> Result<Self, ScenarioError> {
        if scenarios.is_empty() {
            return Err(invalid("campaign: needs at least one scenario"));
        }
        let mut names: Vec<&str> = scenarios.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        if let Some(w) = names.windows(2).find(|w| w[0] == w[1]) {
            return Err(invalid(format!(
                "campaign: duplicate scenario name {:?}",
                w[0]
            )));
        }
        let runners = scenarios
            .into_iter()
            .map(ScenarioRunner::new)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Campaign {
            runners,
            threads: None,
        })
    }

    /// A campaign over the named registry entries, in the given order.
    ///
    /// # Errors
    ///
    /// Rejects unknown names (listing the registry) and duplicates.
    pub fn subset<S: AsRef<str>>(names: &[S]) -> Result<Self, ScenarioError> {
        let scenarios = names
            .iter()
            .map(|n| {
                crate::registry::find(n.as_ref()).ok_or_else(|| {
                    invalid(format!(
                        "campaign: unknown registry scenario {:?} (known: {})",
                        n.as_ref(),
                        crate::registry::names().join(", ")
                    ))
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Campaign::new(scenarios)
    }

    /// Caps the worker pool at `threads` (default: available
    /// parallelism). Results are identical for any cap — the campaign
    /// report is byte-stable across thread counts.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Shards each trial engine's reception resolution across `shards`
    /// threads (default 1 = serial). Like [`Campaign::threads`] this is
    /// purely a wall-clock knob — outcomes, reports, and golden checks
    /// are byte-identical for every count. Useful when a campaign has
    /// few, huge scenarios (a scale curve) rather than many small ones:
    /// intra-trial sharding keeps the cores busy where trial fan-out
    /// alone cannot.
    pub fn shards(mut self, shards: usize) -> Self {
        for r in &mut self.runners {
            r.set_shards(shards);
        }
        self
    }

    /// The scenarios in run order.
    pub fn scenarios(&self) -> impl Iterator<Item = &Scenario> {
        self.runners.iter().map(|r| r.scenario())
    }

    /// Runs every trial of every scenario on one worker pool and
    /// reassembles per-scenario reports in campaign order.
    pub fn run(&self) -> CampaignReport {
        // Flatten (scenario, trial) pairs into a single job list so the
        // pool crosses scenario boundaries without a barrier.
        let jobs: Vec<(usize, usize)> = self
            .runners
            .iter()
            .enumerate()
            .flat_map(|(si, r)| (0..r.scenario().trials).map(move |t| (si, t)))
            .collect();
        let mut outcomes = run_jobs_on(jobs.len(), self.threads, |j| {
            let (si, trial) = jobs[j];
            self.runners[si].run_trial(trial)
        })
        .into_iter();
        let reports = self
            .runners
            .iter()
            .map(|r| ScenarioReport {
                scenario: r.scenario().clone(),
                outcomes: outcomes.by_ref().take(r.scenario().trials).collect(),
            })
            .collect();
        CampaignReport { reports }
    }

    /// Like [`Campaign::run`], but **observed**: every trial runs with
    /// engine telemetry attached, the worker pool reports per-trial
    /// wall-clock and per-worker busy time, and the optional
    /// [`Heartbeat`] ticks as trials and scenarios drain. The returned
    /// report is identical to [`Campaign::run`] — telemetry observes
    /// the execution, it never feeds back — so golden checks and
    /// markdown bytes are unchanged; only wall-clock (`_ns`) fields
    /// vary run to run.
    pub fn run_observed(&self, heartbeat: Option<&Heartbeat>) -> (CampaignReport, RunTelemetry) {
        let jobs: Vec<(usize, usize)> = self
            .runners
            .iter()
            .enumerate()
            .flat_map(|(si, r)| (0..r.scenario().trials).map(move |t| (si, t)))
            .collect();
        let threads = effective_threads(jobs.len(), self.threads);
        struct Acc {
            worker_busy_ns: Vec<u64>,
            elapsed_ns: Vec<u64>,
            remaining: Vec<usize>,
        }
        let acc = Mutex::new(Acc {
            worker_busy_ns: vec![0; threads],
            elapsed_ns: vec![0; jobs.len()],
            remaining: self.runners.iter().map(|r| r.scenario().trials).collect(),
        });
        let start = Instant::now();
        let results = run_jobs_observed(
            jobs.len(),
            self.threads,
            |j| {
                let (si, trial) = jobs[j];
                self.runners[si].run_trial_instrumented(trial)
            },
            |obs| {
                let (si, _) = jobs[obs.job];
                let drained = {
                    let mut a = acc.lock().expect("telemetry accumulator");
                    a.worker_busy_ns[obs.worker] += obs.elapsed_ns;
                    a.elapsed_ns[obs.job] = obs.elapsed_ns;
                    a.remaining[si] -= 1;
                    a.remaining[si] == 0
                };
                if let Some(hb) = heartbeat {
                    hb.trial_done();
                    if drained {
                        hb.scenario_done();
                    }
                }
            },
        );
        let wall_ns = start.elapsed().as_nanos() as u64;
        let acc = acc.into_inner().expect("telemetry accumulator");

        // Reassemble per scenario. Jobs are contiguous per scenario and
        // results/elapsed are job-index-ordered, so a single zip walks
        // every scenario's trials in trial order.
        let mut scenarios: Vec<ScenarioTelemetry> = self
            .runners
            .iter()
            .map(|r| ScenarioTelemetry::new(&r.scenario().name))
            .collect();
        let mut per_outcomes: Vec<Vec<TrialOutcome>> = self
            .runners
            .iter()
            .map(|r| Vec::with_capacity(r.scenario().trials))
            .collect();
        for ((&(si, _), (outcome, engine)), &elapsed) in
            jobs.iter().zip(results).zip(&acc.elapsed_ns)
        {
            scenarios[si].record_trial(&outcome, elapsed, engine);
            per_outcomes[si].push(outcome);
        }
        let reports = self
            .runners
            .iter()
            .zip(per_outcomes)
            .map(|(r, outcomes)| ScenarioReport {
                scenario: r.scenario().clone(),
                outcomes,
            })
            .collect();
        let mut trial_ns = Histogram::new();
        for s in &scenarios {
            trial_ns.merge(&s.trial_ns);
        }
        let telemetry = RunTelemetry {
            threads,
            shards: self.runners.iter().map(|r| r.shard_count()).max().unwrap_or(1),
            wall_ns,
            worker_busy_ns: acc.worker_busy_ns,
            trial_ns,
            scenarios,
        };
        (CampaignReport { reports }, telemetry)
    }
}

// ---------------------------------------------------------------------------
// Combined report
// ---------------------------------------------------------------------------

/// All scenario reports of one campaign run, in campaign order.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Per-scenario reports.
    pub reports: Vec<ScenarioReport>,
}

impl CampaignReport {
    /// One-row-per-scenario summary table.
    pub fn overview(&self) -> Table {
        let mut t = Table::new(
            "campaign",
            "campaign overview",
            "per-scenario summary metrics (means and latency percentiles over trials)",
            vec![
                "scenario", "workload", "adversary", "trials", "spec ok", "acks",
                "deliveries", "first ack", "ack p50", "ack p95", "ack p99",
                "first delivery", "del p50", "del p95", "del p99",
            ],
        );
        let p = |v: Option<u64>| v.map_or("—".into(), |v| v.to_string());
        for r in &self.reports {
            let m = MeasuredMetrics::of(r);
            t.push_row(vec![
                r.scenario.name.clone(),
                r.scenario.workload.name().into(),
                r.scenario.adversary.name().into(),
                r.outcomes.len().to_string(),
                format!("{}/{}", m.spec_ok_trials, r.outcomes.len()),
                fnum(m.acks),
                fnum(m.deliveries),
                m.ack_latency.map_or("—".into(), fnum),
                p(m.ack_p50),
                p(m.ack_p95),
                p(m.ack_p99),
                m.delivery_latency.map_or("—".into(), fnum),
                p(m.delivery_p50),
                p(m.delivery_p95),
                p(m.delivery_p99),
            ]);
        }
        t
    }

    /// Renders the whole campaign as one markdown document: the
    /// overview, then every scenario's stats tables. Byte-identical
    /// across runs and thread counts.
    pub fn to_markdown(&self) -> String {
        let mut sections = vec![("Overview".to_string(), vec![self.overview()])];
        for r in &self.reports {
            sections.push((r.scenario.name.clone(), r.tables()));
        }
        markdown_report(
            "Campaign report",
            &format!(
                "{} scenario(s), {} trial(s) total.",
                self.reports.len(),
                self.reports.iter().map(|r| r.outcomes.len()).sum::<usize>(),
            ),
            &sections,
        )
    }

    /// Blesses this run: golden metrics (with default tolerances) for
    /// every scenario, in campaign order.
    pub fn golden(&self) -> Vec<GoldenMetrics> {
        self.reports.iter().map(GoldenMetrics::from_report).collect()
    }

    /// Diffs this run against blessed metrics. Every scenario is matched
    /// to its golden entry by name; a scenario without one fails its
    /// `golden file` row. Extra golden entries for scenarios not in this
    /// campaign are ignored (subset runs are first-class).
    pub fn check(&self, golden: &[GoldenMetrics]) -> CheckReport {
        let mut rows = Vec::new();
        for r in &self.reports {
            match golden.iter().find(|g| g.scenario == r.scenario.name) {
                Some(g) => rows.extend(g.check(r)),
                None => rows.push(MetricCheck {
                    scenario: r.scenario.name.clone(),
                    metric: "golden file".into(),
                    expected: "blessed metrics".into(),
                    actual: "missing".into(),
                    ok: false,
                }),
            }
        }
        CheckReport { rows }
    }
}

// ---------------------------------------------------------------------------
// Golden metrics
// ---------------------------------------------------------------------------

/// The summary metrics a golden file pins, measured from one report.
/// (Shared with the sweep report, which pivots the same quantities into
/// per-axis curve tables.)
pub(crate) struct MeasuredMetrics {
    pub(crate) ack_latency: Option<f64>,
    /// How many trials observed at least one ack — the sample the
    /// `ack_latency` mean averages over.
    pub(crate) ack_trials: usize,
    pub(crate) delivery_latency: Option<f64>,
    /// How many trials observed the watched delivery — the sample the
    /// `delivery_latency` mean averages over.
    pub(crate) delivery_trials: usize,
    /// First-ack round percentiles over observing trials, from the
    /// telemetry histogram (exact below 256 rounds, ≤ 1/32 relative
    /// error above; deterministic).
    pub(crate) ack_p50: Option<u64>,
    pub(crate) ack_p95: Option<u64>,
    pub(crate) ack_p99: Option<u64>,
    /// Watched-delivery round percentiles over observing trials.
    pub(crate) delivery_p50: Option<u64>,
    pub(crate) delivery_p95: Option<u64>,
    pub(crate) delivery_p99: Option<u64>,
    pub(crate) acks: f64,
    pub(crate) deliveries: f64,
    pub(crate) spec_ok_rate: f64,
    pub(crate) spec_ok_trials: usize,
}

impl MeasuredMetrics {
    pub(crate) fn of(report: &ScenarioReport) -> Self {
        let outcomes = &report.outcomes;
        let mean = |f: &dyn Fn(&TrialOutcome) -> f64| -> f64 {
            outcomes.iter().map(f).sum::<f64>() / outcomes.len().max(1) as f64
        };
        let lat: Vec<f64> = outcomes
            .iter()
            .filter_map(|o| o.first_ack.map(|r| r as f64))
            .collect();
        let dlat: Vec<f64> = outcomes
            .iter()
            .filter_map(|o| o.first_delivery.map(|r| r as f64))
            .collect();
        // Percentiles come from the same fixed-slot histogram the run
        // journal serializes, so report columns and journal agree.
        let mut ack_hist = Histogram::new();
        let mut delivery_hist = Histogram::new();
        for o in outcomes {
            if let Some(r) = o.first_ack {
                ack_hist.record(r);
            }
            if let Some(r) = o.first_delivery {
                delivery_hist.record(r);
            }
        }
        let spec_ok_trials = outcomes.iter().filter(|o| o.spec_ok).count();
        MeasuredMetrics {
            ack_latency: (!lat.is_empty())
                .then(|| lat.iter().sum::<f64>() / lat.len() as f64),
            ack_trials: lat.len(),
            delivery_latency: (!dlat.is_empty())
                .then(|| dlat.iter().sum::<f64>() / dlat.len() as f64),
            delivery_trials: dlat.len(),
            ack_p50: ack_hist.p50(),
            ack_p95: ack_hist.p95(),
            ack_p99: ack_hist.p99(),
            delivery_p50: delivery_hist.p50(),
            delivery_p95: delivery_hist.p95(),
            delivery_p99: delivery_hist.p99(),
            acks: mean(&|o| o.acks as f64),
            deliveries: mean(&|o| o.recvs as f64),
            spec_ok_rate: spec_ok_trials as f64 / outcomes.len().max(1) as f64,
            spec_ok_trials,
        }
    }
}

/// One pinned metric: an expected mean and a symmetric absolute
/// tolerance (`|expected − actual| ≤ tol` passes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoldenMetric {
    /// Expected mean over trials.
    pub mean: f64,
    /// Absolute tolerance band.
    pub tol: f64,
}

impl GoldenMetric {
    fn accepts(&self, actual: f64) -> bool {
        within_tolerance(self.mean, actual, self.tol)
    }
}

/// A scenario's checked-in expected summary metrics — the golden file
/// schema (`scenarios/golden/<name>.json`).
///
/// `trials` and `base_seed` pin the measurement configuration: metrics
/// are means over trials, so comparing runs with different trial counts
/// or seeding would be meaningless, and the gate fails loudly on such
/// config drift instead of reporting a spurious metric diff.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoldenMetrics {
    /// The scenario this pins (registry name).
    pub scenario: String,
    /// Trial count the means were measured over.
    pub trials: usize,
    /// Base seed the trials derived from.
    pub base_seed: u64,
    /// Mean round of the first acknowledgment, over trials that observed
    /// one; `None` for ack-free workloads (and runs where no ack landed
    /// before the horizon). Absence must match absence.
    pub ack_latency: Option<GoldenMetric>,
    /// How many trials observed an ack — the sample `ack_latency`
    /// averages over, pinned **exactly**. Without it, a regression where
    /// some trials stop acking entirely but the survivors' mean stays in
    /// band would pass the gate. Defaults to 0 for pre-existing golden
    /// files (which then fail the check until re-blessed).
    #[serde(default)]
    pub ack_trials: usize,
    /// Mean round of the watched first delivery (`FirstDeliveryAt`
    /// stops) or of the first delivery anywhere otherwise, over trials
    /// that observed one; `None` when none did. This is the metric
    /// loss-burst and censoring curves move when ack timing (a fixed
    /// `LBAlg` schedule) cannot. Defaults to `None` for pre-existing
    /// golden files.
    #[serde(default)]
    pub delivery_latency: Option<GoldenMetric>,
    /// How many trials observed the watched delivery, pinned exactly
    /// (same rationale as `ack_trials`). Defaults to 0 for
    /// pre-existing golden files.
    #[serde(default)]
    pub delivery_trials: usize,
    /// First-ack round p50, pinned **exactly** when present: the
    /// percentile comes from the deterministic telemetry histogram, so
    /// any drift is a real behavior change, not noise. `None` (the
    /// default, and the value in golden files blessed before these
    /// fields existed) skips the comparison entirely — the fields are
    /// opt-in, not a parse break.
    #[serde(default)]
    pub ack_p50: Option<u64>,
    /// First-ack round p95, pinned exactly when present (see `ack_p50`).
    #[serde(default)]
    pub ack_p95: Option<u64>,
    /// First-ack round p99, pinned exactly when present (see `ack_p50`).
    #[serde(default)]
    pub ack_p99: Option<u64>,
    /// Watched-delivery round p50, pinned exactly when present.
    #[serde(default)]
    pub delivery_p50: Option<u64>,
    /// Watched-delivery round p95, pinned exactly when present.
    #[serde(default)]
    pub delivery_p95: Option<u64>,
    /// Watched-delivery round p99, pinned exactly when present.
    #[serde(default)]
    pub delivery_p99: Option<u64>,
    /// Mean acknowledgment outputs per trial.
    pub acks: GoldenMetric,
    /// Mean delivery outputs per trial (`recv`s / `decide`s / learned).
    pub deliveries: GoldenMetric,
    /// Fraction of trials whose deterministic spec conditions held.
    pub spec_ok_rate: GoldenMetric,
}

/// Default tolerance for count/latency metrics at bless time: 10% of
/// the mean, floored at 2.0 so near-zero means keep a usable band.
fn default_tol(mean: f64) -> f64 {
    (mean.abs() * 0.10).max(2.0)
}

/// Default tolerance for the spec-ok rate: tight enough that one trial
/// flipping (≥ 1/8 at registry trial counts) trips the gate.
const RATE_TOL: f64 = 0.10;

impl GoldenMetrics {
    /// Measures golden metrics from a report, with default tolerances.
    pub fn from_report(report: &ScenarioReport) -> Self {
        let m = MeasuredMetrics::of(report);
        GoldenMetrics {
            scenario: report.scenario.name.clone(),
            trials: report.outcomes.len(),
            base_seed: report.scenario.base_seed,
            ack_latency: m.ack_latency.map(|mean| GoldenMetric {
                mean,
                tol: default_tol(mean),
            }),
            ack_trials: m.ack_trials,
            delivery_latency: m.delivery_latency.map(|mean| GoldenMetric {
                mean,
                tol: default_tol(mean),
            }),
            delivery_trials: m.delivery_trials,
            ack_p50: m.ack_p50,
            ack_p95: m.ack_p95,
            ack_p99: m.ack_p99,
            delivery_p50: m.delivery_p50,
            delivery_p95: m.delivery_p95,
            delivery_p99: m.delivery_p99,
            acks: GoldenMetric {
                mean: m.acks,
                tol: default_tol(m.acks),
            },
            deliveries: GoldenMetric {
                mean: m.deliveries,
                tol: default_tol(m.deliveries),
            },
            spec_ok_rate: GoldenMetric {
                mean: m.spec_ok_rate,
                tol: RATE_TOL,
            },
        }
    }

    /// Serializes to pretty-printed JSON (the on-disk golden format).
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("golden metrics serialize");
        s.push('\n');
        s
    }

    /// Parses and validates golden metrics from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Parse`] on malformed JSON and
    /// [`ScenarioError::Invalid`] on non-finite means, negative or
    /// non-finite tolerances, an empty name, or zero trials.
    pub fn from_json(json: &str) -> Result<Self, ScenarioError> {
        let golden: GoldenMetrics =
            serde_json::from_str(json).map_err(|e| ScenarioError::Parse(e.to_string()))?;
        golden.validate()?;
        Ok(golden)
    }

    fn validate(&self) -> Result<(), ScenarioError> {
        if self.scenario.is_empty() {
            return Err(invalid("golden: scenario name must be non-empty"));
        }
        if self.trials == 0 {
            return Err(invalid("golden: trials must be >= 1"));
        }
        let metrics = [
            ("ack_latency", self.ack_latency.as_ref()),
            ("delivery_latency", self.delivery_latency.as_ref()),
            ("acks", Some(&self.acks)),
            ("deliveries", Some(&self.deliveries)),
            ("spec_ok_rate", Some(&self.spec_ok_rate)),
        ];
        for (name, m) in metrics.into_iter().filter_map(|(n, m)| m.map(|m| (n, m))) {
            if !m.mean.is_finite() {
                return Err(invalid(format!("golden: {name} mean must be finite")));
            }
            if !m.tol.is_finite() || m.tol < 0.0 {
                return Err(invalid(format!(
                    "golden: {name} tolerance must be finite and >= 0"
                )));
            }
        }
        Ok(())
    }

    /// Diffs a fresh report against these blessed metrics, one row per
    /// comparison. An empty failure set (`rows.iter().all(|r| r.ok)`)
    /// means the scenario passed; by construction a report always
    /// accepts the golden metrics blessed from it.
    pub fn check(&self, report: &ScenarioReport) -> Vec<MetricCheck> {
        let name = &report.scenario.name;
        let mut rows = Vec::new();
        let config_ok = self.trials == report.outcomes.len()
            && self.base_seed == report.scenario.base_seed;
        rows.push(MetricCheck {
            scenario: name.clone(),
            metric: "config".into(),
            expected: format!("{} trial(s), seed {}", self.trials, self.base_seed),
            actual: format!(
                "{} trial(s), seed {}",
                report.outcomes.len(),
                report.scenario.base_seed
            ),
            ok: config_ok,
        });
        let m = MeasuredMetrics::of(report);
        // The observing-trial count is pinned exactly, not within a
        // band: losing ack observers is a regression even when the
        // survivors' latency mean stays within tolerance.
        rows.push(MetricCheck {
            scenario: name.clone(),
            metric: "ack trials".into(),
            expected: format!("{}/{}", self.ack_trials, self.trials),
            actual: format!("{}/{}", m.ack_trials, report.outcomes.len()),
            ok: self.ack_trials == m.ack_trials,
        });
        // Same rationale for the watched-delivery count: censoring
        // curves lose observers before the surviving mean drifts.
        rows.push(MetricCheck {
            scenario: name.clone(),
            metric: "delivery trials".into(),
            expected: format!("{}/{}", self.delivery_trials, self.trials),
            actual: format!("{}/{}", m.delivery_trials, report.outcomes.len()),
            ok: self.delivery_trials == m.delivery_trials,
        });
        let metric = |metric: &str, golden: Option<&GoldenMetric>, actual: Option<f64>| {
            let (expected, actual_s, ok) = match (golden, actual) {
                (Some(g), Some(a)) => (pm(g.mean, g.tol), fnum(a), g.accepts(a)),
                (Some(g), None) => (pm(g.mean, g.tol), "—".into(), false),
                (None, Some(a)) => ("—".into(), fnum(a), false),
                (None, None) => ("—".into(), "—".into(), true),
            };
            MetricCheck {
                scenario: name.clone(),
                metric: metric.into(),
                expected,
                actual: actual_s,
                ok,
            }
        };
        rows.push(metric("ack latency", self.ack_latency.as_ref(), m.ack_latency));
        rows.push(metric(
            "delivery latency",
            self.delivery_latency.as_ref(),
            m.delivery_latency,
        ));
        // Percentiles pin exactly when blessed — the histogram is
        // deterministic — and are skipped entirely for golden files
        // blessed before the fields existed (opt-in, not a gate break).
        let percentile = |metric: &str, golden: Option<u64>, actual: Option<u64>| {
            golden.map(|g| MetricCheck {
                scenario: name.clone(),
                metric: metric.into(),
                expected: g.to_string(),
                actual: actual.map_or("—".into(), |a| a.to_string()),
                ok: actual == Some(g),
            })
        };
        rows.extend(percentile("ack p50", self.ack_p50, m.ack_p50));
        rows.extend(percentile("ack p95", self.ack_p95, m.ack_p95));
        rows.extend(percentile("ack p99", self.ack_p99, m.ack_p99));
        rows.extend(percentile("delivery p50", self.delivery_p50, m.delivery_p50));
        rows.extend(percentile("delivery p95", self.delivery_p95, m.delivery_p95));
        rows.extend(percentile("delivery p99", self.delivery_p99, m.delivery_p99));
        rows.push(metric("acks", Some(&self.acks), Some(m.acks)));
        rows.push(metric("deliveries", Some(&self.deliveries), Some(m.deliveries)));
        rows.push(metric("spec ok rate", Some(&self.spec_ok_rate), Some(m.spec_ok_rate)));
        rows
    }
}

// ---------------------------------------------------------------------------
// Check report
// ---------------------------------------------------------------------------

/// One golden-metric comparison row.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricCheck {
    /// The scenario checked.
    pub scenario: String,
    /// Which metric (or `config` / `golden file`).
    pub metric: String,
    /// The blessed expectation (`mean ± tol`).
    pub expected: String,
    /// The freshly measured value.
    pub actual: String,
    /// Whether the comparison passed.
    pub ok: bool,
}

/// The full pass/fail result of a campaign `--check`.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// All comparison rows, in campaign order.
    pub rows: Vec<MetricCheck>,
}

impl CheckReport {
    /// Whether every comparison passed.
    pub fn passed(&self) -> bool {
        self.rows.iter().all(|r| r.ok)
    }

    /// The failing rows.
    pub fn failures(&self) -> impl Iterator<Item = &MetricCheck> {
        self.rows.iter().filter(|r| !r.ok)
    }

    /// A readable pass/fail table (one row per comparison).
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "golden-check",
            "golden-metric regression gate",
            "fresh means must stay within each blessed mean ± tolerance",
            vec!["scenario", "metric", "expected", "actual", "status"],
        );
        for r in &self.rows {
            t.push_row(vec![
                r.scenario.clone(),
                r.metric.clone(),
                r.expected.clone(),
                r.actual.clone(),
                if r.ok { "ok".into() } else { "DRIFT".into() },
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ScenarioBuilder, TopologySpec, WorkloadSpec};

    fn tiny(name: &str, seed: u64) -> Scenario {
        ScenarioBuilder::new(
            name,
            TopologySpec::Clique { n: 4, r: 1.0 },
            WorkloadSpec::LocalBroadcast {
                epsilon1: 0.25,
                senders: vec![0],
                messages_per_sender: 1,
            },
        )
        .trials(2)
        .base_seed(seed)
        .build()
        .unwrap()
    }

    #[test]
    fn campaign_groups_outcomes_per_scenario_in_order() {
        let campaign = Campaign::new(vec![tiny("a", 5), tiny("b", 9)]).unwrap();
        let report = campaign.run();
        assert_eq!(report.reports.len(), 2);
        assert_eq!(report.reports[0].scenario.name, "a");
        assert_eq!(report.reports[1].scenario.name, "b");
        for (r, seed) in report.reports.iter().zip([5u64, 9]) {
            assert_eq!(r.outcomes.len(), 2);
            assert_eq!(r.outcomes[0].master_seed, seed);
            assert_eq!(r.outcomes[1].master_seed, seed + 1);
        }
    }

    #[test]
    fn campaign_matches_standalone_runs() {
        let campaign = Campaign::new(vec![tiny("a", 5), tiny("b", 9)]).unwrap();
        let report = campaign.run();
        for (i, s) in [tiny("a", 5), tiny("b", 9)].into_iter().enumerate() {
            let solo = ScenarioRunner::new(s).unwrap().run();
            for (a, b) in report.reports[i].outcomes.iter().zip(&solo.outcomes) {
                assert_eq!(a.master_seed, b.master_seed);
                assert_eq!(a.acks, b.acks);
                assert_eq!(a.recvs, b.recvs);
                assert_eq!(a.totals, b.totals);
            }
        }
    }

    #[test]
    fn golden_metrics_are_invariant_across_shard_counts() {
        // Golden files are blessed from serial runs; a sharded campaign
        // must reproduce them exactly, so --shards can never trip (or
        // mask) the regression gate.
        let golden = Campaign::new(vec![tiny("a", 5), tiny("b", 9)])
            .unwrap()
            .run()
            .golden();
        for shards in [2, 8] {
            let report = Campaign::new(vec![tiny("a", 5), tiny("b", 9)])
                .unwrap()
                .shards(shards)
                .run();
            assert_eq!(report.golden(), golden, "{shards} shards");
            let check = report.check(&golden);
            assert!(check.passed(), "{shards} shards:\n{}", check.table());
        }
    }

    #[test]
    fn observed_run_matches_plain_run_and_fills_telemetry() {
        // The observed pool must not perturb results: outcomes and the
        // whole markdown report are byte-identical to a plain run, at
        // any thread count. Telemetry rides along: trial/ack histograms
        // filled, engine metrics merged per scenario, valid journal.
        let plain = Campaign::new(vec![tiny("a", 5), tiny("b", 9)]).unwrap().run();
        for threads in [1, 4] {
            let campaign = Campaign::new(vec![tiny("a", 5), tiny("b", 9)])
                .unwrap()
                .threads(threads);
            let (report, telem) = campaign.run_observed(None);
            assert_eq!(report.to_markdown(), plain.to_markdown(), "{threads} threads");
            assert!(report.check(&plain.golden()).passed(), "{threads} threads");

            assert_eq!(telem.threads, threads.min(4));
            assert_eq!(telem.total_trials(), 4);
            assert_eq!(telem.trial_ns.count(), 4);
            assert_eq!(telem.scenarios.len(), 2);
            for s in &telem.scenarios {
                assert_eq!(s.trials, 2);
                assert_eq!(s.trial_ns.count(), 2);
                let engine = s.engine.as_ref().expect("lb workload exposes the engine");
                assert!(engine.rounds > 0 && engine.busy_ns() > 0);
                assert_eq!(s.ack_latency_rounds.count(), 2, "both trials ack");
            }
            assert!(telem.worker_busy_ns.iter().sum::<u64>() > 0);
            let journal = telem.journal("campaign", "test");
            let stats = telemetry::validate_journal(&journal)
                .unwrap_or_else(|e| panic!("{threads} threads: {e}\n{journal}"));
            assert_eq!(stats.scenarios, 2);
            assert_eq!(stats.engine_scenarios, 2);
        }
    }

    #[test]
    fn observed_ack_histograms_are_identical_across_threads_and_shards() {
        // The deterministic half of the telemetry (latency histograms
        // in rounds, engine counters) is a pure function of the
        // scenario — byte-identical across worker threads and engine
        // shards; only the `_ns` wall-clock fields may differ.
        let make = |threads: usize, shards: usize| {
            Campaign::new(vec![tiny("a", 5), tiny("b", 9)])
                .unwrap()
                .threads(threads)
                .shards(shards)
                .run_observed(None)
                .1
        };
        let base = make(1, 1);
        for (threads, shards) in [(4, 1), (1, 4), (2, 2)] {
            let telem = make(threads, shards);
            for (a, b) in base.scenarios.iter().zip(&telem.scenarios) {
                assert_eq!(a.name, b.name);
                assert_eq!(
                    a.ack_latency_rounds, b.ack_latency_rounds,
                    "{threads}t/{shards}s: {}",
                    a.name
                );
                assert_eq!(a.delivery_latency_rounds, b.delivery_latency_rounds);
                let (ea, eb) = (a.engine.as_ref().unwrap(), b.engine.as_ref().unwrap());
                assert_eq!(ea.rounds, eb.rounds);
                assert_eq!(ea.transmissions, eb.transmissions);
                assert_eq!(ea.deliveries, eb.deliveries);
                assert_eq!(ea.collisions, eb.collisions);
                assert_eq!(ea.jammed, eb.jammed);
                assert_eq!(ea.dropped, eb.dropped);
            }
        }
    }

    #[test]
    fn campaign_rejects_empty_duplicate_and_unknown() {
        assert!(Campaign::new(vec![]).is_err());
        assert!(Campaign::new(vec![tiny("a", 1), tiny("a", 2)]).is_err());
        assert!(Campaign::subset(&["no-such-scenario"]).is_err());
        assert!(Campaign::subset(&["e5"]).is_ok());
    }

    #[test]
    fn golden_roundtrips_and_accepts_its_own_run() {
        let report = Campaign::new(vec![tiny("a", 5)]).unwrap().run();
        let golden = report.golden();
        let back = GoldenMetrics::from_json(&golden[0].to_json()).unwrap();
        assert_eq!(golden[0], back);
        let check = report.check(&golden);
        assert!(check.passed(), "{}", check.table());
    }

    #[test]
    fn check_flags_drift_missing_golden_and_config_mismatch() {
        let report = Campaign::new(vec![tiny("a", 5)]).unwrap().run();
        let mut golden = report.golden();

        let mut drifted = golden.clone();
        drifted[0].deliveries.mean += drifted[0].deliveries.tol + 1.0;
        let check = report.check(&drifted);
        assert!(!check.passed());
        assert!(check.failures().any(|r| r.metric == "deliveries"));

        let check = report.check(&[]);
        assert!(check.failures().any(|r| r.metric == "golden file"));

        golden[0].trials += 1;
        let check = report.check(&golden);
        assert!(check.failures().any(|r| r.metric == "config"));
    }

    #[test]
    fn check_flags_lost_ack_observers_despite_in_band_mean() {
        // Regression: the ack-latency mean averages only over trials
        // that observed an ack, so a run where some trials stop acking
        // but the survivors' mean stays in band used to pass. The
        // observing-trial count is now pinned exactly.
        let mut report = Campaign::new(vec![tiny("a", 5)]).unwrap().run();
        let golden = report.golden();
        assert_eq!(golden[0].ack_trials, 2, "both trials ack in this scenario");

        // Trial 1 stops acking; keep trial 0's latency identical, so the
        // surviving mean moves at most within the blessed tolerance.
        report.reports[0].outcomes[1].first_ack = None;
        let check = report.check(&golden);
        assert!(!check.passed());
        assert!(check.failures().any(|r| r.metric == "ack trials"));
    }

    #[test]
    fn old_golden_files_without_ack_trials_load_and_fail_check() {
        // Pre-ack_trials golden files (no such key) still parse — the
        // field defaults to 0 — and then fail the gate loudly until
        // re-blessed, instead of erroring at load time.
        let report = Campaign::new(vec![tiny("a", 5)]).unwrap().run();
        let golden = &report.golden()[0];
        let json = golden.to_json();
        let legacy = json.replace("\"ack_trials\": 2,\n  ", "");
        assert_ne!(json, legacy, "test must actually strip the field");
        let old = GoldenMetrics::from_json(&legacy).unwrap();
        assert_eq!(old.ack_trials, 0);
        let check = report.check(&[old]);
        assert!(check.failures().any(|r| r.metric == "ack trials"));
    }

    #[test]
    fn percentiles_are_pinned_exactly_once_blessed() {
        // A blessed golden carries the deterministic latency percentiles
        // and pins them exactly: shifting any observing trial's first-ack
        // round enough to move a percentile slot fails the gate even when
        // the mean stays within its band.
        let mut report = Campaign::new(vec![tiny("a", 5)]).unwrap().run();
        let golden = report.golden();
        assert!(golden[0].ack_p50.is_some(), "acking scenario blesses p50");
        assert!(report.check(&golden).passed());

        for o in &mut report.reports[0].outcomes {
            if let Some(r) = o.first_ack.as_mut() {
                *r += 500;
            }
        }
        let check = report.check(&golden);
        assert!(check.failures().any(|r| r.metric == "ack p50"), "{}", check.table());
    }

    #[test]
    fn old_golden_files_without_percentiles_skip_those_rows() {
        // Percentile pins are opt-in: a golden file blessed before the
        // fields existed parses with `None` and its check has no
        // percentile rows at all — it passes or fails on the pre-existing
        // metrics alone.
        let report = Campaign::new(vec![tiny("a", 5)]).unwrap().run();
        let golden = &report.golden()[0];
        let mut legacy = golden.to_json();
        for field in ["ack_p50", "ack_p95", "ack_p99", "delivery_p50", "delivery_p95", "delivery_p99"] {
            let key = format!("\"{field}\"");
            legacy = legacy
                .lines()
                .filter(|l| !l.contains(&key))
                .collect::<Vec<_>>()
                .join("\n");
        }
        assert_ne!(golden.to_json(), legacy, "test must actually strip the fields");
        let old = GoldenMetrics::from_json(&legacy).unwrap();
        assert_eq!(old.ack_p50, None);
        let check = report.check(&[old]);
        assert!(check.passed(), "{}", check.table());
        assert!(check.rows.iter().all(|r| !r.metric.contains("p50")));
    }

    #[test]
    fn golden_json_rejects_malformed_values() {
        let report = Campaign::new(vec![tiny("a", 5)]).unwrap().run();
        let golden = &report.golden()[0];
        let mut bad = golden.clone();
        bad.acks.tol = -1.0;
        assert!(GoldenMetrics::from_json(&bad.to_json()).is_err());
        assert!(GoldenMetrics::from_json("{").is_err());
    }

    #[test]
    fn overview_has_one_row_per_scenario() {
        let report = Campaign::new(vec![tiny("a", 5), tiny("b", 9)]).unwrap().run();
        let t = report.overview();
        assert_eq!(t.rows.len(), 2);
        let md = report.to_markdown();
        assert!(md.contains("# Campaign report"));
        assert!(md.contains("## Overview"));
        assert!(md.contains("## a") && md.contains("## b"));
    }
}
