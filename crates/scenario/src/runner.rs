//! Compiling a [`Scenario`] into `radio-sim` executions and aggregating
//! trial outcomes.
//!
//! The [`ScenarioRunner`] owns a validated scenario and its built
//! topology. Each trial is a pure function of the trial's master seed
//! (`base_seed.wrapping_add(trial_index)` — wrapping, so seeds near
//! `u64::MAX` are legal), so trials fan out across cores through
//! [`analysis::runner::run_trials`] with results identical to a
//! sequential run, and any single trial can be re-executed later — the
//! serialized trace from [`ScenarioRunner::trial_trace_json`] is
//! byte-identical across replays.

use crate::spec::{
    AdversarySpec, RegionSpec, Scenario, ScenarioError, StopSpec, TopologySpec, TransportSpec,
    WorkloadSpec,
};
use analysis::runner::run_trials;
use analysis::stats::Summary;
use analysis::table::{fnum, Table};
use baselines::{decay_process, uniform_process, FixedScheduleProcess};
use local_broadcast::alg::LbProcess;
use local_broadcast::config::LbConfig;
use local_broadcast::msg::{LbInput, LbOutput, Payload};
use local_broadcast::service::QueueWorkload;
use local_broadcast::spec as lb_spec;
use net::{Cluster, ClusterConfig, LinkSet, MockNetConfig, MockNetTransport, PartitionWindow};
use radio_sim::engine::{Configuration, Engine};
use radio_sim::environment::{Environment, NullEnvironment, ScriptedEnvironment};
use radio_sim::fault::FaultPlan;
use radio_sim::graph::{DualGraph, NodeId};
use radio_sim::process::Process;
use radio_sim::geometry::Embedding;
use radio_sim::scheduler;
use radio_sim::timeline::GraphTimeline;
use radio_sim::topology::{self, RggParams, Topology};
use radio_sim::trace::{EventKind, RecordingPolicy, RoundStats, Trace};
use seed_agreement::alg::SeedProcess;
use seed_agreement::{spec as seed_spec, SeedConfig};
use std::collections::VecDeque;
use std::sync::Arc;

/// Rounds per "phase" for the fixed-schedule baselines, which have no
/// intrinsic phase structure (`StopSpec::Phases` multiplies this).
const BASELINE_PHASE_ROUNDS: u64 = 128;

/// Natural horizon for baseline workloads under `StopSpec::Complete`.
const BASELINE_COMPLETE_ROUNDS: u64 = 1024;

/// What a trial execution should additionally capture, beyond the
/// [`TrialOutcome`] every run measures. Both probes observe only —
/// outcomes and trace bytes are identical whichever combination is on.
#[derive(Debug, Clone, Copy, Default)]
struct Probe {
    /// Record the full per-event trace and return it as JSON.
    trace: bool,
    /// Attach an engine telemetry sink and return its metrics.
    telemetry: bool,
}

impl Probe {
    const NONE: Probe = Probe { trace: false, telemetry: false };
    const TRACE: Probe = Probe { trace: true, telemetry: false };
    const TELEMETRY: Probe = Probe { trace: false, telemetry: true };
}

/// Everything one probed trial execution produced.
type TrialCapture = (
    TrialOutcome,
    Option<String>,
    Option<telemetry::EngineMetrics>,
);

/// One trial's executor: the lockstep engine, or a cluster of node
/// runtimes over the mock network, per the scenario's
/// [`TransportSpec`]. Both expose the same drive/trace surface, so the
/// workload runners are substrate-agnostic.
enum Exec<P: Process> {
    Sim(Box<Engine<P>>),
    MockNet(Box<Cluster<P, MockNetTransport<P::Msg>>>),
}

impl<P: Process> Exec<P> {
    fn run(&mut self, rounds: u64) {
        match self {
            Exec::Sim(e) => e.run(rounds),
            Exec::MockNet(c) => c.run(rounds),
        }
    }

    fn run_until(
        &mut self,
        max_rounds: u64,
        pred: impl FnMut(&Trace<P::Input, P::Output, P::Msg>) -> bool,
    ) -> bool {
        match self {
            Exec::Sim(e) => e.run_until(max_rounds, pred),
            Exec::MockNet(c) => c.run_until(max_rounds, pred),
        }
    }

    fn trace(&self) -> &Trace<P::Input, P::Output, P::Msg> {
        match self {
            Exec::Sim(e) => e.trace(),
            Exec::MockNet(c) => c.trace(),
        }
    }

    /// Engine metrics, when the substrate exposes them (the cluster has
    /// no engine inside, so mock-net trials report `None`, like the MAC
    /// adapter path).
    fn take_telemetry(&mut self) -> Option<telemetry::EngineMetrics> {
        match self {
            Exec::Sim(e) => e.take_telemetry(),
            Exec::MockNet(_) => None,
        }
    }
}

/// What one trial measured.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialOutcome {
    /// The trial's master seed.
    pub master_seed: u64,
    /// Rounds executed.
    pub rounds: u64,
    /// Acknowledgment outputs (broadcast workloads).
    pub acks: usize,
    /// Delivery outputs: `recv`s for broadcast workloads, `decide`s for
    /// seed agreement, messages learned for the MAC flood.
    pub recvs: usize,
    /// Channel totals summed over all rounds.
    pub totals: RoundStats,
    /// Round of the first acknowledgment output, when one occurred (the
    /// per-trial ack-latency measurement; `None` for ack-free workloads
    /// such as seed agreement).
    pub first_ack: Option<u64>,
    /// Round of the watched delivery (`FirstDeliveryAt` stop) or of the
    /// first delivery/completion otherwise, when one occurred.
    pub first_delivery: Option<u64>,
    /// Whether the stop condition's goal was met (always true for plain
    /// round/phase budgets).
    pub stop_satisfied: bool,
    /// Max distinct seed owners per `G'`-neighborhood (seed agreement
    /// workloads only).
    pub max_owners: Option<usize>,
    /// Whether the workload's deterministic spec conditions held on the
    /// trace (well-formedness/consistency/fidelity for seed agreement;
    /// timely-ack/validity for `LBAlg`). Faults may legitimately break
    /// them — that is the point of measuring.
    pub spec_ok: bool,
    /// Delivery outputs at nodes inside some jam window, when the
    /// compiled fault plan jams anything (`None` otherwise) — the
    /// per-region delivery-inequality measurement for jamming studies.
    pub jammed_recvs: Option<usize>,
    /// Delivery outputs at nodes no jam window ever touches (the
    /// complement of [`TrialOutcome::jammed_recvs`]).
    pub clear_recvs: Option<usize>,
}

/// All trial outcomes of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// The scenario that ran.
    pub scenario: Scenario,
    /// Per-trial outcomes, ordered by trial index.
    pub outcomes: Vec<TrialOutcome>,
}

impl ScenarioReport {
    /// Renders the report as experiment-style stats tables.
    pub fn tables(&self) -> Vec<Table> {
        let s = &self.scenario;
        let mut head = Table::new(
            s.name.clone(),
            format!(
                "scenario: {} workload / {} adversary on {:?} nodes",
                s.workload.name(),
                s.adversary.name(),
                s.topology.node_count(),
            ),
            if s.description.is_empty() {
                "—".to_string()
            } else {
                s.description.clone()
            },
            vec!["quantity", "value"],
        );
        head.push_row(vec!["trials".into(), self.outcomes.len().to_string()]);
        head.push_row(vec![
            "stop goal met".into(),
            format!(
                "{}/{}",
                self.outcomes.iter().filter(|o| o.stop_satisfied).count(),
                self.outcomes.len()
            ),
        ]);
        head.push_row(vec![
            "deterministic spec held".into(),
            format!(
                "{}/{}",
                self.outcomes.iter().filter(|o| o.spec_ok).count(),
                self.outcomes.len()
            ),
        ]);
        head.push_row(vec![
            "first delivery observed".into(),
            format!(
                "{}/{}",
                self.outcomes
                    .iter()
                    .filter(|o| o.first_delivery.is_some())
                    .count(),
                self.outcomes.len()
            ),
        ]);

        let mut stats = Table::new(
            format!("{}-stats", s.name),
            "per-trial statistics",
            "mean/min/median/p95/p99/max over trials",
            vec!["metric", "mean", "min", "median", "p95", "p99", "max"],
        );
        // A metric with no observations (e.g. zero acks under a
        // total jamming plan) renders as an em-dash row instead of
        // being dropped — the table shape stays fixed and the empty
        // sample never reaches `Summary::of`.
        let mut metric = |name: &str, values: Vec<f64>| {
            let row = match Summary::try_of(&values) {
                Some(sum) => vec![
                    name.into(),
                    fnum(sum.mean),
                    fnum(sum.min),
                    fnum(sum.median),
                    fnum(sum.p95),
                    fnum(sum.p99),
                    fnum(sum.max),
                ],
                None => {
                    let mut row = vec![name.to_string()];
                    row.resize(7, "—".into());
                    row
                }
            };
            stats.push_row(row);
        };
        let of = |f: &dyn Fn(&TrialOutcome) -> f64| -> Vec<f64> {
            self.outcomes.iter().map(f).collect()
        };
        metric("rounds", of(&|o| o.rounds as f64));
        metric("acks", of(&|o| o.acks as f64));
        metric("deliveries (outputs)", of(&|o| o.recvs as f64));
        metric("transmissions", of(&|o| o.totals.transmitters as f64));
        metric("channel deliveries", of(&|o| o.totals.deliveries as f64));
        metric("collisions", of(&|o| o.totals.collisions as f64));
        metric("silent listens", of(&|o| o.totals.silent as f64));
        metric("jammed listens", of(&|o| o.totals.jammed as f64));
        metric("dropped receptions", of(&|o| o.totals.dropped as f64));
        metric("down node-rounds", of(&|o| o.totals.down as f64));
        metric(
            "first ack round",
            self.outcomes
                .iter()
                .filter_map(|o| o.first_ack.map(|r| r as f64))
                .collect(),
        );
        metric(
            "first delivery round",
            self.outcomes
                .iter()
                .filter_map(|o| o.first_delivery.map(|r| r as f64))
                .collect(),
        );
        metric(
            "max owners / neighborhood",
            self.outcomes
                .iter()
                .filter_map(|o| o.max_owners.map(|m| m as f64))
                .collect(),
        );
        // Delivery-inequality rows appear only for jamming scenarios,
        // so jam-free reports keep their exact pre-mobility shape.
        if self.outcomes.iter().any(|o| o.jammed_recvs.is_some()) {
            metric(
                "deliveries @ jammed nodes",
                self.outcomes
                    .iter()
                    .filter_map(|o| o.jammed_recvs.map(|v| v as f64))
                    .collect(),
            );
            metric(
                "deliveries @ clear nodes",
                self.outcomes
                    .iter()
                    .filter_map(|o| o.clear_recvs.map(|v| v as f64))
                    .collect(),
            );
        }
        vec![head, stats]
    }
}

/// The dynamic-geometry state a mobility scenario compiles to: the
/// epoch timeline every trial engine shares, each epoch's embedding
/// (disc fault regions resolve against these, per epoch), and what each
/// rebuild cost.
struct MobilityState {
    timeline: GraphTimeline,
    embeddings: Vec<Arc<Embedding>>,
    /// Wall-clock nanoseconds per epoch rebuild (index = epoch; entry 0
    /// is the static deployment build).
    rebuild_ns: Vec<u64>,
}

/// Executes a validated scenario.
pub struct ScenarioRunner {
    scenario: Scenario,
    topo: Topology,
    /// The built dual graph, shared across all trial engines via `Arc`
    /// (one adjacency build per scenario, not per trial).
    graph: Arc<DualGraph>,
    faults: FaultPlan,
    /// Dynamic geometry (`None` for static scenarios). Built once per
    /// scenario: motion draws only from the dedicated mobility stream
    /// of the *topology* seed, so every trial shares one timeline.
    mobility: Option<MobilityState>,
    /// Reception-resolution shards per trial engine (1 = serial).
    shards: usize,
}

impl ScenarioRunner {
    /// Validates the scenario, builds its topology, and resolves fault
    /// regions (per epoch, for mobility scenarios).
    ///
    /// # Errors
    ///
    /// Returns the first validation failure (see [`Scenario::validate`]).
    pub fn new(scenario: Scenario) -> Result<Self, ScenarioError> {
        scenario.validate()?;
        let topo = scenario.topology.build();
        let mobility = Self::build_mobility(&scenario)?;
        // A single-epoch timeline is defined to be byte-identical to the
        // static scenario, so it takes the static resolution path (one
        // window per jam, resolved against the deployment embedding).
        let faults = match &mobility {
            Some(m) if !m.timeline.is_single() => {
                Self::resolve_faults_per_epoch(&scenario, m)?
            }
            _ => scenario.faults.resolve(&topo)?,
        };
        let graph = Arc::new(topo.graph.clone());
        Ok(ScenarioRunner {
            scenario,
            topo,
            graph,
            faults,
            mobility,
            shards: 1,
        })
    }

    /// Builds the epoch timeline for a mobility scenario (`None` when
    /// the scenario is static).
    fn build_mobility(scenario: &Scenario) -> Result<Option<MobilityState>, ScenarioError> {
        let Some(m) = &scenario.mobility else {
            return Ok(None);
        };
        let horizon = scenario
            .stop
            .horizon_rounds()
            .expect("validation requires an explicit horizon for mobility");
        let params = match scenario.topology {
            TopologySpec::RandomGeometric {
                n,
                side,
                r,
                grey_reliable_p,
                grey_unreliable_p,
                seed,
            } => RggParams {
                n,
                side,
                r,
                grey_reliable_p,
                grey_unreliable_p,
                seed,
            },
            // Mirrors `topology::constant_density`, so epoch 0 equals the
            // static deployment byte-for-byte.
            TopologySpec::ConstantDensity { n, density, r, seed } => RggParams {
                n,
                side: topology::constant_density_side(n, density),
                r,
                grey_reliable_p: 0.0,
                grey_unreliable_p: 1.0,
                seed,
            },
            _ => unreachable!("validation restricts mobility to the arena families"),
        };
        let epochs = topology::random_geometric_timeline(
            params,
            m.speed,
            m.epoch_rounds,
            m.epochs_for(horizon) as usize,
        )
        .map_err(|e| ScenarioError::Invalid(format!("mobility: {e}")))?;
        let timeline = GraphTimeline::new(
            epochs
                .iter()
                .map(|e| (e.start_round, Arc::clone(&e.graph))),
        )
        .map_err(|e| ScenarioError::Invalid(format!("mobility: {e}")))?;
        Ok(Some(MobilityState {
            timeline,
            embeddings: epochs.iter().map(|e| Arc::clone(&e.embedding)).collect(),
            rebuild_ns: epochs.iter().map(|e| e.build_ns).collect(),
        }))
    }

    /// Resolves the fault plan for a multi-epoch timeline: explicit node
    /// lists and drop/crash entries are epoch-independent; every disc jam
    /// (moving or parked — the *nodes* move either way) compiles to one
    /// window per overlapped epoch, resolved against that epoch's
    /// embedding at the clipped window's opening round. Jam transitions
    /// are edge-triggered on the per-round mask, so contiguous same-set
    /// windows are indistinguishable from one long window.
    fn resolve_faults_per_epoch(
        scenario: &Scenario,
        m: &MobilityState,
    ) -> Result<FaultPlan, ScenarioError> {
        let mut plan = FaultPlan::none();
        for c in &scenario.faults.crashes {
            plan = if c.restart {
                plan.with_crash_restart(NodeId(c.node), c.down_from, c.up_at)
            } else {
                plan.with_crash(NodeId(c.node), c.down_from, c.up_at)
            };
        }
        let epochs = m.timeline.num_epochs();
        for j in &scenario.faults.jams {
            let radius = match &j.region {
                RegionSpec::Nodes { nodes } => {
                    plan = plan.with_jam(
                        nodes.iter().map(|&v| NodeId(v)).collect(),
                        j.from,
                        j.to,
                    );
                    continue;
                }
                RegionSpec::Disc { radius, .. } => *radius,
            };
            let mut hit_any = false;
            for e in 0..epochs {
                let start = m.timeline.epoch_start(e);
                let end = if e + 1 < epochs {
                    m.timeline.epoch_start(e + 1) - 1
                } else {
                    u64::MAX
                };
                let (lo, hi) = (j.from.max(start), j.to.min(end));
                if lo > hi {
                    continue;
                }
                let center = j.center_at(lo).expect("disc region has a center");
                let emb = &m.embeddings[e];
                let nodes: Vec<NodeId> = (0..emb.len())
                    .filter(|&v| emb.position(v).distance(&center) <= radius)
                    .map(NodeId)
                    .collect();
                if nodes.is_empty() {
                    continue;
                }
                hit_any = true;
                plan = plan.with_jam(nodes, lo, hi);
            }
            if !hit_any {
                return Err(ScenarioError::Invalid(format!(
                    "faults: jam window [{}, {}] resolves to no vertices in any \
                     epoch (region {:?} with velocity ({}, {}) misses every \
                     snapshot of the moving topology)",
                    j.from, j.to, j.region, j.vx, j.vy
                )));
            }
        }
        for d in &scenario.faults.drops {
            plan = plan.with_drop_burst(d.from, d.to, d.p);
        }
        Ok(plan)
    }

    /// Shards each trial engine's reception resolution across `shards`
    /// worker threads (default 1 = serial). Purely a wall-clock knob:
    /// traces and outcomes are byte-identical for every count, so
    /// golden metrics never depend on it. Clamped up to 1.
    pub fn shards(mut self, shards: usize) -> Self {
        self.set_shards(shards);
        self
    }

    pub(crate) fn set_shards(&mut self, shards: usize) {
        self.shards = shards.max(1);
    }

    /// Reception-resolution shards each trial engine uses.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The scenario being executed.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The built topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The compiled fault plan (per-epoch jam windows for multi-epoch
    /// mobility scenarios).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// The epoch timeline, for mobility scenarios.
    pub fn timeline(&self) -> Option<&GraphTimeline> {
        self.mobility.as_ref().map(|m| &m.timeline)
    }

    /// Wall-clock nanoseconds each epoch rebuild cost (entry 0 is the
    /// static deployment build; speed-0 epochs share snapshots and cost
    /// 0). `None` for static scenarios. Wall-clock, hence noisy — never
    /// part of golden metrics.
    pub fn rebuild_ns(&self) -> Option<&[u64]> {
        self.mobility.as_ref().map(|m| m.rebuild_ns.as_slice())
    }

    /// The degree bound Δ processes are configured with: the maximum
    /// over all epochs for mobility scenarios (processes see one
    /// constant bound, exactly like the engine).
    fn delta(&self) -> usize {
        match &self.mobility {
            Some(m) => m.timeline.delta(),
            None => self.graph.delta(),
        }
    }

    /// The degree bound Δ' (maximum over all epochs).
    fn delta_prime(&self) -> usize {
        match &self.mobility {
            Some(m) => m.timeline.delta_prime(),
            None => self.graph.delta_prime(),
        }
    }

    /// Runs all trials (in parallel across cores; output order and
    /// content are independent of thread count).
    pub fn run(&self) -> ScenarioReport {
        let outcomes = run_trials(self.scenario.trials, self.scenario.base_seed, |seed| {
            self.run_seeded(seed, Probe::NONE).0
        });
        ScenarioReport {
            scenario: self.scenario.clone(),
            outcomes,
        }
    }

    /// Like [`ScenarioRunner::run`], but also returns trial 0's trace
    /// JSON from the same execution (no re-simulation; the bytes equal
    /// [`ScenarioRunner::trial_trace_json`]`(0)`).
    pub fn run_with_trial0_trace(&self) -> (ScenarioReport, String) {
        let base = self.scenario.base_seed;
        let results = run_trials(self.scenario.trials, base, |seed| {
            let probe = if seed == base { Probe::TRACE } else { Probe::NONE };
            let (outcome, trace, _) = self.run_seeded(seed, probe);
            (outcome, trace)
        });
        let mut trace = None;
        let outcomes = results
            .into_iter()
            .map(|(o, t)| {
                if let Some(t) = t {
                    trace = Some(t);
                }
                o
            })
            .collect();
        (
            ScenarioReport {
                scenario: self.scenario.clone(),
                outcomes,
            },
            trace.expect("trial 0 always runs"),
        )
    }

    /// Runs the single trial with index `trial` (master seed
    /// `base_seed.wrapping_add(trial)`, matching the parallel path).
    pub fn run_trial(&self, trial: usize) -> TrialOutcome {
        self.run_seeded(self.scenario.base_seed.wrapping_add(trial as u64), Probe::NONE)
            .0
    }

    /// Runs trial `trial` with engine telemetry attached, returning the
    /// outcome plus the engine's metrics. The outcome is identical to
    /// [`ScenarioRunner::run_trial`] — telemetry observes, it never
    /// feeds back. The metrics are `None` for workloads that wrap the
    /// engine behind an adapter that hides it (the MAC flood).
    pub fn run_trial_instrumented(
        &self,
        trial: usize,
    ) -> (TrialOutcome, Option<telemetry::EngineMetrics>) {
        let (outcome, _, metrics) = self.run_seeded(
            self.scenario.base_seed.wrapping_add(trial as u64),
            Probe::TELEMETRY,
        );
        (outcome, metrics)
    }

    /// Runs trial `trial` and returns its full execution trace as JSON.
    /// Identical `(scenario, trial)` pairs produce byte-identical JSON —
    /// the determinism contract replay tests assert.
    pub fn trial_trace_json(&self, trial: usize) -> String {
        self.run_seeded(self.scenario.base_seed.wrapping_add(trial as u64), Probe::TRACE)
            .1
            .expect("trace requested")
    }

    /// The recording policy a trial actually needs: metric trials keep
    /// aggregate channel stats only (inputs and outputs are always
    /// recorded, which is all the spec predicates and summary metrics
    /// read); the full per-event trace — every transmit marker and
    /// cloned message — is recorded only when the caller asked for the
    /// trace JSON.
    fn recording_for(want_trace: bool) -> RecordingPolicy {
        if want_trace {
            RecordingPolicy::full()
        } else {
            RecordingPolicy::stats_only()
        }
    }

    fn configuration(&self, master_seed: u64, probe: Probe) -> Configuration {
        self.base_configuration(master_seed, Self::recording_for(probe.trace))
            .with_telemetry(probe.telemetry)
    }

    /// Builds the trial executor the scenario's transport calls for:
    /// the engine, or a mock-net cluster whose static link set comes
    /// from the adversary (`AllExtraEdges` → all of `G'`,
    /// `NoExtraEdges` → `G`; validation rejects everything else).
    fn executor<P: Process>(
        &self,
        procs: Vec<P>,
        env: Box<dyn Environment<P::Input, P::Output>>,
        master_seed: u64,
        probe: Probe,
    ) -> Exec<P> {
        match &self.scenario.transport {
            TransportSpec::Sim => Exec::Sim(Box::new(Engine::new(
                self.configuration(master_seed, probe),
                procs,
                env,
                master_seed,
            ))),
            TransportSpec::MockNet {
                delay_rounds,
                loss_p,
                partitions,
            } => {
                let links = match self.scenario.adversary {
                    AdversarySpec::NoExtraEdges => LinkSet::Reliable,
                    _ => LinkSet::All,
                };
                let net_config = MockNetConfig {
                    links,
                    delay_rounds: *delay_rounds,
                    loss_p: *loss_p,
                    partitions: partitions
                        .iter()
                        .map(|w| PartitionWindow {
                            nodes: w.nodes.clone(),
                            from: w.from,
                            to: w.to,
                        })
                        .collect(),
                };
                let transport =
                    MockNetTransport::new(Arc::clone(&self.graph), net_config, master_seed);
                let config = ClusterConfig::new(Arc::clone(&self.graph))
                    .with_r(self.topo.r)
                    .with_recording(Self::recording_for(probe.trace))
                    .with_faults(self.faults.clone());
                Exec::MockNet(Box::new(Cluster::new(
                    config,
                    transport,
                    procs,
                    env,
                    master_seed,
                )))
            }
        }
    }

    fn base_configuration(&self, master_seed: u64, recording: RecordingPolicy) -> Configuration {
        // All trials share one `Arc`d graph; only the scheduler and
        // fault plan are per-trial values.
        let config = match self.scenario.adversary.build_oblivious(master_seed) {
            Some(sched) => Configuration::new(Arc::clone(&self.graph), sched),
            None => Configuration::new(
                Arc::clone(&self.graph),
                Box::new(scheduler::NoExtraEdges),
            )
            .with_adaptive(
                self.scenario
                    .adversary
                    .build_adaptive()
                    .expect("non-oblivious spec is adaptive"),
            ),
        };
        let config = config
            .with_r(self.topo.r)
            .with_recording(recording)
            .with_faults(self.faults.clone())
            .with_shards(self.shards);
        match &self.mobility {
            Some(m) => config.with_timeline(m.timeline.clone()),
            None => config,
        }
    }

    /// Horizon in rounds for a workload whose phase is `phase_len` and
    /// whose natural completion horizon is `complete`.
    fn horizon(&self, phase_len: u64, complete: u64) -> u64 {
        match self.scenario.stop {
            StopSpec::Rounds { rounds } => rounds,
            StopSpec::Phases { phases } => phases.saturating_mul(phase_len),
            StopSpec::Complete => complete,
            StopSpec::FirstDeliveryAt { horizon_rounds, .. } => horizon_rounds,
        }
    }

    fn run_seeded(&self, master_seed: u64, probe: Probe) -> TrialCapture {
        match &self.scenario.workload {
            WorkloadSpec::SeedAgreement {
                epsilon1,
                seed_bits,
            } => self.run_seed_agreement(*epsilon1, *seed_bits, master_seed, probe),
            WorkloadSpec::LocalBroadcast {
                epsilon1,
                senders,
                messages_per_sender,
            } => self.run_local_broadcast(
                *epsilon1,
                senders,
                *messages_per_sender,
                master_seed,
                probe,
            ),
            WorkloadSpec::Decay { senders } => {
                self.run_baseline(None, senders, master_seed, probe)
            }
            WorkloadSpec::Uniform { p, senders } => {
                self.run_baseline(Some(*p), senders, master_seed, probe)
            }
            WorkloadSpec::AmacFlood { epsilon1, sources } => {
                self.run_amac_flood(*epsilon1, sources, master_seed, probe)
            }
        }
    }

    fn run_seed_agreement(
        &self,
        epsilon1: f64,
        seed_bits: usize,
        master_seed: u64,
        probe: Probe,
    ) -> TrialCapture {
        let cfg = SeedConfig::practical(epsilon1, seed_bits);
        let delta = self.delta();
        let horizon = self.horizon(cfg.phase_len(), cfg.total_rounds(delta));
        let n = self.graph.len();
        let procs: Vec<SeedProcess> = (0..n).map(|_| SeedProcess::new(cfg.clone())).collect();
        let mut exec = self.executor(procs, Box::new(NullEnvironment), master_seed, probe);
        let stop_satisfied = self.drive(&mut exec, horizon, |_decide| true);
        let metrics = exec.take_telemetry();
        let trace = exec.trace();
        let spec_ok = seed_spec::check_well_formedness(trace).is_ok()
            && seed_spec::check_consistency(trace).is_ok()
            && seed_spec::check_owner_seed_fidelity(trace).is_ok();
        let max_owners = seed_spec::owners_per_neighborhood(trace, &self.graph)
            .ok()
            .and_then(|per| per.into_iter().max());
        let (jammed_recvs, clear_recvs) = self.region_recvs(trace, |_| true);
        let outcome = TrialOutcome {
            master_seed,
            rounds: trace.rounds,
            acks: 0,
            recvs: trace.outputs().count(),
            totals: trace.total_stats(),
            first_ack: None,
            first_delivery: self.watched_delivery(trace, |_| true),
            stop_satisfied,
            max_owners,
            spec_ok,
            jammed_recvs,
            clear_recvs,
        };
        let json = probe
            .trace
            .then(|| serde_json::to_string(trace).expect("trace serializes"));
        (outcome, json, metrics)
    }

    fn run_local_broadcast(
        &self,
        epsilon1: f64,
        senders: &[usize],
        messages_per_sender: u64,
        master_seed: u64,
        probe: Probe,
    ) -> TrialCapture {
        let cfg = LbConfig::practical(epsilon1);
        let params = cfg.resolve(self.topo.r, self.delta(), self.delta_prime());
        let horizon = self.horizon(
            params.phase_len(),
            (params.t_ack_rounds() + params.phase_len())
                .saturating_mul(messages_per_sender.max(1)),
        );
        let n = self.graph.len();
        let mut queues = vec![VecDeque::new(); n];
        for &s in senders {
            for tag in 0..messages_per_sender {
                queues[s].push_back(Payload::new(s as u64, tag));
            }
        }
        let env = QueueWorkload::new(queues, 1);
        let procs: Vec<LbProcess> = (0..n).map(|_| LbProcess::new(cfg.clone())).collect();
        let mut exec = self.executor(procs, Box::new(env), master_seed, probe);
        let stop_satisfied =
            self.drive(&mut exec, horizon, |o: &LbOutput| !o.is_ack());
        let metrics = exec.take_telemetry();
        let trace = exec.trace();
        let spec_ok = lb_spec::check_timely_ack(trace, params.t_ack_rounds()).is_ok()
            && lb_spec::check_validity(trace, &self.graph).is_ok();
        let (jammed_recvs, clear_recvs) = self.region_recvs(trace, |o: &LbOutput| !o.is_ack());
        let outcome = TrialOutcome {
            master_seed,
            rounds: trace.rounds,
            acks: trace.outputs().filter(|(_, _, o)| o.is_ack()).count(),
            recvs: trace.outputs().filter(|(_, _, o)| !o.is_ack()).count(),
            totals: trace.total_stats(),
            first_ack: trace
                .outputs()
                .find(|(_, _, o)| o.is_ack())
                .map(|(r, _, _)| r),
            first_delivery: self.watched_delivery(trace, |o: &LbOutput| !o.is_ack()),
            stop_satisfied,
            max_owners: None,
            spec_ok,
            jammed_recvs,
            clear_recvs,
        };
        let json = probe
            .trace
            .then(|| serde_json::to_string(trace).expect("trace serializes"));
        (outcome, json, metrics)
    }

    fn run_baseline(
        &self,
        uniform_p: Option<f64>,
        senders: &[usize],
        master_seed: u64,
        probe: Probe,
    ) -> TrialCapture {
        let horizon = self.horizon(BASELINE_PHASE_ROUNDS, BASELINE_COMPLETE_ROUNDS);
        let n = self.graph.len();
        let mk = || -> FixedScheduleProcess {
            match uniform_p {
                Some(p) => uniform_process(p, Some(horizon.saturating_mul(2))),
                None => decay_process(Some(horizon.saturating_mul(2))),
            }
        };
        let procs: Vec<FixedScheduleProcess> = (0..n).map(|_| mk()).collect();
        let script: Vec<(u64, NodeId, LbInput)> = senders
            .iter()
            .map(|&v| (1, NodeId(v), LbInput::Bcast(Payload::new(v as u64, 0))))
            .collect();
        let mut exec =
            self.executor(procs, Box::new(ScriptedEnvironment::new(script)), master_seed, probe);
        let stop_satisfied =
            self.drive(&mut exec, horizon, |o: &LbOutput| !o.is_ack());
        let metrics = exec.take_telemetry();
        let trace = exec.trace();
        let (jammed_recvs, clear_recvs) = self.region_recvs(trace, |o: &LbOutput| !o.is_ack());
        let outcome = TrialOutcome {
            master_seed,
            rounds: trace.rounds,
            acks: trace.outputs().filter(|(_, _, o)| o.is_ack()).count(),
            recvs: trace.outputs().filter(|(_, _, o)| !o.is_ack()).count(),
            totals: trace.total_stats(),
            first_ack: trace
                .outputs()
                .find(|(_, _, o)| o.is_ack())
                .map(|(r, _, _)| r),
            first_delivery: self.watched_delivery(trace, |o: &LbOutput| !o.is_ack()),
            stop_satisfied,
            max_owners: None,
            jammed_recvs,
            clear_recvs,
            spec_ok: true,
        };
        let json = probe
            .trace
            .then(|| serde_json::to_string(trace).expect("trace serializes"));
        (outcome, json, metrics)
    }

    fn run_amac_flood(
        &self,
        epsilon1: f64,
        sources: &[usize],
        master_seed: u64,
        probe: Probe,
    ) -> TrialCapture {
        let cfg = LbConfig::with_constants(epsilon1, 1.0, 2.0, 1.0);
        let sched = self
            .scenario
            .adversary
            .build_oblivious(master_seed)
            .expect("validation rejects adaptive adversaries for amac flood");
        let mut mac = amac::adapter::LbMac::new(&self.topo, sched, cfg, master_seed);
        let f_ack = mac.params().t_ack_rounds();
        let n = self.graph.len();
        let horizon = self.horizon(f_ack, f_ack.saturating_mul(n as u64 + 4).saturating_mul(2));
        let source_nodes: Vec<NodeId> = sources.iter().map(|&v| NodeId(v)).collect();
        let out = amac::apps::flood_broadcast(&mut mac, &source_nodes, 1, horizon);
        let complete = out.complete(source_nodes.len());
        let known: usize = out.known.iter().map(|k| k.len()).sum();
        let trace = mac.trace();
        let outcome = TrialOutcome {
            master_seed,
            rounds: trace.rounds,
            acks: trace.outputs().filter(|(_, _, o)| o.is_ack()).count(),
            recvs: known,
            totals: trace.total_stats(),
            first_ack: trace
                .outputs()
                .find(|(_, _, o)| o.is_ack())
                .map(|(r, _, _)| r),
            first_delivery: out.completed_at,
            stop_satisfied: complete,
            max_owners: None,
            spec_ok: true,
            // The MAC flood rejects fault plans, so there is never a
            // jammed region to split deliveries over.
            jammed_recvs: None,
            clear_recvs: None,
        };
        let json = probe
            .trace
            .then(|| serde_json::to_string(trace).expect("trace serializes"));
        // The MAC adapter owns the engine; its metrics are not exposed.
        (outcome, json, None)
    }

    /// Runs the executor to the stop condition: plain budgets run
    /// `horizon` rounds; `FirstDeliveryAt` stops early when an
    /// `is_delivery`-filtered output appears at the watched node.
    /// Returns whether the stop goal was met.
    fn drive<P: Process>(
        &self,
        exec: &mut Exec<P>,
        horizon: u64,
        is_delivery: impl Fn(&P::Output) -> bool,
    ) -> bool {
        match self.scenario.stop {
            StopSpec::FirstDeliveryAt { node, .. } => {
                let watch = NodeId(node);
                // Under full recording the event list grows every round;
                // only scan events appended since the last check so the
                // run stays linear in the trace size.
                let mut seen = 0usize;
                exec.run_until(horizon, move |t| {
                    let hit = t.events[seen..].iter().any(|e| {
                        e.node == watch
                            && matches!(&e.kind, EventKind::Output(o) if is_delivery(o))
                    });
                    seen = t.events.len();
                    hit
                })
            }
            _ => {
                exec.run(horizon);
                true
            }
        }
    }

    /// Delivery outputs split by whether the output's node sits inside
    /// the union of compiled jam windows — `(jammed, clear)`, or
    /// `(None, None)` when the plan jams nothing (keeping jam-free
    /// reports exactly as they were).
    fn region_recvs<I, O, M>(
        &self,
        trace: &Trace<I, O, M>,
        is_delivery: impl Fn(&O) -> bool,
    ) -> (Option<usize>, Option<usize>) {
        if self.faults.jams.is_empty() {
            return (None, None);
        }
        let mut in_region = vec![false; self.graph.len()];
        for j in &self.faults.jams {
            for v in &j.nodes {
                in_region[v.0] = true;
            }
        }
        let (mut jammed, mut clear) = (0, 0);
        for (_, v, o) in trace.outputs() {
            if is_delivery(o) {
                if in_region[v.0] {
                    jammed += 1;
                } else {
                    clear += 1;
                }
            }
        }
        (Some(jammed), Some(clear))
    }

    /// The round of the delivery the stop condition watches (or the
    /// first matching output anywhere, for plain budgets).
    fn watched_delivery<I, O, M>(
        &self,
        trace: &Trace<I, O, M>,
        is_delivery: impl Fn(&O) -> bool,
    ) -> Option<u64> {
        match self.scenario.stop {
            StopSpec::FirstDeliveryAt { node, .. } => trace
                .outputs()
                .find(|(_, v, o)| *v == NodeId(node) && is_delivery(o))
                .map(|(r, _, _)| r),
            _ => trace
                .outputs()
                .find(|(_, _, o)| is_delivery(o))
                .map(|(r, _, _)| r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AdversarySpec, ScenarioBuilder, TopologySpec};

    fn small_lb(name: &str) -> ScenarioBuilder {
        ScenarioBuilder::new(
            name,
            TopologySpec::Clique { n: 4, r: 1.0 },
            WorkloadSpec::LocalBroadcast {
                epsilon1: 0.25,
                senders: vec![0],
                messages_per_sender: 1,
            },
        )
        .trials(2)
        .base_seed(11)
    }

    #[test]
    fn lb_scenario_runs_and_reports() {
        let runner = ScenarioRunner::new(small_lb("t").build().unwrap()).unwrap();
        let report = runner.run();
        assert_eq!(report.outcomes.len(), 2);
        for o in &report.outcomes {
            assert!(o.acks >= 1, "single broadcast acks within Complete horizon");
            assert!(o.spec_ok);
        }
        let tables = report.tables();
        assert_eq!(tables.len(), 2);
        assert!(!tables[1].rows.is_empty());
    }

    #[test]
    fn parallel_run_matches_sequential_trials() {
        let runner = ScenarioRunner::new(
            small_lb("t").trials(4).build().unwrap(),
        )
        .unwrap();
        let report = runner.run();
        for (i, o) in report.outcomes.iter().enumerate() {
            let solo = runner.run_trial(i);
            assert_eq!(o.rounds, solo.rounds);
            assert_eq!(o.acks, solo.acks);
            assert_eq!(o.recvs, solo.recvs);
            assert_eq!(o.totals, solo.totals);
        }
    }

    #[test]
    fn run_with_trace_matches_replay() {
        let runner = ScenarioRunner::new(
            small_lb("t").drop_burst(5, 30, 0.5).build().unwrap(),
        )
        .unwrap();
        let (report, trace) = runner.run_with_trial0_trace();
        assert_eq!(report.outcomes.len(), 2);
        assert_eq!(trace, runner.trial_trace_json(0));
    }

    #[test]
    fn base_seed_near_u64_max_wraps_consistently() {
        // Regression: seed derivation used `base_seed + trial`, which
        // overflowed (panicking in debug) for large --seed values. The
        // parallel, sequential, and replay paths must all wrap.
        let runner = ScenarioRunner::new(
            small_lb("wrap").trials(3).base_seed(u64::MAX).build().unwrap(),
        )
        .unwrap();
        let report = runner.run();
        assert_eq!(
            report.outcomes.iter().map(|o| o.master_seed).collect::<Vec<_>>(),
            vec![u64::MAX, 0, 1],
        );
        for (i, o) in report.outcomes.iter().enumerate() {
            let solo = runner.run_trial(i);
            assert_eq!(o.master_seed, solo.master_seed);
            assert_eq!(o.totals, solo.totals);
        }
        assert!(!runner.trial_trace_json(2).is_empty());
    }

    #[test]
    fn fully_jammed_scenario_reports_dash_rows() {
        // Regression: a scenario that yields zero acks/deliveries used to
        // feed empty samples toward `Summary::of`; the stats table now
        // renders such metrics as `—` rows instead.
        let s = small_lb("silent")
            .jam_nodes(vec![0, 1, 2, 3], 1, 30)
            .stop(StopSpec::Rounds { rounds: 30 })
            .build()
            .unwrap();
        let report = ScenarioRunner::new(s).unwrap().run();
        assert!(report.outcomes.iter().all(|o| o.acks == 0 && o.recvs == 0));
        let tables = report.tables();
        let stats = &tables[1];
        let row = |name: &str| {
            stats
                .rows
                .iter()
                .find(|r| r[0] == name)
                .unwrap_or_else(|| panic!("missing {name} row"))
                .clone()
        };
        assert_eq!(row("first ack round")[1], "—");
        assert_eq!(row("first delivery round")[1], "—");
        // Count metrics are present with real zeros, not dashes.
        assert_eq!(row("acks")[1], "0");
    }

    #[test]
    fn seed_scenario_measures_owners() {
        let s = ScenarioBuilder::new(
            "seed",
            TopologySpec::Clique { n: 6, r: 1.0 },
            WorkloadSpec::SeedAgreement {
                epsilon1: 0.25,
                seed_bits: 16,
            },
        )
        .trials(2)
        .build()
        .unwrap();
        let report = ScenarioRunner::new(s).unwrap().run();
        for o in &report.outcomes {
            assert!(o.spec_ok);
            assert!(o.max_owners.is_some());
            assert!(o.recvs > 0, "decides are delivered");
        }
    }

    #[test]
    fn first_delivery_stop_censors_at_horizon() {
        // No extra edges and no reliable edges to node 2 of a sandwich
        // would be complex; instead watch a node that *does* get served
        // and check the round is recorded.
        let s = small_lb("t")
            .stop(StopSpec::FirstDeliveryAt {
                node: 1,
                horizon_rounds: 4096,
            })
            .build()
            .unwrap();
        let o = ScenarioRunner::new(s).unwrap().run_trial(0);
        assert!(o.stop_satisfied);
        assert_eq!(o.first_delivery.map(|r| r == o.rounds), Some(true));
    }

    #[test]
    fn faulted_scenario_records_fault_stats() {
        let s = small_lb("faulty")
            .adversary(AdversarySpec::AllExtraEdges)
            .crash(3, 1, None)
            .jam_nodes(vec![2], 1, 20)
            .drop_burst(1, 20, 1.0)
            .stop(StopSpec::Rounds { rounds: 20 })
            .build()
            .unwrap();
        let o = ScenarioRunner::new(s).unwrap().run_trial(0);
        assert_eq!(o.totals.down, 20);
        assert!(o.totals.jammed > 0);
        assert_eq!(
            o.totals.deliveries, 0,
            "p = 1 drop burst suppresses every delivery"
        );
    }

    #[test]
    fn sender_churn_across_phase_structure_never_panics() {
        // Regression: a sender crashed over the seed-agreement preamble
        // used to panic the trial three ways — recovering mid-preamble
        // (`SeedAlg decides within T_s rounds`), crashing from round 1
        // (no preamble instance), and a crash window spanning both the
        // phase boundary and the adoption round (stale partially
        // consumed phase seed reaching the exhaustion assert). Sweep
        // grids put such windows everywhere, so every alignment of a
        // crash window against the phase structure must degrade into
        // measurable behavior instead of aborting the campaign.
        for (down_from, up_at) in [
            (1, Some(100)),
            (50, Some(200)),
            (70, Some(140)),
            (130, Some(260)),
            (100, Some(400)),
            (40, None),
        ] {
            let s = ScenarioBuilder::new(
                "sender-churn",
                TopologySpec::Clique { n: 4, r: 1.0 },
                WorkloadSpec::LocalBroadcast {
                    epsilon1: 0.25,
                    senders: vec![0],
                    messages_per_sender: 1,
                },
            )
            .crash(0, down_from, up_at)
            .stop(StopSpec::Rounds { rounds: 600 })
            .trials(2)
            .build()
            .unwrap();
            let report = ScenarioRunner::new(s).unwrap().run();
            for o in &report.outcomes {
                assert_eq!(o.rounds, 600, "window [{down_from}, {up_at:?}]");
            }
        }
    }

    #[test]
    fn sharded_runs_match_serial_outcomes_and_traces() {
        // The shard count is a wall-clock knob only: every outcome field
        // and the full trace JSON must be byte-identical to the serial
        // run, under faults and a randomized adversary alike.
        let scenario = || {
            small_lb("sharded")
                .adversary(AdversarySpec::Bernoulli { p: 0.6 })
                .drop_burst(3, 20, 0.4)
                .crash(2, 5, Some(15))
                .stop(StopSpec::Rounds { rounds: 40 })
                .trials(3)
                .build()
                .unwrap()
        };
        let serial = ScenarioRunner::new(scenario()).unwrap();
        let base = serial.run();
        for shards in [2, 8] {
            let sharded = ScenarioRunner::new(scenario()).unwrap().shards(shards);
            let report = sharded.run();
            for (a, b) in base.outcomes.iter().zip(&report.outcomes) {
                assert_eq!(a.master_seed, b.master_seed, "{shards} shards");
                assert_eq!(a.rounds, b.rounds, "{shards} shards");
                assert_eq!(a.acks, b.acks, "{shards} shards");
                assert_eq!(a.recvs, b.recvs, "{shards} shards");
                assert_eq!(a.totals, b.totals, "{shards} shards");
                assert_eq!(a.first_ack, b.first_ack, "{shards} shards");
                assert_eq!(a.first_delivery, b.first_delivery, "{shards} shards");
            }
            assert_eq!(
                serial.trial_trace_json(0),
                sharded.trial_trace_json(0),
                "{shards} shards: trial-0 trace must be byte-identical"
            );
        }
    }

    #[test]
    fn instrumented_trial_matches_plain_and_reports_metrics() {
        // Telemetry observes only: the instrumented outcome equals the
        // plain one field-for-field, the trace replay is untouched, and
        // the returned metrics describe the same execution.
        let runner = ScenarioRunner::new(
            small_lb("probe")
                .drop_burst(5, 30, 0.5)
                .stop(StopSpec::Rounds { rounds: 60 })
                .build()
                .unwrap(),
        )
        .unwrap();
        let plain = runner.run_trial(0);
        let trace = runner.trial_trace_json(0);
        let (instrumented, metrics) = runner.run_trial_instrumented(0);
        assert_eq!(plain.rounds, instrumented.rounds);
        assert_eq!(plain.acks, instrumented.acks);
        assert_eq!(plain.recvs, instrumented.recvs);
        assert_eq!(plain.totals, instrumented.totals);
        assert_eq!(plain.first_ack, instrumented.first_ack);
        assert_eq!(trace, runner.trial_trace_json(0));
        let m = metrics.expect("engine workload exposes metrics");
        assert_eq!(m.rounds, plain.rounds);
        assert_eq!(m.round_ns.count(), m.rounds);
        assert_eq!(m.transmissions, plain.totals.transmitters as u64);
        assert_eq!(m.deliveries, plain.totals.deliveries as u64);
        assert!(m.busy_ns() > 0);
    }

    #[test]
    fn amac_instrumented_trial_reports_no_engine_metrics() {
        let s = ScenarioBuilder::new(
            "flood",
            TopologySpec::Line {
                n: 3,
                spacing: 0.9,
                r: 1.0,
            },
            WorkloadSpec::AmacFlood {
                epsilon1: 0.25,
                sources: vec![0],
            },
        )
        .adversary(AdversarySpec::Bernoulli { p: 0.5 })
        .trials(1)
        .build()
        .unwrap();
        let runner = ScenarioRunner::new(s).unwrap();
        let (outcome, metrics) = runner.run_trial_instrumented(0);
        assert!(metrics.is_none(), "the MAC adapter hides the engine");
        assert_eq!(outcome.rounds, runner.run_trial(0).rounds);
    }

    #[test]
    fn amac_flood_scenario_completes() {
        let s = ScenarioBuilder::new(
            "flood",
            TopologySpec::Line {
                n: 3,
                spacing: 0.9,
                r: 1.0,
            },
            WorkloadSpec::AmacFlood {
                epsilon1: 0.25,
                sources: vec![0],
            },
        )
        .adversary(AdversarySpec::Bernoulli { p: 0.5 })
        .trials(2)
        .base_seed(60_000)
        .build()
        .unwrap();
        let report = ScenarioRunner::new(s).unwrap().run();
        assert!(
            report.outcomes.iter().any(|o| o.stop_satisfied),
            "flood completes in at least one trial"
        );
    }

    #[test]
    fn mock_net_scenario_runs_and_reports() {
        // The transport field swaps the substrate without touching the
        // workload: an LB broadcast over the mock network still acks, and
        // faults (a drop burst here) compose with the channel model.
        let s = small_lb("mock")
            .drop_burst(5, 20, 0.25)
            .transport(TransportSpec::MockNet {
                delay_rounds: 1,
                loss_p: 0.1,
                partitions: vec![],
            })
            .build()
            .unwrap();
        let report = ScenarioRunner::new(s).unwrap().run();
        assert_eq!(report.outcomes.len(), 2);
        assert!(
            report.outcomes.iter().all(|o| o.acks >= 1),
            "LB acks deterministically even over a delayed, lossy channel"
        );
    }

    #[test]
    fn mock_net_trials_replay_deterministically() {
        let s = small_lb("mock-replay")
            .transport(TransportSpec::MockNet {
                delay_rounds: 2,
                loss_p: 0.3,
                partitions: vec![],
            })
            .stop(StopSpec::Rounds { rounds: 60 })
            .trials(3)
            .build()
            .unwrap();
        let runner = ScenarioRunner::new(s).unwrap();
        let report = runner.run();
        for (i, o) in report.outcomes.iter().enumerate() {
            let solo = runner.run_trial(i);
            assert_eq!(o.totals, solo.totals);
            assert_eq!(o.acks, solo.acks);
            assert_eq!(o.first_ack, solo.first_ack);
        }
        assert_eq!(runner.trial_trace_json(0), runner.trial_trace_json(0));
    }

    #[test]
    fn synchronous_mock_net_matches_the_simulator() {
        // The keystone at the scenario layer: delay 0 / no loss / no
        // partitions over the full link set is the `G' = Gₜ` channel, so
        // outcomes and traces byte-compare equal across substrates.
        let build = |t: TransportSpec| {
            small_lb("xport")
                .adversary(AdversarySpec::AllExtraEdges)
                .transport(t)
                .stop(StopSpec::Rounds { rounds: 40 })
                .build()
                .unwrap()
        };
        let sim = ScenarioRunner::new(build(TransportSpec::Sim)).unwrap();
        let mock =
            ScenarioRunner::new(build(TransportSpec::mock_net_synchronous())).unwrap();
        let a = sim.run();
        let b = mock.run();
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.master_seed, y.master_seed);
            assert_eq!(x.rounds, y.rounds);
            assert_eq!(x.acks, y.acks);
            assert_eq!(x.recvs, y.recvs);
            assert_eq!(x.totals, y.totals);
            assert_eq!(x.first_ack, y.first_ack);
            assert_eq!(x.first_delivery, y.first_delivery);
        }
        assert_eq!(
            sim.trial_trace_json(0),
            mock.trial_trace_json(0),
            "trial-0 replay traces must be byte-identical across substrates"
        );
    }

    #[test]
    fn mock_net_rejects_per_round_adversaries() {
        let err = small_lb("bad")
            .adversary(AdversarySpec::Bernoulli { p: 0.5 })
            .transport(TransportSpec::mock_net_synchronous())
            .build()
            .unwrap_err();
        assert!(
            err.to_string().contains("static link set"),
            "got: {err}"
        );
    }
}
