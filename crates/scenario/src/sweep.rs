//! Parameter-sweep families: one base scenario expanded over a grid.
//!
//! The paper's headline claims are *curves*, not points — ack latency
//! vs. churn rate, throughput vs. loss-burst length. A [`SweepSpec`]
//! makes such a curve a single declarative value: one base
//! [`Scenario`] plus up to three named axes, each axis a list of
//! labelled [`OverrideSpec`] points. [`SweepSpec::expand`] validates
//! the family and produces the full cross-product of concrete
//! scenarios with deterministic derived names
//! (`churn@period=240,adv=0.5`), which feed the existing [`Campaign`]
//! job-flattening pool unchanged — a 5×3 grid parallelizes across all
//! points and trials at once.
//!
//! [`SweepReport`] pivots the campaign outcomes back into per-axis
//! curve tables (markdown and CSV), and the golden-metric gate applies
//! per expanded point: a sweep pins a small subset of its grid
//! ([`SweepSpec::pinned`]) whose blessed metrics `scenario sweep
//! --check` re-measures, so every checked-in curve is regression-gated
//! by the same machinery as single scenarios.
//!
//! The checked-in sweep registry ([`sweeps`]) realizes the ROADMAP
//! follow-ons: `churn-knee` (crash/recover-rate grid over the `churn`
//! base — the §4.2 preamble-amortization knee), `loss-grid`
//! (`drops.p` × burst length over `drop-burst`, `LBAlg` vs. the Decay
//! baseline), and `scale-curve` (node count up to 50k × link-inclusion
//! probability on a constant-density deployment — the scale-out
//! throughput curve the bucketed topology builder and sharded engine
//! make practical).

use crate::campaign::{Campaign, CampaignReport, MeasuredMetrics};
use crate::spec::{
    AdversarySpec, CrashSpec, DropSpec, JamSpec, RegionSpec, Scenario, ScenarioError, StopSpec,
    TopologySpec, WorkloadSpec, MAX_STOP_ROUNDS,
};
use analysis::report::markdown_report;
use analysis::table::{fnum, Table};
use serde::{Deserialize, Serialize};

fn invalid(msg: impl Into<String>) -> ScenarioError {
    ScenarioError::Invalid(msg.into())
}

/// Most points a single sweep may expand to — large enough for any
/// real curve family, small enough that a typo'd axis cannot request
/// an effectively unbounded campaign.
pub const MAX_SWEEP_POINTS: usize = 1024;

/// Most axes a sweep may have (derived names and pivot tables are
/// designed for at most a 3-dimensional grid).
pub const MAX_SWEEP_AXES: usize = 3;

// ---------------------------------------------------------------------------
// Overrides
// ---------------------------------------------------------------------------

/// One JSON-expressible modification of the base scenario. An axis
/// point applies a list of these in order; later overrides see the
/// effect of earlier ones (within a point, and across axes in axis
/// order).
///
/// Field-level overrides (`DropP`, `DropLen`, `AdversaryP`) **reject**
/// bases they cannot affect — a sweep that claims to vary the drop
/// probability of a plan with no drop bursts would silently sweep
/// nothing, exactly the failure mode the disc-region validation fix
/// closes for jam regions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OverrideSpec {
    /// Sets the Monte-Carlo trial count.
    Trials {
        /// New trial count (≥ 1; validated by scenario validation).
        trials: usize,
    },
    /// Sets the master seed of trial 0.
    BaseSeed {
        /// New base seed.
        base_seed: u64,
    },
    /// Replaces the topology family.
    Topology {
        /// New topology.
        topology: TopologySpec,
    },
    /// Replaces the adversary schedule.
    Adversary {
        /// New adversary.
        adversary: AdversarySpec,
    },
    /// Replaces the workload.
    Workload {
        /// New workload.
        workload: WorkloadSpec,
    },
    /// Replaces the stop condition.
    Stop {
        /// New stop condition.
        stop: StopSpec,
    },
    /// Replaces the crash/recover list.
    Crashes {
        /// New crash events.
        crashes: Vec<CrashSpec>,
    },
    /// Replaces the jamming-window list.
    Jams {
        /// New jam windows.
        jams: Vec<JamSpec>,
    },
    /// Replaces the drop-burst list.
    Drops {
        /// New drop bursts.
        drops: Vec<DropSpec>,
    },
    /// Sets the drop probability of **every** drop burst in the plan.
    /// Rejected when the plan has no drop bursts.
    DropP {
        /// New per-reception drop probability.
        p: f64,
    },
    /// Sets the length of **every** drop burst in the plan
    /// (`to = from + len − 1`). Rejected when the plan has no drop
    /// bursts.
    DropLen {
        /// New burst length in rounds (≥ 1).
        len: u64,
    },
    /// Sets the inclusion probability of a randomized adversary
    /// (`Bernoulli` or `EpochRandom`). Rejected for any other base
    /// adversary — the sweep would otherwise claim an adversary axis
    /// while varying nothing.
    AdversaryP {
        /// New per-round (or per-epoch) inclusion probability.
        p: f64,
    },
    /// Rescales the topology's node count: sets `n` on a base whose
    /// family takes an explicit node-count parameter (`Line`, `Ring`,
    /// `Clique`, `RandomGeometric`, `ConstantDensity`). Rejected for
    /// composite families (`Grid`, `GreySandwich`, …) whose size is the
    /// product or sum of several fields — a "size" axis that silently
    /// left them unscaled is the same no-op failure mode the field
    /// overrides above reject.
    Size {
        /// New node count (≥ 1; validated by scenario validation).
        n: usize,
    },
    /// Replaces the crash list with **periodic churn**: each node in
    /// `nodes` is down for `down` rounds at the start of every
    /// `period`-round cycle, beginning at round `start` and repeating
    /// while the cycle starts at or before `until`. `down: 0` clears
    /// the crash list (the no-churn grid point).
    Churn {
        /// The power-cycling vertices.
        nodes: Vec<usize>,
        /// Cycle length in rounds (≥ 1).
        period: u64,
        /// Down rounds per cycle (≤ `period`; 0 = no churn).
        down: u64,
        /// First round (1-based) of the first down window.
        start: u64,
        /// Last round a down window may start at.
        until: u64,
        /// Recovery semantics of every generated window: `false` (the
        /// default) is power-save churn, `true` a volatile-memory
        /// crash-restart (see [`CrashSpec::restart`]) — so a sweep can
        /// put the two recovery models side by side as axis points.
        #[serde(default)]
        restart: bool,
    },
    /// Sets the geometry-epoch length of a mobility base. Rejected
    /// when the base has no [`MobilitySpec`](crate::spec::MobilitySpec)
    /// — an epoch axis over a static scenario would sweep nothing.
    EpochRounds {
        /// New epoch length in rounds (≥ 1; validated by scenario
        /// validation against the horizon and the epoch cap).
        epoch_rounds: u64,
    },
    /// Sets the random-waypoint node speed of a mobility base (arena
    /// units per round; 0 parks the deployment while keeping the
    /// epoch machinery live). Rejected when the base has no mobility.
    MobilitySpeed {
        /// New node speed (≥ 0; validated by scenario validation).
        speed: f64,
    },
}

impl OverrideSpec {
    /// Applies this override to `s`.
    fn apply(&self, s: &mut Scenario) -> Result<(), ScenarioError> {
        match self {
            OverrideSpec::Trials { trials } => s.trials = *trials,
            OverrideSpec::BaseSeed { base_seed } => s.base_seed = *base_seed,
            OverrideSpec::Topology { topology } => s.topology = topology.clone(),
            OverrideSpec::Adversary { adversary } => s.adversary = adversary.clone(),
            OverrideSpec::Workload { workload } => s.workload = workload.clone(),
            OverrideSpec::Stop { stop } => s.stop = stop.clone(),
            OverrideSpec::Crashes { crashes } => s.faults.crashes = crashes.clone(),
            OverrideSpec::Jams { jams } => s.faults.jams = jams.clone(),
            OverrideSpec::Drops { drops } => s.faults.drops = drops.clone(),
            OverrideSpec::DropP { p } => {
                if s.faults.drops.is_empty() {
                    return Err(invalid(
                        "sweep: DropP override on a base with no drop bursts sweeps nothing",
                    ));
                }
                for d in &mut s.faults.drops {
                    d.p = *p;
                }
            }
            OverrideSpec::DropLen { len } => {
                if s.faults.drops.is_empty() {
                    return Err(invalid(
                        "sweep: DropLen override on a base with no drop bursts sweeps nothing",
                    ));
                }
                if *len == 0 || *len > MAX_STOP_ROUNDS {
                    return Err(invalid(format!(
                        "sweep: drop-burst length must be in [1, {MAX_STOP_ROUNDS}], got {len}"
                    )));
                }
                for d in &mut s.faults.drops {
                    d.to = d.from.saturating_add(len - 1);
                }
            }
            OverrideSpec::AdversaryP { p } => match &mut s.adversary {
                AdversarySpec::Bernoulli { p: base } | AdversarySpec::EpochRandom { p: base, .. } => {
                    *base = *p;
                }
                other => {
                    return Err(invalid(format!(
                        "sweep: AdversaryP override needs a Bernoulli or EpochRandom base \
                         adversary, got {}",
                        other.name()
                    )));
                }
            },
            OverrideSpec::Size { n } => match &mut s.topology {
                TopologySpec::Line { n: base, .. }
                | TopologySpec::Ring { n: base, .. }
                | TopologySpec::Clique { n: base, .. }
                | TopologySpec::RandomGeometric { n: base, .. }
                | TopologySpec::ConstantDensity { n: base, .. } => *base = *n,
                _ => {
                    return Err(invalid(
                        "sweep: Size override needs a topology with an explicit node \
                         count (Line, Ring, Clique, RandomGeometric, ConstantDensity)",
                    ));
                }
            },
            OverrideSpec::Churn {
                nodes,
                period,
                down,
                start,
                until,
                restart,
            } => {
                if *period == 0 || *period > MAX_STOP_ROUNDS {
                    return Err(invalid(format!(
                        "sweep: churn period must be in [1, {MAX_STOP_ROUNDS}], got {period}"
                    )));
                }
                if down > period {
                    return Err(invalid(format!(
                        "sweep: churn down time {down} exceeds the period {period}"
                    )));
                }
                // `start > until` would generate an *empty* crash list
                // — a grid point claiming churn while injecting
                // nothing, the same no-op failure mode the field
                // overrides above reject.
                if *start == 0 || *start > *until || *until > MAX_STOP_ROUNDS {
                    return Err(invalid(format!(
                        "sweep: churn window must satisfy 1 <= start <= until \
                         <= {MAX_STOP_ROUNDS}, got [{start}, {until}]"
                    )));
                }
                if nodes.is_empty() {
                    return Err(invalid(
                        "sweep: churn needs >= 1 node (use down = 0 for a no-churn point)",
                    ));
                }
                let mut crashes = Vec::new();
                if *down > 0 {
                    for &node in nodes {
                        let mut t = *start;
                        while t <= *until {
                            crashes.push(CrashSpec {
                                node,
                                down_from: t,
                                up_at: Some(t + down),
                                restart: *restart,
                            });
                            t += period;
                        }
                    }
                }
                s.faults.crashes = crashes;
            }
            OverrideSpec::EpochRounds { epoch_rounds } => match &mut s.mobility {
                Some(m) => m.epoch_rounds = *epoch_rounds,
                None => {
                    return Err(invalid(
                        "sweep: EpochRounds override on a base without mobility sweeps \
                         nothing",
                    ));
                }
            },
            OverrideSpec::MobilitySpeed { speed } => match &mut s.mobility {
                Some(m) => m.speed = *speed,
                None => {
                    return Err(invalid(
                        "sweep: MobilitySpeed override on a base without mobility sweeps \
                         nothing",
                    ));
                }
            },
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Sweep spec
// ---------------------------------------------------------------------------

/// One labelled point on a sweep axis: the label names the point in
/// derived scenario names and curve tables; `set` is the override list
/// the point applies (empty = the base itself, useful for baseline
/// points such as an `alg=lb` arm).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Value label (`0.3`, `64`, `decay`, …); must be unique within
    /// the axis and use only `[A-Za-z0-9._+-]`.
    pub label: String,
    /// Overrides applied at this point, in order.
    pub set: Vec<OverrideSpec>,
}

/// A named sweep axis: an ordered list of points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepAxis {
    /// Axis name (`p`, `burst`, `period`, …); appears in derived
    /// scenario names (`<base>@<axis>=<label>,…`) and table headers.
    pub axis: String,
    /// The axis points, in curve order.
    pub points: Vec<SweepPoint>,
}

/// A declarative parameter-sweep family. See the module docs;
/// construct in code or load via [`SweepSpec::from_json`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Identifier (sweep-registry key / report caption).
    pub name: String,
    /// Human description of the curve the sweep draws.
    pub description: String,
    /// The base scenario every grid point starts from.
    pub base: Scenario,
    /// The named axes (1 to [`MAX_SWEEP_AXES`]); the grid is their
    /// cross-product, expanded row-major (first axis outermost).
    pub axes: Vec<SweepAxis>,
    /// Per-point trial override applied before any axis override
    /// (`None` = keep the base scenario's trial count).
    #[serde(default)]
    pub trials: Option<usize>,
    /// Derived names of the grid points the golden gate pins
    /// (`scenario sweep --check`/`--bless` run exactly this subset;
    /// empty = gate every point).
    #[serde(default)]
    pub pinned: Vec<String>,
}

/// Axis names and point labels must render safely into derived
/// scenario names (which become golden file names and CSV cells).
fn check_token(what: &str, token: &str) -> Result<(), ScenarioError> {
    if token.is_empty() {
        return Err(invalid(format!("sweep: {what} must be non-empty")));
    }
    if !token
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '+' | '-'))
    {
        return Err(invalid(format!(
            "sweep: {what} {token:?} may only use [A-Za-z0-9._+-]"
        )));
    }
    Ok(())
}

impl SweepSpec {
    /// Validates the family without materializing the grid.
    ///
    /// # Errors
    ///
    /// Returns the first constraint violation (see [`SweepSpec::expand`]).
    pub fn validate(&self) -> Result<(), ScenarioError> {
        self.expand().map(|_| ())
    }

    /// Serializes to pretty-printed JSON (the on-disk sweep format).
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("sweep specs always serialize");
        s.push('\n');
        s
    }

    /// Parses and validates a sweep spec from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Parse`] on malformed JSON and
    /// [`ScenarioError::Invalid`] on a well-formed but invalid sweep.
    pub fn from_json(json: &str) -> Result<Self, ScenarioError> {
        let spec: SweepSpec =
            serde_json::from_str(json).map_err(|e| ScenarioError::Parse(e.to_string()))?;
        spec.validate()?;
        Ok(spec)
    }

    fn validate_shape(&self) -> Result<(), ScenarioError> {
        if self.name.is_empty() {
            return Err(invalid("sweep: name must be non-empty"));
        }
        self.base.validate()?;
        if self.axes.is_empty() || self.axes.len() > MAX_SWEEP_AXES {
            return Err(invalid(format!(
                "sweep: needs 1 to {MAX_SWEEP_AXES} axes, got {}",
                self.axes.len()
            )));
        }
        for (i, axis) in self.axes.iter().enumerate() {
            check_token("axis name", &axis.axis)?;
            if self.axes[..i].iter().any(|a| a.axis == axis.axis) {
                return Err(invalid(format!("sweep: duplicate axis {:?}", axis.axis)));
            }
            if axis.points.is_empty() {
                return Err(invalid(format!("sweep: axis {:?} has no points", axis.axis)));
            }
            for (j, pt) in axis.points.iter().enumerate() {
                check_token(&format!("axis {:?} point label", axis.axis), &pt.label)?;
                if axis.points[..j].iter().any(|q| q.label == pt.label) {
                    return Err(invalid(format!(
                        "sweep: axis {:?} has duplicate label {:?}",
                        axis.axis, pt.label
                    )));
                }
            }
        }
        let total: usize = self.axes.iter().map(|a| a.points.len()).product();
        if total > MAX_SWEEP_POINTS {
            return Err(invalid(format!(
                "sweep: grid has {total} points, more than the {MAX_SWEEP_POINTS} cap"
            )));
        }
        Ok(())
    }

    /// Expands the cross-product into concrete, validated scenarios
    /// with deterministic derived names, row-major (first axis
    /// outermost). Expansion is a pure function of the spec: repeated
    /// calls yield identical grids, and permuting an axis's points
    /// permutes the grid without changing any derived scenario.
    ///
    /// # Errors
    ///
    /// Returns the first violation: a malformed shape (empty/duplicate
    /// axis or label, illegal characters, too many points), an
    /// override that cannot apply to the base (e.g. [`OverrideSpec::DropP`]
    /// with no drop bursts), an expanded scenario that fails
    /// [`Scenario::validate`], or a [`SweepSpec::pinned`] name that
    /// matches no grid point.
    pub fn expand(&self) -> Result<SweepGrid, ScenarioError> {
        self.validate_shape()?;
        let dims: Vec<usize> = self.axes.iter().map(|a| a.points.len()).collect();
        let total: usize = dims.iter().product();
        let mut points = Vec::with_capacity(total);
        let mut coords = vec![0usize; dims.len()];
        for _ in 0..total {
            let mut scenario = self.base.clone();
            if let Some(t) = self.trials {
                scenario.trials = t;
            }
            let mut parts = Vec::with_capacity(dims.len());
            for (ai, axis) in self.axes.iter().enumerate() {
                let pt = &axis.points[coords[ai]];
                parts.push(format!("{}={}", axis.axis, pt.label));
                for ov in &pt.set {
                    ov.apply(&mut scenario).map_err(|e| {
                        invalid(format!(
                            "sweep {}: point {}={}: {e}",
                            self.name, axis.axis, pt.label
                        ))
                    })?;
                }
            }
            let joined = parts.join(",");
            scenario.name = format!("{}@{}", self.base.name, joined);
            scenario.description =
                format!("{} (sweep {} point {joined})", self.base.description, self.name);
            scenario.validate().map_err(|e| {
                invalid(format!("sweep {}: point {joined}: {e}", self.name))
            })?;
            points.push(GridPoint {
                coords: coords.clone(),
                labels: coords
                    .iter()
                    .zip(&self.axes)
                    .map(|(&c, a)| a.points[c].label.clone())
                    .collect(),
                scenario,
            });
            // Row-major increment: last axis varies fastest.
            for ai in (0..dims.len()).rev() {
                coords[ai] += 1;
                if coords[ai] < dims[ai] {
                    break;
                }
                coords[ai] = 0;
            }
        }
        for (i, name) in self.pinned.iter().enumerate() {
            if !points.iter().any(|p| &p.scenario.name == name) {
                return Err(invalid(format!(
                    "sweep {}: pinned name {name:?} matches no grid point",
                    self.name
                )));
            }
            if self.pinned[..i].contains(name) {
                return Err(invalid(format!(
                    "sweep {}: duplicate pinned name {name:?}",
                    self.name
                )));
            }
        }
        Ok(SweepGrid {
            spec: self.clone(),
            points,
        })
    }
}

// ---------------------------------------------------------------------------
// Expanded grid
// ---------------------------------------------------------------------------

/// One expanded grid point: its per-axis coordinates and labels, and
/// the concrete validated scenario.
#[derive(Debug, Clone)]
pub struct GridPoint {
    /// Per-axis point index (row-major position in the grid).
    pub coords: Vec<usize>,
    /// Per-axis point label, in axis order.
    pub labels: Vec<String>,
    /// The concrete scenario (derived name, overrides applied).
    pub scenario: Scenario,
}

/// The materialized cross-product of a [`SweepSpec`].
#[derive(Debug, Clone)]
pub struct SweepGrid {
    spec: SweepSpec,
    points: Vec<GridPoint>,
}

impl SweepGrid {
    /// The spec this grid expanded from.
    pub fn spec(&self) -> &SweepSpec {
        &self.spec
    }

    /// The expanded points, row-major (first axis outermost).
    pub fn points(&self) -> &[GridPoint] {
        &self.points
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the grid is empty (never true for a validated spec).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The expanded scenarios, in grid order.
    pub fn scenarios(&self) -> Vec<Scenario> {
        self.points.iter().map(|p| p.scenario.clone()).collect()
    }

    /// The grid restricted to the spec's pinned subset (the whole grid
    /// when no names are pinned) — what `--check`/`--bless` run.
    pub fn pinned(&self) -> SweepGrid {
        if self.spec.pinned.is_empty() {
            return self.clone();
        }
        SweepGrid {
            spec: self.spec.clone(),
            points: self
                .points
                .iter()
                .filter(|p| self.spec.pinned.contains(&p.scenario.name))
                .cloned()
                .collect(),
        }
    }

    /// A campaign over this grid's scenarios: every *(point, trial)*
    /// pair flattens onto one worker pool, so the whole grid
    /// parallelizes at once.
    ///
    /// # Errors
    ///
    /// Propagates [`Campaign::new`] validation (cannot fail for a grid
    /// from [`SweepSpec::expand`]).
    pub fn campaign(&self) -> Result<Campaign, ScenarioError> {
        Campaign::new(self.scenarios())
    }
}

// ---------------------------------------------------------------------------
// Sweep report
// ---------------------------------------------------------------------------

/// Per-point measured summary metrics, pivoted from a campaign run.
struct SweepRow {
    labels: Vec<String>,
    scenario: String,
    trials: usize,
    ack_latency: Option<f64>,
    ack_trials: usize,
    delivery_latency: Option<f64>,
    delivery_trials: usize,
    /// First-ack round percentiles over observing trials (histogram
    /// extraction: exact below 256 rounds, deterministic).
    ack_p50: Option<u64>,
    ack_p95: Option<u64>,
    ack_p99: Option<u64>,
    /// Watched-delivery round percentiles over observing trials.
    delivery_p50: Option<u64>,
    delivery_p95: Option<u64>,
    delivery_p99: Option<u64>,
    acks: f64,
    deliveries: f64,
    spec_ok_rate: f64,
}

/// A metric extractor over one sweep row (curve pivots and charts).
type MetricGetter = fn(&SweepRow) -> Option<f64>;

/// Display rendering for an optional percentile: the round number, or
/// a dash when no trial observed the event.
fn pnum(v: Option<u64>) -> String {
    v.map_or("—".into(), |v| v.to_string())
}

/// CSV rendering for an optional percentile: empty cell when absent.
fn popt(v: Option<u64>) -> String {
    v.map(|v| v.to_string()).unwrap_or_default()
}

/// A sweep's outcome tables: the long-format grid table (the CSV
/// schema) and per-metric curve pivots (last axis across the columns).
pub struct SweepReport {
    name: String,
    description: String,
    axes: Vec<String>,
    /// Per-axis label lists, in axis order (drives pivot layout).
    axis_labels: Vec<Vec<String>>,
    rows: Vec<SweepRow>,
}

impl SweepReport {
    /// Pivots a campaign run back onto the grid. Points absent from
    /// the report (e.g. a pinned-subset run against the full grid)
    /// render as `—` cells in the pivots and are omitted from the
    /// long table.
    pub fn new(grid: &SweepGrid, report: &CampaignReport) -> Self {
        let spec = grid.spec();
        let rows = grid
            .points()
            .iter()
            .filter_map(|p| {
                let r = report
                    .reports
                    .iter()
                    .find(|r| r.scenario.name == p.scenario.name)?;
                let m = MeasuredMetrics::of(r);
                Some(SweepRow {
                    labels: p.labels.clone(),
                    scenario: p.scenario.name.clone(),
                    trials: r.outcomes.len(),
                    ack_latency: m.ack_latency,
                    ack_trials: m.ack_trials,
                    delivery_latency: m.delivery_latency,
                    delivery_trials: m.delivery_trials,
                    ack_p50: m.ack_p50,
                    ack_p95: m.ack_p95,
                    ack_p99: m.ack_p99,
                    delivery_p50: m.delivery_p50,
                    delivery_p95: m.delivery_p95,
                    delivery_p99: m.delivery_p99,
                    acks: m.acks,
                    deliveries: m.deliveries,
                    spec_ok_rate: m.spec_ok_rate,
                })
            })
            .collect();
        SweepReport {
            name: spec.name.clone(),
            description: spec.description.clone(),
            axes: spec.axes.iter().map(|a| a.axis.clone()).collect(),
            axis_labels: spec
                .axes
                .iter()
                .map(|a| a.points.iter().map(|p| p.label.clone()).collect())
                .collect(),
            rows,
        }
    }

    /// The long-format grid table: one row per measured point, one
    /// column per axis, then the summary metrics. `to_csv` of this
    /// table is the sweep CSV schema.
    pub fn long_table(&self) -> Table {
        let mut headers = vec!["point"];
        let axis_headers: Vec<&str> = self.axes.iter().map(String::as_str).collect();
        headers.extend(axis_headers);
        headers.extend([
            "trials",
            "spec_ok_rate",
            "acks",
            "deliveries",
            "ack_latency",
            "ack_trials",
            "delivery_latency",
            "delivery_trials",
            "ack_p50",
            "ack_p95",
            "ack_p99",
            "delivery_p50",
            "delivery_p95",
            "delivery_p99",
        ]);
        let mut t = Table::new(
            format!("{}-grid", self.name),
            format!("sweep {}: all measured grid points", self.name),
            self.description.clone(),
            headers,
        );
        for r in &self.rows {
            let mut row = vec![r.scenario.clone()];
            row.extend(r.labels.iter().cloned());
            row.extend([
                r.trials.to_string(),
                fnum(r.spec_ok_rate),
                fnum(r.acks),
                fnum(r.deliveries),
                r.ack_latency.map_or("—".into(), fnum),
                r.ack_trials.to_string(),
                r.delivery_latency.map_or("—".into(), fnum),
                r.delivery_trials.to_string(),
                pnum(r.ack_p50),
                pnum(r.ack_p95),
                pnum(r.ack_p99),
                pnum(r.delivery_p50),
                pnum(r.delivery_p95),
                pnum(r.delivery_p99),
            ]);
            t.push_row(row);
        }
        t
    }

    /// The CSV artifact: the [`SweepReport::long_table`] schema (same
    /// header, same row order), but with **full-precision** values
    /// (shortest round-trip `f64` formatting) and **empty cells** for
    /// unmeasured metrics. The rounded `fnum` rendering and `—` dashes
    /// are display conventions for the markdown and terminal tables
    /// only — a consumer fitting curves from the CSV needs the raw
    /// means, and an em-dash cell forces every column to be parsed as
    /// text.
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let opt = |v: Option<f64>| v.map(|v| v.to_string()).unwrap_or_default();
        let mut headers = vec!["point".to_string()];
        headers.extend(self.axes.iter().cloned());
        headers.extend(
            [
                "trials",
                "spec_ok_rate",
                "acks",
                "deliveries",
                "ack_latency",
                "ack_trials",
                "delivery_latency",
                "delivery_trials",
                "ack_p50",
                "ack_p95",
                "ack_p99",
                "delivery_p50",
                "delivery_p95",
                "delivery_p99",
            ]
            .map(String::from),
        );
        let mut out = headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(",");
        out.push('\n');
        for r in &self.rows {
            let mut row = vec![r.scenario.clone()];
            row.extend(r.labels.iter().cloned());
            row.extend([
                r.trials.to_string(),
                r.spec_ok_rate.to_string(),
                r.acks.to_string(),
                r.deliveries.to_string(),
                opt(r.ack_latency),
                r.ack_trials.to_string(),
                opt(r.delivery_latency),
                r.delivery_trials.to_string(),
                popt(r.ack_p50),
                popt(r.ack_p95),
                popt(r.ack_p99),
                popt(r.delivery_p50),
                popt(r.delivery_p95),
                popt(r.delivery_p99),
            ]);
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Looks up a measured metric by exact label coordinates.
    fn cell(&self, labels: &[String], metric: impl Fn(&SweepRow) -> Option<f64>) -> String {
        self.rows
            .iter()
            .find(|r| r.labels == labels)
            .and_then(&metric)
            .map_or("—".into(), fnum)
    }

    /// The per-metric curve getters, in pivot/chart order.
    fn metrics() -> [(&'static str, MetricGetter); 5] {
        [
            ("ack_latency", |r| r.ack_latency),
            ("delivery_latency", |r| r.delivery_latency),
            ("acks", |r| Some(r.acks)),
            ("deliveries", |r| Some(r.deliveries)),
            ("spec_ok_rate", |r| Some(r.spec_ok_rate)),
        ]
    }

    /// Every combination of leading-axis labels, row-major; one empty
    /// combination when there are no leading axes.
    fn lead_combos(&self) -> Vec<Vec<String>> {
        let mut combos: Vec<Vec<String>> = vec![Vec::new()];
        for labels in &self.axis_labels[..self.axes.len() - 1] {
            combos = combos
                .iter()
                .flat_map(|combo| {
                    labels.iter().map(move |l| {
                        let mut c = combo.clone();
                        c.push(l.clone());
                        c
                    })
                })
                .collect();
        }
        combos
    }

    /// Per-metric curve pivots: the **last axis runs across the
    /// columns**, every combination of the leading axes is a row. For
    /// a 1-axis sweep the long table already is the curve, so this
    /// returns one single-row pivot per metric.
    pub fn curve_tables(&self) -> Vec<Table> {
        let metrics = Self::metrics();
        let (lead_axes, col_axis) = self.axes.split_at(self.axes.len() - 1);
        let col_labels = &self.axis_labels[self.axes.len() - 1];
        let lead_combos = self.lead_combos();
        metrics
            .iter()
            .map(|(metric, get)| {
                let mut headers: Vec<&str> = lead_axes.iter().map(|a| a.as_str()).collect();
                if headers.is_empty() {
                    headers.push("sweep");
                }
                let col_headers: Vec<String> = col_labels
                    .iter()
                    .map(|l| format!("{}={l}", col_axis[0]))
                    .collect();
                headers.extend(col_headers.iter().map(String::as_str));
                let mut t = Table::new(
                    format!("{}-{metric}", self.name),
                    format!("sweep {}: {metric} curve", self.name),
                    format!("{metric} per grid point; columns sweep the {} axis", col_axis[0]),
                    headers,
                );
                for combo in &lead_combos {
                    let mut row: Vec<String> = if combo.is_empty() {
                        vec![self.name.clone()]
                    } else {
                        combo.clone()
                    };
                    for col in col_labels {
                        let mut labels = combo.clone();
                        labels.push(col.clone());
                        row.push(self.cell(&labels, get));
                    }
                    t.push_row(row);
                }
                t
            })
            .collect()
    }

    /// Renders the sweep as one markdown document: the grid table,
    /// then the curve pivots. Byte-identical across runs and thread
    /// counts.
    pub fn to_markdown(&self) -> String {
        let sections = vec![
            ("Grid".to_string(), vec![self.long_table()]),
            ("Curves".to_string(), self.curve_tables()),
        ];
        markdown_report(
            &format!("Sweep report: {}", self.name),
            &format!(
                "{} — {} measured point(s), axes: {}.",
                self.description,
                self.rows.len(),
                self.axes.join(" × "),
            ),
            &sections,
        )
    }

    /// ASCII line charts of the curve pivots (the `--plot` rendering):
    /// one chart per metric, the last axis across the x positions, one
    /// lettered series per leading-axis combination, linear
    /// interpolation dots between measured points. Pure ASCII and
    /// byte-identical across runs and thread counts, like every other
    /// rendering. Metrics with no measured value are skipped.
    pub fn ascii_charts(&self) -> String {
        const WIDTH: usize = 56;
        const HEIGHT: usize = 12;
        let (lead_axes, col_axis) = self.axes.split_at(self.axes.len() - 1);
        let col_labels = &self.axis_labels[self.axes.len() - 1];
        let combos = self.lead_combos();
        // x position of each column, spread across the canvas.
        let xpos: Vec<usize> = (0..col_labels.len())
            .map(|i| {
                if col_labels.len() == 1 {
                    0
                } else {
                    i * (WIDTH - 1) / (col_labels.len() - 1)
                }
            })
            .collect();
        let mut out = String::new();
        for (metric, get) in Self::metrics() {
            // One series per leading combo: the metric over the columns.
            let series: Vec<Vec<Option<f64>>> = combos
                .iter()
                .map(|combo| {
                    col_labels
                        .iter()
                        .map(|col| {
                            let mut labels = combo.clone();
                            labels.push(col.clone());
                            self.rows.iter().find(|r| r.labels == labels).and_then(get)
                        })
                        .collect()
                })
                .collect();
            let values: Vec<f64> = series.iter().flatten().filter_map(|v| *v).collect();
            let Some(lo) = values.iter().copied().reduce(f64::min) else {
                continue; // nothing measured for this metric
            };
            let hi = values.iter().copied().reduce(f64::max).expect("non-empty");
            // A flat curve still renders: pad the range around it.
            let (lo, hi) = if lo == hi { (lo - 1.0, hi + 1.0) } else { (lo, hi) };
            let y_of = |v: f64| {
                let t = (v - lo) / (hi - lo);
                HEIGHT - 1 - ((t * (HEIGHT - 1) as f64).round() as usize).min(HEIGHT - 1)
            };
            let mut canvas = vec![[' '; WIDTH]; HEIGHT];
            for (si, points) in series.iter().enumerate() {
                let symbol = (b'a' + (si % 26) as u8) as char;
                // Interpolation dots between consecutive measured points.
                let measured: Vec<(usize, f64)> = points
                    .iter()
                    .enumerate()
                    .filter_map(|(i, v)| v.map(|v| (i, v)))
                    .collect();
                for w in measured.windows(2) {
                    let ((i0, v0), (i1, v1)) = (w[0], w[1]);
                    // `canvas[y][x]` with y a function of x: not a
                    // row-slice iteration.
                    #[allow(clippy::needless_range_loop)]
                    for x in xpos[i0]..=xpos[i1] {
                        let t = if xpos[i1] == xpos[i0] {
                            0.0
                        } else {
                            (x - xpos[i0]) as f64 / (xpos[i1] - xpos[i0]) as f64
                        };
                        let y = y_of(v0 + t * (v1 - v0));
                        if canvas[y][x] == ' ' {
                            canvas[y][x] = '.';
                        }
                    }
                }
                for (i, v) in measured {
                    let cell = &mut canvas[y_of(v)][xpos[i]];
                    // Overlapping series points render as '*'.
                    *cell = match *cell {
                        ' ' | '.' => symbol,
                        c if c == symbol => symbol,
                        _ => '*',
                    };
                }
            }
            let lo_label = fnum(lo);
            let hi_label = fnum(hi);
            let margin = lo_label.len().max(hi_label.len());
            out.push_str(&format!("### {metric}\n\n"));
            for (y, row) in canvas.iter().enumerate() {
                let label = match y {
                    0 => hi_label.clone(),
                    y if y == HEIGHT - 1 => lo_label.clone(),
                    _ => String::new(),
                };
                let line: String = row.iter().collect();
                out.push_str(&format!("{label:>margin$} |{}\n", line.trim_end()));
            }
            out.push_str(&format!("{:>margin$} +{}\n", "", "-".repeat(WIDTH)));
            let first = format!("{}={}", col_axis[0], col_labels[0]);
            let last = format!(
                "{}={}",
                col_axis[0],
                col_labels.last().expect("axes have points")
            );
            let gap = (WIDTH + 1).saturating_sub(first.len() + last.len());
            out.push_str(&format!(
                "{:>margin$}  {first}{}{last}\n",
                "",
                " ".repeat(gap)
            ));
            if !lead_axes.is_empty() {
                for (si, combo) in combos.iter().enumerate() {
                    let symbol = (b'a' + (si % 26) as u8) as char;
                    let name: Vec<String> = lead_axes
                        .iter()
                        .zip(combo)
                        .map(|(a, l)| format!("{a}={l}"))
                        .collect();
                    out.push_str(&format!(
                        "{:>margin$}  {symbol} = {}\n",
                        "",
                        name.join(",")
                    ));
                }
            }
            out.push('\n');
        }
        if out.is_empty() {
            out.push_str("(no measured points to plot)\n");
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Sweep registry
// ---------------------------------------------------------------------------

/// All registered sweep families, realizing the ROADMAP follow-ons.
pub fn sweeps() -> Vec<SweepSpec> {
    vec![churn_knee(), loss_grid(), mobility_knee(), scale_curve()]
}

/// The registered sweep names, in registry order.
pub fn sweep_names() -> Vec<String> {
    sweeps().into_iter().map(|s| s.name).collect()
}

/// Looks up a sweep by name (case-insensitive).
pub fn find_sweep(name: &str) -> Option<SweepSpec> {
    sweeps()
        .into_iter()
        .find(|s| s.name.eq_ignore_ascii_case(name))
}

/// The §4.2 churn knee: a crash/recover-rate grid over the `churn`
/// base. The base is re-aimed at ack latency — a single sender (node
/// 0), one payload, and a fixed round horizon past `t_ack` — then the
/// sender plus three interior nodes power-cycle with a fixed 30-round
/// outage at periods from "off" down to 120 rounds (duty 0 % → 25 %),
/// crossed with the Bernoulli link-inclusion probability. The sender's
/// ack slips one phase for every phase end it spends down, so ack
/// latency as a function of the churn period draws the knee where the
/// per-phase (preamble-amortized) schedule stops absorbing restarts.
fn churn_knee() -> SweepSpec {
    let mut base = crate::registry::find("churn").expect("churn is registered");
    // One sender, one payload: first-ack latency exists and belongs to
    // the churned sender. The fixed horizon (36 phases of 126 rounds)
    // clears the nominal t_ack (24 phases) with room for churn delay.
    base.workload = WorkloadSpec::LocalBroadcast {
        epsilon1: 0.25,
        senders: vec![0],
        messages_per_sender: 1,
    };
    base.stop = StopSpec::Rounds { rounds: 4_536 };
    let churn = |period: u64, down: u64| OverrideSpec::Churn {
        nodes: vec![0, 6, 9, 12],
        period,
        down,
        start: 40,
        until: 4_536,
        restart: false,
    };
    let point = |label: &str, set: Vec<OverrideSpec>| SweepPoint {
        label: label.into(),
        set,
    };
    SweepSpec {
        name: "churn-knee".into(),
        description: "ack latency vs. crash/recover rate on the churn base: the sender \
                      and three interior grid nodes power-cycle with 30-round outages \
                      at the given period (off = no churn), across link-inclusion \
                      probabilities"
            .into(),
        base,
        axes: vec![
            SweepAxis {
                axis: "period".into(),
                points: vec![
                    point("off", vec![churn(960, 0)]),
                    point("480", vec![churn(480, 30)]),
                    point("240", vec![churn(240, 30)]),
                    point("120", vec![churn(120, 30)]),
                ],
            },
            SweepAxis {
                axis: "adv".into(),
                points: vec![
                    point("0.25", vec![OverrideSpec::AdversaryP { p: 0.25 }]),
                    point("0.5", vec![OverrideSpec::AdversaryP { p: 0.5 }]),
                    point("0.9", vec![OverrideSpec::AdversaryP { p: 0.9 }]),
                ],
            },
        ],
        trials: Some(2),
        pinned: vec![
            "churn@period=off,adv=0.5".into(),
            "churn@period=240,adv=0.5".into(),
            "churn@period=120,adv=0.5".into(),
        ],
    }
}

/// Loss-burst robustness curves: `drops.p` × burst length over the
/// `drop-burst` base, `LBAlg` vs. the Decay baseline under identical
/// bursts — the delivery-latency inflation table. `LBAlg` ack timing
/// is a fixed schedule and a clique has seven parallel listeners, so
/// the quantity a loss burst honestly inflates is a **watched single
/// listener's** first-delivery round: each point stops at node 1's
/// first `recv` (censored at 1024 rounds), and the curve shows the
/// geometric retry delay plateauing at the burst end.
fn loss_grid() -> SweepSpec {
    let mut base = crate::registry::find("drop-burst").expect("drop-burst is registered");
    // One payload, and a burst from round 1 so it bites both arms'
    // first deliveries (the Decay baseline delivers within a few
    // rounds on a clique; the registry entry's round-30 burst would
    // never touch it). The axis points override the burst probability
    // and length at every grid point.
    base.workload = WorkloadSpec::LocalBroadcast {
        epsilon1: 0.25,
        senders: vec![0],
        messages_per_sender: 1,
    };
    base.stop = StopSpec::FirstDeliveryAt {
        node: 1,
        horizon_rounds: 1_024,
    };
    base.faults.drops = vec![DropSpec {
        from: 1,
        to: 61,
        p: 0.5,
    }];
    let point = |label: &str, set: Vec<OverrideSpec>| SweepPoint {
        label: label.into(),
        set,
    };
    SweepSpec {
        name: "loss-grid".into(),
        description: "loss-burst robustness: drop probability × burst length (from \
                      round 1) on the drop-burst base, LBAlg vs. the Decay baseline \
                      under identical bursts; each point measures the watched \
                      listener's first-delivery round"
            .into(),
        base,
        axes: vec![
            SweepAxis {
                axis: "p".into(),
                points: vec![
                    point("0.5", vec![OverrideSpec::DropP { p: 0.5 }]),
                    point("0.9", vec![OverrideSpec::DropP { p: 0.9 }]),
                    point("0.99", vec![OverrideSpec::DropP { p: 0.99 }]),
                ],
            },
            SweepAxis {
                axis: "burst".into(),
                points: vec![
                    point("16", vec![OverrideSpec::DropLen { len: 16 }]),
                    point("61", vec![OverrideSpec::DropLen { len: 61 }]),
                    point("128", vec![OverrideSpec::DropLen { len: 128 }]),
                ],
            },
            SweepAxis {
                axis: "alg".into(),
                points: vec![
                    point("lb", vec![]),
                    point(
                        "decay",
                        vec![OverrideSpec::Workload {
                            workload: WorkloadSpec::Decay { senders: vec![0] },
                        }],
                    ),
                ],
            },
        ],
        trials: None,
        pinned: vec![
            "drop-burst@p=0.5,burst=16,alg=lb".into(),
            "drop-burst@p=0.9,burst=61,alg=lb".into(),
            "drop-burst@p=0.9,burst=61,alg=decay".into(),
            "drop-burst@p=0.99,burst=128,alg=lb".into(),
        ],
    }
}

/// The dynamic-geometry knee: delivery latency vs. **geometry-epoch
/// length** on the `mobility` base. The base is re-aimed at a watched
/// listener: a streaming sender, a whole-arena jam disc that sweeps
/// rightward and progressively uncovers the deployment, and a
/// `FirstDeliveryAt` stop on an interior node. The runner re-resolves
/// the disc's node membership only at epoch boundaries, so the watched
/// node stays silenced until the **first epoch opening after the disc
/// has physically left it** — delivery latency quantizes up to the
/// epoch grid, and the curve rises monotonically with the epoch
/// length. The speed axis puts the parked deployment (`0`, the pinned
/// monotone curve) next to drifting ones: waypoint motion perturbs
/// *which* round the disc clears each node but not the quantization
/// story.
fn mobility_knee() -> SweepSpec {
    let mut base = crate::registry::find("mobility").expect("mobility is registered");
    base.workload = WorkloadSpec::LocalBroadcast {
        epsilon1: 0.25,
        senders: vec![0],
        messages_per_sender: 1_000,
    };
    base.stop = StopSpec::FirstDeliveryAt {
        node: 17,
        horizon_rounds: 1_200,
    };
    // One disc over the whole arena, drifting right: every node starts
    // jammed and is physically uncovered once the center has moved ~6
    // units past it. Node 17 is a reliable G-neighbor of the sender in
    // the parked seed-41 embedding, and at this drift speed its
    // clearance round (~501) quantizes to a *distinct* epoch boundary
    // for every swept epoch length: 541 / 601 / 721 / 961.
    base.faults.jams = vec![JamSpec {
        region: RegionSpec::Disc {
            x: 2.0,
            y: 2.0,
            radius: 6.0,
        },
        from: 1,
        to: 1_200,
        vx: 0.011,
        vy: 0.0,
    }];
    let epoch = |label: &str, rounds: u64| SweepPoint {
        label: label.into(),
        set: vec![OverrideSpec::EpochRounds {
            epoch_rounds: rounds,
        }],
    };
    let speed = |label: &str, v: f64| SweepPoint {
        label: label.into(),
        set: vec![OverrideSpec::MobilitySpeed { speed: v }],
    };
    SweepSpec {
        name: "mobility-knee".into(),
        description: "delivery latency vs. geometry-epoch length on the mobility base: \
                      a whole-arena jam disc sweeps rightward while the watched \
                      listener's unjam round quantizes up to the next epoch boundary, \
                      across random-waypoint node speeds (0 = parked deployment)"
            .into(),
        base,
        axes: vec![
            SweepAxis {
                axis: "epoch".into(),
                points: vec![
                    epoch("60", 60),
                    epoch("120", 120),
                    epoch("240", 240),
                    epoch("480", 480),
                ],
            },
            SweepAxis {
                axis: "speed".into(),
                points: vec![
                    speed("0", 0.0),
                    speed("0.002", 0.002),
                    speed("0.01", 0.01),
                ],
            },
        ],
        trials: Some(2),
        pinned: vec![
            "mobility@epoch=60,speed=0".into(),
            "mobility@epoch=120,speed=0".into(),
            "mobility@epoch=240,speed=0".into(),
            "mobility@epoch=480,speed=0".into(),
        ],
    }
}

/// The scale-out curve: node count × link-inclusion probability over
/// the `e9` constant-density deployment, re-aimed at wall-clock scale.
/// Constant density keeps Δ (and so every per-neighborhood quantity)
/// flat as `n` grows — the honest base for a scale curve, because each
/// point's cost is linear in `n` while the measured local behavior
/// stays comparable across the axis. The workload is the Decay flood
/// with a short fixed horizon: the `LBAlg` preamble runs thousands of
/// rounds before the first ack, which would turn the 50k-node points
/// into minutes while measuring the same locality story. Largest point:
/// 50,000 nodes — the grid the bucketed RGG builder and sharded
/// reception engine exist to make routine.
fn scale_curve() -> SweepSpec {
    let mut base = crate::registry::find("e9").expect("e9 is registered");
    base.name = "scale".into();
    base.description = "constant-density deployment rescaled along the node-count axis; \
                        one Decay flood from node 0 over a fixed 24-round horizon"
        .into();
    base.workload = WorkloadSpec::Decay { senders: vec![0] };
    base.stop = StopSpec::Rounds { rounds: 24 };
    let size = |label: &str, n: usize| SweepPoint {
        label: label.into(),
        set: vec![OverrideSpec::Size { n }],
    };
    let adv = |label: &str, p: f64| SweepPoint {
        label: label.into(),
        set: vec![OverrideSpec::AdversaryP { p }],
    };
    SweepSpec {
        name: "scale-curve".into(),
        description: "scale-out throughput: node count (1k → 50k) × link-inclusion \
                      probability on a constant-density deployment; per-point cost \
                      grows linearly in n while per-neighborhood behavior stays flat"
            .into(),
        base,
        axes: vec![
            SweepAxis {
                axis: "n".into(),
                points: vec![
                    size("1000", 1_000),
                    size("2000", 2_000),
                    size("5000", 5_000),
                    size("10000", 10_000),
                    size("20000", 20_000),
                    size("50000", 50_000),
                ],
            },
            SweepAxis {
                axis: "adv".into(),
                points: vec![adv("0.5", 0.5), adv("0.9", 0.9)],
            },
        ],
        trials: Some(2),
        pinned: vec![
            "scale@n=1000,adv=0.5".into(),
            "scale@n=10000,adv=0.5".into(),
            "scale@n=50000,adv=0.5".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioBuilder;

    fn tiny_base() -> Scenario {
        ScenarioBuilder::new(
            "tiny",
            TopologySpec::Clique { n: 4, r: 1.0 },
            WorkloadSpec::LocalBroadcast {
                epsilon1: 0.25,
                senders: vec![0],
                messages_per_sender: 1,
            },
        )
        .drop_burst(5, 20, 0.5)
        .adversary(AdversarySpec::Bernoulli { p: 0.5 })
        .trials(2)
        .base_seed(7)
        .build()
        .unwrap()
    }

    fn tiny_sweep() -> SweepSpec {
        SweepSpec {
            name: "t".into(),
            description: "demo".into(),
            base: tiny_base(),
            axes: vec![
                SweepAxis {
                    axis: "p".into(),
                    points: vec![
                        SweepPoint {
                            label: "0.2".into(),
                            set: vec![OverrideSpec::DropP { p: 0.2 }],
                        },
                        SweepPoint {
                            label: "0.8".into(),
                            set: vec![OverrideSpec::DropP { p: 0.8 }],
                        },
                    ],
                },
                SweepAxis {
                    axis: "adv".into(),
                    points: vec![
                        SweepPoint {
                            label: "0.3".into(),
                            set: vec![OverrideSpec::AdversaryP { p: 0.3 }],
                        },
                        SweepPoint {
                            label: "0.9".into(),
                            set: vec![OverrideSpec::AdversaryP { p: 0.9 }],
                        },
                    ],
                },
            ],
            trials: None,
            pinned: vec![],
        }
    }

    #[test]
    fn expands_row_major_with_derived_names() {
        let grid = tiny_sweep().expand().unwrap();
        let names: Vec<&str> = grid
            .points()
            .iter()
            .map(|p| p.scenario.name.as_str())
            .collect();
        assert_eq!(
            names,
            vec![
                "tiny@p=0.2,adv=0.3",
                "tiny@p=0.2,adv=0.9",
                "tiny@p=0.8,adv=0.3",
                "tiny@p=0.8,adv=0.9",
            ]
        );
        assert_eq!(grid.points()[2].coords, vec![1, 0]);
        assert_eq!(grid.points()[2].scenario.faults.drops[0].p, 0.8);
        assert!(matches!(
            grid.points()[1].scenario.adversary,
            AdversarySpec::Bernoulli { p } if p == 0.9
        ));
    }

    #[test]
    fn sweep_json_roundtrip_preserves_spec() {
        let spec = tiny_sweep();
        let back = SweepSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn trials_override_applies_to_every_point() {
        let mut spec = tiny_sweep();
        spec.trials = Some(5);
        let grid = spec.expand().unwrap();
        assert!(grid.points().iter().all(|p| p.scenario.trials == 5));
    }

    #[test]
    fn rejects_malformed_shapes() {
        let mut no_axes = tiny_sweep();
        no_axes.axes.clear();
        assert!(no_axes.expand().is_err());

        let mut dup_axis = tiny_sweep();
        dup_axis.axes[1].axis = "p".into();
        assert!(dup_axis.expand().is_err());

        let mut dup_label = tiny_sweep();
        dup_label.axes[0].points[1].label = "0.2".into();
        assert!(dup_label.expand().is_err());

        let mut bad_label = tiny_sweep();
        bad_label.axes[0].points[0].label = "a,b".into();
        assert!(bad_label.expand().is_err());

        let mut bad_pin = tiny_sweep();
        bad_pin.pinned = vec!["tiny@p=0.2,adv=0.5".into()];
        assert!(bad_pin.expand().is_err());
    }

    #[test]
    fn rejects_overrides_that_sweep_nothing() {
        // DropP on a base with no drop bursts would claim a loss axis
        // while varying nothing; same for AdversaryP on a fixed
        // schedule.
        let mut no_drops = tiny_sweep();
        no_drops.base.faults.drops.clear();
        assert!(no_drops.expand().is_err());

        let mut fixed_adv = tiny_sweep();
        fixed_adv.base.adversary = AdversarySpec::AllExtraEdges;
        assert!(fixed_adv.expand().is_err());
    }

    #[test]
    fn rejects_invalid_expanded_scenarios() {
        let mut bad = tiny_sweep();
        bad.axes[0].points[0].set = vec![OverrideSpec::DropP { p: 1.5 }];
        let err = bad.expand().unwrap_err();
        assert!(matches!(err, ScenarioError::Invalid(_)), "{err}");
    }

    #[test]
    fn churn_override_generates_periodic_windows() {
        let mut s = tiny_base();
        OverrideSpec::Churn {
            nodes: vec![1, 2],
            period: 50,
            down: 10,
            start: 5,
            until: 120,
            restart: false,
        }
        .apply(&mut s)
        .unwrap();
        let windows: Vec<(usize, u64, Option<u64>)> = s
            .faults
            .crashes
            .iter()
            .map(|c| (c.node, c.down_from, c.up_at))
            .collect();
        assert_eq!(
            windows,
            vec![
                (1, 5, Some(15)),
                (1, 55, Some(65)),
                (1, 105, Some(115)),
                (2, 5, Some(15)),
                (2, 55, Some(65)),
                (2, 105, Some(115)),
            ]
        );
        // down = 0 is the no-churn point.
        OverrideSpec::Churn {
            nodes: vec![1],
            period: 50,
            down: 0,
            start: 5,
            until: 120,
            restart: false,
        }
        .apply(&mut s)
        .unwrap();
        assert!(s.faults.crashes.is_empty());
    }

    #[test]
    fn churn_rejects_empty_windows() {
        // Regression: `start > until` would generate an empty crash
        // list — a point claiming churn while injecting nothing.
        let mut s = tiny_base();
        let err = OverrideSpec::Churn {
            nodes: vec![1],
            period: 50,
            down: 10,
            start: 500,
            until: 100,
            restart: false,
        }
        .apply(&mut s)
        .unwrap_err();
        assert!(matches!(&err, ScenarioError::Invalid(m) if m.contains("start")), "{err}");
    }

    #[test]
    fn pinned_restriction_keeps_only_named_points() {
        let mut spec = tiny_sweep();
        spec.pinned = vec!["tiny@p=0.8,adv=0.3".into()];
        let grid = spec.expand().unwrap();
        assert_eq!(grid.len(), 4);
        let pinned = grid.pinned();
        assert_eq!(pinned.len(), 1);
        assert_eq!(pinned.points()[0].scenario.name, "tiny@p=0.8,adv=0.3");
        // No pins = the whole grid.
        assert_eq!(tiny_sweep().expand().unwrap().pinned().len(), 4);
    }

    #[test]
    fn registry_sweeps_expand_and_meet_the_roadmap_shape() {
        for spec in sweeps() {
            let grid = spec
                .expand()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert!(
                grid.len() >= 12,
                "{}: expected a >= 12-point grid, got {}",
                spec.name,
                grid.len()
            );
            assert!(!spec.pinned.is_empty(), "{}: no pinned subset", spec.name);
            assert!(!spec.description.is_empty());
            // Derived names are unique (Campaign re-checks this too).
            let mut names: Vec<_> = grid.points().iter().map(|p| &p.scenario.name).collect();
            names.sort();
            names.dedup();
            assert_eq!(names.len(), grid.len());
        }
        assert!(find_sweep("CHURN-KNEE").is_some());
        assert!(find_sweep("nope").is_none());
        assert_eq!(
            sweep_names(),
            vec!["churn-knee", "loss-grid", "mobility-knee", "scale-curve"]
        );
    }

    #[test]
    fn mobility_overrides_require_a_mobility_base() {
        let mut s = tiny_base();
        let err = OverrideSpec::EpochRounds { epoch_rounds: 64 }
            .apply(&mut s)
            .unwrap_err();
        assert!(matches!(&err, ScenarioError::Invalid(m) if m.contains("EpochRounds")), "{err}");
        let err = OverrideSpec::MobilitySpeed { speed: 0.01 }
            .apply(&mut s)
            .unwrap_err();
        assert!(matches!(&err, ScenarioError::Invalid(m) if m.contains("MobilitySpeed")), "{err}");

        let mut m = crate::registry::find("mobility").unwrap();
        OverrideSpec::EpochRounds { epoch_rounds: 64 }
            .apply(&mut m)
            .unwrap();
        OverrideSpec::MobilitySpeed { speed: 0.25 }.apply(&mut m).unwrap();
        let spec = m.mobility.unwrap();
        assert_eq!(spec.epoch_rounds, 64);
        assert_eq!(spec.speed, 0.25);
    }

    #[test]
    fn mobility_knee_sweeps_epoch_length_with_a_pinned_parked_curve() {
        let spec = find_sweep("mobility-knee").unwrap();
        let grid = spec.expand().unwrap();
        assert_eq!(grid.len(), 12);
        assert_eq!(spec.pinned.len(), 4, "four pinned epoch points");
        // Pinned points all sit on the parked (speed = 0) curve, in
        // increasing epoch order — what the monotonicity gate walks.
        for (name, rounds) in spec.pinned.iter().zip([60u64, 120, 240, 480]) {
            let p = grid
                .points()
                .iter()
                .find(|p| &p.scenario.name == name)
                .unwrap();
            let m = p.scenario.mobility.as_ref().unwrap();
            assert_eq!(m.epoch_rounds, rounds);
            assert_eq!(m.speed, 0.0);
            assert!(p.scenario.faults.jams.iter().all(|j| j.is_moving()));
        }
    }

    #[test]
    fn scale_curve_reaches_fifty_thousand_nodes() {
        let grid = scale_curve().expand().unwrap();
        let max_n = grid
            .points()
            .iter()
            .map(|p| p.scenario.topology.node_count())
            .max()
            .unwrap();
        assert!(max_n >= 50_000, "largest point is {max_n} nodes");
        // Density (and so Δ) is pinned while n sweeps: every point stays
        // on the constant-density family.
        for p in grid.points() {
            assert!(
                matches!(
                    p.scenario.topology,
                    TopologySpec::ConstantDensity { density, r, .. }
                        if density == 8.0 && r == 1.5
                ),
                "{}",
                p.scenario.name
            );
        }
        // The pinned subset covers the scale extremes the BENCH scale
        // section tracks.
        assert!(scale_curve()
            .pinned
            .contains(&"scale@n=50000,adv=0.5".to_string()));
    }

    #[test]
    fn size_override_rescales_explicit_node_counts() {
        let mut s = tiny_base();
        OverrideSpec::Size { n: 9 }.apply(&mut s).unwrap();
        assert_eq!(s.topology.node_count(), 9);
        s.topology = TopologySpec::ConstantDensity {
            n: 16,
            density: 8.0,
            r: 1.5,
            seed: 1,
        };
        OverrideSpec::Size { n: 256 }.apply(&mut s).unwrap();
        assert_eq!(s.topology.node_count(), 256);
        // Composite families have no single n knob: rejecting beats
        // silently sweeping nothing.
        s.topology = TopologySpec::Grid {
            rows: 2,
            cols: 2,
            spacing: 1.0,
            r: 1.0,
        };
        let err = OverrideSpec::Size { n: 9 }.apply(&mut s).unwrap_err();
        assert!(
            matches!(&err, ScenarioError::Invalid(m) if m.contains("Size")),
            "{err}"
        );
    }

    #[test]
    fn report_pivots_grid_outcomes_into_curves() {
        let mut spec = tiny_sweep();
        spec.trials = Some(1);
        let grid = spec.expand().unwrap();
        let report = grid.campaign().unwrap().run();
        let sweep = SweepReport::new(&grid, &report);
        let long = sweep.long_table();
        assert_eq!(long.rows.len(), 4);
        assert_eq!(
            long.headers,
            vec![
                "point",
                "p",
                "adv",
                "trials",
                "spec_ok_rate",
                "acks",
                "deliveries",
                "ack_latency",
                "ack_trials",
                "delivery_latency",
                "delivery_trials",
                "ack_p50",
                "ack_p95",
                "ack_p99",
                "delivery_p50",
                "delivery_p95",
                "delivery_p99"
            ]
        );
        let curves = sweep.curve_tables();
        assert_eq!(curves.len(), 5);
        // Each pivot: rows = leading axis (p), columns = last axis (adv).
        for t in &curves {
            assert_eq!(t.headers, vec!["p", "adv=0.3", "adv=0.9"]);
            assert_eq!(t.rows.len(), 2);
        }
        let csv = sweep.to_csv();
        assert!(csv.starts_with("point,p,adv,trials,"));
        assert_eq!(csv.lines().count(), 5);
        let md = sweep.to_markdown();
        assert!(md.contains("# Sweep report: t"));
        assert!(md.contains("## Grid") && md.contains("## Curves"));
    }

    #[test]
    fn csv_emits_full_precision_values_and_empty_cells() {
        // Regression: the CSV artifact used to reuse the markdown
        // table's `fnum` rounding and `—` dashes, so curve fits lost
        // precision and every latency column parsed as text. The CSV
        // now carries shortest-round-trip f64 values and leaves
        // unmeasured cells empty; the display tables keep the dashes.
        let report = SweepReport {
            name: "t".into(),
            description: "demo".into(),
            axes: vec!["p".into()],
            axis_labels: vec![vec!["a".into()]],
            rows: vec![SweepRow {
                labels: vec!["a".into()],
                scenario: "tiny@p=a".into(),
                trials: 3,
                ack_latency: Some(1.0 / 3.0),
                ack_trials: 3,
                delivery_latency: None,
                delivery_trials: 0,
                ack_p50: Some(7),
                ack_p95: Some(9),
                ack_p99: Some(9),
                delivery_p50: None,
                delivery_p95: None,
                delivery_p99: None,
                acks: 1234.5678901234567,
                deliveries: 2.0,
                spec_ok_rate: 1.0,
            }],
        };
        let csv = report.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(
            lines[0],
            "point,p,trials,spec_ok_rate,acks,deliveries,ack_latency,ack_trials,\
             delivery_latency,delivery_trials,ack_p50,ack_p95,ack_p99,\
             delivery_p50,delivery_p95,delivery_p99"
        );
        assert_eq!(
            lines[1],
            "tiny@p=a,a,3,1,1234.5678901234567,2,0.3333333333333333,3,,0,7,9,9,,,"
        );
        assert!(!csv.contains('—'), "dashes are display-table-only");
        // The markdown/terminal table keeps its display conventions.
        assert!(report.long_table().to_csv().contains('—'));
    }

    #[test]
    fn report_renders_missing_points_as_dashes() {
        let mut spec = tiny_sweep();
        spec.trials = Some(1);
        spec.pinned = vec!["tiny@p=0.2,adv=0.3".into()];
        let grid = spec.expand().unwrap();
        let report = grid.pinned().campaign().unwrap().run();
        let sweep = SweepReport::new(&grid, &report);
        assert_eq!(sweep.long_table().rows.len(), 1, "only the pinned point ran");
        let curves = sweep.curve_tables();
        let acks = &curves[2];
        assert_eq!(acks.rows[0][2], "—", "unmeasured cell renders as dash");
        assert_ne!(acks.rows[0][1], "—", "measured cell has a value");
    }

    #[test]
    fn ascii_charts_render_deterministic_series() {
        let mut spec = tiny_sweep();
        spec.trials = Some(1);
        let grid = spec.expand().unwrap();
        let report = grid.campaign().unwrap().run();
        let sweep = SweepReport::new(&grid, &report);
        let charts = sweep.ascii_charts();
        // Always-measured metrics chart; every chart carries the column
        // axis ruler and the per-series legend.
        assert!(charts.contains("### acks"));
        assert!(charts.contains("### spec_ok_rate"));
        assert!(charts.contains("adv=0.3"));
        assert!(charts.contains("adv=0.9"));
        assert!(charts.contains("a = p=0.2"));
        assert!(charts.contains("b = p=0.8"));
        assert!(charts.is_ascii(), "plot output is pure ASCII");
        assert_eq!(charts, sweep.ascii_charts(), "rendering is deterministic");
        // A second run of the same grid plots byte-identically.
        let again = SweepReport::new(&grid, &grid.campaign().unwrap().run());
        assert_eq!(charts, again.ascii_charts());
    }

    #[test]
    fn single_axis_sweep_pivots_into_one_row() {
        let mut spec = tiny_sweep();
        spec.axes.pop();
        spec.trials = Some(1);
        let grid = spec.expand().unwrap();
        let report = grid.campaign().unwrap().run();
        let sweep = SweepReport::new(&grid, &report);
        let curves = sweep.curve_tables();
        for t in &curves {
            assert_eq!(t.headers, vec!["sweep", "p=0.2", "p=0.8"]);
            assert_eq!(t.rows.len(), 1);
        }
    }
}
