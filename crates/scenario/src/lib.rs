//! # scenario: declarative simulation campaigns for the dual graph model
//!
//! The paper's guarantees are quantified over an *adversarial* dual
//! graph `(G, G')`: the interesting behavior of `Seed(δ, ε)` and
//! `LB(t_ack, t_prog, ε)` only shows up under hostile link schedules,
//! churn, and interference. This crate makes such campaigns **data**
//! instead of code:
//!
//! * [`spec`] — the serde-serializable [`Scenario`](spec::Scenario)
//!   description (topology family + adversary schedule + fault plan +
//!   workload + stop condition + seeds) and its validating
//!   [`ScenarioBuilder`](spec::ScenarioBuilder).
//! * [`registry`] — named scenarios: the E1–E11 experiment suite
//!   re-expressed as data, plus fault-injection scenarios (churn,
//!   jamming window, drop burst) the hard-coded suite could not state.
//! * [`runner`] — the [`ScenarioRunner`](runner::ScenarioRunner),
//!   compiling a scenario into configured `radio-sim` executions, fanning
//!   trials across cores, and aggregating experiment-style stats tables.
//! * [`campaign`] — the [`Campaign`](campaign::Campaign) batch runner
//!   (every registry entry, or a subset, fanned out across scenarios as
//!   well as trials), its combined markdown report, and the
//!   golden-metric regression gate
//!   ([`GoldenMetrics`](campaign::GoldenMetrics), `scenarios/golden/`).
//! * [`obs`] — run-level observability: [`Campaign::run_observed`]
//!   (campaign) fills a [`RunTelemetry`](obs::RunTelemetry) — per-trial
//!   wall-clock and latency histograms, worker-pool utilization, merged
//!   engine phase timings — serialized as a JSONL run journal
//!   (`telemetry::validate_journal` checks it). Telemetry observes
//!   only: outcomes, reports, and golden metrics stay byte-identical.
//! * [`sweep`] — parameter-sweep families: a [`SweepSpec`](sweep::SweepSpec)
//!   expands one base scenario over up to three named override axes
//!   into a grid of derived scenarios (run as one campaign), and a
//!   [`SweepReport`](sweep::SweepReport) pivots the outcomes into
//!   per-axis curve tables (markdown + CSV). The sweep registry
//!   ([`sweep::sweeps`]) carries the churn-knee and loss-grid curve
//!   families.
//! * [`search`] — the adversary search engine: a
//!   [`SearchSpec`](search::SearchSpec) describes a budgeted,
//!   seed-deterministic exploration of the adversary × fault space
//!   (random or (μ+λ) evolutionary) maximizing an ack-latency or
//!   spec-violation [`Objective`](search::Objective); worst cases land
//!   in a [`SearchArchive`](search::SearchArchive) and are re-emitted
//!   as blessable scenario files (`scenarios/found/`).
//!
//! Scenarios serialize to JSON (`Scenario::to_json` /
//! `Scenario::from_json`); the `scenario` binary in the `bench` crate
//! runs a registry name or a JSON file end-to-end. Executions are pure
//! functions of `(scenario, trial index)`: replaying a trial yields a
//! byte-identical trace, fault injection included.
//!
//! ```
//! use scenario::prelude::*;
//!
//! let s = ScenarioBuilder::new(
//!     "demo",
//!     TopologySpec::Clique { n: 4, r: 1.0 },
//!     WorkloadSpec::LocalBroadcast {
//!         epsilon1: 0.25,
//!         senders: vec![0],
//!         messages_per_sender: 1,
//!     },
//! )
//! .drop_burst(5, 20, 0.25)
//! .trials(2)
//! .build()
//! .expect("valid scenario");
//! let report = ScenarioRunner::new(s).expect("runnable").run();
//! assert_eq!(report.outcomes.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod obs;
pub mod registry;
pub mod runner;
pub mod search;
pub mod spec;
pub mod sweep;

pub use campaign::{Campaign, CampaignReport, CheckReport, GoldenMetric, GoldenMetrics};
pub use obs::{RunTelemetry, ScenarioTelemetry};
pub use runner::{ScenarioReport, ScenarioRunner, TrialOutcome};
pub use search::{
    run_search, ArchiveEntry, CandidateMetrics, Objective, SearchArchive, SearchSpec, StrategySpec,
};
pub use spec::{
    AdversarySpec, FaultPlanSpec, PartitionSpec, RegionSpec, Scenario, ScenarioBuilder,
    ScenarioError, StopSpec, TopologySpec, TransportSpec, WorkloadSpec,
};
pub use sweep::{OverrideSpec, SweepAxis, SweepGrid, SweepPoint, SweepReport, SweepSpec};

/// Commonly used items, re-exported for convenient glob import.
pub mod prelude {
    pub use crate::campaign::{
        Campaign, CampaignReport, CheckReport, GoldenMetric, GoldenMetrics, MetricCheck,
    };
    pub use crate::registry;
    pub use crate::runner::{ScenarioReport, ScenarioRunner, TrialOutcome};
    pub use crate::search::{
        self, run_search, ArchiveEntry, Candidate, CandidateMetrics, Objective, SearchArchive,
        SearchSpec, SearchStrategy, SpaceSpec, StrategySpec,
    };
    pub use crate::spec::{
        AdversarySpec, CrashSpec, DropSpec, FaultPlanSpec, JamSpec, PartitionSpec, RegionSpec,
        Scenario, ScenarioBuilder, ScenarioError, StopSpec, TopologySpec, TransportSpec,
        WorkloadSpec,
    };
    pub use crate::sweep::{
        self, GridPoint, OverrideSpec, SweepAxis, SweepGrid, SweepPoint, SweepReport, SweepSpec,
    };
}
