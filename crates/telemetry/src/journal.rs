//! Structured JSONL run journal: record schema + validator.
//!
//! A journal is one JSON object per line, discriminated by a literal
//! `kind` field:
//!
//! 1. `meta`     — first line; schema version, run mode/label, totals
//! 2. `scenario` — one per scenario: trial wall-clock histogram,
//!    ack/delivery latency histograms (rounds), merged engine
//!    metrics (when the workload exposes them)
//! 3. `pool`     — worker-pool utilization: per-worker busy ns vs wall
//! 4. `summary`  — last line; total wall-clock and aggregate trials/s
//!
//! Unknown fields are ignored on read (the derive tolerates them), so
//! the schema can grow additively. `validate_journal` is the checker
//! the `scenario journal` subcommand and the CI telemetry smoke job
//! run against produced files.

use serde::{Deserialize, Serialize};

use crate::engine::{EngineMetrics, ENGINE_PHASES, ENGINE_PHASE_NAMES};
use crate::hist::Histogram;

pub const JOURNAL_SCHEMA_VERSION: u32 = 1;

/// Sparse serialized form of a [`Histogram`]: summary statistics plus
/// parallel arrays of occupied-bucket lower bounds and counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramRecord {
    pub count: u64,
    pub min: u64,
    pub max: u64,
    pub mean: f64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
    pub bucket_lo: Vec<u64>,
    pub bucket_count: Vec<u64>,
}

impl HistogramRecord {
    /// Serialized form of a histogram; `None` when it holds no samples.
    pub fn of(h: &Histogram) -> Option<Self> {
        if h.is_empty() {
            return None;
        }
        let (mut bucket_lo, mut bucket_count) = (Vec::new(), Vec::new());
        for (lo, _hi, count) in h.nonzero_buckets() {
            bucket_lo.push(lo);
            bucket_count.push(count);
        }
        Some(HistogramRecord {
            count: h.count(),
            min: h.min().unwrap_or(0),
            max: h.max().unwrap_or(0),
            mean: h.mean(),
            p50: h.p50().unwrap_or(0),
            p95: h.p95().unwrap_or(0),
            p99: h.p99().unwrap_or(0),
            bucket_lo,
            bucket_count,
        })
    }

    fn validate(&self, what: &str) -> Result<(), String> {
        if self.bucket_lo.len() != self.bucket_count.len() {
            return Err(format!("{what}: bucket_lo/bucket_count length mismatch"));
        }
        let total: u64 = self.bucket_count.iter().sum();
        if total != self.count {
            return Err(format!(
                "{what}: bucket counts sum to {total} but count is {}",
                self.count
            ));
        }
        if !(self.min <= self.p50 && self.p50 <= self.p95 && self.p95 <= self.p99 && self.p99 <= self.max)
        {
            return Err(format!(
                "{what}: percentiles not monotone (min {} p50 {} p95 {} p99 {} max {})",
                self.min, self.p50, self.p95, self.p99, self.max
            ));
        }
        if !self.mean.is_finite() {
            return Err(format!("{what}: non-finite mean"));
        }
        Ok(())
    }
}

/// First journal line: identifies the run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetaRecord {
    pub kind: String,
    pub schema_version: u32,
    /// CLI mode that produced the journal: `single`, `campaign`, `sweep`.
    pub mode: String,
    /// Campaign/sweep/scenario label.
    pub label: String,
    pub scenarios: usize,
    pub trials: usize,
    pub threads: usize,
    pub shards: usize,
}

impl MetaRecord {
    pub fn new(mode: &str, label: &str, scenarios: usize, trials: usize, threads: usize, shards: usize) -> Self {
        MetaRecord {
            kind: "meta".into(),
            schema_version: JOURNAL_SCHEMA_VERSION,
            mode: mode.into(),
            label: label.into(),
            scenarios,
            trials,
            threads,
            shards,
        }
    }
}

/// Serialized form of [`EngineMetrics`], merged over a scenario's trials.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineRecord {
    pub rounds: u64,
    /// Phase names, parallel to `phase_ns` (`EnginePhase` order).
    pub phase: Vec<String>,
    pub phase_ns: Vec<u64>,
    pub shard_busy_ns: Vec<u64>,
    pub round_ns: Option<HistogramRecord>,
    pub transmissions: u64,
    pub deliveries: u64,
    pub collisions: u64,
    pub silent: u64,
    pub jammed: u64,
    pub dropped: u64,
    pub down_node_rounds: u64,
    /// Dynamic-geometry epoch switches; defaulted so pre-mobility
    /// journals still parse.
    #[serde(default)]
    pub epoch_switches: u64,
}

impl EngineRecord {
    pub fn of(m: &EngineMetrics) -> Self {
        EngineRecord {
            rounds: m.rounds,
            phase: ENGINE_PHASE_NAMES.iter().map(|s| s.to_string()).collect(),
            phase_ns: m.phase_ns.to_vec(),
            shard_busy_ns: m.shard_busy_ns.clone(),
            round_ns: HistogramRecord::of(&m.round_ns),
            transmissions: m.transmissions,
            deliveries: m.deliveries,
            collisions: m.collisions,
            silent: m.silent,
            jammed: m.jammed,
            dropped: m.dropped,
            down_node_rounds: m.down_node_rounds,
            epoch_switches: m.epoch_switches,
        }
    }

    fn validate(&self, what: &str) -> Result<(), String> {
        if self.phase.len() != ENGINE_PHASES || self.phase_ns.len() != ENGINE_PHASES {
            return Err(format!("{what}: engine phase arrays must have {ENGINE_PHASES} entries"));
        }
        for (got, want) in self.phase.iter().zip(ENGINE_PHASE_NAMES) {
            if got != want {
                return Err(format!("{what}: unexpected phase name {got:?} (want {want:?})"));
            }
        }
        if let Some(h) = &self.round_ns {
            h.validate(&format!("{what}: round_ns"))?;
            if h.count != self.rounds {
                return Err(format!(
                    "{what}: round_ns holds {} samples for {} rounds",
                    h.count, self.rounds
                ));
            }
        }
        Ok(())
    }
}

/// One journal line per scenario (or sweep point).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioRecord {
    pub kind: String,
    pub name: String,
    pub trials: usize,
    /// Per-trial wall-clock distribution (ns).
    pub trial_ns: Option<HistogramRecord>,
    /// First-ack latency distribution across trials (rounds).
    pub ack_latency_rounds: Option<HistogramRecord>,
    /// First-delivery latency distribution across trials (rounds).
    pub delivery_latency_rounds: Option<HistogramRecord>,
    /// Merged engine metrics; absent for workloads that wrap the
    /// engine behind an adapter that hides it.
    pub engine: Option<EngineRecord>,
}

impl ScenarioRecord {
    pub fn new(name: &str, trials: usize) -> Self {
        ScenarioRecord {
            kind: "scenario".into(),
            name: name.into(),
            trials,
            trial_ns: None,
            ack_latency_rounds: None,
            delivery_latency_rounds: None,
            engine: None,
        }
    }
}

/// Worker-pool utilization for the whole run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PoolRecord {
    pub kind: String,
    pub workers: usize,
    pub jobs: u64,
    pub wall_ns: u64,
    pub worker_busy_ns: Vec<u64>,
    /// Sum of busy time over `workers * wall` — 1.0 means every worker
    /// was busy for the whole run.
    pub utilization: f64,
}

impl PoolRecord {
    pub fn new(jobs: u64, wall_ns: u64, worker_busy_ns: Vec<u64>) -> Self {
        let workers = worker_busy_ns.len();
        let busy: u64 = worker_busy_ns.iter().sum();
        let denom = wall_ns.saturating_mul(workers as u64);
        let utilization = if denom > 0 { busy as f64 / denom as f64 } else { 0.0 };
        PoolRecord { kind: "pool".into(), workers, jobs, wall_ns, worker_busy_ns, utilization }
    }
}

/// Last journal line: run totals.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SummaryRecord {
    pub kind: String,
    pub scenarios: usize,
    pub trials: usize,
    pub wall_s: f64,
    pub trials_per_sec: f64,
}

impl SummaryRecord {
    pub fn new(scenarios: usize, trials: usize, wall_s: f64) -> Self {
        let trials_per_sec = if wall_s > 0.0 { trials as f64 / wall_s } else { 0.0 };
        SummaryRecord { kind: "summary".into(), scenarios, trials, wall_s, trials_per_sec }
    }
}

/// What `validate_journal` learned about a well-formed journal.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalStats {
    pub lines: usize,
    pub scenarios: usize,
    /// Scenario records carrying merged engine metrics.
    pub engine_scenarios: usize,
    /// Scenario records carrying an ack-latency histogram.
    pub ack_scenarios: usize,
    pub trials: usize,
}

/// Validate a journal's structure and internal consistency. Returns
/// aggregate stats on success, the first violation on failure.
pub fn validate_journal(text: &str) -> Result<JournalStats, String> {
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    if lines.len() < 2 {
        return Err(format!("journal has {} lines; need at least meta + summary", lines.len()));
    }
    let kind_of = |i: usize, line: &str| -> Result<String, String> {
        let v: serde::Value = serde_json::from_str(line)
            .map_err(|e| format!("line {}: not valid JSON: {e}", i + 1))?;
        match v.get("kind") {
            Some(serde::Value::String(k)) => Ok(k.clone()),
            _ => Err(format!("line {}: missing string `kind` field", i + 1)),
        }
    };

    let meta: MetaRecord = match kind_of(0, lines[0])?.as_str() {
        "meta" => serde_json::from_str(lines[0]).map_err(|e| format!("line 1: bad meta record: {e}"))?,
        k => return Err(format!("line 1 must be a meta record, got kind {k:?}")),
    };
    if meta.schema_version != JOURNAL_SCHEMA_VERSION {
        return Err(format!(
            "unsupported schema_version {} (expected {JOURNAL_SCHEMA_VERSION})",
            meta.schema_version
        ));
    }

    let mut stats = JournalStats {
        lines: lines.len(),
        scenarios: 0,
        engine_scenarios: 0,
        ack_scenarios: 0,
        trials: 0,
    };
    let mut summaries = 0usize;
    for (i, line) in lines.iter().enumerate().skip(1) {
        let what = format!("line {}", i + 1);
        match kind_of(i, line)?.as_str() {
            "meta" => return Err(format!("{what}: duplicate meta record")),
            "scenario" => {
                let rec: ScenarioRecord =
                    serde_json::from_str(line).map_err(|e| format!("{what}: bad scenario record: {e}"))?;
                if let Some(h) = &rec.trial_ns {
                    h.validate(&format!("{what} ({}): trial_ns", rec.name))?;
                    if h.count != rec.trials as u64 {
                        return Err(format!(
                            "{what} ({}): trial_ns holds {} samples for {} trials",
                            rec.name, h.count, rec.trials
                        ));
                    }
                }
                if let Some(h) = &rec.ack_latency_rounds {
                    h.validate(&format!("{what} ({}): ack_latency_rounds", rec.name))?;
                    stats.ack_scenarios += 1;
                }
                if let Some(h) = &rec.delivery_latency_rounds {
                    h.validate(&format!("{what} ({}): delivery_latency_rounds", rec.name))?;
                }
                if let Some(e) = &rec.engine {
                    e.validate(&format!("{what} ({})", rec.name))?;
                    stats.engine_scenarios += 1;
                }
                stats.scenarios += 1;
                stats.trials += rec.trials;
            }
            "pool" => {
                let rec: PoolRecord =
                    serde_json::from_str(line).map_err(|e| format!("{what}: bad pool record: {e}"))?;
                if rec.worker_busy_ns.len() != rec.workers {
                    return Err(format!("{what}: worker_busy_ns length != workers"));
                }
                if !rec.utilization.is_finite() || rec.utilization < 0.0 {
                    return Err(format!("{what}: bad utilization {}", rec.utilization));
                }
            }
            "summary" => {
                let rec: SummaryRecord =
                    serde_json::from_str(line).map_err(|e| format!("{what}: bad summary record: {e}"))?;
                summaries += 1;
                if i + 1 != lines.len() {
                    return Err(format!("{what}: summary record must be the last line"));
                }
                if !rec.wall_s.is_finite() || rec.wall_s < 0.0 {
                    return Err(format!("{what}: bad wall_s {}", rec.wall_s));
                }
                if rec.scenarios != stats.scenarios {
                    return Err(format!(
                        "{what}: summary says {} scenarios, journal has {}",
                        rec.scenarios, stats.scenarios
                    ));
                }
            }
            k => return Err(format!("{what}: unknown record kind {k:?}")),
        }
    }
    if summaries != 1 {
        return Err(format!("journal has {summaries} summary records; want exactly 1 (last line)"));
    }
    if stats.scenarios != meta.scenarios {
        return Err(format!(
            "meta promises {} scenarios, journal has {}",
            meta.scenarios, stats.scenarios
        ));
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_hist() -> Histogram {
        let mut h = Histogram::new();
        for v in [3u64, 5, 5, 9, 1000, 2000] {
            h.record(v);
        }
        h
    }

    fn sample_journal() -> String {
        let meta = MetaRecord::new("campaign", "test", 2, 6, 4, 1);
        let mut s1 = ScenarioRecord::new("e2", 4);
        let mut trial = Histogram::new();
        for v in [10_000u64, 20_000, 30_000, 40_000] {
            trial.record(v);
        }
        s1.trial_ns = HistogramRecord::of(&trial);
        s1.ack_latency_rounds = HistogramRecord::of(&sample_hist());
        let mut em = EngineMetrics::new(2);
        em.record_round([1, 2, 3, 4, 5, 6]);
        em.deliveries = 42;
        s1.engine = Some(EngineRecord::of(&em));
        let mut s2 = ScenarioRecord::new("amac", 2);
        let mut trial2 = Histogram::new();
        trial2.record(500);
        trial2.record(700);
        s2.trial_ns = HistogramRecord::of(&trial2);
        let pool = PoolRecord::new(6, 1_000_000, vec![400_000, 500_000, 450_000, 100_000]);
        let summary = SummaryRecord::new(2, 6, 0.001);
        [
            serde_json::to_string(&meta).unwrap(),
            serde_json::to_string(&s1).unwrap(),
            serde_json::to_string(&s2).unwrap(),
            serde_json::to_string(&pool).unwrap(),
            serde_json::to_string(&summary).unwrap(),
        ]
        .join("\n")
    }

    #[test]
    fn histogram_record_roundtrips_and_validates() {
        let h = sample_hist();
        let rec = HistogramRecord::of(&h).unwrap();
        assert_eq!(rec.count, 6);
        assert_eq!(rec.min, 3);
        assert_eq!(rec.bucket_count.iter().sum::<u64>(), 6);
        rec.validate("test").unwrap();
        let json = serde_json::to_string(&rec).unwrap();
        let back: HistogramRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back.count, rec.count);
        assert_eq!(back.bucket_lo, rec.bucket_lo);
        assert_eq!(HistogramRecord::of(&Histogram::new()), None);
    }

    #[test]
    fn valid_journal_passes() {
        let stats = validate_journal(&sample_journal()).unwrap();
        assert_eq!(stats.lines, 5);
        assert_eq!(stats.scenarios, 2);
        assert_eq!(stats.engine_scenarios, 1);
        assert_eq!(stats.ack_scenarios, 1);
        assert_eq!(stats.trials, 6);
    }

    #[test]
    fn corrupt_journals_fail() {
        let good = sample_journal();
        // Truncated: no summary.
        let no_summary: String =
            good.lines().take(3).collect::<Vec<_>>().join("\n");
        assert!(validate_journal(&no_summary).unwrap_err().contains("summary"));
        // Garbage line.
        let garbage = good.replace("\"kind\":\"pool\"", "\"kind\":\"mystery\"");
        assert!(validate_journal(&garbage).unwrap_err().contains("unknown record kind"));
        // Meta/scenario count mismatch.
        let missing: String = good
            .lines()
            .filter(|l| !l.contains("\"name\":\"amac\""))
            .collect::<Vec<_>>()
            .join("\n");
        let err = validate_journal(&missing).unwrap_err();
        assert!(err.contains("scenarios"), "{err}");
        // Not JSON at all.
        assert!(validate_journal("meta\nsummary").is_err());
        assert!(validate_journal("").is_err());
    }
}
