//! Telemetry core for the dual-graph broadcast stack.
//!
//! Design constraints (see `docs/observability.md`):
//!
//! * **Zero-alloc in steady state.** Counters are fixed slots,
//!   histograms are fixed 2048-slot arrays, span timers are a single
//!   optional `Instant`. The only allocations happen at construction
//!   (one `Vec` for per-shard slots), so `radio_sim::Engine` keeps its
//!   counting-allocator contract with telemetry enabled.
//! * **Determinism-preserving.** Telemetry observes; it never feeds
//!   back. Counters are pure functions of the simulated execution and
//!   merge order-invariantly; wall-clock fields are labelled `_ns` and
//!   treated as noisy measurements. Enabling telemetry must leave
//!   traces, reports, and golden metrics byte-identical.
//! * **Structured output.** Runs emit a JSONL journal
//!   ([`journal::validate_journal`] checks it) and a stderr-only
//!   heartbeat, keeping stdout/report bytes untouched.

pub mod engine;
pub mod heartbeat;
pub mod hist;
pub mod journal;
pub mod span;

pub use engine::{EngineMetrics, EnginePhase, ENGINE_PHASES, ENGINE_PHASE_NAMES};
pub use heartbeat::Heartbeat;
pub use hist::Histogram;
pub use journal::{
    validate_journal, EngineRecord, HistogramRecord, JournalStats, MetaRecord, PoolRecord,
    ScenarioRecord, SummaryRecord, JOURNAL_SCHEMA_VERSION,
};
pub use span::Stopwatch;
