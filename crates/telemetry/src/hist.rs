//! Fixed-slot latency histogram with deterministic merge.
//!
//! Layout (HDR-style, all integer arithmetic, no heap):
//!
//! * values `0..=255` land in 256 exact linear buckets (one value per
//!   bucket), so small latencies — e.g. first-ack *round* counts —
//!   report exact percentiles;
//! * values `>= 256` use a log2 major bucket (bit length 9..=64) split
//!   into 32 linear sub-buckets, bounding the relative quantization
//!   error at 1/32 ≈ 3.1% across the whole `u64` range.
//!
//! Total: `256 + 56 * 32 = 2048` fixed `u64` slots (16 KiB, inline —
//! recording never allocates, which is what lets the engine keep the
//! PR 4 counting-allocator contract with telemetry enabled).
//!
//! `merge` is element-wise addition, hence commutative and associative:
//! merging per-shard or per-worker histograms yields byte-identical
//! state regardless of merge order — the property the cross-`--threads`
//! determinism tests pin.

/// Exact linear buckets below this value (one bucket per value).
const LINEAR_MAX: u64 = 256;
/// Sub-buckets per log2 major bucket above the linear range.
const SUB_BUCKETS: usize = 32;
const SUB_BITS: u32 = 5; // log2(SUB_BUCKETS)
/// Smallest major (bit-length - 1) in the log range: values >= 2^8.
const FIRST_MAJOR: u32 = 8;
/// Majors 8..=63 inclusive.
const MAJORS: usize = 56;
/// Total fixed slot count.
pub const BUCKETS: usize = LINEAR_MAX as usize + MAJORS * SUB_BUCKETS;

/// Fixed-slot histogram over `u64` samples (typically nanoseconds or
/// round counts). Construction and recording are allocation-free.
#[derive(Clone)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl PartialEq for Histogram {
    fn eq(&self, other: &Self) -> bool {
        self.count == other.count
            && self.sum == other.sum
            && self.min == other.min
            && self.max == other.max
            && self.counts[..] == other.counts[..]
    }
}
impl Eq for Histogram {}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .field("mean", &self.mean())
            .finish()
    }
}

fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        v as usize
    } else {
        let major = 63 - v.leading_zeros(); // 8..=63
        let sub = ((v >> (major - SUB_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
        LINEAR_MAX as usize + (major - FIRST_MAJOR) as usize * SUB_BUCKETS + sub
    }
}

/// Inclusive lower bound of bucket `i`.
fn bucket_lo(i: usize) -> u64 {
    if i < LINEAR_MAX as usize {
        i as u64
    } else {
        let off = i - LINEAR_MAX as usize;
        let major = FIRST_MAJOR + (off / SUB_BUCKETS) as u32;
        let sub = (off % SUB_BUCKETS) as u64;
        (1u64 << major) + (sub << (major - SUB_BITS))
    }
}

/// Inclusive upper bound of bucket `i`.
fn bucket_hi(i: usize) -> u64 {
    if i < LINEAR_MAX as usize {
        i as u64
    } else {
        let off = i - LINEAR_MAX as usize;
        let major = FIRST_MAJOR + (off / SUB_BUCKETS) as u32;
        bucket_lo(i) + (1u64 << (major - SUB_BITS)) - 1
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample. Never allocates.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` identical samples. Never allocates.
    #[inline]
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(v)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Element-wise merge; commutative and associative, so any merge
    /// order over a set of histograms produces identical state.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (None when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample (None when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Quantile extraction: the lower bound of the bucket holding the
    /// sample of rank `ceil(q * count)`, clamped to the observed
    /// `[min, max]`. Exact for values below 256; at most 1/32 relative
    /// error above. Deterministic — a pure function of the bucket
    /// counts, so merged histograms report identical percentiles
    /// regardless of merge order.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_lo(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    pub fn p50(&self) -> Option<u64> {
        self.percentile(0.50)
    }

    pub fn p95(&self) -> Option<u64> {
        self.percentile(0.95)
    }

    pub fn p99(&self) -> Option<u64> {
        self.percentile(0.99)
    }

    /// Occupied buckets as `(lo, hi, count)`, ascending — the sparse
    /// form the run journal serializes.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_lo(i), bucket_hi(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(10));
        assert_eq!(h.p50(), Some(5));
        assert_eq!(h.percentile(0.9), Some(9));
        assert_eq!(h.p99(), Some(10));
        assert!((h.mean() - 5.5).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_reports_none() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.p50(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn bucket_bounds_cover_value() {
        // Every value must land in a bucket whose [lo, hi] contains it,
        // with relative width <= 1/32 above the linear range.
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            for probe in [v, v + 1, v.saturating_mul(3) / 2] {
                let i = bucket_index(probe);
                assert!(bucket_lo(i) <= probe && probe <= bucket_hi(i), "v={probe} i={i}");
                if probe >= LINEAR_MAX {
                    let width = bucket_hi(i) - bucket_lo(i) + 1;
                    assert!(width as f64 / probe as f64 <= 1.0 / 16.0);
                }
            }
            v *= 2;
        }
        // Extremes.
        assert_eq!(bucket_index(0), 0);
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn quantization_error_bounded() {
        let mut h = Histogram::new();
        for i in 0..10_000u64 {
            h.record(1_000 + i * 37);
        }
        let p95 = h.p95().unwrap() as f64;
        let exact = 1_000.0 + (9_500.0 - 1.0) * 37.0;
        assert!((p95 - exact).abs() / exact < 1.0 / 16.0, "p95={p95} exact={exact}");
    }

    #[test]
    fn merge_matches_sequential_and_is_order_invariant() {
        let samples: Vec<u64> = (0..5_000u64).map(|i| (i * 2_654_435_761) % 1_000_000).collect();
        let mut whole = Histogram::new();
        for &s in &samples {
            whole.record(s);
        }
        let parts: Vec<Histogram> = samples
            .chunks(617)
            .map(|c| {
                let mut h = Histogram::new();
                for &s in c {
                    h.record(s);
                }
                h
            })
            .collect();
        let mut fwd = Histogram::new();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = Histogram::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd, whole);
        assert_eq!(rev, whole);
        assert_eq!(fwd.p99(), whole.p99());
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record_n(123_456, 7);
        for _ in 0..7 {
            b.record(123_456);
        }
        assert_eq!(a, b);
        a.record_n(5, 0);
        assert_eq!(a, b);
    }
}
