//! Lightweight span timers.
//!
//! A [`Stopwatch`] is an optional monotonic clock: when disarmed every
//! call is a branch on a `None` and returns 0, so instrumented code
//! paths cost nothing measurable with telemetry off and never allocate
//! either way.

use std::time::Instant;

/// A lap timer over `Instant`. `lap()` returns nanoseconds since the
/// previous lap (or construction) and resets the reference point.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Option<Instant>);

impl Stopwatch {
    /// An armed stopwatch when `enabled`, otherwise a no-op one whose
    /// `lap()` always returns 0.
    #[inline]
    pub fn armed(enabled: bool) -> Self {
        Stopwatch(enabled.then(Instant::now))
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Nanoseconds since the last lap; resets the reference point.
    #[inline]
    pub fn lap(&mut self) -> u64 {
        match self.0.as_mut() {
            Some(t) => {
                let now = Instant::now();
                let ns = now.duration_since(*t).as_nanos() as u64;
                *t = now;
                ns
            }
            None => 0,
        }
    }

    /// Nanoseconds since the last lap without resetting.
    #[inline]
    pub fn peek(&self) -> u64 {
        match self.0 {
            Some(t) => t.elapsed().as_nanos() as u64,
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_stopwatch_is_a_no_op() {
        let mut sw = Stopwatch::armed(false);
        assert!(!sw.enabled());
        assert_eq!(sw.lap(), 0);
        assert_eq!(sw.peek(), 0);
    }

    #[test]
    fn armed_stopwatch_measures_laps() {
        let mut sw = Stopwatch::armed(true);
        assert!(sw.enabled());
        std::thread::sleep(std::time::Duration::from_millis(2));
        let first = sw.lap();
        assert!(first >= 1_000_000, "lap too short: {first}ns");
        // Reference point reset: an immediate second lap is much shorter.
        let second = sw.lap();
        assert!(second < first);
    }
}
