//! Engine-side metric sink.
//!
//! [`EngineMetrics`] is the fixed-shape accumulator `radio_sim::Engine`
//! owns when telemetry is enabled: per-phase round timing, per-shard
//! busy time, a round-duration histogram, and cumulative channel
//! counters. Everything is a fixed slot or a vector allocated once at
//! construction, so recording inside the round loop never allocates
//! (the PR 4 counting-allocator contract).
//!
//! Counters and the counter side of `merge` are deterministic: they
//! are pure functions of the simulated execution and sum
//! order-invariantly. The `*_ns` fields are wall-clock measurements —
//! consumers must treat them as noisy observations, never as inputs to
//! anything that feeds back into simulation state.

use crate::hist::Histogram;

/// Phases of `Engine::step`, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum EnginePhase {
    /// Fault-plan evaluation: down/jam/drop masks for the round.
    Faults = 0,
    /// Environment input delivery.
    Inputs = 1,
    /// Per-process transmit decisions.
    Transmit = 2,
    /// Scheduler edge selection + reception resolution (serial scatter
    /// or sharded gather).
    Resolve = 3,
    /// Per-listener delivery and `on_receive` callbacks.
    Deliver = 4,
    /// Output collection and double-buffer swap.
    Outputs = 5,
}

pub const ENGINE_PHASES: usize = 6;

/// Journal/display names, indexed by `EnginePhase as usize`.
pub const ENGINE_PHASE_NAMES: [&str; ENGINE_PHASES] =
    ["faults", "inputs", "transmit", "resolve", "deliver", "outputs"];

/// Telemetry accumulated by one engine over its lifetime.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineMetrics {
    /// Rounds stepped while telemetry was attached.
    pub rounds: u64,
    /// Cumulative nanoseconds per step phase (`EnginePhase` order).
    pub phase_ns: [u64; ENGINE_PHASES],
    /// Cumulative busy nanoseconds per reception-resolution shard.
    /// Slot 0 is the serial resolver; sharded resolution fills one
    /// slot per worker chunk.
    pub shard_busy_ns: Vec<u64>,
    /// Distribution of whole-round durations (ns).
    pub round_ns: Histogram,
    /// Processes that transmitted, summed over rounds.
    pub transmissions: u64,
    /// Messages delivered to listeners.
    pub deliveries: u64,
    /// Listener-rounds lost to collision (>= 2 reachable transmitters).
    pub collisions: u64,
    /// Listener-rounds with no reachable transmitter.
    pub silent: u64,
    /// Listener-rounds suppressed by jamming faults.
    pub jammed: u64,
    /// Listener-rounds suppressed by drop faults.
    pub dropped: u64,
    /// Node-rounds spent crashed/down.
    pub down_node_rounds: u64,
    /// Dynamic-geometry epoch boundaries crossed (graph snapshot
    /// swaps); 0 for static geometry or a single-epoch timeline.
    pub epoch_switches: u64,
}

impl EngineMetrics {
    /// A zeroed sink with `shards` busy slots (min 1). The vector is
    /// the only heap allocation, paid once here.
    pub fn new(shards: usize) -> Self {
        EngineMetrics {
            rounds: 0,
            phase_ns: [0; ENGINE_PHASES],
            shard_busy_ns: vec![0; shards.max(1)],
            round_ns: Histogram::new(),
            transmissions: 0,
            deliveries: 0,
            collisions: 0,
            silent: 0,
            jammed: 0,
            dropped: 0,
            down_node_rounds: 0,
            epoch_switches: 0,
        }
    }

    /// Fold one round's phase laps in: bumps `rounds`, accumulates the
    /// per-phase totals, and records the round's total duration.
    /// Allocation-free.
    #[inline]
    pub fn record_round(&mut self, laps: [u64; ENGINE_PHASES]) {
        self.rounds += 1;
        let mut total = 0u64;
        for (slot, ns) in self.phase_ns.iter_mut().zip(laps) {
            *slot += ns;
            total += ns;
        }
        self.round_ns.record(total);
    }

    /// Total instrumented busy time across all phases.
    pub fn busy_ns(&self) -> u64 {
        self.phase_ns.iter().sum()
    }

    /// Merge another engine's metrics (e.g. one per trial) into this
    /// one. Counter merge is order-invariant; timing fields sum.
    pub fn merge(&mut self, other: &EngineMetrics) {
        self.rounds += other.rounds;
        for (a, b) in self.phase_ns.iter_mut().zip(other.phase_ns) {
            *a += b;
        }
        if self.shard_busy_ns.len() < other.shard_busy_ns.len() {
            self.shard_busy_ns.resize(other.shard_busy_ns.len(), 0);
        }
        for (a, b) in self.shard_busy_ns.iter_mut().zip(other.shard_busy_ns.iter()) {
            *a += b;
        }
        self.round_ns.merge(&other.round_ns);
        self.transmissions += other.transmissions;
        self.deliveries += other.deliveries;
        self.collisions += other.collisions;
        self.silent += other.silent;
        self.jammed += other.jammed;
        self.dropped += other.dropped;
        self.down_node_rounds += other.down_node_rounds;
        self.epoch_switches += other.epoch_switches;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_accumulates_phases_and_histogram() {
        let mut m = EngineMetrics::new(2);
        m.record_round([1, 2, 3, 4, 5, 6]);
        m.record_round([10, 20, 30, 40, 50, 60]);
        assert_eq!(m.rounds, 2);
        assert_eq!(m.phase_ns, [11, 22, 33, 44, 55, 66]);
        assert_eq!(m.busy_ns(), 231);
        assert_eq!(m.round_ns.count(), 2);
        assert_eq!(m.round_ns.min(), Some(21));
        assert_eq!(m.round_ns.max(), Some(210));
    }

    #[test]
    fn merge_is_order_invariant_on_counters() {
        let mut a = EngineMetrics::new(1);
        a.record_round([5; ENGINE_PHASES]);
        a.deliveries = 7;
        a.collisions = 2;
        a.epoch_switches = 1;
        let mut b = EngineMetrics::new(4);
        b.record_round([9; ENGINE_PHASES]);
        b.deliveries = 3;
        b.epoch_switches = 2;
        b.shard_busy_ns = vec![1, 2, 3, 4];

        let mut ab = EngineMetrics::new(1);
        ab.merge(&a);
        ab.merge(&b);
        let mut ba = EngineMetrics::new(1);
        ba.merge(&b);
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.rounds, 2);
        assert_eq!(ab.deliveries, 10);
        assert_eq!(ab.epoch_switches, 3);
        assert_eq!(ab.shard_busy_ns, vec![1, 2, 3, 4]);
    }
}
