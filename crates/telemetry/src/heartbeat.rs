//! Live progress heartbeat for long campaign/sweep runs.
//!
//! Workers call [`Heartbeat::trial_done`] (and the dispatcher
//! [`Heartbeat::scenario_done`]) from any thread; the heartbeat
//! rate-limits itself and writes a single status line to stderr:
//!
//! ```text
//! campaign: 3/14 scenarios | 120/448 trials | 5321.4 trials/s | ETA 0.1s
//! ```
//!
//! On a TTY the line redraws in place with `\r`; when stderr is
//! redirected (CI) it emits whole lines so the log stays readable.
//! Progress goes to stderr only — stdout report bytes are untouched,
//! preserving the determinism contract.

use std::io::{IsTerminal, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub struct Heartbeat {
    label: String,
    total_trials: u64,
    total_scenarios: u64,
    trials_done: AtomicU64,
    scenarios_done: AtomicU64,
    start: Instant,
    min_interval: Duration,
    tty: bool,
    printer: Mutex<PrinterState>,
}

struct PrinterState {
    last_print: Option<Instant>,
    dirty_line: bool,
}

impl Heartbeat {
    /// A heartbeat for `total_trials` trials across `total_scenarios`
    /// scenarios (pass 1 scenario for single-run mode), printing at
    /// most every 500 ms.
    pub fn new(label: impl Into<String>, total_scenarios: u64, total_trials: u64) -> Self {
        Self::with_interval(label, total_scenarios, total_trials, Duration::from_millis(500))
    }

    pub fn with_interval(
        label: impl Into<String>,
        total_scenarios: u64,
        total_trials: u64,
        min_interval: Duration,
    ) -> Self {
        Heartbeat {
            label: label.into(),
            total_trials,
            total_scenarios,
            trials_done: AtomicU64::new(0),
            scenarios_done: AtomicU64::new(0),
            start: Instant::now(),
            min_interval,
            tty: std::io::stderr().is_terminal(),
            printer: Mutex::new(PrinterState { last_print: None, dirty_line: false }),
        }
    }

    pub fn trials_done(&self) -> u64 {
        self.trials_done.load(Ordering::Relaxed)
    }

    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Count one finished trial; prints if the rate limit allows.
    pub fn trial_done(&self) {
        self.trials_done.fetch_add(1, Ordering::Relaxed);
        self.maybe_print(false);
    }

    /// Count one fully-drained scenario.
    pub fn scenario_done(&self) {
        self.scenarios_done.fetch_add(1, Ordering::Relaxed);
        self.maybe_print(false);
    }

    /// Print the final status line (always, regardless of rate limit)
    /// and terminate any in-place redraw with a newline.
    pub fn finish(&self) {
        self.maybe_print(true);
        let mut p = self.printer.lock().unwrap();
        if p.dirty_line {
            eprintln!();
            p.dirty_line = false;
        }
    }

    fn status_line(&self) -> String {
        let trials = self.trials_done.load(Ordering::Relaxed);
        let scenarios = self.scenarios_done.load(Ordering::Relaxed);
        let secs = self.start.elapsed().as_secs_f64();
        let rate = if secs > 0.0 { trials as f64 / secs } else { 0.0 };
        let eta = if rate > 0.0 && trials < self.total_trials {
            format!("{:.1}s", (self.total_trials - trials) as f64 / rate)
        } else if trials >= self.total_trials {
            "0.0s".to_string()
        } else {
            "?".to_string()
        };
        format!(
            "{}: {}/{} scenarios | {}/{} trials | {:.1} trials/s | ETA {}",
            self.label, scenarios, self.total_scenarios, trials, self.total_trials, rate, eta
        )
    }

    fn maybe_print(&self, force: bool) {
        let Ok(mut p) = self.printer.lock() else { return };
        let now = Instant::now();
        let due = match p.last_print {
            None => true,
            Some(last) => now.duration_since(last) >= self.min_interval,
        };
        if !(force || due) {
            return;
        }
        p.last_print = Some(now);
        let line = self.status_line();
        let mut err = std::io::stderr().lock();
        if self.tty {
            let _ = write!(err, "\r\x1b[2K{line}");
            let _ = err.flush();
            p.dirty_line = true;
        } else {
            let _ = writeln!(err, "{line}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_status_line() {
        let hb = Heartbeat::with_interval("test", 2, 10, Duration::from_secs(3600));
        for _ in 0..4 {
            hb.trial_done();
        }
        hb.scenario_done();
        assert_eq!(hb.trials_done(), 4);
        let line = hb.status_line();
        assert!(line.starts_with("test: 1/2 scenarios | 4/10 trials |"), "{line}");
        assert!(line.contains("ETA"), "{line}");
    }

    #[test]
    fn finished_run_reports_zero_eta() {
        let hb = Heartbeat::with_interval("t", 1, 2, Duration::from_secs(3600));
        hb.trial_done();
        hb.trial_done();
        assert!(hb.status_line().contains("ETA 0.0s"));
        hb.finish();
    }
}
