//! # baselines: fixed-probability-schedule broadcast strategies
//!
//! The classical strategy for radio-network broadcast — Bar-Yehuda,
//! Goldreich & Itai's *Decay* — cycles through a **fixed** schedule of
//! geometrically decreasing broadcast probabilities `1/2, 1/4, …, 1/Δ`,
//! betting that one rung matches the local contention. Section 1 of
//! Lynch & Newport explains why this fails in the dual graph model: the
//! oblivious link scheduler, which also knows the round number, can
//! *pump* contention (include many unreliable edges) exactly when the
//! schedule transmits aggressively and starve it (exclude them) when it
//! transmits meekly, so the realized contention never matches the rung.
//!
//! This crate implements those baselines as processes over the **same**
//! message/input/output types as `LBAlg`, so `local_broadcast::spec`'s
//! validity/progress/reliability checkers apply unchanged, making the
//! E7 comparison apples-to-apples:
//!
//! * [`DecayProcess`] — the Decay cycle;
//! * [`UniformProcess`] — a single fixed transmit probability.
//!
//! Neither baseline offers a principled acknowledgment rule in the dual
//! graph model (that is the point); they ack after a configured number of
//! rounds, defaulting to the classical `Θ(Δ log Δ)` budget that suffices
//! in the *reliable* model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use local_broadcast::msg::{LbInput, LbMsg, LbOutput, Payload};
use radio_sim::process::{Action, Context, ProcId, Process};
use rand::Rng;
use std::collections::HashSet;

/// Trace type shared with `LBAlg` (identical event vocabulary).
pub type BaselineTrace = local_broadcast::LbTrace;

/// Which fixed schedule a [`FixedScheduleProcess`] follows.
#[derive(Debug, Clone, PartialEq)]
pub enum Schedule {
    /// Decay: transmit with probability `2^{-(1 + (t-1) mod log Δ)}`,
    /// cycling `1/2, 1/4, …, 1/Δ` as a function of the round number
    /// alone.
    Decay,
    /// A single fixed probability every round.
    Uniform(f64),
}

impl Schedule {
    /// The transmit probability at (1-based) round `t` with `log Δ = l`.
    pub fn prob(&self, t: u64, l: u32) -> f64 {
        match self {
            Schedule::Decay => {
                let step = (t - 1) % u64::from(l.max(1));
                2f64.powi(-(step as i32 + 1))
            }
            Schedule::Uniform(p) => *p,
        }
    }

    /// The schedule's cycle length (1 for uniform).
    pub fn cycle(&self, l: u32) -> u64 {
        match self {
            Schedule::Decay => u64::from(l.max(1)),
            Schedule::Uniform(_) => 1,
        }
    }
}

/// A broadcast process with a fixed, round-indexed probability schedule.
///
/// On `bcast(m)` it starts transmitting `m` per the schedule; after
/// `ack_after` rounds of sending it outputs `ack(m)`. Listening rounds
/// produce deduplicated `recv` outputs, exactly like `LBAlg`.
#[derive(Debug)]
pub struct FixedScheduleProcess {
    schedule: Schedule,
    /// Sending rounds before acking; `None` uses `Δ̂ · log Δ̂` resolved at
    /// the first round.
    ack_after: Option<u64>,
    my_id: ProcId,
    log_delta: u32,
    resolved_ack_after: u64,
    sending: Option<(Payload, u64)>,
    received_keys: HashSet<(ProcId, u64)>,
    outputs: Vec<LbOutput>,
    initialized: bool,
}

impl FixedScheduleProcess {
    /// Creates a process with the given schedule; `ack_after = None`
    /// defaults to the classical `Δ̂ log Δ̂` sending budget.
    pub fn new(schedule: Schedule, ack_after: Option<u64>) -> Self {
        FixedScheduleProcess {
            schedule,
            ack_after,
            my_id: 0,
            log_delta: 1,
            resolved_ack_after: 1,
            sending: None,
            received_keys: HashSet::new(),
            outputs: Vec::new(),
            initialized: false,
        }
    }

    /// Whether the node is currently broadcasting a message.
    pub fn is_sending(&self) -> bool {
        self.sending.is_some()
    }

    /// The resolved per-message sending budget (after initialization).
    pub fn ack_budget(&self) -> u64 {
        self.resolved_ack_after
    }
}

impl Process for FixedScheduleProcess {
    type Msg = LbMsg;
    type Input = LbInput;
    type Output = LbOutput;

    fn on_input(&mut self, input: LbInput, _ctx: &mut Context<'_>) {
        let LbInput::Bcast(p) = input;
        assert!(
            self.sending.is_none(),
            "environment violated well-formedness: bcast before previous ack"
        );
        self.sending = Some((p, 0));
    }

    fn transmit(&mut self, ctx: &mut Context<'_>) -> Action<LbMsg> {
        if !self.initialized {
            self.my_id = ctx.id;
            let dhat = ctx.delta.max(2).next_power_of_two();
            self.log_delta = dhat.trailing_zeros().max(1);
            self.resolved_ack_after = self
                .ack_after
                .unwrap_or(dhat as u64 * u64::from(self.log_delta));
            self.initialized = true;
        }
        match &mut self.sending {
            Some((payload, _rounds)) => {
                let p = self.schedule.prob(ctx.round, self.log_delta);
                if ctx.rng.gen_bool(p.clamp(0.0, 1.0)) {
                    Action::Transmit(LbMsg::Data(payload.clone()))
                } else {
                    Action::Receive
                }
            }
            None => Action::Receive,
        }
    }

    fn on_receive(&mut self, msg: Option<LbMsg>, _ctx: &mut Context<'_>) {
        if let Some(LbMsg::Data(p)) = msg {
            if self.received_keys.insert(p.key()) {
                self.outputs.push(LbOutput::Recv(p));
            }
        }
        if let Some((payload, rounds)) = &mut self.sending {
            *rounds += 1;
            if *rounds >= self.resolved_ack_after {
                let done = payload.clone();
                self.outputs.push(LbOutput::Ack(done));
                self.sending = None;
            }
        }
    }

    fn take_outputs(&mut self) -> Vec<LbOutput> {
        std::mem::take(&mut self.outputs)
    }
}

/// Decay baseline constructor (see [`Schedule::Decay`]).
pub fn decay_process(ack_after: Option<u64>) -> FixedScheduleProcess {
    FixedScheduleProcess::new(Schedule::Decay, ack_after)
}

/// Uniform-probability baseline constructor.
///
/// # Panics
///
/// Panics unless `0 < p ≤ 1`.
pub fn uniform_process(p: f64, ack_after: Option<u64>) -> FixedScheduleProcess {
    assert!(p > 0.0 && p <= 1.0, "p must be a nonzero probability");
    FixedScheduleProcess::new(Schedule::Uniform(p), ack_after)
}

/// Re-exported alias: the Decay process type.
pub type DecayProcess = FixedScheduleProcess;
/// Re-exported alias: the uniform process type.
pub type UniformProcess = FixedScheduleProcess;

#[cfg(test)]
mod tests {
    use super::*;
    use radio_sim::environment::ScriptedEnvironment;
    use radio_sim::prelude::*;
    use radio_sim::scheduler::{AllExtraEdges, NoExtraEdges};

    fn run_baseline(
        topo: &radio_sim::topology::Topology,
        scheduler: Box<dyn LinkScheduler>,
        mk: impl Fn() -> FixedScheduleProcess,
        script: Vec<(u64, NodeId, LbInput)>,
        rounds: u64,
        master_seed: u64,
    ) -> BaselineTrace {
        let n = topo.graph.len();
        let procs: Vec<FixedScheduleProcess> = (0..n).map(|_| mk()).collect();
        let mut engine = Engine::new(
            topo.configuration(scheduler),
            procs,
            Box::new(ScriptedEnvironment::new(script)),
            master_seed,
        );
        engine.run(rounds);
        engine.into_trace()
    }

    #[test]
    fn decay_probability_cycle() {
        let s = Schedule::Decay;
        assert_eq!(s.prob(1, 3), 0.5);
        assert_eq!(s.prob(2, 3), 0.25);
        assert_eq!(s.prob(3, 3), 0.125);
        assert_eq!(s.prob(4, 3), 0.5); // cycle restarts
        assert_eq!(s.cycle(3), 3);
    }

    #[test]
    fn uniform_probability_is_constant() {
        let s = Schedule::Uniform(0.3);
        for t in 1..10 {
            assert_eq!(s.prob(t, 5), 0.3);
        }
        assert_eq!(s.cycle(5), 1);
    }

    #[test]
    fn decay_delivers_in_reliable_clique() {
        let topo = radio_sim::topology::clique(4, 1.0);
        let p = Payload::new(0, 0);
        let trace = run_baseline(
            &topo,
            Box::new(NoExtraEdges),
            || decay_process(None),
            vec![(1, NodeId(0), LbInput::Bcast(p.clone()))],
            200,
            5,
        );
        // All three neighbors eventually recv, and the sender acks.
        let recvs = trace
            .outputs()
            .filter(|(_, _, o)| !o.is_ack())
            .count();
        assert_eq!(recvs, 3);
        assert!(trace.outputs().any(|(_, v, o)| v == NodeId(0) && o.is_ack()));
        local_broadcast::spec::check_validity(&trace, &topo.graph).unwrap();
    }

    #[test]
    fn ack_fires_after_budget_rounds() {
        let topo = radio_sim::topology::clique(2, 1.0);
        let p = Payload::new(0, 0);
        let trace = run_baseline(
            &topo,
            Box::new(NoExtraEdges),
            || decay_process(Some(10)),
            vec![(1, NodeId(0), LbInput::Bcast(p.clone()))],
            30,
            5,
        );
        let ack = trace
            .outputs()
            .find(|(_, v, o)| *v == NodeId(0) && o.is_ack())
            .expect("acks after the fixed budget");
        assert_eq!(ack.0, 10);
    }

    #[test]
    fn uniform_one_sender_delivers_quickly() {
        let topo = radio_sim::topology::clique(3, 1.0);
        let p = Payload::new(0, 0);
        let trace = run_baseline(
            &topo,
            Box::new(AllExtraEdges),
            || uniform_process(0.5, Some(50)),
            vec![(1, NodeId(0), LbInput::Bcast(p.clone()))],
            60,
            9,
        );
        assert_eq!(trace.outputs().filter(|(_, _, o)| !o.is_ack()).count(), 2);
    }

    #[test]
    #[should_panic(expected = "well-formedness")]
    fn rejects_overlapping_bcasts() {
        let topo = radio_sim::topology::clique(2, 1.0);
        let _ = run_baseline(
            &topo,
            Box::new(NoExtraEdges),
            || decay_process(Some(100)),
            vec![
                (1, NodeId(0), LbInput::Bcast(Payload::new(0, 0))),
                (2, NodeId(0), LbInput::Bcast(Payload::new(0, 1))),
            ],
            10,
            1,
        );
    }
}
